// Ablation benchmarks (google-benchmark) for the design choices DESIGN.md
// §4 calls out:
//  1. RAO on/off across viewport aspect ratios at constant pixel count —
//     RAO should only matter (and always help) when Y > X.
//  2. SLAM_SORT vs SLAM_BUCKET at growing n — the log n gap.
//  3. The incremental-envelope extension vs the paper's per-row scan.
#include <benchmark/benchmark.h>

#include "core/slam_bucket.h"
#include "core/slam_sort.h"
#include "data/generators.h"
#include "data/sampling.h"
#include "kdv/engine.h"
#include "util/string_util.h"

namespace slam {
namespace {

const PointDataset& SharedCity() {
  static const PointDataset dataset =
      *GenerateCityDataset(City::kLosAngeles, 0.02, 42);
  return dataset;
}

/// Aspect-ratio sweep at a constant ~16k pixels. Arg pairs (X, Y).
void BM_AspectRatio(benchmark::State& state) {
  const bool rao = state.range(2) != 0;
  const int width = static_cast<int>(state.range(0));
  const int height = static_cast<int>(state.range(1));
  const auto& ds = SharedCity();
  const auto viewport = *Viewport::Create(ds.Extent(), width, height);
  const KdvTask task =
      MakeTask(ds, viewport, KernelType::kEpanechnikov, 1500.0);
  const Method method = rao ? Method::kSlamBucketRao : Method::kSlamBucket;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeKdv(task, method)->MaxValue());
  }
  state.SetLabel(StringPrintf("%dx%d %s", width, height,
                              rao ? "RAO" : "base"));
}
BENCHMARK(BM_AspectRatio)
    ->Args({512, 32, 0})
    ->Args({512, 32, 1})
    ->Args({160, 120, 0})
    ->Args({160, 120, 1})
    ->Args({128, 128, 0})
    ->Args({128, 128, 1})
    ->Args({120, 160, 0})
    ->Args({120, 160, 1})
    ->Args({32, 512, 0})
    ->Args({32, 512, 1})
    ->Unit(benchmark::kMillisecond);

/// Sort vs bucket at growing dataset sizes (Theorem 1 vs Theorem 2).
void BM_SortVsBucket(benchmark::State& state) {
  const bool bucket = state.range(1) != 0;
  const auto& full = SharedCity();
  const auto subset =
      *SampleCount(full, static_cast<size_t>(state.range(0)), 7);
  const auto viewport = *Viewport::Create(subset.Extent(), 160, 120);
  const KdvTask task =
      MakeTask(subset, viewport, KernelType::kEpanechnikov, 1500.0);
  DensityMap out;
  for (auto _ : state) {
    const Status st = bucket ? ComputeSlamBucket(task, {}, &out)
                             : ComputeSlamSort(task, {}, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out.MaxValue());
  }
  state.SetLabel(bucket ? "bucket" : "sort");
}
BENCHMARK(BM_SortVsBucket)
    ->Args({3000, 0})
    ->Args({3000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({25000, 0})
    ->Args({25000, 1})
    ->Unit(benchmark::kMillisecond);

/// The paper's per-row O(n) envelope scan vs the y-sorted incremental
/// envelope (our exact extension, off by default).
void BM_EnvelopeStrategy(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const auto& ds = SharedCity();
  const auto viewport = *Viewport::Create(ds.Extent(), 160, 120);
  const KdvTask task =
      MakeTask(ds, viewport, KernelType::kEpanechnikov, 1500.0);
  ComputeOptions options;
  options.incremental_envelope = incremental;
  DensityMap out;
  for (auto _ : state) {
    const Status st = ComputeSlamBucket(task, options, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out.MaxValue());
  }
  state.SetLabel(incremental ? "incremental-envelope" : "per-row-scan");
}
BENCHMARK(BM_EnvelopeStrategy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Aggregate arity cost: the same sweep under each kernel decomposition
/// (1 vs 4 vs 9 aggregate values, paper Table 4).
void BM_KernelArity(benchmark::State& state) {
  const KernelType kernel = static_cast<KernelType>(state.range(0));
  const auto& ds = SharedCity();
  const auto viewport = *Viewport::Create(ds.Extent(), 160, 120);
  const KdvTask task = MakeTask(ds, viewport, kernel, 1500.0);
  DensityMap out;
  for (auto _ : state) {
    const Status st = ComputeSlamBucket(task, {}, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out.MaxValue());
  }
  state.SetLabel(std::string(KernelTypeName(kernel)));
}
BENCHMARK(BM_KernelArity)
    ->Arg(static_cast<int>(KernelType::kUniform))
    ->Arg(static_cast<int>(KernelType::kEpanechnikov))
    ->Arg(static_cast<int>(KernelType::kQuartic))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slam

BENCHMARK_MAIN();
