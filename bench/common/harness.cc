#include "common/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "kdv/bandwidth.h"
#include "testing/oracle.h"
#include "util/exec_context.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace slam::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = ParseDouble(value);
  return parsed.ok() ? *parsed : fallback;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  config.dataset_scale = EnvDouble("SLAM_BENCH_SCALE", config.dataset_scale);
  config.budget_seconds =
      EnvDouble("SLAM_BENCH_BUDGET", config.budget_seconds);
  if (const char* res = std::getenv("SLAM_BENCH_RES")) {
    // "WxH", validated through the shared parse helpers — a malformed or
    // overflowing resolution silently keeps the default.
    const auto parts = Split(res, 'x');
    if (parts.size() == 2) {
      const auto w = ParseInt64(parts[0]);
      const auto h = ParseInt64(parts[1]);
      if (w.ok() && h.ok() && *w > 0 && *h > 0 &&
          *w <= std::numeric_limits<int>::max() &&
          *h <= std::numeric_limits<int>::max()) {
        config.width = static_cast<int>(*w);
        config.height = static_cast<int>(*h);
      }
    }
  }
  if (const char* check = std::getenv("SLAM_BENCH_CHECK")) {
    const std::string_view value(check);
    config.check_errors = !value.empty() && value != "0";
  }
  if (const char* json = std::getenv("SLAM_BENCH_JSON")) {
    config.json_path = json;
  }
  if (const char* methods = std::getenv("SLAM_BENCH_METHODS")) {
    for (const std::string_view name : Split(methods, ',')) {
      if (name.empty()) continue;
      const auto parsed = MethodFromName(name);
      if (parsed.ok()) {
        config.methods.push_back(*parsed);
      } else {
        std::fprintf(stderr,
                     "SLAM_BENCH_METHODS: ignoring unknown method '%.*s'\n",
                     static_cast<int>(name.size()), name.data());
      }
    }
  }
  return config;
}

std::vector<Method> BenchConfig::EnabledMethods() const {
  std::vector<Method> out;
  for (const Method m : AllMethods()) {
    if (methods.empty() ||
        std::find(methods.begin(), methods.end(), m) != methods.end()) {
      out.push_back(m);
    }
  }
  return out;
}

std::string CellResult::ToString() const {
  if (censored) {
    return StringPrintf(">%g", seconds);
  }
  if (!status.ok()) return "ERR";
  return StringPrintf("%.3f", seconds);
}

bool ResetPeakRss() {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) return false;
  const bool wrote = std::fputs("5", file) >= 0;
  return (std::fclose(file) == 0) && wrote;
#else
  return false;
#endif
}

size_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  size_t bytes = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    // "VmHWM:   59944 kB" — a bare digit run; the shared parse helpers
    // are for untrusted input, this is the kernel talking to us.
    const char* p = line + 6;
    while (*p == ' ' || *p == '\t') ++p;
    size_t kb = 0;
    while (*p >= '0' && *p <= '9') {
      kb = kb * 10 + static_cast<size_t>(*p - '0');
      ++p;
    }
    bytes = kb * 1024;
    break;
  }
  std::fclose(file);
  return bytes;
#else
  return 0;
#endif
}

CellResult RunCell(const KdvTask& task, Method method,
                   const BenchConfig& config,
                   const EngineOptions& engine_options,
                   const DensityMap* reference) {
  CellResult result;
  // A non-positive budget means "no per-cell limit": leave the deadline
  // unattached rather than arming an already-expired one.
  const Deadline deadline(config.budget_seconds > 0
                              ? config.budget_seconds
                              : std::numeric_limits<double>::infinity());
  ExecContext exec;
  if (engine_options.compute.exec != nullptr) {
    exec = *engine_options.compute.exec;  // keep caller's budget/injector
  }
  exec.set_deadline(&deadline);
  EngineOptions options = engine_options;
  options.compute.exec = &exec;
  // Reset the RSS watermark right before the compute so the cell's
  // peak_rss_bytes reflects this method's own footprint (on top of the
  // already-resident inputs), not the process-lifetime maximum.
  const bool rss_armed = ResetPeakRss();
  Timer timer;
  const auto map = ComputeKdv(task, method, options);
  result.seconds = timer.ElapsedSeconds();
  if (rss_armed) result.peak_rss_bytes = PeakRssBytes();
  if (!map.ok()) {
    if (map.status().IsDeadlineExceeded() || map.status().IsCancelled()) {
      result.censored = true;
      result.seconds = config.budget_seconds;
    } else {
      result.status = map.status();
    }
    return result;
  }
  // The comparison runs strictly after the clock stopped: the error column
  // must never slow down the timed region it describes.
  if (reference != nullptr) {
    const auto report = testing::CompareToReference(*map, *reference);
    if (report.ok()) result.max_rel_error = report->max_rel_error;
  }
  return result;
}

std::optional<DensityMap> MaybeReference(const KdvTask& task,
                                         const BenchConfig& config) {
  if (!config.check_errors) return std::nullopt;
  auto reference = testing::ReferenceScan(task);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference scan failed: %s\n",
                 reference.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(*reference);
}

std::string CellJsonLine(const std::string& experiment,
                         const std::string& dataset, Method method,
                         const CellResult& cell) {
  std::string error_field = "null";
  if (!std::isnan(cell.max_rel_error)) {
    error_field = StringPrintf("%.17g", cell.max_rel_error);
  }
  return StringPrintf(
      "{\"experiment\":\"%s\",\"dataset\":\"%s\",\"method\":\"%s\","
      "\"seconds\":%.17g,\"censored\":%s,\"ok\":%s,\"max_rel_error\":%s,"
      "\"peak_rss_bytes\":%zu}",
      experiment.c_str(), dataset.c_str(),
      std::string(MethodName(method)).c_str(), cell.seconds,
      cell.censored ? "true" : "false", cell.status.ok() ? "true" : "false",
      error_field.c_str(), cell.peak_rss_bytes);
}

void MaybeAppendJson(const BenchConfig& config, const std::string& line) {
  if (config.json_path.empty()) return;
  std::FILE* file = std::fopen(config.json_path.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot append to %s\n", config.json_path.c_str());
    return;
  }
  std::fprintf(file, "%s\n", line.c_str());
  std::fclose(file);
}

Result<BenchDataset> LoadBenchDataset(City city, const BenchConfig& config) {
  BenchDataset out;
  out.city = city;
  SLAM_ASSIGN_OR_RETURN(
      out.data, GenerateCityDataset(city, config.dataset_scale, config.seed));
  SLAM_ASSIGN_OR_RETURN(out.scott_bandwidth,
                        ScottBandwidth(out.data.coords()));
  return out;
}

Result<std::vector<BenchDataset>> LoadBenchDatasets(
    const BenchConfig& config) {
  std::vector<BenchDataset> out;
  for (const City city : {City::kSeattle, City::kLosAngeles, City::kNewYork,
                          City::kSanFrancisco}) {
    SLAM_ASSIGN_OR_RETURN(BenchDataset ds, LoadBenchDataset(city, config));
    out.push_back(std::move(ds));
  }
  return out;
}

Result<KdvTask> DatasetTask(const BenchDataset& dataset, int width,
                            int height, KernelType kernel,
                            double bandwidth_scale) {
  SLAM_ASSIGN_OR_RETURN(
      Viewport viewport,
      Viewport::Create(dataset.data.Extent(), width, height));
  KdvTask task = MakeTask(dataset.data, viewport, kernel,
                          dataset.scott_bandwidth * bandwidth_scale);
  return task;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  p = std::min(100.0, std::max(0.0, p));
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      if (c + 1 < cells.size()) {
        line.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  size_t total = headers_.size() * 2;
  for (const size_t w : widths) total += w;
  std::printf("%s\n", std::string(total - 2, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& experiment, const BenchConfig& config) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf(
      "scale=%.4g of paper dataset sizes, budget=%.3gs per cell "
      "(paper: 14400s), default resolution %dx%d\n",
      config.dataset_scale, config.budget_seconds, config.width,
      config.height);
  std::printf(
      "override with SLAM_BENCH_SCALE / SLAM_BENCH_BUDGET / SLAM_BENCH_RES\n\n");
}

std::string FormatSpeedup(const CellResult& baseline, const CellResult& ours) {
  if (!ours.status.ok() || ours.censored || ours.seconds <= 0.0) return "-";
  if (baseline.censored) {
    return StringPrintf(">=%.1fx", baseline.seconds / ours.seconds);
  }
  if (!baseline.status.ok()) return "-";
  return StringPrintf("%.1fx", baseline.seconds / ours.seconds);
}

}  // namespace slam::bench
