// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every bench binary reproduces one table or figure of the paper at a
// laptop/CI-friendly scale: the datasets are the synthetic city stand-ins
// (DESIGN.md §2) scaled down from the paper's sizes, and the paper's
// ">14400 sec" timeout becomes a per-cell budget (default a few seconds).
// Scale knobs are environment variables so the same binaries can run the
// full-size experiments on a bigger machine:
//   SLAM_BENCH_SCALE   fraction of the paper's dataset sizes (default 0.05)
//   SLAM_BENCH_BUDGET  per-cell time budget in seconds      (default 10)
//   SLAM_BENCH_RES     default resolution "WxH"             (default 240x180)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "util/result.h"
#include "util/string_util.h"

namespace slam::bench {

struct BenchConfig {
  double dataset_scale = 0.05;
  double budget_seconds = 10.0;
  int width = 240;
  int height = 180;
  uint64_t seed = 42;

  /// Reads the SLAM_BENCH_* environment overrides.
  static BenchConfig FromEnv();
};

/// One measured cell: a (method, task) pair run under a budget.
struct CellResult {
  double seconds = 0.0;
  bool censored = false;  // exceeded the budget (paper: "> 14400")
  Status status;          // non-OK and !censored = real failure

  /// "12.345" or ">10" (censored) or "ERR".
  std::string ToString() const;
};

/// Runs the method once under the config's budget.
CellResult RunCell(const KdvTask& task, Method method,
                   const BenchConfig& config,
                   const EngineOptions& engine_options = {});

/// The four paper datasets at the configured scale, with Scott-rule
/// default bandwidths computed on the generated data (mirroring Table 5).
struct BenchDataset {
  City city;
  PointDataset data;
  double scott_bandwidth = 0.0;
};

Result<std::vector<BenchDataset>> LoadBenchDatasets(const BenchConfig& config);
Result<BenchDataset> LoadBenchDataset(City city, const BenchConfig& config);

/// Builds the KDV task for a dataset over its MBR at the given resolution.
Result<KdvTask> DatasetTask(const BenchDataset& dataset, int width,
                            int height, KernelType kernel,
                            double bandwidth_scale = 1.0);

// ---- Reporting -----------------------------------------------------------

/// Fixed-width table printer: header row then one row per line.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Prints to stdout with column alignment.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner (name, scale, budget, resolution).
void PrintBanner(const std::string& experiment, const BenchConfig& config);

/// Formats a speedup like "23.4x"; censored baselines give a ">= Nx" form.
std::string FormatSpeedup(const CellResult& baseline, const CellResult& ours);

}  // namespace slam::bench
