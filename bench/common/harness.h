// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every bench binary reproduces one table or figure of the paper at a
// laptop/CI-friendly scale: the datasets are the synthetic city stand-ins
// (DESIGN.md §2) scaled down from the paper's sizes, and the paper's
// ">14400 sec" timeout becomes a per-cell budget (default a few seconds).
// Scale knobs are environment variables so the same binaries can run the
// full-size experiments on a bigger machine:
//   SLAM_BENCH_SCALE   fraction of the paper's dataset sizes (default 0.05)
//   SLAM_BENCH_BUDGET  per-cell time budget in seconds      (default 10)
//   SLAM_BENCH_RES     default resolution "WxH"             (default 240x180)
//   SLAM_BENCH_CHECK   non-zero: measure per-cell max_rel_error against the
//                      long-double oracle (adds an O(XYn) reference pass
//                      per task, outside the timed region)
//   SLAM_BENCH_JSON    path: append one JSON object per cell (JSON Lines)
//   SLAM_BENCH_METHODS comma-separated method names (e.g. "scan,slam_sort");
//                      restricts the roster so one method can be measured in
//                      isolation (per-process peak-RSS attribution)
#pragma once

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "util/result.h"
#include "util/string_util.h"

namespace slam::bench {

struct BenchConfig {
  double dataset_scale = 0.05;
  double budget_seconds = 10.0;
  int width = 240;
  int height = 180;
  uint64_t seed = 42;
  /// Measure each cell's max relative error against testing::ReferenceScan.
  bool check_errors = false;
  /// When non-empty, cells are appended here as JSON Lines.
  std::string json_path;
  /// Restricts the method roster (SLAM_BENCH_METHODS, comma-separated
  /// method names); empty = all ten methods.
  std::vector<Method> methods;

  /// Reads the SLAM_BENCH_* environment overrides.
  static BenchConfig FromEnv();

  /// The configured roster in AllMethods() order: `methods` when
  /// non-empty, otherwise all ten.
  std::vector<Method> EnabledMethods() const;
};

/// One measured cell: a (method, task) pair run under a budget.
struct CellResult {
  double seconds = 0.0;
  bool censored = false;  // exceeded the budget (paper: "> 14400")
  Status status;          // non-OK and !censored = real failure
  /// Max relative error vs the long-double reference (NaN = unmeasured).
  /// Computed after the timer stops, so it never perturbs `seconds`.
  double max_rel_error = std::numeric_limits<double>::quiet_NaN();
  /// Peak RSS of this process over the cell's compute, from a per-cell
  /// watermark reset (ResetPeakRss/PeakRssBytes). 0 = unavailable. Unlike
  /// a process-lifetime ru_maxrss, this attributes memory to the method
  /// that ran, not to whichever earlier phase (dataset generation) peaked
  /// highest.
  size_t peak_rss_bytes = 0;

  /// "12.345" or ">10" (censored) or "ERR".
  std::string ToString() const;
};

/// Resets the kernel's peak-RSS watermark for this process (Linux:
/// writing "5" to /proc/self/clear_refs). False when the platform or
/// kernel does not support it — peak_rss_bytes then stays 0 and consumers
/// fall back to process-lifetime measurements.
bool ResetPeakRss();

/// The process's current peak RSS in bytes (Linux: VmHWM from
/// /proc/self/status, i.e. the watermark since the last ResetPeakRss).
/// 0 when unavailable.
size_t PeakRssBytes();

/// Runs the method once under the config's budget. When `reference` is
/// non-null the produced map is compared against it (outside the timed
/// region) and the result carries max_rel_error.
CellResult RunCell(const KdvTask& task, Method method,
                   const BenchConfig& config,
                   const EngineOptions& engine_options = {},
                   const DensityMap* reference = nullptr);

/// The long-double reference map for `task` when config.check_errors is
/// set; std::nullopt otherwise or if the reference itself fails. The
/// reference pass is O(XYn) — priced once per task, never per cell.
std::optional<DensityMap> MaybeReference(const KdvTask& task,
                                         const BenchConfig& config);

/// One JSON object (single line, no trailing newline) describing a cell:
/// {"experiment":…,"dataset":…,"method":…,"seconds":…,"censored":…,
///  "ok":…,"max_rel_error":…}. max_rel_error is null when unmeasured.
std::string CellJsonLine(const std::string& experiment,
                         const std::string& dataset, Method method,
                         const CellResult& cell);

/// Appends `line` + '\n' to config.json_path; no-op when the path is empty.
void MaybeAppendJson(const BenchConfig& config, const std::string& line);

/// The four paper datasets at the configured scale, with Scott-rule
/// default bandwidths computed on the generated data (mirroring Table 5).
struct BenchDataset {
  City city;
  PointDataset data;
  double scott_bandwidth = 0.0;
};

Result<std::vector<BenchDataset>> LoadBenchDatasets(const BenchConfig& config);
Result<BenchDataset> LoadBenchDataset(City city, const BenchConfig& config);

/// Builds the KDV task for a dataset over its MBR at the given resolution.
Result<KdvTask> DatasetTask(const BenchDataset& dataset, int width,
                            int height, KernelType kernel,
                            double bandwidth_scale = 1.0);

// ---- Reporting -----------------------------------------------------------

/// Linear-interpolated percentile of `values` (p in [0, 100]); sorts the
/// copy it takes. NaN when `values` is empty. p is clamped to [0, 100].
double Percentile(std::vector<double> values, double p);

/// Fixed-width table printer: header row then one row per line.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  /// Prints to stdout with column alignment.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner (name, scale, budget, resolution).
void PrintBanner(const std::string& experiment, const BenchConfig& config);

/// Formats a speedup like "23.4x"; censored baselines give a ">= Nx" form.
std::string FormatSpeedup(const CellResult& baseline, const CellResult& ours);

}  // namespace slam::bench
