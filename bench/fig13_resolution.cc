// Figure 13 of the paper: response time vs resolution for the four
// datasets, Epanechnikov kernel, default bandwidth. The paper sweeps
// 320x240 .. 2560x1920; this binary sweeps the same 4:3 ladder scaled to
// the configured default (4 steps: /4, /2, x1, x2 of the default, matching
// the paper's "next larger size doubles each side" structure).
//
// Expected shape (paper Section 4.2): O(XYn) methods grow ~4x per step;
// SLAM_BUCKET_RAO grows ~2x per step, so the gap widens with resolution.
#include <cstdio>

#include "common/harness.h"

namespace slam::bench {
namespace {

// The figure's method set: the paper drops the non-RAO SLAM variants after
// Table 7 and plots the best SLAM against the competitors.
constexpr Method kFigureMethods[] = {
    Method::kScan,  Method::kRqsKd, Method::kRqsBall, Method::kZorder,
    Method::kAkde,  Method::kQuad,  Method::kSlamBucketRao,
};

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Figure 13: response time (sec) vs resolution", config);

  const auto datasets = LoadBenchDatasets(config);
  if (!datasets.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 datasets.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::pair<int, int>> resolutions{
      {config.width / 4, config.height / 4},
      {config.width / 2, config.height / 2},
      {config.width, config.height},
      {config.width * 2, config.height * 2},
  };

  for (const BenchDataset& ds : *datasets) {
    std::printf("[%s] n=%s, b=%.1f m\n", std::string(CityName(ds.city)).c_str(),
                FormatWithCommas(static_cast<int64_t>(ds.data.size())).c_str(),
                ds.scott_bandwidth);
    std::vector<std::string> headers{"Method"};
    for (const auto& [w, h] : resolutions) {
      headers.push_back(StringPrintf("%dx%d", w, h));
    }
    TablePrinter table(std::move(headers));
    for (const Method m : kFigureMethods) {
      std::vector<std::string> row{std::string(MethodName(m))};
      bool censored_before = false;
      for (const auto& [w, h] : resolutions) {
        if (censored_before) {
          // Response time is monotone in resolution; once over budget,
          // larger resolutions are too (the paper's figures hit the same
          // 14400 s ceiling).
          row.push_back(StringPrintf(">%g", config.budget_seconds));
          continue;
        }
        const auto task = DatasetTask(ds, w, h, KernelType::kEpanechnikov);
        if (!task.ok()) {
          row.push_back("ERR");
          continue;
        }
        const CellResult cell = RunCell(*task, m, config);
        row.push_back(cell.ToString());
        censored_before = cell.censored;
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: per resolution step, O(XYn) methods grow ~4x while "
      "SLAM_BUCKET_RAO grows ~2x, widening its lead.\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
