// Figure 14 of the paper: response time vs dataset size. Each dataset is
// subsampled without replacement to 25%, 50%, 75% and 100%, exactly the
// paper's protocol, at the default resolution and Scott-rule bandwidth of
// the full dataset.
#include <cstdio>

#include "common/harness.h"
#include "data/sampling.h"

namespace slam::bench {
namespace {

constexpr Method kFigureMethods[] = {
    Method::kScan,  Method::kRqsKd, Method::kRqsBall, Method::kZorder,
    Method::kAkde,  Method::kQuad,  Method::kSlamBucketRao,
};

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Figure 14: response time (sec) vs dataset size", config);

  const auto datasets = LoadBenchDatasets(config);
  if (!datasets.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 datasets.status().ToString().c_str());
    return 1;
  }
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};

  for (const BenchDataset& ds : *datasets) {
    std::printf("[%s] full n=%s, b=%.1f m\n",
                std::string(CityName(ds.city)).c_str(),
                FormatWithCommas(static_cast<int64_t>(ds.data.size())).c_str(),
                ds.scott_bandwidth);
    // Pre-draw the nested samples once so every method sees identical data.
    std::vector<BenchDataset> subsets;
    for (const double f : fractions) {
      BenchDataset sub = ds;
      if (f < 1.0) {
        auto sampled = SampleFraction(ds.data, f, config.seed + 7);
        if (!sampled.ok()) {
          std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
          return 1;
        }
        sub.data = *std::move(sampled);
      }
      subsets.push_back(std::move(sub));
    }

    std::vector<std::string> headers{"Method"};
    for (const double f : fractions) {
      headers.push_back(StringPrintf("%d%%", static_cast<int>(f * 100)));
    }
    TablePrinter table(std::move(headers));
    for (const Method m : kFigureMethods) {
      std::vector<std::string> row{std::string(MethodName(m))};
      bool censored_before = false;
      for (const BenchDataset& sub : subsets) {
        if (censored_before) {
          row.push_back(StringPrintf(">%g", config.budget_seconds));
          continue;
        }
        const auto task = DatasetTask(sub, config.width, config.height,
                                      KernelType::kEpanechnikov);
        if (!task.ok()) {
          row.push_back("ERR");
          continue;
        }
        const CellResult cell = RunCell(*task, m, config);
        row.push_back(cell.ToString());
        censored_before = cell.censored;
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: all methods grow with n; SLAM_BUCKET_RAO stays the "
      "fastest by a visible margin at every size.\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
