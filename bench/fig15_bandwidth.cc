// Figure 15 of the paper: response time vs bandwidth, multiplying the
// Scott-rule default by {0.25, 0.5, 1, 2, 4} at the default resolution.
// Expected shape: every method slows down as b grows (more points per
// range set); SLAM_BUCKET_RAO consistently beats the top-2 competitors
// (the paper measures 5.76x-34.77x over Z-order and QUAD).
#include <cstdio>

#include "common/harness.h"

namespace slam::bench {
namespace {

constexpr Method kFigureMethods[] = {
    Method::kScan,  Method::kRqsKd, Method::kRqsBall, Method::kZorder,
    Method::kAkde,  Method::kQuad,  Method::kSlamBucketRao,
};

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Figure 15: response time (sec) vs bandwidth", config);

  const auto datasets = LoadBenchDatasets(config);
  if (!datasets.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 datasets.status().ToString().c_str());
    return 1;
  }
  const double ratios[] = {0.25, 0.5, 1.0, 2.0, 4.0};

  for (const BenchDataset& ds : *datasets) {
    std::printf("[%s] n=%s, default b=%.1f m\n",
                std::string(CityName(ds.city)).c_str(),
                FormatWithCommas(static_cast<int64_t>(ds.data.size())).c_str(),
                ds.scott_bandwidth);
    std::vector<std::string> headers{"Method"};
    for (const double r : ratios) {
      headers.push_back(StringPrintf("b x%g", r));
    }
    TablePrinter table(std::move(headers));

    // Track the two best competitors at the default ratio for the paper's
    // headline comparison.
    CellResult quad_default, zorder_default, slam_default;
    for (const Method m : kFigureMethods) {
      std::vector<std::string> row{std::string(MethodName(m))};
      bool censored_before = false;
      for (const double r : ratios) {
        if (censored_before) {
          row.push_back(StringPrintf(">%g", config.budget_seconds));
          continue;
        }
        const auto task = DatasetTask(ds, config.width, config.height,
                                      KernelType::kEpanechnikov, r);
        if (!task.ok()) {
          row.push_back("ERR");
          continue;
        }
        const CellResult cell = RunCell(*task, m, config);
        row.push_back(cell.ToString());
        // Bandwidth cost is monotone for the scan-family; SLAM's per-row
        // envelope also grows with b, so the skip is safe there too.
        censored_before = cell.censored;
        if (r == 1.0) {
          if (m == Method::kQuad) quad_default = cell;
          if (m == Method::kZorder) zorder_default = cell;
          if (m == Method::kSlamBucketRao) slam_default = cell;
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("SLAM_BUCKET_RAO vs QUAD at default b: %s; vs Z-order: %s\n\n",
                FormatSpeedup(quad_default, slam_default).c_str(),
                FormatSpeedup(zorder_default, slam_default).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
