// Figure 16 of the paper: exploratory operations. Using the Seattle and
// Los Angeles datasets filtered to calendar year 2019 at fixed resolution:
//  (a, b) zooming — viewports are the dataset MBR scaled about its center
//         by {0.25, 0.5, 0.75, 1};
//  (c, d) panning — five random rectangles of size 0.5H x 0.5W inside the
//         MBR.
// The paper's observation: SLAM_BUCKET_RAO stays near real-time (< 6 s at
// full scale) while competitors take one to two orders of magnitude more.
#include <cstdio>

#include "common/harness.h"
#include "explore/filter.h"
#include "explore/viewport_ops.h"

namespace slam::bench {
namespace {

constexpr Method kFigureMethods[] = {
    Method::kRqsKd, Method::kRqsBall,       Method::kZorder,
    Method::kQuad,  Method::kSlamBucketRao,
};

Result<KdvTask> ViewportTask(const PointDataset& data, const Viewport& vp,
                             double bandwidth) {
  return MakeTask(data, vp, KernelType::kEpanechnikov, bandwidth);
}

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner(
      "Figure 16: zooming (a, b) and panning (c, d) operations, events "
      "filtered to year 2019",
      config);

  for (const City city : {City::kSeattle, City::kLosAngeles}) {
    const auto ds = LoadBenchDataset(city, config);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    const auto filtered = ApplyFilter(ds->data, Year2019Filter());
    if (!filtered.ok() || filtered->empty()) {
      std::fprintf(stderr, "2019 filter failed\n");
      return 1;
    }
    std::printf("[%s] 2019 events: %s of %s, b=%.1f m\n",
                std::string(CityName(city)).c_str(),
                FormatWithCommas(static_cast<int64_t>(filtered->size())).c_str(),
                FormatWithCommas(static_cast<int64_t>(ds->data.size())).c_str(),
                ds->scott_bandwidth);

    // -- Zooming -------------------------------------------------------
    const std::vector<double> zoom_ratios{0.25, 0.5, 0.75, 1.0};
    const auto zooms = ZoomSequence(*filtered, zoom_ratios, config.width,
                                    config.height);
    if (!zooms.ok()) {
      std::fprintf(stderr, "%s\n", zooms.status().ToString().c_str());
      return 1;
    }
    {
      std::vector<std::string> headers{"Method (zoom)"};
      for (const double r : zoom_ratios) {
        headers.push_back(StringPrintf("ratio %.2f", r));
      }
      TablePrinter table(std::move(headers));
      for (const Method m : kFigureMethods) {
        std::vector<std::string> row{std::string(MethodName(m))};
        for (const Viewport& vp : *zooms) {
          const auto task =
              ViewportTask(*filtered, vp, ds->scott_bandwidth);
          row.push_back(task.ok() ? RunCell(*task, m, config).ToString()
                                  : "ERR");
        }
        table.AddRow(std::move(row));
      }
      table.Print();
    }

    // -- Panning -------------------------------------------------------
    const auto pans = RandomPanViewports(*filtered, 5, 0.5, config.width,
                                         config.height, config.seed + 13);
    if (!pans.ok()) {
      std::fprintf(stderr, "%s\n", pans.status().ToString().c_str());
      return 1;
    }
    {
      std::vector<std::string> headers{"Method (pan)"};
      for (int i = 1; i <= 5; ++i) {
        headers.push_back(StringPrintf("rect %d", i));
      }
      TablePrinter table(std::move(headers));
      for (const Method m : kFigureMethods) {
        std::vector<std::string> row{std::string(MethodName(m))};
        for (const Viewport& vp : *pans) {
          const auto task =
              ViewportTask(*filtered, vp, ds->scott_bandwidth);
          row.push_back(task.ok() ? RunCell(*task, m, config).ToString()
                                  : "ERR");
        }
        table.AddRow(std::move(row));
      }
      table.Print();
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: smaller zoom ratios are denser and slower for "
      "every method; SLAM_BUCKET_RAO remains near-interactive throughout.\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
