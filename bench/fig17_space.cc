// Figure 17 of the paper: space consumption vs dataset size (25%..100%
// subsamples). Theorem 4: every method is O(XY + n), so the paper observes
// near-identical space across methods. We report, per method:
//  * the shared O(XY + n) base (input points + output raster), and
//  * the method's auxiliary structures — measured index sizes where an
//    index exists (kd/ball/quad/Z-order), and the analytic model of
//    EstimateAuxiliarySpaceBytes for the sweep workspaces.
#include <cstdio>

#include "common/harness.h"
#include "data/sampling.h"
#include "index/balltree.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "index/zorder_index.h"

namespace slam::bench {
namespace {

std::string Mib(size_t bytes) {
  return StringPrintf("%.2f", static_cast<double>(bytes) / (1024.0 * 1024.0));
}

size_t MeasuredAuxBytes(Method method, std::span<const Point> pts, int width,
                        int height) {
  switch (method) {
    case Method::kRqsKd:
    case Method::kAkde:
      return KdTree::Build(pts)->MemoryUsageBytes();
    case Method::kRqsBall:
      return BallTree::Build(pts)->MemoryUsageBytes();
    case Method::kQuad:
      return QuadTree::Build(pts)->MemoryUsageBytes();
    case Method::kZorder:
      return ZOrderIndex::Build(pts)->MemoryUsageBytes();
    default:
      return EstimateAuxiliarySpaceBytes(method, pts.size(), width, height);
  }
}

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Figure 17: space consumption (MiB) vs dataset size", config);

  const auto datasets = LoadBenchDatasets(config);
  if (!datasets.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 datasets.status().ToString().c_str());
    return 1;
  }
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};

  for (const BenchDataset& ds : *datasets) {
    std::printf("[%s] full n=%s (raster %dx%d = %s MiB shared by all "
                "methods)\n",
                std::string(CityName(ds.city)).c_str(),
                FormatWithCommas(static_cast<int64_t>(ds.data.size())).c_str(),
                config.width, config.height,
                Mib(static_cast<size_t>(config.width) * config.height *
                    sizeof(double))
                    .c_str());
    std::vector<std::string> headers{"Method"};
    for (const double f : fractions) {
      headers.push_back(StringPrintf("%d%% total", static_cast<int>(f * 100)));
    }
    TablePrinter table(std::move(headers));
    for (const Method m : config.EnabledMethods()) {
      std::vector<std::string> row{std::string(MethodName(m))};
      for (const double f : fractions) {
        const auto sub = SampleFraction(ds.data, f, config.seed + 5);
        if (!sub.ok()) {
          row.push_back("ERR");
          continue;
        }
        const size_t base =
            sub->size() * sizeof(Point) +
            static_cast<size_t>(config.width) * config.height * sizeof(double);
        const size_t aux =
            MeasuredAuxBytes(m, sub->coords(), config.width, config.height);
        row.push_back(Mib(base + aux));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: space grows linearly in n and all methods sit "
      "within a small constant factor of each other (Theorem 4).\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
