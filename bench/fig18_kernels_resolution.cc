// Figure 18 of the paper: other kernels (uniform a/b, quartic c/d) on the
// Los Angeles and San Francisco datasets, varying resolution. The paper's
// observation: supporting these kernels adds no significant overhead, so
// the curves mirror Figure 13's Epanechnikov results, and the gap between
// SLAM_BUCKET_RAO and the competitors widens with resolution.
#include <cstdio>

#include "common/harness.h"

namespace slam::bench {
namespace {

constexpr Method kFigureMethods[] = {
    Method::kScan,  Method::kRqsKd, Method::kRqsBall, Method::kZorder,
    Method::kAkde,  Method::kQuad,  Method::kSlamBucketRao,
};

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner(
      "Figure 18: uniform and quartic kernels, response time (sec) vs "
      "resolution",
      config);

  const std::vector<std::pair<int, int>> resolutions{
      {config.width / 4, config.height / 4},
      {config.width / 2, config.height / 2},
      {config.width, config.height},
      {config.width * 2, config.height * 2},
  };

  for (const City city : {City::kLosAngeles, City::kSanFrancisco}) {
    const auto ds = LoadBenchDataset(city, config);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    for (const KernelType kernel :
         {KernelType::kUniform, KernelType::kQuartic}) {
      std::printf("[%s, %s kernel] n=%s, b=%.1f m\n",
                  std::string(CityName(city)).c_str(),
                  std::string(KernelTypeName(kernel)).c_str(),
                  FormatWithCommas(static_cast<int64_t>(ds->data.size()))
                      .c_str(),
                  ds->scott_bandwidth);
      std::vector<std::string> headers{"Method"};
      for (const auto& [w, h] : resolutions) {
        headers.push_back(StringPrintf("%dx%d", w, h));
      }
      TablePrinter table(std::move(headers));
      for (const Method m : kFigureMethods) {
        std::vector<std::string> row{std::string(MethodName(m))};
        bool censored_before = false;
        for (const auto& [w, h] : resolutions) {
          if (censored_before) {
            row.push_back(StringPrintf(">%g", config.budget_seconds));
            continue;
          }
          const auto task = DatasetTask(*ds, w, h, kernel);
          if (!task.ok()) {
            row.push_back("ERR");
            continue;
          }
          const CellResult cell = RunCell(*task, m, config);
          row.push_back(cell.ToString());
          censored_before = cell.censored;
        }
        table.AddRow(std::move(row));
      }
      table.Print();
      std::printf("\n");
    }
  }
  std::printf(
      "Paper shape check: per-kernel results track the Epanechnikov curves "
      "(Figure 13) — the kernel swap costs neither side much.\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
