// Figure 19 of the paper: other kernels (uniform a/b, quartic c/d) on the
// Los Angeles and San Francisco datasets, varying dataset size (25%..100%
// samples). Expected shape: SLAM_BUCKET_RAO achieves one to two orders of
// magnitude speedup in many test cases for both kernels.
#include <cstdio>

#include "common/harness.h"
#include "data/sampling.h"

namespace slam::bench {
namespace {

constexpr Method kFigureMethods[] = {
    Method::kScan,  Method::kRqsKd, Method::kRqsBall, Method::kZorder,
    Method::kAkde,  Method::kQuad,  Method::kSlamBucketRao,
};

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner(
      "Figure 19: uniform and quartic kernels, response time (sec) vs "
      "dataset size",
      config);
  const double fractions[] = {0.25, 0.5, 0.75, 1.0};

  for (const City city : {City::kLosAngeles, City::kSanFrancisco}) {
    const auto ds = LoadBenchDataset(city, config);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
      return 1;
    }
    std::vector<BenchDataset> subsets;
    for (const double f : fractions) {
      BenchDataset sub = *ds;
      if (f < 1.0) {
        auto sampled = SampleFraction(ds->data, f, config.seed + 11);
        if (!sampled.ok()) {
          std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
          return 1;
        }
        sub.data = *std::move(sampled);
      }
      subsets.push_back(std::move(sub));
    }
    for (const KernelType kernel :
         {KernelType::kUniform, KernelType::kQuartic}) {
      std::printf("[%s, %s kernel] full n=%s, b=%.1f m\n",
                  std::string(CityName(city)).c_str(),
                  std::string(KernelTypeName(kernel)).c_str(),
                  FormatWithCommas(static_cast<int64_t>(ds->data.size()))
                      .c_str(),
                  ds->scott_bandwidth);
      std::vector<std::string> headers{"Method"};
      for (const double f : fractions) {
        headers.push_back(StringPrintf("%d%%", static_cast<int>(f * 100)));
      }
      TablePrinter table(std::move(headers));
      for (const Method m : kFigureMethods) {
        std::vector<std::string> row{std::string(MethodName(m))};
        bool censored_before = false;
        for (const BenchDataset& sub : subsets) {
          if (censored_before) {
            row.push_back(StringPrintf(">%g", config.budget_seconds));
            continue;
          }
          const auto task =
              DatasetTask(sub, config.width, config.height, kernel);
          if (!task.ok()) {
            row.push_back("ERR");
            continue;
          }
          const CellResult cell = RunCell(*task, m, config);
          row.push_back(cell.ToString());
          censored_before = cell.censored;
        }
        table.AddRow(std::move(row));
      }
      table.Print();
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
