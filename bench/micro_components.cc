// Microbenchmarks (google-benchmark) of SLAM's building blocks, backing
// the ablation notes in DESIGN.md §4:
//  * envelope discovery: paper's O(n) per-row scan vs the y-sorted
//    EnvelopeScanner extension;
//  * per-row endpoint ordering: sorting vs bucketing (the log n factor
//    Theorem 2 removes);
//  * aggregate maintenance cost per kernel (1 vs 4 vs 9 aggregate values);
//  * index construction costs the baselines pay per KDV call.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/bounds.h"
#include "core/envelope.h"
#include "core/sweep_state.h"
#include "data/generators.h"
#include "index/balltree.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "kdv/engine.h"

namespace slam {
namespace {

const PointDataset& SharedCity() {
  static const PointDataset dataset =
      *GenerateCityDataset(City::kSeattle, 0.02, 42);
  return dataset;
}

void BM_EnvelopeLinearScan(benchmark::State& state) {
  const auto& ds = SharedCity();
  const double b = 600.0;
  const WorldY k(ds.Extent().center().y);
  std::vector<Point> env;
  for (auto _ : state) {
    FindEnvelope(ds.coords(), k, b, &env);
    benchmark::DoNotOptimize(env.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.size()));
}
BENCHMARK(BM_EnvelopeLinearScan);

void BM_EnvelopeSortedScanner(benchmark::State& state) {
  const auto& ds = SharedCity();
  const double b = 600.0;
  const WorldY k(ds.Extent().center().y);
  const EnvelopeScanner scanner(ds.coords());
  for (auto _ : state) {
    const auto env = scanner.Envelope(k, b);
    benchmark::DoNotOptimize(env.data());
  }
}
BENCHMARK(BM_EnvelopeSortedScanner);

void BM_BoundIntervalComputation(benchmark::State& state) {
  const auto& ds = SharedCity();
  const double b = 600.0;
  const WorldY k(ds.Extent().center().y);
  std::vector<Point> env;
  FindEnvelope(ds.coords(), k, b, &env);
  std::vector<BoundInterval> intervals;
  for (auto _ : state) {
    ComputeBoundIntervals(env, k, b, &intervals);
    benchmark::DoNotOptimize(intervals.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env.size()));
}
BENCHMARK(BM_BoundIntervalComputation);

/// The per-row log n the bucket variant deletes: sort the endpoint events.
void BM_RowEndpointSort(benchmark::State& state) {
  const auto& ds = SharedCity();
  const double b = 600.0;
  const WorldY k(ds.Extent().center().y);
  std::vector<Point> env;
  FindEnvelope(ds.coords(), k, b, &env);
  std::vector<BoundInterval> intervals;
  ComputeBoundIntervals(env, k, b, &intervals);
  std::vector<double> endpoints(intervals.size());
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < intervals.size(); ++i) {
      endpoints[i] = intervals[i].lb;
    }
    state.ResumeTiming();
    std::sort(endpoints.begin(), endpoints.end());
    benchmark::DoNotOptimize(endpoints.data());
  }
}
BENCHMARK(BM_RowEndpointSort);

/// Bucketing the same endpoints: O(|E| + X).
void BM_RowEndpointBucket(benchmark::State& state) {
  const auto& ds = SharedCity();
  const double b = 600.0;
  const WorldY k(ds.Extent().center().y);
  const int X = 1280;
  const double x0 = ds.Extent().min().x;
  const double gap = ds.Extent().width() / X;
  std::vector<Point> env;
  FindEnvelope(ds.coords(), k, b, &env);
  std::vector<BoundInterval> intervals;
  ComputeBoundIntervals(env, k, b, &intervals);
  std::vector<int32_t> counts;
  for (auto _ : state) {
    counts.assign(X + 2, 0);
    for (const BoundInterval& iv : intervals) {
      const double t = std::ceil((iv.lb - x0) / gap);
      const int bucket =
          t <= 0.0 ? 0 : (t >= X ? X : static_cast<int>(t));
      ++counts[bucket + 1];
    }
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_RowEndpointBucket);

void BM_AggregateAdd(benchmark::State& state) {
  const auto& ds = SharedCity();
  RangeAggregates agg;
  size_t i = 0;
  for (auto _ : state) {
    agg.Add(ds.coord(i));
    if (++i == ds.size()) i = 0;
  }
  benchmark::DoNotOptimize(&agg);
}
BENCHMARK(BM_AggregateAdd);

void BM_DensityFromAggregates(benchmark::State& state) {
  const KernelType kernel = static_cast<KernelType>(state.range(0));
  RangeAggregates agg;
  const auto& ds = SharedCity();
  for (size_t i = 0; i < 1000; ++i) agg.Add(ds.coord(i));
  const Point q = ds.Extent().center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DensityFromAggregates(kernel, q, agg, 600.0, 1e-3));
  }
}
BENCHMARK(BM_DensityFromAggregates)
    ->Arg(static_cast<int>(KernelType::kUniform))
    ->Arg(static_cast<int>(KernelType::kEpanechnikov))
    ->Arg(static_cast<int>(KernelType::kQuartic));

void BM_KdTreeBuild(benchmark::State& state) {
  const auto& ds = SharedCity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KdTree::Build(ds.coords())->size());
  }
}
BENCHMARK(BM_KdTreeBuild);

void BM_BallTreeBuild(benchmark::State& state) {
  const auto& ds = SharedCity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BallTree::Build(ds.coords())->size());
  }
}
BENCHMARK(BM_BallTreeBuild);

void BM_QuadTreeBuild(benchmark::State& state) {
  const auto& ds = SharedCity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuadTree::Build(ds.coords())->size());
  }
}
BENCHMARK(BM_QuadTreeBuild);

void BM_KdTreeRangeAggregate(benchmark::State& state) {
  const auto& ds = SharedCity();
  const auto tree = *KdTree::Build(ds.coords());
  const Point q = ds.Extent().center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeAggregateQuery(q, 600.0).count);
  }
}
BENCHMARK(BM_KdTreeRangeAggregate);

/// Whole-KDV microbenchmark on a small grid, one per SLAM variant, showing
/// the sort -> bucket -> RAO progression end to end.
void BM_SmallKdv(benchmark::State& state) {
  const Method method = static_cast<Method>(state.range(0));
  const auto& ds = SharedCity();
  const auto viewport = *Viewport::Create(ds.Extent(), 96, 128);
  const KdvTask task = MakeTask(ds, viewport, KernelType::kEpanechnikov,
                                600.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeKdv(task, method)->MaxValue());
  }
  state.SetLabel(std::string(MethodName(method)));
}
BENCHMARK(BM_SmallKdv)
    ->Arg(static_cast<int>(Method::kSlamSort))
    ->Arg(static_cast<int>(Method::kSlamBucket))
    ->Arg(static_cast<int>(Method::kSlamSortRao))
    ->Arg(static_cast<int>(Method::kSlamBucketRao))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slam

BENCHMARK_MAIN();
