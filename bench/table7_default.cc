// Table 7 of the paper: response time of all ten methods on the four
// datasets under the default setting (MBR viewport, default resolution,
// Scott-rule bandwidth, Epanechnikov kernel). The paper reports seconds
// with a 14400 s timeout; this binary reports seconds at the configured
// scale with the configured budget, plus the speedup of SLAM_BUCKET_RAO
// over each competitor (the paper's headline "one to two orders of
// magnitude in many test cases").
#include <algorithm>
#include <cstdio>

#include "common/harness.h"

namespace slam::bench {
namespace {

int Run() {
  BenchConfig config = BenchConfig::FromEnv();
  PrintBanner("Table 7: response time (sec), default parameters", config);

  const auto datasets = LoadBenchDatasets(config);
  if (!datasets.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 datasets.status().ToString().c_str());
    return 1;
  }

  const std::vector<Method> roster = config.EnabledMethods();
  const bool have_rao =
      std::find(roster.begin(), roster.end(), Method::kSlamBucketRao) !=
      roster.end();
  std::vector<std::string> headers{"Dataset", "n", "b(m)"};
  for (const Method m : roster) headers.emplace_back(MethodName(m));
  if (have_rao) headers.emplace_back("best-vs-SLAM_B_RAO");
  TablePrinter table(std::move(headers));

  for (const BenchDataset& ds : *datasets) {
    const auto task = DatasetTask(ds, config.width, config.height,
                                  KernelType::kEpanechnikov);
    if (!task.ok()) {
      std::fprintf(stderr, "%s\n", task.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{
        std::string(CityName(ds.city)),
        FormatWithCommas(static_cast<int64_t>(ds.data.size())),
        StringPrintf("%.1f", ds.scott_bandwidth)};
    CellResult best_competitor;
    best_competitor.censored = true;
    best_competitor.seconds = config.budget_seconds;
    CellResult slam_bucket_rao;
    // One O(XYn) oracle pass per dataset (only under SLAM_BENCH_CHECK),
    // shared across all ten method cells.
    const std::optional<DensityMap> reference =
        MaybeReference(*task, config);
    for (const Method m : roster) {
      const CellResult cell =
          RunCell(*task, m, config, {}, reference ? &*reference : nullptr);
      MaybeAppendJson(config, CellJsonLine("table7_default",
                                           std::string(CityName(ds.city)), m,
                                           cell));
      row.push_back(cell.ToString());
      if (m == Method::kSlamBucketRao) {
        slam_bucket_rao = cell;
      } else if (!MethodIsSlam(m) && cell.status.ok() && !cell.censored &&
                 cell.seconds < best_competitor.seconds) {
        best_competitor = cell;
      }
    }
    if (have_rao) {
      row.push_back(FormatSpeedup(best_competitor, slam_bucket_rao));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape check: SLAM_BUCKET_RAO < SLAM_BUCKET < SLAM_SORT, all "
      "SLAM variants well below QUAD/Z-order, and SCAN/aKDE slowest.\n");
  return 0;
}

}  // namespace
}  // namespace slam::bench

int main() { return slam::bench::Run(); }
