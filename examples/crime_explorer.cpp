// Interactive-style crime-hotspot exploration (paper Figure 2): an
// ExplorerSession drives the workflow a criminologist would run in a tool
// like KDV-Explorer — time filter, attribute filter, zooming, panning, and
// bandwidth selection — re-rendering after each step and reporting the
// response time of the active method.
//
//   ./crime_explorer [scale]   (default 0.01 of the paper's LA crime data)
#include <cstdio>
#include <cstdlib>

#include "data/generators.h"
#include "explore/session.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "viz/ascii.h"

namespace {

void Step(const char* label, slam::ExplorerSession& session) {
  slam::Timer timer;
  const auto map = session.Render();
  map.status().AbortIfNotOk();
  std::printf("%-44s %8.1f ms   n_active=%-7zu view=%s\n", label,
              timer.ElapsedMillis(), session.active_data().size(),
              session.viewport().region().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slam;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  auto dataset = GenerateCityDataset(City::kLosAngeles, scale, 13);
  dataset.status().AbortIfNotOk();
  std::printf("Los Angeles crime (synthetic): n = %s\n\n",
              FormatWithCommas(static_cast<int64_t>(dataset->size())).c_str());

  SessionConfig config;
  config.width_px = 256;
  config.height_px = 192;
  config.method = Method::kSlamBucketRao;
  auto session = ExplorerSession::Create(*std::move(dataset), config);
  session.status().AbortIfNotOk();
  std::printf("Scott bandwidth: %.1f m, method: %s\n\n",
              session->bandwidth(),
              std::string(MethodName(session->method())).c_str());

  Step("initial city-wide view", *session);

  session->SetFilter(Year2019Filter()).AbortIfNotOk();
  Step("time filter: calendar year 2019", *session);

  EventFilter robbery = Year2019Filter();
  robbery.categories = {0, 1};  // the two most frequent crime types
  session->SetFilter(robbery).AbortIfNotOk();
  Step("attribute filter: top-2 crime categories", *session);

  session->Zoom(0.5).AbortIfNotOk();
  Step("zoom to 0.5x", *session);

  session->Zoom(0.5).AbortIfNotOk();
  Step("zoom to 0.25x", *session);

  session->Pan(0.4, 0.25).AbortIfNotOk();
  Step("pan north-east", *session);

  session->ScaleBandwidth(2.0).AbortIfNotOk();
  Step("bandwidth x2 (smoother hotspots)", *session);

  session->ScaleBandwidth(0.25).AbortIfNotOk();
  Step("bandwidth x0.5 of default (sharper)", *session);

  // Final view as terminal art.
  const auto map = session->Render();
  map.status().AbortIfNotOk();
  const auto art = RenderAscii(*map);
  art.status().AbortIfNotOk();
  std::printf("\nfinal view:\n%s\n", art->c_str());
  return 0;
}
