// Ecological-modeling use case (paper Section 1: home-range / pollution
// density estimation): events arrive as lon/lat observations, get projected
// to local meters, and the kernel choice is compared — including the
// engine's refusal of the Gaussian kernel for SLAM, with the documented
// fallback.
//
//   ./ecology_model
#include <cstdio>

#include "data/dataset.h"
#include "explore/viewport_ops.h"
#include "geom/projection.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "util/random.h"
#include "util/timer.h"
#include "viz/render.h"

int main() {
  using namespace slam;

  // Simulated animal-tracking fixes: three home ranges around a wetland,
  // recorded in WGS84 degrees (lon, lat).
  Rng rng(2024);
  std::vector<Point> lonlat;
  const Point ranges[] = {{8.54, 47.36}, {8.58, 47.38}, {8.52, 47.40}};
  for (int i = 0; i < 6000; ++i) {
    const Point& c = ranges[rng.NextBelow(3)];
    lonlat.push_back(
        {c.x + rng.Gaussian(0.0, 0.008), c.y + rng.Gaussian(0.0, 0.006)});
  }

  const auto projection = LocalProjection::ForData(lonlat);
  projection.status().AbortIfNotOk();
  const auto dataset = PointDataset::FromPoints(
      "wetland-fixes", projection->ForwardAll(lonlat));
  const auto bandwidth = ScottBandwidth(dataset.coords());
  bandwidth.status().AbortIfNotOk();
  std::printf("tracking fixes: n = %zu, Scott bandwidth = %.1f m\n\n",
              dataset.size(), *bandwidth);

  const auto viewport = DatasetViewport(dataset, 240, 180);
  viewport.status().AbortIfNotOk();

  // Kernel comparison: all three GIS kernels through SLAM.
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeTask(dataset, *viewport, kernel, *bandwidth);
    Timer timer;
    const auto map = ComputeKdv(task, Method::kSlamBucketRao);
    map.status().AbortIfNotOk();
    std::printf("%-13s %7.1f ms   density range [%.3g, %.3g]\n",
                std::string(KernelTypeName(kernel)).c_str(),
                timer.ElapsedMillis(), map->MinValue(), map->MaxValue());
    if (kernel == KernelType::kQuartic) {
      WriteDensityPpm(*map, "ecology_home_range.ppm").AbortIfNotOk();
      std::printf("              wrote ecology_home_range.ppm\n");
    }
  }

  // The Gaussian kernel has no aggregate decomposition (paper Section 3.7):
  // SLAM refuses it, and the supported path is an exact competitor (QUAD)
  // or bounded-error aKDE.
  const KdvTask gaussian_task =
      MakeTask(dataset, *viewport, KernelType::kGaussian, *bandwidth);
  const auto refused = ComputeKdv(gaussian_task, Method::kSlamBucketRao);
  std::printf("\nGaussian via SLAM -> %s\n",
              refused.status().ToString().c_str());
  Timer timer;
  const auto gaussian_map = ComputeKdv(gaussian_task, Method::kAkde);
  gaussian_map.status().AbortIfNotOk();
  std::printf("Gaussian via aKDE fallback: %.1f ms (eps-bounded error)\n",
              timer.ElapsedMillis());
  return 0;
}
