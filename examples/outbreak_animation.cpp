// Disease-outbreak monitoring (paper Section 1: epidemiologists use KDV to
// detect outbreaks): time-sliced KDV over monthly windows produces the
// frames of a hotspot animation, and hotspot extraction tracks how the
// dominant cluster moves month to month.
//
//   ./outbreak_animation [frames_dir]   (default: writes frame_NN.ppm here)
#include <cstdio>
#include <string>

#include "analysis/hotspot.h"
#include "data/dataset.h"
#include "explore/filter.h"
#include "explore/temporal.h"
#include "kdv/grid.h"
#include "util/random.h"
#include "util/string_util.h"
#include "viz/render.h"

int main(int argc, char** argv) {
  using namespace slam;
  const std::string dir = argc > 1 ? argv[1] : ".";

  // Simulated outbreak: cases start in one district and drift north-east
  // over nine months of 2019, with background sporadic cases year-round.
  PointDataset cases("outbreak-2019");
  Rng rng(3141);
  for (int month = 1; month <= 9; ++month) {
    const Point center{2000.0 + month * 800.0, 1500.0 + month * 600.0};
    const int64_t t0 = UnixFromDate(2019, month, 1).ValueOrDie();
    const int surge = 150 + 60 * (month >= 4 && month <= 7 ? 3 : 1);
    for (int i = 0; i < surge; ++i) {
      cases.Add({center.x + rng.Gaussian(0, 350),
                 center.y + rng.Gaussian(0, 350)},
                t0 + static_cast<int64_t>(rng.NextBelow(25 * 86400)));
    }
  }
  for (int i = 0; i < 800; ++i) {  // background noise
    cases.Add({rng.Uniform(0, 12000), rng.Uniform(0, 9000)},
              UnixFromDate(2019, 1, 1).ValueOrDie() +
                  static_cast<int64_t>(rng.NextBelow(270LL * 86400)));
  }
  std::printf("cases: n = %zu over Jan-Sep 2019\n\n", cases.size());

  const auto viewport =
      Viewport::Create(BoundingBox({0, 0}, {12000, 9000}), 240, 180);
  viewport.status().AbortIfNotOk();

  TimeSliceConfig config;
  config.window_seconds = 30LL * 86400;
  config.step_seconds = 30LL * 86400;
  config.bandwidth = 700.0;
  config.weight_by_total = true;  // frames share one intensity scale
  const auto slices = ComputeTimeSlicedKdv(cases, *viewport, config);
  slices.status().AbortIfNotOk();

  const Grid grid = Grid::FromViewport(*viewport);
  std::printf("%-5s %-8s %-10s %s\n", "frame", "cases", "peak", "hotspot center (m)");
  for (size_t i = 0; i < slices->size(); ++i) {
    const TimeSlice& slice = (*slices)[i];
    const std::string path = dir + StringPrintf("/frame_%02zu.ppm", i);
    WriteDensityPpm(slice.map, path).AbortIfNotOk();
    std::string where = "-";
    if (slice.map.MaxValue() > 0.0) {
      HotspotOptions hs;
      hs.relative_threshold = 0.5;
      hs.max_hotspots = 1;
      const auto hotspots = ExtractHotspots(slice.map, hs);
      hotspots.status().AbortIfNotOk();
      if (!hotspots->empty()) {
        const Point geo = RasterToGeo(grid, (*hotspots)[0].centroid.x,
                                      (*hotspots)[0].centroid.y);
        where = StringPrintf("(%.0f, %.0f)", geo.x, geo.y);
      }
    }
    std::printf("%-5zu %-8zu %-10.4g %s\n", i, slice.event_count,
                slice.map.MaxValue(), where.c_str());
  }
  std::printf("\nwrote %zu PPM frames to %s (the hotspot center drifts "
              "north-east, tracking the simulated outbreak)\n",
              slices->size(), dir.c_str());
  return 0;
}
