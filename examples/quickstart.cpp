// Quickstart: generate a synthetic city, compute a KDV with the paper's
// fastest method (SLAM_BUCKET_RAO), verify it against the naive oracle,
// and render the hotspot map to a PPM image and the terminal.
//
//   ./quickstart [output.ppm]
#include <cstdio>

#include "data/generators.h"
#include "explore/viewport_ops.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "util/timer.h"
#include "viz/ascii.h"
#include "viz/render.h"

int main(int argc, char** argv) {
  using namespace slam;

  // 1. Data: a ~17k-point synthetic stand-in for the Seattle crime dataset
  //    (use data/csv_io.h to load your own x,y[,time[,category]] CSV).
  const auto dataset = GenerateCityDataset(City::kSeattle, 0.02, /*seed=*/42);
  dataset.status().AbortIfNotOk();
  std::printf("dataset: %s, n = %zu\n", dataset->name().c_str(),
              dataset->size());

  // 2. Bandwidth by Scott's rule, as the paper's Table 5 does.
  const auto bandwidth = ScottBandwidth(dataset->coords());
  bandwidth.status().AbortIfNotOk();
  std::printf("Scott bandwidth: %.1f m\n", *bandwidth);

  // 3. A viewport over the dataset's bounding rectangle.
  const auto viewport = DatasetViewport(*dataset, 320, 240);
  viewport.status().AbortIfNotOk();

  // 4. Compute the exact KDV with the fastest method.
  const KdvTask task =
      MakeTask(*dataset, *viewport, KernelType::kEpanechnikov, *bandwidth);
  Timer timer;
  const auto density = ComputeKdv(task, Method::kSlamBucketRao);
  density.status().AbortIfNotOk();
  std::printf("SLAM_BUCKET_RAO: %.1f ms for %lld pixels\n",
              timer.ElapsedMillis(),
              static_cast<long long>(density->pixel_count()));

  // 5. Cross-check against the O(XYn) oracle on a small sub-grid.
  const auto small_viewport = DatasetViewport(*dataset, 48, 36);
  const KdvTask small_task = MakeTask(*dataset, *small_viewport,
                                      KernelType::kEpanechnikov, *bandwidth);
  const auto fast = ComputeKdv(small_task, Method::kSlamBucketRao);
  const auto slow = ComputeKdv(small_task, Method::kScan);
  const auto cmp = slow->CompareTo(*fast);
  std::printf("exactness check vs SCAN: max abs diff = %.3g\n",
              cmp->max_abs_diff);

  // 6. Render.
  const char* out_path = argc > 1 ? argv[1] : "quickstart_hotspots.ppm";
  WriteDensityPpm(*density, out_path).AbortIfNotOk();
  std::printf("wrote %s\n\n", out_path);
  const auto art = RenderAscii(*density);
  art.status().AbortIfNotOk();
  std::printf("%s\n", art->c_str());
  return 0;
}
