// Traffic-accident blackspot analysis, mirroring the paper's Figure 1:
// generate the New York-style collision dataset, then produce hotspot maps
// for two sub-regions ("Upper" and "Lower" halves of the city) at the same
// resolution, comparing every exact method's runtime on the way.
//
//   ./traffic_hotspots [scale]   (default 0.01 of the paper's 1.5M points)
#include <cstdio>
#include <cstdlib>

#include "data/generators.h"
#include "explore/viewport_ops.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "viz/render.h"

int main(int argc, char** argv) {
  using namespace slam;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  const auto dataset = GenerateCityDataset(City::kNewYork, scale, 7);
  dataset.status().AbortIfNotOk();
  const auto bandwidth = ScottBandwidth(dataset->coords());
  bandwidth.status().AbortIfNotOk();
  std::printf("New York collisions (synthetic): n = %s, b = %.1f m\n",
              FormatWithCommas(static_cast<int64_t>(dataset->size())).c_str(),
              *bandwidth);

  // Figure-1-style split: upper vs lower halves of the city extent.
  const BoundingBox mbr = dataset->Extent();
  const BoundingBox upper({mbr.min().x, mbr.center().y}, mbr.max());
  const BoundingBox lower(mbr.min(), {mbr.max().x, mbr.center().y});

  const struct {
    const char* name;
    BoundingBox region;
    const char* file;
  } regions[] = {
      {"Upper half", upper, "traffic_upper.ppm"},
      {"Lower half", lower, "traffic_lower.ppm"},
  };

  for (const auto& r : regions) {
    const auto viewport = Viewport::Create(r.region, 320, 240);
    viewport.status().AbortIfNotOk();
    const KdvTask task =
        MakeTask(*dataset, *viewport, KernelType::kQuartic, *bandwidth);

    std::printf("\n[%s] %s\n", r.name, r.region.ToString().c_str());
    // Quartic kernel: the default of QGIS/ArcGIS (paper Section 3.7).
    for (const Method m :
         {Method::kRqsKd, Method::kQuad, Method::kSlamBucket,
          Method::kSlamBucketRao}) {
      Timer timer;
      const auto map = ComputeKdv(task, m);
      map.status().AbortIfNotOk();
      std::printf("  %-16s %8.1f ms  (peak density %.3g)\n",
                  std::string(MethodName(m)).c_str(), timer.ElapsedMillis(),
                  map->MaxValue());
      if (m == Method::kSlamBucketRao) {
        WriteDensityPpm(*map, r.file).AbortIfNotOk();
        std::printf("  wrote %s\n", r.file);
      }
    }
  }
  return 0;
}
