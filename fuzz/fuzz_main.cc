// Per-target harness, compiled once per fuzz target with
// -DSLAM_FUZZ_ENTRY=<FunctionName>.
//
// Two modes:
//   * default: defines LLVMFuzzerTestOneInput for libFuzzer
//     (-fsanitize=fuzzer provides main). Clang-only; this is the CI lane.
//   * SLAM_FUZZ_STANDALONE: defines a plain main() that replays every file
//     (or every file under every directory) given on the command line.
//     Works with any compiler — the local smoke path on GCC-only boxes —
//     and exits non-zero only if a replayed input crashes the process.
#include <cstdint>
#include <cstdio>

#include "fuzz/targets.h"

#ifndef SLAM_FUZZ_ENTRY
#error "compile with -DSLAM_FUZZ_ENTRY=<target function name>"
#endif

#ifdef SLAM_FUZZ_STANDALONE

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

std::vector<uint8_t> ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg, ec)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "skipping '%s': not a file or directory\n",
                   argv[i]);
    }
  }
  for (const auto& path : inputs) {
    const std::vector<uint8_t> bytes = ReadFileBytes(path);
    slam::fuzz::SLAM_FUZZ_ENTRY(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu input(s) without crashing\n", inputs.size());
  return 0;
}

#else  // libFuzzer mode

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return slam::fuzz::SLAM_FUZZ_ENTRY(data, size);
}

#endif
