#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "data/csv_io.h"
#include "fuzz/targets.h"
#include "util/validate.h"

namespace slam::fuzz {

int FuzzCsvLoader(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // Byte 0 picks the load configuration so one corpus exercises both the
  // reject path and the sanitize/drop path.
  const uint8_t selector = data[0];
  CsvLoadOptions options;
  options.sanitize = (selector & 1) != 0;
  options.max_rows = 4096;
  // Tight caps keep single iterations fast; the cap-enforcement code is
  // itself under test.
  options.csv.max_field_bytes = 4 * 1024;
  options.csv.max_record_bytes = 64 * 1024;
  options.csv.max_fields = 64;

  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  std::istringstream in(payload);
  size_t dropped = 0;
  const auto result = LoadDatasetCsvStream(in, "fuzz", options, &dropped);
  if (!result.ok()) return 0;  // typed rejection is a correct outcome

  // Postcondition: anything the loader accepted satisfies the shared
  // validation layer. A violation here is a validator bypass, not a crash.
  for (size_t i = 0; i < result->size(); ++i) {
    const Point p = result->coord(i);
    if (!CheckCoordinatePair(p.x, p.y, "coordinate").ok()) {
      std::fprintf(stderr,
                   "FuzzCsvLoader: accepted row %zu has invalid coordinates "
                   "(%g, %g)\n",
                   i, p.x, p.y);
      std::abort();
    }
  }
  if (options.max_rows > 0 && result->size() > options.max_rows) {
    std::fprintf(stderr, "FuzzCsvLoader: row cap %zu exceeded (%zu rows)\n",
                 options.max_rows, result->size());
    std::abort();
  }
  return 0;
}

}  // namespace slam::fuzz
