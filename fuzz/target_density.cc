#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "fuzz/targets.h"
#include "kdv/density_io.h"

namespace slam::fuzz {

int FuzzDensityLoader(const uint8_t* data, size_t size) {
  // Caps far below the global InputLimits: a fuzz iteration must not
  // allocate hundreds of MiB even for a well-formed header.
  DensityIoLimits limits;
  limits.max_dim = 2048;
  limits.max_cells = int64_t{1} << 20;  // 8 MiB of doubles

  const std::string payload(reinterpret_cast<const char*>(data), size);
  std::istringstream in(payload, std::ios::binary);
  const auto result = LoadDensityMapStream(in, "fuzz", limits);
  if (!result.ok()) return 0;

  // Postconditions of an accepted map: dimensions within the caps we
  // passed, and (require_finite defaults to true) every cell finite.
  if (result->width() <= 0 || result->height() <= 0 ||
      result->width() > limits.max_dim || result->height() > limits.max_dim ||
      static_cast<int64_t>(result->width()) * result->height() >
          limits.max_cells) {
    std::fprintf(stderr, "FuzzDensityLoader: accepted map is %dx%d\n",
                 result->width(), result->height());
    std::abort();
  }
  for (size_t i = 0; i < result->values().size(); ++i) {
    if (!std::isfinite(result->values()[i])) {
      std::fprintf(stderr,
                   "FuzzDensityLoader: accepted map has non-finite cell %zu "
                   "(%g)\n",
                   i, result->values()[i]);
      std::abort();
    }
  }
  return 0;
}

}  // namespace slam::fuzz
