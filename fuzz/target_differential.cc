#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/targets.h"
#include "geom/bounding_box.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "kdv/grid.h"
#include "kdv/task.h"
#include "simd/dispatch.h"
#include "testing/oracle.h"

namespace slam::fuzz {

namespace {

/// Agreement bar for every method against the long-double reference. The
/// decoded tasks are small (<= 64 points, <= 24x24 grid) and every method
/// runs in its exact configuration, so anything past 1e-9 relative error
/// is a numerical-stability bug, not approximation slack.
constexpr double kMaxRelError = 1e-9;

int16_t ReadInt16(const uint8_t* p) {
  int16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

int FuzzDifferential(const uint8_t* data, size_t size) {
  // Layout: [0] kernel, [1] width, [2] height, [3..4] bandwidth,
  // [5] offset selector, [6..] int16 coordinate pairs (4 bytes per point).
  if (size < 10) return 0;
  const KernelType kernel = static_cast<KernelType>(data[0] % 3);
  const int width = 1 + data[1] % 24;
  const int height = 1 + data[2] % 24;
  // Log-scaled bandwidth in [0.1, 100): hits the tiny-support, the
  // comparable-to-extent, and the covers-everything regimes.
  const uint16_t bw_raw = static_cast<uint16_t>(data[3] | (data[4] << 8));
  const double bandwidth =
      std::pow(10.0, -1.0 + 3.0 * (static_cast<double>(bw_raw) / 65535.0));
  // Offset selector drives the recentering machinery: EPSG:3857-scale
  // translations are where naive aggregate evaluation loses digits.
  const double kOffsets[3] = {0.0, 1.0e7, -1.0e7};
  const double offset = kOffsets[data[5] % 3];

  std::vector<Point> points;
  const size_t coord_bytes = size - 6;
  const size_t n_points = std::min<size_t>(coord_bytes / 4, 64);
  if (n_points == 0) return 0;
  points.reserve(n_points);
  for (size_t i = 0; i < n_points; ++i) {
    const uint8_t* rec = data + 6 + 4 * i;
    points.push_back({static_cast<double>(ReadInt16(rec)) / 16.0 + offset,
                      static_cast<double>(ReadInt16(rec + 2)) / 16.0 +
                          offset});
  }

  BoundingBox region = BoundingBox::FromPoints(points);
  const double margin = std::max(bandwidth, 1.0);
  region = BoundingBox({region.min().x - margin, region.min().y - margin},
                       {region.max().x + margin, region.max().y + margin});
  const auto viewport = Viewport::Create(region, width, height);
  if (!viewport.ok()) return 0;

  KdvTask task;
  task.points = points;
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = 1.0 / static_cast<double>(n_points);
  task.grid = Grid::FromViewport(*viewport);
  if (!ValidateTask(task).ok()) return 0;  // typed rejection is fine

  const auto reference = testing::ReferenceScan(task);
  if (!reference.ok()) {
    std::fprintf(stderr, "FuzzDifferential: reference scan failed: %s\n",
                 reference.status().ToString().c_str());
    std::abort();
  }
  // Every method runs on both the scalar reference backend and the best
  // vector backend this machine detects (identical when no vector unit is
  // available); non-sweep methods ignore the knob. Each run is held to
  // the oracle independently, so a vector-lane bug needs no scalar twin
  // to be caught.
  const SimdLevel levels[2] = {SimdLevel::kScalar, DetectSimdLevel()};
  const int num_levels = levels[0] == levels[1] ? 1 : 2;
  for (int li = 0; li < num_levels; ++li) {
    EngineOptions exact = testing::ExactEngineOptions();
    exact.compute.simd = levels[li];
    for (const Method method : AllMethods()) {
      const auto report =
          testing::DiffAgainstReference(task, method, exact, *reference);
      if (!report.ok()) {
        std::fprintf(stderr,
                     "FuzzDifferential: %s failed on a valid task: %s\n",
                     std::string(MethodName(method)).c_str(),
                     report.status().ToString().c_str());
        std::abort();
      }
      if (report->max_rel_error > kMaxRelError) {
        std::fprintf(stderr,
                     "FuzzDifferential: %s disagrees with the oracle: "
                     "rel_error=%.3e at pixel (%d, %d), value=%.17g vs "
                     "reference=%.17g (kernel=%d, %dx%d, bw=%g, offset=%g, "
                     "n=%zu, simd=%s)\n",
                     std::string(MethodName(method)).c_str(),
                     report->max_rel_error, report->worst_ix,
                     report->worst_iy, report->worst_value,
                     report->worst_reference, static_cast<int>(kernel), width,
                     height, bandwidth, offset, n_points,
                     std::string(SimdLevelName(levels[li])).c_str());
        std::abort();
      }
    }
  }
  return 0;
}

}  // namespace slam::fuzz
