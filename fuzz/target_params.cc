#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz/targets.h"
#include "serve/request_validator.h"
#include "util/validate.h"

namespace slam::fuzz {

int FuzzRenderParams(const uint8_t* data, size_t size) {
  const std::string query(reinterpret_cast<const char*>(data), size);
  const auto decoded = DecodeRenderParams(query);
  if (!decoded.ok()) return 0;

  // Decode promises the returned set already passed ValidateRenderParams;
  // re-check it plus the individual limits so a decoder/validator drift
  // shows up as an abort, not as a silently hostile parameter set.
  const Status valid = ValidateRenderParams(*decoded);
  if (!valid.ok()) {
    std::fprintf(stderr,
                 "FuzzRenderParams: decoded set fails validation: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }
  const RenderParamSet& p = *decoded;
  const bool dims_ok = p.width >= 1 && p.width <= InputLimits::kMaxGridDim &&
                       p.height >= 1 && p.height <= InputLimits::kMaxGridDim;
  const bool bw_ok = !p.bandwidth.has_value() ||
                     (*p.bandwidth >= InputLimits::kMinBandwidth &&
                      *p.bandwidth <= InputLimits::kMaxBandwidth);
  const bool deadline_ok = std::isfinite(p.deadline_seconds) &&
                           p.deadline_seconds >= 0.0 &&
                           p.deadline_seconds <=
                               InputLimits::kMaxDeadlineSeconds;
  if (!dims_ok || !bw_ok || !deadline_ok) {
    std::fprintf(stderr,
                 "FuzzRenderParams: accepted set outside limits "
                 "(%dx%d, bw=%g, deadline=%g)\n",
                 p.width, p.height,
                 p.bandwidth.has_value() ? *p.bandwidth : -1.0,
                 p.deadline_seconds);
    std::abort();
  }
  return 0;
}

}  // namespace slam::fuzz
