// Fuzz-target entry points, one per untrusted-input surface.
//
// Each function has the libFuzzer contract (take a byte buffer, return 0,
// never crash on ANY input) but is a plain named function so the same code
// runs three ways:
//   * linked into a libFuzzer executable (fuzz/CMakeLists.txt, clang CI
//     lane) for coverage-guided exploration;
//   * linked into a standalone corpus-replay driver (fuzz_main.cc with
//     SLAM_FUZZ_STANDALONE, any compiler) for local smoke runs;
//   * called directly from tests/fuzz/corpus_regression_test.cc so every
//     past crasher is replayed as a plain ctest on every build.
//
// The targets do more than "don't crash": whenever a loader/decoder
// ACCEPTS an input, they re-assert the validation layer's postconditions
// (dims within InputLimits, coordinates finite and capped, densities
// finite) and abort on violation — so the fuzzers also hunt for inputs
// that sneak past util/validate.h, not just for memory bugs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace slam::fuzz {

/// CSV dataset loader (data/csv_io.h). Byte 0 selects load options; the
/// rest is the CSV payload.
int FuzzCsvLoader(const uint8_t* data, size_t size);

/// SLDM density-map loader (kdv/density_io.h). The whole buffer is the
/// file image.
int FuzzDensityLoader(const uint8_t* data, size_t size);

/// Render-parameter decoder (serve/request_validator.h). The buffer is
/// the query string.
int FuzzRenderParams(const uint8_t* data, size_t size);

/// Differential target: decodes the buffer into a small KDV task, renders
/// it with ALL TEN methods in their exact configurations, and aborts if
/// any method disagrees with the long-double reference oracle by more
/// than 1e-9 relative error. Typed rejection of the decoded task is fine;
/// silent numerical disagreement is the bug being hunted.
int FuzzDifferential(const uint8_t* data, size_t size);

}  // namespace slam::fuzz
