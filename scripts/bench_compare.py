#!/usr/bin/env python3
"""Diff the two newest BENCH_<n>.json trajectory snapshots, per config.

Finds the two highest-numbered BENCH_<n>.json files at the repo root
(or takes two explicit paths), prints a per-method table of p95 latency
and peak RSS deltas for every pinned config the snapshots share, and
exits 1 if any method's p95 regressed by more than the threshold
(default 10%) in any shared config. Methods or configs present in only
one snapshot are reported but never fail the gate (the roster and the
config set may legitimately grow — e.g. rao_transposed first appears in
BENCH_10 and only gates from the next snapshot on).

Snapshots that predate the multi-config schema carry a single top-level
"methods" dict; they are treated as {"table7_default": methods}, so a
new multi-config snapshot still diffs cleanly against an old one on the
workload they share.

Peak RSS deltas are informational: CI machine memory is noisy across
runner generations, and earlier snapshots predate per-method RSS
capture entirely (their peak_rss_bytes is absent, 0, or a process-wide
figure rather than a per-method one).

Usage:
  scripts/bench_compare.py [--threshold 0.10] [old.json new.json]

Exit status: 0 ok, 1 regression, 2 not enough snapshots to compare.
"""

import argparse
import json
import os
import re
import sys

BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

# Baselines at or below this are treated as "effectively zero": a
# malformed or truncated snapshot can carry p95 = 0.0, and dividing by it
# either crashes (ZeroDivisionError) or — with the old `if old > 0 else
# 0.0` fallback — silently reported a 0% delta no matter how slow the new
# build was, masking real regressions. 1 microsecond is far below any
# measurable method latency in this suite.
NEGLIGIBLE_P95_SECONDS = 1e-6


def find_snapshots(root):
    """The two highest-numbered BENCH_<n>.json paths, oldest first."""
    numbered = []
    for name in os.listdir(root):
        m = BENCH_RE.match(name)
        if m:
            numbered.append((int(m.group(1)), os.path.join(root, name)))
    numbered.sort()
    return [path for _, path in numbered[-2:]]


def load(path):
    """{config name: {method: stats}}, normalizing pre-config snapshots."""
    with open(path) as f:
        snapshot = json.load(f)
    configs = snapshot.get("configs")
    if configs:
        return {name: c.get("methods", {}) for name, c in configs.items()}
    # Legacy single-config schema: the lone workload was table7_default.
    return {"table7_default": snapshot.get("methods", {})}


def fmt_ms(seconds):
    return f"{seconds * 1e3:8.3f}"


def fmt_mib(b):
    return f"{b / (1024.0 * 1024.0):7.1f}" if b else "      -"


def diff_config(name, old, new, threshold):
    """Prints one config's per-method table; returns its regressions."""
    print(f"\n[{name}]")
    print(f"{'method':<18} {'old p95':>9} {'new p95':>9} {'delta':>8} "
          f"{'old MiB':>8} {'new MiB':>8}")
    regressions = []
    for method in sorted(set(old) | set(new)):
        o, n = old.get(method), new.get(method)
        if o is None or n is None:
            side = "new" if o is None else "old"
            print(f"{method:<18} (only in {side} snapshot)")
            continue
        old_p95, new_p95 = o["p95_seconds"], n["p95_seconds"]
        if old_p95 > NEGLIGIBLE_P95_SECONDS:
            delta = (new_p95 - old_p95) / old_p95
            delta_str = f"{delta * 100:+7.1f}%"
        elif new_p95 > NEGLIGIBLE_P95_SECONDS:
            # A zero/garbage baseline against a measurable new p95 cannot
            # be scored as a ratio, but letting it pass would hide an
            # arbitrarily bad regression; fail it explicitly.
            delta = float("inf")
            delta_str = f"{'n/a':>8}"
        else:
            # Both immeasurably small: no signal either way.
            delta = 0.0
            delta_str = f"{'n/a':>8}"
        flag = ""
        if delta > threshold:
            regressions.append((f"{name}/{method}", delta))
            flag = "  << REGRESSION"
        print(f"{method:<18} {fmt_ms(old_p95)}ms {fmt_ms(new_p95)}ms "
              f"{delta_str} "
              f"{fmt_mib(o.get('peak_rss_bytes', 0))} "
              f"{fmt_mib(n.get('peak_rss_bytes', 0))}{flag}")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated p95 regression (fraction)")
    parser.add_argument("files", nargs="*",
                        help="explicit old.json new.json (default: the two "
                             "highest-numbered BENCH_<n>.json)")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if len(args.files) == 2:
        old_path, new_path = args.files
    elif not args.files:
        snapshots = find_snapshots(repo_root)
        if len(snapshots) < 2:
            print("bench_compare: fewer than two BENCH_<n>.json snapshots; "
                  "nothing to diff (first trajectory point?)")
            return 2
        old_path, new_path = snapshots
    else:
        parser.error("pass exactly two files, or none")

    old, new = load(old_path), load(new_path)
    print(f"bench_compare: {os.path.basename(old_path)} -> "
          f"{os.path.basename(new_path)} "
          f"(p95 threshold +{args.threshold * 100:.0f}%)")

    regressions = []
    for config in sorted(set(old) | set(new)):
        if config not in old or config not in new:
            side = "new" if config not in old else "old"
            print(f"\n[{config}] (only in {side} snapshot; not gated)")
            continue
        regressions.extend(
            diff_config(config, old[config], new[config], args.threshold))

    if regressions:
        worst = max(regressions, key=lambda r: r[1])
        print(f"\nbench_compare: {len(regressions)} method(s) regressed "
              f"beyond +{args.threshold * 100:.0f}% p95 "
              f"(worst: {worst[0]} {worst[1] * 100:+.1f}%)", file=sys.stderr)
        return 1
    print("\nbench_compare: no p95 regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
