#!/usr/bin/env python3
"""Benchmark trajectory snapshot: pinned table7_default subset -> BENCH_8.json.

Runs the bench_table7_default binary at a small, pinned configuration
(fixed scale / resolution / seed, so successive PRs measure the same
work) with SLAM_BENCH_JSON pointed at a scratch file, aggregates
per-method wall times into p50/p95/p99, and writes BENCH_8.json at the
repo root. The file is the newest point of the repo's performance
trajectory (ROADMAP item 1: track method latency PR over PR); diff it
against the previous snapshot with scripts/bench_compare.py.

Unlike earlier snapshots, each method runs in its OWN subprocess (via the
SLAM_BENCH_METHODS roster filter), so the child's ru_maxrss is that
method's peak RSS — one process measuring all ten methods would only see
the max over the whole roster. Each method's entry carries
"peak_rss_bytes": the max ru_maxrss over its repetitions.

Usage:
  scripts/bench_trajectory.py [--build-dir build] [--repetitions 5]
                              [--output BENCH_8.json]

The bench binary must already be built (cmake --build build with
SLAM_BUILD_BENCHMARKS=ON). No deps beyond the Python standard library.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

# Pinned workload: identical across PRs so the trajectory is comparable.
PINNED_ENV = {
    "SLAM_BENCH_SCALE": "0.005",
    "SLAM_BENCH_BUDGET": "10",
    "SLAM_BENCH_RES": "120x90",
    "SLAM_BENCH_CHECK": "0",
}

# The full roster, one subprocess each (names as MethodFromName accepts).
METHODS = [
    "scan", "rqs_kd", "rqs_ball", "z-order", "akde", "quad",
    "slam_sort", "slam_bucket", "slam_sort_rao", "slam_bucket_rao",
]


def percentile(values, p):
    """Linear-interpolated percentile, mirroring bench::Percentile."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    if lo + 1 >= len(ordered):
        return ordered[-1]
    frac = rank - lo
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


# getrusage(2) reports ru_maxrss in kilobytes on Linux (and most BSDs)
# but in plain BYTES on macOS; multiplying unconditionally by 1024
# inflated Darwin RSS figures 1024x.
RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def run_once(binary, json_path, env):
    """Runs one bench subprocess; returns its peak RSS in bytes."""
    run_env = dict(os.environ)
    run_env.update(env)
    run_env["SLAM_BENCH_JSON"] = json_path
    proc = subprocess.Popen(
        [binary], env=run_env, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True)
    stderr = proc.stderr.read()
    # wait4 gives the child's rusage.
    _, status, rusage = os.wait4(proc.pid, 0)
    proc.returncode = os.waitstatus_to_exitcode(status)
    proc.stderr.close()
    if proc.returncode != 0:
        sys.stderr.write(stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode}")
    return rusage.ru_maxrss * RU_MAXRSS_SCALE


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--output", default="BENCH_8.json")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = os.path.join(repo_root, args.build_dir, "bench",
                          "bench_table7_default")
    if not os.path.exists(binary):
        raise SystemExit(
            f"{binary} not found; build first: cmake --build {args.build_dir}"
            " (SLAM_BUILD_BENCHMARKS=ON)")

    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".jsonl", delete=False) as scratch:
        scratch_path = scratch.name
    peak_rss = {}  # method name as reported in cells -> bytes
    try:
        for method in METHODS:
            env = dict(PINNED_ENV)
            env["SLAM_BENCH_METHODS"] = method
            before = os.path.getsize(scratch_path)
            rss = 0
            for i in range(args.repetitions):
                print(f"[bench_trajectory] {method} "
                      f"run {i + 1}/{args.repetitions}")
                rss = max(rss, run_once(binary, scratch_path, env))
            # The cells this method appended name it in its canonical
            # spelling (e.g. "SLAM_BUCKET_RAO"); map the RSS onto that.
            with open(scratch_path) as f:
                f.seek(before)
                for line in f:
                    if line.strip():
                        peak_rss[json.loads(line)["method"]] = rss
        with open(scratch_path) as f:
            cells = [json.loads(line) for line in f if line.strip()]
    finally:
        os.unlink(scratch_path)

    # seconds per method, over every dataset x repetition cell that
    # completed (failed or censored cells are excluded but counted).
    by_method = {}
    excluded = 0
    for cell in cells:
        if cell.get("experiment") != "table7_default":
            continue
        if not cell.get("ok", False) or cell.get("censored", False):
            excluded += 1
            continue
        by_method.setdefault(cell["method"], []).append(cell["seconds"])
    if not by_method:
        raise SystemExit("no completed cells; nothing to aggregate")

    methods = {}
    for method in sorted(by_method):
        seconds = by_method[method]
        methods[method] = {
            "samples": len(seconds),
            "p50_seconds": percentile(seconds, 50),
            "p95_seconds": percentile(seconds, 95),
            "p99_seconds": percentile(seconds, 99),
            "mean_seconds": statistics.fmean(seconds),
            "peak_rss_bytes": peak_rss.get(method, 0),
        }

    out = {
        "experiment": "table7_default",
        "pinned_env": PINNED_ENV,
        "per_method_process": True,
        "repetitions": args.repetitions,
        "cells": len(cells),
        "excluded_cells": excluded,
        "methods": methods,
    }
    out_path = os.path.join(repo_root, args.output)
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench_trajectory] wrote {out_path} "
          f"({len(methods)} methods, {len(cells)} cells)")


if __name__ == "__main__":
    main()
