#!/usr/bin/env python3
"""Benchmark trajectory snapshot: pinned configs -> BENCH_10.json.

Runs the bench_table7_default binary at small, pinned configurations
(fixed scale / resolution / seed, so successive PRs measure the same
work) with SLAM_BENCH_JSON pointed at a scratch file, aggregates
per-method wall times into p50/p95/p99, and writes BENCH_10.json at the
repo root. The file is the newest point of the repo's performance
trajectory (ROADMAP item 1: track method latency PR over PR); diff it
against the previous snapshot with scripts/bench_compare.py.

Four pinned configs (ROADMAP item 1):
  table7_default  the historical workload, full ten-method roster
  large_n         4x the points at the same 120x90 grid (sweep methods
                  only) — stresses the O(n) terms
  high_res        the same points at a 480x360 grid (sweep methods
                  only) — stresses the O(X) terms, where the counting
                  sort's win over comparison sorting grows
  rao_transposed  the same points at a 360x480 grid (sweep methods
                  only): height > width, so the RAO variants transpose
                  the task and sweep 360 rows of 480 pixels while the
                  non-RAO variants sweep 480 rows of 360 — the regime
                  the paper's Section 3.6 rotation argument targets

The snapshot's top-level "methods" key mirrors configs.table7_default
so older tooling (and older snapshots) keep comparing like for like.

Each method runs in its OWN subprocess (via the SLAM_BENCH_METHODS
roster filter). Peak RSS per method is the max over that method's
cells' "peak_rss_bytes" — the harness resets the kernel's RSS watermark
(/proc/self/clear_refs) immediately before each timed compute, so the
figure is the method's own footprint, not whichever earlier phase
(dataset generation) peaked highest. On platforms without watermark
resets the cells report 0 and we fall back to the child's ru_maxrss,
which IS process-lifetime and therefore roster-independent; the
snapshot records which source was used per method.

Usage:
  scripts/bench_trajectory.py [--build-dir build] [--repetitions 5]
                              [--output BENCH_9.json]

The bench binary must already be built (cmake --build build with
SLAM_BUILD_BENCHMARKS=ON). No deps beyond the Python standard library.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile

# Pinned workloads: identical across PRs so the trajectory is comparable.
# Each config is (env, roster). The historical table7_default keeps the
# full roster; the two scaling configs run only the sweep methods (the
# slow baselines would either blow the budget or dominate wall time
# without adding trajectory signal).
SWEEP_METHODS = ["slam_sort", "slam_bucket", "slam_sort_rao",
                 "slam_bucket_rao"]
FULL_ROSTER = [
    "scan", "rqs_kd", "rqs_ball", "z-order", "akde", "quad",
] + SWEEP_METHODS

CONFIGS = {
    "table7_default": {
        "env": {
            "SLAM_BENCH_SCALE": "0.005",
            "SLAM_BENCH_BUDGET": "10",
            "SLAM_BENCH_RES": "120x90",
            "SLAM_BENCH_CHECK": "0",
        },
        "methods": FULL_ROSTER,
    },
    "large_n": {
        "env": {
            "SLAM_BENCH_SCALE": "0.02",
            "SLAM_BENCH_BUDGET": "10",
            "SLAM_BENCH_RES": "120x90",
            "SLAM_BENCH_CHECK": "0",
        },
        "methods": SWEEP_METHODS,
    },
    "high_res": {
        "env": {
            "SLAM_BENCH_SCALE": "0.005",
            "SLAM_BENCH_BUDGET": "10",
            "SLAM_BENCH_RES": "480x360",
            "SLAM_BENCH_CHECK": "0",
        },
        "methods": SWEEP_METHODS,
    },
    # Height > width: the transposed regime where the RAO rotation pays.
    # Same pixel budget as high_res, so RAO vs non-RAO is the only axis
    # that moves between the two configs.
    "rao_transposed": {
        "env": {
            "SLAM_BENCH_SCALE": "0.005",
            "SLAM_BENCH_BUDGET": "10",
            "SLAM_BENCH_RES": "360x480",
            "SLAM_BENCH_CHECK": "0",
        },
        "methods": SWEEP_METHODS,
    },
}


def percentile(values, p):
    """Linear-interpolated percentile, mirroring bench::Percentile."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    if lo + 1 >= len(ordered):
        return ordered[-1]
    frac = rank - lo
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


# getrusage(2) reports ru_maxrss in kilobytes on Linux (and most BSDs)
# but in plain BYTES on macOS; multiplying unconditionally by 1024
# inflated Darwin RSS figures 1024x.
RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def run_once(binary, json_path, env):
    """Runs one bench subprocess; returns its lifetime peak RSS in bytes."""
    run_env = dict(os.environ)
    run_env.update(env)
    run_env["SLAM_BENCH_JSON"] = json_path
    proc = subprocess.Popen(
        [binary], env=run_env, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True)
    stderr = proc.stderr.read()
    # wait4 gives the child's rusage.
    _, status, rusage = os.wait4(proc.pid, 0)
    proc.returncode = os.waitstatus_to_exitcode(status)
    proc.stderr.close()
    if proc.returncode != 0:
        sys.stderr.write(stderr)
        raise SystemExit(f"{binary} exited with {proc.returncode}")
    return rusage.ru_maxrss * RU_MAXRSS_SCALE


def read_new_cells(scratch_path, offset):
    """The cells appended past `offset`, parsed."""
    cells = []
    with open(scratch_path) as f:
        f.seek(offset)
        for line in f:
            if line.strip():
                cells.append(json.loads(line))
    return cells


def run_config(binary, config, repetitions, label):
    """Runs every (method, repetition) for one config; returns its cells
    plus each method's lifetime-RSS fallback figure."""
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".jsonl", delete=False) as scratch:
        scratch_path = scratch.name
    cells = []
    lifetime_rss = {}  # canonical method name -> max child ru_maxrss
    try:
        for method in config["methods"]:
            env = dict(config["env"])
            env["SLAM_BENCH_METHODS"] = method
            before = os.path.getsize(scratch_path)
            rss = 0
            for i in range(repetitions):
                print(f"[bench_trajectory] {label}: {method} "
                      f"run {i + 1}/{repetitions}")
                rss = max(rss, run_once(binary, scratch_path, env))
            # The cells this method appended name it in its canonical
            # spelling (e.g. "SLAM_BUCKET_RAO"); map the RSS onto that.
            new_cells = read_new_cells(scratch_path, before)
            for cell in new_cells:
                lifetime_rss[cell["method"]] = rss
            cells.extend(new_cells)
    finally:
        os.unlink(scratch_path)
    return cells, lifetime_rss


def aggregate(cells, lifetime_rss):
    """Per-method stats over the completed cells of one config."""
    by_method = {}    # method -> [seconds]
    cell_rss = {}     # method -> max per-cell watermark peak_rss_bytes
    excluded = 0
    for cell in cells:
        if cell.get("experiment") != "table7_default":
            continue  # the binary stamps its own name; anything else is junk
        method = cell["method"]
        # RSS is measured even on censored/failed cells — the memory was
        # genuinely touched; only the latency sample is unusable.
        cell_rss[method] = max(cell_rss.get(method, 0),
                               cell.get("peak_rss_bytes", 0))
        if not cell.get("ok", False) or cell.get("censored", False):
            excluded += 1
            continue
        by_method.setdefault(method, []).append(cell["seconds"])

    methods = {}
    for method in sorted(by_method):
        seconds = by_method[method]
        # Prefer the per-cell watermark (method-attributable); fall back
        # to the child's lifetime ru_maxrss where the platform cannot
        # reset watermarks.
        watermark = cell_rss.get(method, 0)
        methods[method] = {
            "samples": len(seconds),
            "p50_seconds": percentile(seconds, 50),
            "p95_seconds": percentile(seconds, 95),
            "p99_seconds": percentile(seconds, 99),
            "mean_seconds": statistics.fmean(seconds),
            "peak_rss_bytes": watermark or lifetime_rss.get(method, 0),
            "peak_rss_source": "cell_watermark" if watermark
                               else "process_lifetime",
        }
    return methods, excluded


def check_rss_attribution(methods):
    """Fails loudly when per-method RSS capture has regressed to the old
    behavior of reporting one process-wide number for every method.

    With per-cell watermark resets, methods with different working sets
    (e.g. SCAN's row buffer vs aKDE's tree) must report different peaks.
    All-identical values mean the reset silently stopped working and the
    column is lying about attribution.
    """
    values = {m["peak_rss_bytes"] for m in methods.values()}
    if len(methods) >= 2 and len(values) < 2:
        raise SystemExit(
            "[bench_trajectory] RSS attribution regression: all "
            f"{len(methods)} methods report peak_rss_bytes="
            f"{next(iter(values))}. Per-method RSS capture is supposed to "
            "reset the kernel watermark per cell (bench::ResetPeakRss); "
            "identical values for every method mean it measured the "
            "process, not the method.")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--output", default="BENCH_10.json")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = os.path.join(repo_root, args.build_dir, "bench",
                          "bench_table7_default")
    if not os.path.exists(binary):
        raise SystemExit(
            f"{binary} not found; build first: cmake --build {args.build_dir}"
            " (SLAM_BUILD_BENCHMARKS=ON)")

    configs_out = {}
    for name, config in CONFIGS.items():
        cells, lifetime_rss = run_config(
            binary, config, args.repetitions, name)
        methods, excluded = aggregate(cells, lifetime_rss)
        if not methods:
            raise SystemExit(
                f"[bench_trajectory] {name}: no completed cells")
        configs_out[name] = {
            "pinned_env": config["env"],
            "cells": len(cells),
            "excluded_cells": excluded,
            "methods": methods,
        }

    # Full-roster config is where divergent working sets are guaranteed.
    check_rss_attribution(configs_out["table7_default"]["methods"])

    default = configs_out["table7_default"]
    out = {
        "experiment": "trajectory",
        "per_method_process": True,
        "repetitions": args.repetitions,
        "configs": configs_out,
        # Legacy mirror of the historical single-config schema, so older
        # snapshots and tooling keep diffing the same workload.
        "pinned_env": default["pinned_env"],
        "cells": default["cells"],
        "excluded_cells": default["excluded_cells"],
        "methods": default["methods"],
    }
    out_path = os.path.join(repo_root, args.output)
    with open(out_path, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    total_cells = sum(c["cells"] for c in configs_out.values())
    print(f"[bench_trajectory] wrote {out_path} "
          f"({len(configs_out)} configs, {total_cells} cells)")


if __name__ == "__main__":
    main()
