#!/usr/bin/env bash
# Back-compat shim: the ASan+UBSan lane moved into the generalized
# scripts/check_sanitize.sh (which also provides the ubsan and tsan modes).
exec "$(dirname "$0")/check_sanitize.sh" asan
