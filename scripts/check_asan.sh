#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# runs the full test suite under them. Any sanitizer report fails the run.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLAM_SANITIZE=address,undefined \
  -DSLAM_BUILD_BENCHMARKS=OFF \
  -DSLAM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error makes a UBSan finding fail the test instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
