#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs tests under it. Any sanitizer
# report fails the run.
#
#   scripts/check_sanitize.sh asan    # AddressSanitizer + UBSan, full suite
#   scripts/check_sanitize.sh ubsan   # UBSan alone, full suite
#   scripts/check_sanitize.sh tsan    # ThreadSanitizer, concurrency suites
#
# TSan is incompatible with ASan/UBSan in one binary, so it gets its own
# mode and build dir. By default it runs only the suites that actually
# spin up threads (parallel stripes, cancellation, thread pool, exec
# context) — the single-threaded suites would just dilute the interleaving
# coverage; set TEST_REGEX= to run everything.
#
# Env overrides: BUILD_DIR, JOBS, TEST_REGEX, plus the usual
# ASAN_OPTIONS/UBSAN_OPTIONS/TSAN_OPTIONS.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-asan}"
JOBS="${JOBS:-$(nproc)}"

case "$MODE" in
  asan)
    SANITIZE="address,undefined"
    TEST_REGEX="${TEST_REGEX-}"
    ;;
  ubsan)
    SANITIZE="undefined"
    TEST_REGEX="${TEST_REGEX-}"
    ;;
  tsan)
    SANITIZE="thread"
    TEST_REGEX="${TEST_REGEX-Parallel|Cancellation|ThreadPool|ExecContext|Deadline|Engine|Serving|Chaos|Breaker|Admission|Retry|Backoff|Resilient}"
    ;;
  *)
    echo "usage: $0 asan|ubsan|tsan" >&2
    exit 2
    ;;
esac

BUILD_DIR="${BUILD_DIR:-$ROOT/build-$MODE}"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSLAM_SANITIZE="$SANITIZE" \
  -DSLAM_BUILD_BENCHMARKS=OFF \
  -DSLAM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error makes a finding fail the test instead of just logging it.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

CTEST_ARGS=(--test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS")
if [[ -n "$TEST_REGEX" ]]; then
  CTEST_ARGS+=(-R "$TEST_REGEX")
fi
ctest "${CTEST_ARGS[@]}"
