#!/usr/bin/env python3
"""Repo-invariant linter: SLAM-specific rules the generic tools can't check.

Rules (each can be waived on a single line with `// lint:allow(<rule>)`,
plus a reason in the surrounding comment):

  exec-context       Every public `Compute*` function in src/**/*.cc that
                     returns Status or Result<...> must consult its
                     ExecContext (an ExecCheck/Check/ChargeMemory/
                     ScopedMemoryCharge call) or delegate to another
                     Compute* that does. Guarantees cancellation,
                     deadlines, and memory budgets cover every compute
                     path (util/exec_context.h).

  narrowing-cast     No raw `static_cast<int/int32_t/float>` or C-style
                     `(int)`/`(float)` casts, and no `float` arithmetic,
                     in the pixel-index / aggregate math under src/core
                     and src/kdv — outside core/sweep_state.h. Use the
                     checked helpers in util/narrow.h; the two clamped
                     bucket conversions in slam_bucket.h carry explicit
                     waivers.

  uncompensated-aggregate
                     No `+=` / `-=` on aggregate channel fields (sum_sq,
                     m_xx, ...) outside kdv/kernel.h — accumulation must
                     go through RangeAggregates::Add/Merge/Minus or the
                     Neumaier helpers so the compensated path stays the
                     only accumulation path (Langrené & Warin stability
                     argument, DESIGN.md).

  banned-function    rand()/srand() (not reproducible; use util/random.h),
                     strtod/strtof/atof (locale-dependent; use
                     ParseDouble), time(nullptr) (non-deterministic; use
                     util/timer.h clocks).

  unvalidated-parse  No direct std::sto* / from_chars / sscanf outside the
                     sanctioned parse layer (util/string_util.cc). Those
                     entry points throw, ignore trailing garbage, or skip
                     range checks; every number that enters the system must
                     come through ParseDouble/ParseInt64 and then the
                     validation layer (util/validate.h) so hostile input is
                     rejected exactly once, with a typed Status.

  raw-intrinsics     No SIMD intrinsics (_mm*/__m128/__m256, vld1q_*/
                     float64x2_t, or the <immintrin.h>/<arm_neon.h>
                     headers) outside src/simd/. Vector code anywhere else
                     escapes the dispatch layer's CPU checks, the
                     contraction-free compile flags, and the scalar-vs-
                     vector equivalence gates (DESIGN.md §11).

  comparison-sort    No `std::sort` / `std::stable_sort` in src/core/: the
                     sweep hot paths order endpoints with the O(n + X)
                     pixel-binned counting sort (simd histogram_scatter,
                     DESIGN.md §12), and a comparison sort silently
                     reintroduces the O(n log n) per row that PR 9 removed.
                     Legitimate once-per-compute sorts (the y-sorted
                     envelope scanner) carry explicit waivers.

  retry-backoff      A loop whose header names a retry/attempt counter must
                     reference a backoff (Backoff/RetryPolicy/
                     DelayBeforeRetry) or poll its budget (Deadline/
                     ExecCheck/Check) inside the loop. A bare retry loop
                     hot-spins on a failing dependency and ignores the
                     request deadline — the resilience layer (util/backoff.h,
                     serve/resilient_render.cc) exists so nobody hand-rolls
                     one.

Exit status: 0 clean, 1 violations (printed as file:line: rule: message).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

# ---------------------------------------------------------------------------
# Source loading: strip comments and string literals so rules match code
# only, but keep line structure (and keep lint:allow markers readable from
# the raw text).
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            # Preserve newlines inside the comment for stable line numbers.
            seg = text[i : (n if j == -1 else j + 2)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = n if j == -1 else j + 2
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" " if text[i] != "\n" else "\n")
                    i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.code = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self.code_lines = self.code.splitlines()

    def allowed(self, line_no: int, rule: str) -> bool:
        """True if line `line_no` (1-based) carries a waiver for `rule`."""
        if 1 <= line_no <= len(self.raw_lines):
            for m in ALLOW_RE.finditer(self.raw_lines[line_no - 1]):
                if m.group(1) == rule:
                    return True
        return False


class Violation:
    def __init__(self, rel: str, line: int, rule: str, message: str):
        self.rel, self.line, self.rule, self.message = rel, line, rule, message

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# Rule: exec-context
# ---------------------------------------------------------------------------

COMPUTE_DEF_RE = re.compile(
    r"^(?:Status|Result<[^;()]*>)\s+(Compute\w+)\s*\(", re.MULTILINE
)
EXEC_TOKENS_RE = re.compile(
    r"\bExecCheck\s*\(|\bExecChargeMemory\s*\(|->\s*Check\s*\(|"
    r"\.\s*Check\s*\(|\bScopedMemoryCharge\b|\bChargeMemory\s*\("
)
DELEGATE_RE = re.compile(r"\b(Compute\w+)\s*\(")
# Forwarding the ComputeOptions / ExecContext to a helper counts as
# consultation — the helper is then itself in the linter's scope or takes
# over polling (e.g. ComputeRqsKd -> RqsLoop(index, task, options, out)).
FORWARD_RE = re.compile(r"[(,]\s*&?(?:options|exec)\s*[),]")


def function_body(code: str, sig_end: int) -> tuple[int, int] | None:
    """Returns (open_brace, close_brace) of the body starting at/after the
    parameter list whose '(' sits at sig_end - 1."""
    depth = 0
    i = sig_end - 1
    n = len(code)
    while i < n:  # skip the parameter list
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    while i < n and code[i] != "{":
        if code[i] == ";":
            return None  # declaration, not a definition
        i += 1
    if i >= n:
        return None
    start = i
    depth = 0
    while i < n:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return (start, i)
        i += 1
    return None


def check_exec_context(f: SourceFile) -> list[Violation]:
    out = []
    for m in COMPUTE_DEF_RE.finditer(f.code):
        name = m.group(1)
        span = function_body(f.code, m.end())
        if span is None:
            continue
        body = f.code[span[0] : span[1]]
        line = f.code.count("\n", 0, m.start()) + 1
        if f.allowed(line, "exec-context"):
            continue
        if EXEC_TOKENS_RE.search(body):
            continue
        delegates = [
            d for d in DELEGATE_RE.findall(body) if d != name
        ]  # calling a sibling Compute* inherits its polling
        if delegates or FORWARD_RE.search(body):
            continue
        out.append(
            Violation(
                f.rel,
                line,
                "exec-context",
                f"{name}() never consults its ExecContext: add an "
                "ExecCheck(exec, ...) poll (per row / per point) so "
                "cancellation, deadlines, and memory budgets cover it",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Rule: narrowing-cast
# ---------------------------------------------------------------------------

NARROWING_SCOPE = ("src/core/", "src/kdv/")
NARROWING_EXEMPT = ("src/core/sweep_state.h",)
NARROWING_RE = re.compile(
    r"static_cast<\s*(?:int|int32_t|float|short|char)\s*>\s*\(|"
    r"\(\s*(?:int|int32_t|float)\s*\)\s*[\w(]"
)
FLOAT_TYPE_RE = re.compile(r"\bfloat\b")


def check_narrowing(f: SourceFile) -> list[Violation]:
    if not f.rel.startswith(NARROWING_SCOPE) or f.rel in NARROWING_EXEMPT:
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "narrowing-cast"):
            continue
        if NARROWING_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "narrowing-cast",
                    "raw narrowing cast in pixel-index/aggregate math; use "
                    "PixelIndex()/CheckedNarrow<>() from util/narrow.h "
                    "(clamping conversions belong in sweep_state.h or "
                    "carry a lint:allow waiver)",
                )
            )
        elif FLOAT_TYPE_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "narrowing-cast",
                    "`float` in sweep/aggregate math: the exactness "
                    "guarantees (DESIGN.md) are double-precision only",
                )
            )
    return out


# ---------------------------------------------------------------------------
# Rule: uncompensated-aggregate
# ---------------------------------------------------------------------------

AGG_EXEMPT = ("src/kdv/kernel.h",)
AGG_FIELD_RE = re.compile(
    r"[\w\])]\.(?:count|sum|sum_sq|sum_sq_p|sum_quad|m_xx|m_xy|m_yy)(?:\.[xy])?"
    r"\s*[+-]="
)


def check_aggregates(f: SourceFile) -> list[Violation]:
    if f.rel in AGG_EXEMPT:
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "uncompensated-aggregate"):
            continue
        if AGG_FIELD_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "uncompensated-aggregate",
                    "direct +=/-= on an aggregate channel; accumulate via "
                    "RangeAggregates::Add/Merge/Minus or NeumaierAdd "
                    "(kdv/kernel.h) so compensation is never bypassed",
                )
            )
    return out


# ---------------------------------------------------------------------------
# Rule: banned-function
# ---------------------------------------------------------------------------

BANNED = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()",
     "not reproducible across platforms; use util/random.h"),
    (re.compile(r"(?<![\w:])(?:std::)?(?:strtod|strtof|atof)\s*\("),
     "strtod/strtof/atof",
     "reads the global locale; use ParseDouble (util/string_util.h)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)",
     "non-deterministic seeds/timing; use util/timer.h or an explicit seed"),
]


def check_banned(f: SourceFile) -> list[Violation]:
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "banned-function"):
            continue
        for pattern, what, why in BANNED:
            if pattern.search(line):
                out.append(
                    Violation(f.rel, i, "banned-function", f"{what}: {why}")
                )
    return out


# ---------------------------------------------------------------------------
# Rule: unvalidated-parse
# ---------------------------------------------------------------------------

# The one place raw text is allowed to become a number: the shared parse
# helpers, which reject trailing garbage and feed the validation layer.
PARSE_EXEMPT = ("src/util/string_util.cc",)
UNVALIDATED_PARSE = [
    (re.compile(r"(?<![\w:])std::sto(?:i|l|ll|ul|ull|f|d|ld)\s*\("),
     "std::sto*",
     "throws on garbage and accepts trailing junk ('12abc' -> 12)"),
    (re.compile(r"(?<![\w:])(?:std::)?from_chars\s*\("), "from_chars",
     "skips the trailing-garbage and range checks ParseDouble/ParseInt64 do"),
    (re.compile(r"(?<![\w:])(?:std::)?s?scanf\s*\("), "sscanf/scanf",
     "no overflow detection and UB on out-of-range %d"),
]


def check_unvalidated_parse(f: SourceFile) -> list[Violation]:
    if f.rel in PARSE_EXEMPT:
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "unvalidated-parse"):
            continue
        for pattern, what, why in UNVALIDATED_PARSE:
            if pattern.search(line):
                out.append(
                    Violation(
                        f.rel,
                        i,
                        "unvalidated-parse",
                        f"{what}: {why}; parse via ParseDouble/ParseInt64 "
                        "(util/string_util.h) and validate with the "
                        "Check* helpers (util/validate.h)",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# Rule: raw-intrinsics
# ---------------------------------------------------------------------------

INTRINSICS_SCOPE_PREFIX = "src/simd/"
INTRINSICS_RE = re.compile(
    r"(?<![\w:])_mm(?:256|512)?_\w+\s*\(|"       # x86 intrinsic calls
    r"\b__m(?:128|256|512)[di]?\b|"              # x86 vector types
    r"(?<![\w:])v(?:ld|st)[1-4]q?_\w+\s*\(|"     # NEON load/store calls
    r"\b(?:float|int|uint)(?:32|64)x[24]_t\b|"   # NEON vector types
    r"#\s*include\s*[<\"](?:immintrin|x86intrin|arm_neon)\.h[>\"]"
)


def check_raw_intrinsics(f: SourceFile) -> list[Violation]:
    if f.rel.startswith(INTRINSICS_SCOPE_PREFIX):
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "raw-intrinsics"):
            continue
        if INTRINSICS_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "raw-intrinsics",
                    "SIMD intrinsic outside src/simd/: vector code must live "
                    "behind the dispatched backend tables (simd/sweep_ops.h) "
                    "so it inherits the cpuid gating, contraction-free "
                    "flags, and scalar-equivalence tests",
                )
            )
    return out


# ---------------------------------------------------------------------------
# Rule: comparison-sort
# ---------------------------------------------------------------------------

COMPARISON_SORT_SCOPE = "src/core/"
COMPARISON_SORT_RE = re.compile(r"\bstd::(?:stable_)?sort\s*\(")


def check_comparison_sort(f: SourceFile) -> list[Violation]:
    if not f.rel.startswith(COMPARISON_SORT_SCOPE):
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "comparison-sort"):
            continue
        if COMPARISON_SORT_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "comparison-sort",
                    "std::sort/std::stable_sort in a sweep hot path: order "
                    "endpoints with the pixel-binned counting sort "
                    "(SimdOps::histogram_scatter, DESIGN.md §12) — per-pixel "
                    "runs need no internal order; a once-per-compute sort "
                    "may carry a lint:allow(comparison-sort) waiver with a "
                    "reason",
                )
            )
    return out


# ---------------------------------------------------------------------------
# Rule: retry-backoff
# ---------------------------------------------------------------------------

RETRY_LOOP_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:retry|retries|attempt|attempts)\w*\b"
)
BACKOFF_TOKENS_RE = re.compile(
    r"\bBackoff\b|\bRetryPolicy\b|\bDelayBeforeRetry\b|\bbackoff\b|"
    r"\bDeadline\b|\bdeadline\b|\bExecCheck\s*\(|->\s*Check\s*\(|"
    r"\.\s*Check\s*\("
)


def check_retry_backoff(f: SourceFile) -> list[Violation]:
    out = []
    for m in RETRY_LOOP_RE.finditer(f.code):
        line = f.code.count("\n", 0, m.start()) + 1
        if f.allowed(line, "retry-backoff"):
            continue
        span = function_body(f.code, f.code.find("(", m.start()) + 1)
        if span is None:
            continue
        body = f.code[m.start() : span[1]]
        if BACKOFF_TOKENS_RE.search(body):
            continue
        out.append(
            Violation(
                f.rel,
                line,
                "retry-backoff",
                "retry/attempt loop with no backoff and no deadline/"
                "ExecContext poll: hot-spins on failure and can outlive the "
                "request budget; use RetryPolicy + Backoff (util/backoff.h) "
                "or poll ExecCheck/Deadline inside the loop",
            )
        )
    return out


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent)
    parser.add_argument("files", nargs="*", type=Path,
                        help="restrict to these files (default: whole tree)")
    args = parser.parse_args()
    root = args.root.resolve()

    scan_dirs = ("src", "tools", "bench", "examples")
    if args.files:
        paths = [p.resolve() for p in args.files]
    else:
        paths = []
        for d in scan_dirs:
            base = root / d
            if base.is_dir():
                paths.extend(sorted(base.rglob("*.cc")))
                paths.extend(sorted(base.rglob("*.h")))

    violations: list[Violation] = []
    for path in paths:
        if not path.is_file() or path.suffix not in (".cc", ".h"):
            continue
        f = SourceFile(path, root)
        violations.extend(check_exec_context(f))
        violations.extend(check_narrowing(f))
        violations.extend(check_aggregates(f))
        violations.extend(check_banned(f))
        violations.extend(check_unvalidated_parse(f))
        violations.extend(check_raw_intrinsics(f))
        violations.extend(check_comparison_sort(f))
        violations.extend(check_retry_backoff(f))

    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(paths)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
