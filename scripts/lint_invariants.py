#!/usr/bin/env python3
"""Repo-invariant linter: SLAM-specific rules the generic tools can't check.

The four rules that need type or call-graph information — exec-context
polling, narrowing casts, uncompensated aggregate accumulation, and raw
intrinsics placement — moved to the AST checker in tools/slam_tidy/ (see
DESIGN.md §13); this linter keeps the purely textual rules:

  banned-function    rand()/srand() (not reproducible; use util/random.h),
                     strtod/strtof/atof (locale-dependent; use
                     ParseDouble), time(nullptr) (non-deterministic; use
                     util/timer.h clocks).

  unvalidated-parse  No direct std::sto* / from_chars / sscanf outside the
                     sanctioned parse layer (util/string_util.cc). Those
                     entry points throw, ignore trailing garbage, or skip
                     range checks; every number that enters the system must
                     come through ParseDouble/ParseInt64 and then the
                     validation layer (util/validate.h) so hostile input is
                     rejected exactly once, with a typed Status.

  comparison-sort    No `std::sort` / `std::stable_sort` in src/core/: the
                     sweep hot paths order endpoints with the O(n + X)
                     pixel-binned counting sort (simd histogram_scatter,
                     DESIGN.md §12), and a comparison sort silently
                     reintroduces the O(n log n) per row that PR 9 removed.
                     Legitimate once-per-compute sorts (the y-sorted
                     envelope scanner) carry explicit waivers.

  retry-backoff      A loop whose header names a retry/attempt counter must
                     reference a backoff (Backoff/RetryPolicy/
                     DelayBeforeRetry) or poll its budget (Deadline/
                     ExecCheck/Check) inside the loop. A bare retry loop
                     hot-spins on a failing dependency and ignores the
                     request deadline — the resilience layer (util/backoff.h,
                     serve/resilient_render.cc) exists so nobody hand-rolls
                     one.

Each rule can be waived on a single line with `// lint:allow(<rule>)` plus
a reason in the surrounding comment.

Exit status: 0 clean, 1 violations (printed as file:line: rule: message).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# The stripper is shared with other source-scanning tools and unit-tested
# in tests/tools/source_strip_test.py.
sys.path.insert(0, str(Path(__file__).resolve().parent))
from source_strip import strip_comments_and_strings  # noqa: E402

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

class SourceFile:
    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.code = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self.code_lines = self.code.splitlines()

    def allowed(self, line_no: int, rule: str) -> bool:
        """True if line `line_no` (1-based) carries a waiver for `rule`."""
        if 1 <= line_no <= len(self.raw_lines):
            for m in ALLOW_RE.finditer(self.raw_lines[line_no - 1]):
                if m.group(1) == rule:
                    return True
        return False


class Violation:
    def __init__(self, rel: str, line: int, rule: str, message: str):
        self.rel, self.line, self.rule, self.message = rel, line, rule, message

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: {self.rule}: {self.message}"


# ---------------------------------------------------------------------------
# Rule: banned-function
# ---------------------------------------------------------------------------

BANNED = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()",
     "not reproducible across platforms; use util/random.h"),
    (re.compile(r"(?<![\w:])(?:std::)?(?:strtod|strtof|atof)\s*\("),
     "strtod/strtof/atof",
     "reads the global locale; use ParseDouble (util/string_util.h)"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)",
     "non-deterministic seeds/timing; use util/timer.h or an explicit seed"),
]


def check_banned(f: SourceFile) -> list[Violation]:
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "banned-function"):
            continue
        for pattern, what, why in BANNED:
            if pattern.search(line):
                out.append(
                    Violation(f.rel, i, "banned-function", f"{what}: {why}")
                )
    return out


# ---------------------------------------------------------------------------
# Rule: unvalidated-parse
# ---------------------------------------------------------------------------

# The one place raw text is allowed to become a number: the shared parse
# helpers, which reject trailing garbage and feed the validation layer.
PARSE_EXEMPT = ("src/util/string_util.cc",)
UNVALIDATED_PARSE = [
    (re.compile(r"(?<![\w:])std::sto(?:i|l|ll|ul|ull|f|d|ld)\s*\("),
     "std::sto*",
     "throws on garbage and accepts trailing junk ('12abc' -> 12)"),
    (re.compile(r"(?<![\w:])(?:std::)?from_chars\s*\("), "from_chars",
     "skips the trailing-garbage and range checks ParseDouble/ParseInt64 do"),
    (re.compile(r"(?<![\w:])(?:std::)?s?scanf\s*\("), "sscanf/scanf",
     "no overflow detection and UB on out-of-range %d"),
]


def check_unvalidated_parse(f: SourceFile) -> list[Violation]:
    if f.rel in PARSE_EXEMPT:
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "unvalidated-parse"):
            continue
        for pattern, what, why in UNVALIDATED_PARSE:
            if pattern.search(line):
                out.append(
                    Violation(
                        f.rel,
                        i,
                        "unvalidated-parse",
                        f"{what}: {why}; parse via ParseDouble/ParseInt64 "
                        "(util/string_util.h) and validate with the "
                        "Check* helpers (util/validate.h)",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# Rule: comparison-sort
# ---------------------------------------------------------------------------

COMPARISON_SORT_SCOPE = "src/core/"
COMPARISON_SORT_RE = re.compile(r"\bstd::(?:stable_)?sort\s*\(")


def check_comparison_sort(f: SourceFile) -> list[Violation]:
    if not f.rel.startswith(COMPARISON_SORT_SCOPE):
        return []
    out = []
    for i, line in enumerate(f.code_lines, start=1):
        if f.allowed(i, "comparison-sort"):
            continue
        if COMPARISON_SORT_RE.search(line):
            out.append(
                Violation(
                    f.rel,
                    i,
                    "comparison-sort",
                    "std::sort/std::stable_sort in a sweep hot path: order "
                    "endpoints with the pixel-binned counting sort "
                    "(SimdOps::histogram_scatter, DESIGN.md §12) — per-pixel "
                    "runs need no internal order; a once-per-compute sort "
                    "may carry a lint:allow(comparison-sort) waiver with a "
                    "reason",
                )
            )
    return out


# ---------------------------------------------------------------------------
# Rule: retry-backoff
# ---------------------------------------------------------------------------


def function_body(code: str, sig_end: int) -> tuple[int, int] | None:
    """Returns (open_brace, close_brace) of the body starting at/after the
    parameter list whose '(' sits at sig_end - 1."""
    depth = 0
    i = sig_end - 1
    n = len(code)
    while i < n:  # skip the parameter list
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    while i < n and code[i] != "{":
        if code[i] == ";":
            return None  # declaration, not a definition
        i += 1
    if i >= n:
        return None
    start = i
    depth = 0
    while i < n:
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return (start, i)
        i += 1
    return None


RETRY_LOOP_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:retry|retries|attempt|attempts)\w*\b"
)
BACKOFF_TOKENS_RE = re.compile(
    r"\bBackoff\b|\bRetryPolicy\b|\bDelayBeforeRetry\b|\bbackoff\b|"
    r"\bDeadline\b|\bdeadline\b|\bExecCheck\s*\(|->\s*Check\s*\(|"
    r"\.\s*Check\s*\("
)


def check_retry_backoff(f: SourceFile) -> list[Violation]:
    out = []
    for m in RETRY_LOOP_RE.finditer(f.code):
        line = f.code.count("\n", 0, m.start()) + 1
        if f.allowed(line, "retry-backoff"):
            continue
        span = function_body(f.code, f.code.find("(", m.start()) + 1)
        if span is None:
            continue
        body = f.code[m.start() : span[1]]
        if BACKOFF_TOKENS_RE.search(body):
            continue
        out.append(
            Violation(
                f.rel,
                line,
                "retry-backoff",
                "retry/attempt loop with no backoff and no deadline/"
                "ExecContext poll: hot-spins on failure and can outlive the "
                "request budget; use RetryPolicy + Backoff (util/backoff.h) "
                "or poll ExecCheck/Deadline inside the loop",
            )
        )
    return out


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent)
    parser.add_argument("files", nargs="*", type=Path,
                        help="restrict to these files (default: whole tree)")
    args = parser.parse_args()
    root = args.root.resolve()

    scan_dirs = ("src", "tools", "bench", "examples")
    if args.files:
        paths = [p.resolve() for p in args.files]
    else:
        paths = []
        for d in scan_dirs:
            base = root / d
            if base.is_dir():
                paths.extend(sorted(base.rglob("*.cc")))
                paths.extend(sorted(base.rglob("*.h")))

    violations: list[Violation] = []
    for path in paths:
        if not path.is_file() or path.suffix not in (".cc", ".h"):
            continue
        f = SourceFile(path, root)
        violations.extend(check_banned(f))
        violations.extend(check_unvalidated_parse(f))
        violations.extend(check_comparison_sort(f))
        violations.extend(check_retry_backoff(f))

    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: {len(paths)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
