#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the configured scale.
# Usage: scripts/run_experiments.sh [output-file]
#   SLAM_BENCH_SCALE / SLAM_BENCH_BUDGET / SLAM_BENCH_RES override the
#   laptop-scale defaults (see bench/common/harness.h).
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-experiments_output.txt}"
cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null
{
  for b in build/bench/bench_*; do
    echo "##### $b"
    "$b"
  done
} | tee "$out"
echo "wrote $out"
