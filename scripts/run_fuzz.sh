#!/usr/bin/env bash
# Build the fuzzing harness and smoke every target against its seed corpus.
#
# With clang installed this runs real libFuzzer (coverage-guided, ASan +
# UBSan) for $SLAM_FUZZ_SECONDS per target — the same thing CI's
# fuzz-smoke lane does. Without clang it falls back to the standalone
# corpus-replay drivers, which still executes every seed under the
# configured sanitizers.
#
# Usage: scripts/run_fuzz.sh [build-dir]
#   SLAM_FUZZ_SECONDS   per-target libFuzzer budget (default 60)
#   SLAM_FUZZ_JOBS      parallel build jobs (default: nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-fuzz}"
seconds="${SLAM_FUZZ_SECONDS:-60}"
jobs="${SLAM_FUZZ_JOBS:-$(nproc)}"

cmake_args=(-DSLAM_FUZZ=ON -DSLAM_SANITIZE=address,undefined
            -DSLAM_BUILD_BENCHMARKS=OFF -DSLAM_BUILD_EXAMPLES=OFF
            -DSLAM_BUILD_TESTS=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo)
if [ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]; then
  cmake_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER")
fi
have_libfuzzer=0
if command -v clang++ >/dev/null 2>&1; then
  cmake_args+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
  have_libfuzzer=1
else
  echo "clang++ not found: building standalone corpus-replay drivers" >&2
fi

cmake -B "$build_dir" -S "$repo_root" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$jobs" --target \
  fuzz_csv fuzz_density fuzz_params fuzz_differential

mkdir -p "$build_dir/fuzz-artifacts"
status=0
for name in csv density params differential; do
  corpus="$repo_root/fuzz/corpus/$name"
  crashers="$repo_root/fuzz/crashers/$name"
  extra_dirs=()
  [ -d "$crashers" ] && extra_dirs+=("$crashers")
  echo "=== fuzz_$name ==="
  if [ "$have_libfuzzer" = 1 ]; then
    # Mutate into a build-local working corpus so the checked-in seeds
    # stay pristine; crashers land in fuzz-artifacts/ for upload.
    work="$build_dir/fuzz-corpus/$name"
    mkdir -p "$work"
    cp "$corpus"/* "$work/" 2>/dev/null || true
    if ! "$build_dir/fuzz/fuzz_$name" \
        -max_total_time="$seconds" -timeout=30 -rss_limit_mb=2048 \
        -artifact_prefix="$build_dir/fuzz-artifacts/${name}-" \
        "$work" "${extra_dirs[@]}"; then
      echo "fuzz_$name FAILED" >&2
      status=1
    fi
  else
    if ! "$build_dir/fuzz/fuzz_$name" "$corpus" "${extra_dirs[@]}"; then
      echo "fuzz_$name FAILED" >&2
      status=1
    fi
  fi
done
exit "$status"
