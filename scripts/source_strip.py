"""Comment/string stripper shared by the repo's source-scanning tools.

`strip_comments_and_strings` blanks out the contents of comments and
string/char literals in C/C++ source while preserving line structure, so
line-regex rules (scripts/lint_invariants.py) match code only. Compared to
the naive scanner it replaces, this one handles:

  * raw string literals  R"(...)" and R"delim(...)delim" — an inner `"`
    or `)` must not terminate the literal early (the naive scanner
    resumed mid-literal and produced false positives on the remainder);
  * digit separators     1'000'000 — the `'` is part of the number, not a
    char-literal open quote (the naive scanner swallowed everything until
    the next apostrophe, hiding real code);
  * block comments spanning lines, `//` and `/*` inside string literals,
    escaped quotes, and unterminated constructs at EOF.

Every blanked character becomes a space (newlines survive) so byte offsets
and line/column numbers in the stripped text match the original.
"""

from __future__ import annotations


def strip_comments_and_strings(text: str) -> str:
    out: list[str] = []
    i, n = 0, len(text)

    def blank(segment: str) -> str:
        return "".join(ch if ch == "\n" else " " for ch in segment)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(blank(text[i:j]))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append(blank(text[i:end]))
            i = end
        elif c == "R" and nxt == '"' and not _identifier_tail(text, i):
            # Raw string literal: R"delim( ... )delim". The delimiter is
            # everything between the opening quote and the first '('.
            open_paren = text.find("(", i + 2)
            if open_paren == -1:
                out.append(blank(text[i:]))
                i = n
                continue
            delim = text[i + 2 : open_paren]
            closer = ")" + delim + '"'
            j = text.find(closer, open_paren + 1)
            end = n if j == -1 else j + len(closer)
            out.append('R"' + blank(text[i + 2 : end - 1]) + '"'
                       if j != -1 else blank(text[i:end]))
            i = end
        elif c == '"' or (c == "'" and not _digit_separator(text, i)):
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append(" ")
                    i += 1
            if i < n:
                out.append(text[i])  # closing quote, or the stray newline
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _identifier_tail(text: str, i: int) -> bool:
    """True when the `R` at `text[i]` is the tail of a longer identifier
    (e.g. `FOOR"..."` is not a raw-string prefix)."""
    if i == 0:
        return False
    prev = text[i - 1]
    return prev.isalnum() or prev == "_"


def _digit_separator(text: str, i: int) -> bool:
    """True when the `'` at `text[i]` is a C++14 digit separator
    (1'000'000, 0x7f'ff): digit or hex digit on both sides."""
    if i == 0 or i + 1 >= len(text):
        return False
    prev, nxt = text[i - 1], text[i + 1]
    hexdigits = "0123456789abcdefABCDEF"
    return prev in hexdigits and nxt in hexdigits
