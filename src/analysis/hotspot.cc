#include "analysis/hotspot.h"

#include <algorithm>
#include <queue>

#include "util/string_util.h"

namespace slam {

namespace {

double ResolveThreshold(const DensityMap& map, const HotspotOptions& options) {
  if (options.relative_threshold > 0.0) {
    return options.relative_threshold * map.MaxValue();
  }
  return options.threshold;
}

}  // namespace

Result<std::vector<int>> LabelHotspots(const DensityMap& map,
                                       const HotspotOptions& options,
                                       std::vector<Hotspot>* hotspots) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot extract hotspots of an empty map");
  }
  if (options.relative_threshold < 0.0 || options.relative_threshold > 1.0) {
    return Status::InvalidArgument(StringPrintf(
        "relative_threshold must be in [0, 1], got %f",
        options.relative_threshold));
  }
  if (options.min_pixels < 1) {
    return Status::InvalidArgument("min_pixels must be at least 1");
  }
  const double threshold = ResolveThreshold(map, options);
  const int w = map.width();
  const int h = map.height();
  std::vector<int> labels(static_cast<size_t>(w) * h, -1);
  std::vector<Hotspot> regions;

  // BFS flood fill per unvisited above-threshold pixel.
  const auto index = [w](int x, int y) {
    return static_cast<size_t>(y) * w + x;
  };
  std::queue<std::pair<int, int>> frontier;
  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      if (labels[index(sx, sy)] != -1 || map.at(sx, sy) < threshold) {
        continue;
      }
      Hotspot region;
      region.id = static_cast<int>(regions.size());
      region.peak_density = -1.0;
      double cx = 0.0, cy = 0.0;
      labels[index(sx, sy)] = region.id;
      frontier.push({sx, sy});
      while (!frontier.empty()) {
        const auto [x, y] = frontier.front();
        frontier.pop();
        const double v = map.at(x, y);
        ++region.pixel_count;
        region.total_density += v;
        cx += v * x;
        cy += v * y;
        if (v > region.peak_density) {
          region.peak_density = v;
          region.peak_x = x;
          region.peak_y = y;
        }
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            if (!options.eight_connected && dx != 0 && dy != 0) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            if (labels[index(nx, ny)] != -1 || map.at(nx, ny) < threshold) {
              continue;
            }
            labels[index(nx, ny)] = region.id;
            frontier.push({nx, ny});
          }
        }
      }
      if (region.total_density > 0.0) {
        region.centroid = {cx / region.total_density,
                           cy / region.total_density};
      } else {
        // A flat all-zero region (threshold 0): geometric center of mass.
        region.centroid = {static_cast<double>(region.peak_x),
                           static_cast<double>(region.peak_y)};
      }
      regions.push_back(region);
    }
  }

  // Filter small regions and rank by peak density.
  std::vector<int> id_remap(regions.size(), -1);
  std::vector<Hotspot> kept;
  for (const Hotspot& r : regions) {
    if (r.pixel_count >= options.min_pixels) kept.push_back(r);
  }
  std::sort(kept.begin(), kept.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.peak_density != b.peak_density
               ? a.peak_density > b.peak_density
               : a.pixel_count > b.pixel_count;
  });
  if (options.max_hotspots > 0 &&
      kept.size() > static_cast<size_t>(options.max_hotspots)) {
    kept.resize(options.max_hotspots);
  }
  for (size_t rank = 0; rank < kept.size(); ++rank) {
    id_remap[kept[rank].id] = static_cast<int>(rank);
    kept[rank].id = static_cast<int>(rank);
  }
  for (int& label : labels) {
    if (label >= 0) label = id_remap[label];
  }
  if (hotspots != nullptr) *hotspots = std::move(kept);
  return labels;
}

Result<std::vector<Hotspot>> ExtractHotspots(const DensityMap& map,
                                             const HotspotOptions& options) {
  std::vector<Hotspot> hotspots;
  SLAM_ASSIGN_OR_RETURN(std::vector<int> labels,
                        LabelHotspots(map, options, &hotspots));
  (void)labels;
  return hotspots;
}

Point RasterToGeo(const Grid& grid, double raster_x, double raster_y) {
  return {grid.x_axis().origin + raster_x * grid.x_axis().gap,
          grid.y_axis().origin + raster_y * grid.y_axis().gap};
}

}  // namespace slam
