// Hotspot extraction: the downstream analysis the paper's applications run
// on a KDV raster (crime hotspots, traffic blackspots, outbreak clusters).
// A hotspot is a connected region of pixels whose density is at or above a
// threshold; regions are ranked by peak density.
#pragma once

#include <vector>

#include "geom/point.h"
#include "kdv/density_map.h"
#include "kdv/grid.h"
#include "util/result.h"

namespace slam {

struct Hotspot {
  int id = 0;                 // rank, 0 = strongest
  int64_t pixel_count = 0;    // region area in pixels
  double peak_density = 0.0;
  double total_density = 0.0;     // sum over the region's pixels
  int peak_x = 0, peak_y = 0;     // raster coordinates of the peak
  Point centroid;                 // density-weighted, raster coordinates
};

struct HotspotOptions {
  /// Absolute density threshold; pixels >= threshold belong to hotspots.
  /// If relative_threshold is set instead, threshold = fraction * max.
  double threshold = 0.0;
  /// If > 0, overrides `threshold` with fraction-of-max (e.g. 0.5).
  double relative_threshold = 0.0;
  /// 4- or 8-connectivity for region growing.
  bool eight_connected = true;
  /// Drop regions smaller than this many pixels (speckle removal).
  int64_t min_pixels = 1;
  /// Keep at most this many regions (0 = all), strongest first.
  int max_hotspots = 0;
};

/// Extracts hotspots from a raster, strongest (highest peak) first.
Result<std::vector<Hotspot>> ExtractHotspots(const DensityMap& map,
                                             const HotspotOptions& options);

/// Connected-component label map: -1 for below-threshold pixels, otherwise
/// the hotspot id of ExtractHotspots run with the same options. Exposed
/// for rendering overlays and for tests.
Result<std::vector<int>> LabelHotspots(const DensityMap& map,
                                       const HotspotOptions& options,
                                       std::vector<Hotspot>* hotspots);

/// Maps a hotspot's raster centroid / peak to geographic coordinates given
/// the grid the raster was computed on.
Point RasterToGeo(const Grid& grid, double raster_x, double raster_y);

}  // namespace slam
