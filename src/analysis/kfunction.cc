#include "analysis/kfunction.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "index/kdtree.h"
#include "util/string_util.h"

namespace slam {

namespace {

Status ValidateInputs(std::span<const Point> points,
                      const BoundingBox& region,
                      std::span<const double> radii) {
  if (points.size() < 2) {
    return Status::InvalidArgument("K-function needs at least 2 points");
  }
  if (region.empty() || region.Area() <= 0.0) {
    return Status::InvalidArgument("K-function region must have positive area");
  }
  if (radii.empty()) {
    return Status::InvalidArgument("no radii given");
  }
  double prev = 0.0;
  for (const double r : radii) {
    if (!(r > prev)) {
      return Status::InvalidArgument(
          "radii must be positive and strictly ascending");
    }
    prev = r;
  }
  return Status::OK();
}

KFunctionResult MakeResult(std::span<const double> radii,
                           std::span<const int64_t> cumulative_pairs,
                           size_t n, double area) {
  KFunctionResult result;
  result.radii.assign(radii.begin(), radii.end());
  const double scale =
      area / (static_cast<double>(n) * static_cast<double>(n));
  for (size_t i = 0; i < radii.size(); ++i) {
    result.k_values.push_back(scale *
                              static_cast<double>(cumulative_pairs[i]));
    result.csr_values.push_back(std::numbers::pi * radii[i] * radii[i]);
  }
  return result;
}

}  // namespace

Result<KFunctionResult> ComputeKFunctionNaive(std::span<const Point> points,
                                              const BoundingBox& region,
                                              std::span<const double> radii,
                                              const ExecContext* exec) {
  SLAM_RETURN_NOT_OK(ValidateInputs(points, region, radii));
  std::vector<int64_t> counts(radii.size(), 0);
  for (size_t i = 0; i < points.size(); ++i) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "kfunction/naive_point"));
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const double d = Distance(points[i], points[j]);
      // First radius bucket that contains this pair; counted cumulatively
      // below.
      const auto it = std::lower_bound(radii.begin(), radii.end(), d);
      if (it != radii.end()) {
        ++counts[static_cast<size_t>(it - radii.begin())];
      }
    }
  }
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return MakeResult(radii, counts, points.size(), region.Area());
}

Result<KFunctionResult> ComputeKFunction(std::span<const Point> points,
                                         const BoundingBox& region,
                                         std::span<const double> radii,
                                         const ExecContext* exec) {
  SLAM_RETURN_NOT_OK(ValidateInputs(points, region, radii));
  KdTreeOptions tree_options;
  tree_options.exec = exec;
  SLAM_ASSIGN_OR_RETURN(KdTree tree, KdTree::Build(points, tree_options));
  const double r_max = radii.back();
  std::vector<int64_t> counts(radii.size(), 0);
  for (const Point& p : points) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "kfunction/point"));
    tree.RangeQuery(p, r_max, [&](const Point& q) {
      const auto it =
          std::lower_bound(radii.begin(), radii.end(), Distance(p, q));
      if (it != radii.end()) {
        ++counts[static_cast<size_t>(it - radii.begin())];
      }
    });
  }
  // Every point matched itself exactly once at distance 0, which landed in
  // the first bucket; remove those n self-pairs. (Coincident but distinct
  // events are legitimate pairs and stay counted, matching the naive i!=j
  // double loop.)
  counts[0] -= static_cast<int64_t>(points.size());
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  return MakeResult(radii, counts, points.size(), region.Area());
}

}  // namespace slam
