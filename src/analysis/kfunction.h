// Ripley's K-function — the spatial point-pattern statistic the paper
// names as the next GIS operation for SLAM-style acceleration (Section 6,
// citing Baddeley et al. [8]).
//
//   K(r) = (|A| / n²) · Σ_{i≠j} 1[dist(p_i, p_j) <= r]
//
// Under complete spatial randomness K(r) = πr²; values above indicate
// clustering at scale r, values below indicate dispersion/regularity.
// Implemented two ways, as with the KDV methods:
//  * naive O(n² · 1) pair scan (the oracle), and
//  * kd-tree accelerated: one range-count pass at r_max per point,
//    histogrammed over the radii and turned into cumulative counts —
//    O(n (log n + m_max) + |radii|) where m_max is the largest
//    neighborhood size.
// No edge correction is applied (the uncorrected estimator); both methods
// compute exactly the same quantity.
#pragma once

#include <span>
#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

struct KFunctionResult {
  std::vector<double> radii;     // as requested, ascending
  std::vector<double> k_values;  // K(r) per radius
  /// Reference value πr² for each radius (CSR baseline).
  std::vector<double> csr_values;
};

/// Radii must be positive and strictly ascending; needs >= 2 points and a
/// non-degenerate region (used for |A|). Both variants poll `exec` once
/// per outer point (the repo invariant: every Compute* entry point
/// consults its ExecContext — enforced by scripts/lint_invariants.py), so
/// a cancellation or deadline surfaces within one point's worth of work.
Result<KFunctionResult> ComputeKFunctionNaive(std::span<const Point> points,
                                              const BoundingBox& region,
                                              std::span<const double> radii,
                                              const ExecContext* exec = nullptr);

Result<KFunctionResult> ComputeKFunction(std::span<const Point> points,
                                         const BoundingBox& region,
                                         std::span<const double> radii,
                                         const ExecContext* exec = nullptr);

}  // namespace slam
