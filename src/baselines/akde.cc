#include "baselines/akde.h"

#include "index/kdtree.h"

namespace slam {

Status ComputeAkde(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (options.akde_epsilon < 0.0) {
    return Status::InvalidArgument("akde_epsilon must be non-negative");
  }
  KdTreeOptions kd_options;
  kd_options.exec = options.exec;
  SLAM_ASSIGN_OR_RETURN(KdTree index, KdTree::Build(task.points, kd_options));
  ScopedMemoryCharge charge(options.exec, "akde/index");
  SLAM_RETURN_NOT_OK(charge.Update(index.MemoryUsageBytes()));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "akde/row"));
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      row[ix] = task.weight *
                index.AccumulateKernelBounded(q, task.kernel, task.bandwidth,
                                              options.akde_epsilon);
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
