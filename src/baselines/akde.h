// aKDE baseline (Gray & Moore [33], paper Table 6): single-tree kernel
// summation with per-node lower/upper bounds; a node whose kernel bound gap
// is within epsilon contributes the bound midpoint, otherwise it is
// refined. Approximate (per-point absolute error <= epsilon/2).
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeAkde(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out);

}  // namespace slam
