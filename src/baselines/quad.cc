#include "baselines/quad.h"

#include "index/quadtree.h"

namespace slam {

Status ComputeQuad(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (options.quad_epsilon < 0.0) {
    return Status::InvalidArgument("quad_epsilon must be non-negative");
  }
  QuadTreeOptions quad_options;
  quad_options.exec = options.exec;
  SLAM_ASSIGN_OR_RETURN(QuadTree index,
                        QuadTree::Build(task.points, quad_options));
  ScopedMemoryCharge charge(options.exec, "quad/index");
  SLAM_RETURN_NOT_OK(charge.Update(index.MemoryUsageBytes()));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  // Exact mode decomposes the density over R(q) aggregates (possible for
  // the polynomial kernels); the epsilon mode and the Gaussian kernel go
  // through the bound-midpoint traversal.
  const bool exact_via_aggregates =
      options.quad_epsilon == 0.0 && KernelSupportedBySlam(task.kernel);
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "quad/row"));
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      if (exact_via_aggregates) {
        // The aggregates come back in the query-centered frame (every
        // magnitude bandwidth-scaled, regardless of where the map sits
        // globally), so the density is evaluated at the frame's origin.
        const RangeAggregates agg =
            index.RangeAggregateQuery(q, task.bandwidth);
        row[ix] = DensityFromAggregates(task.kernel, Point{0.0, 0.0}, agg,
                                        task.bandwidth, task.weight);
      } else {
        row[ix] = task.weight *
                  index.AccumulateKernelBounded(q, task.kernel,
                                                task.bandwidth,
                                                options.quad_epsilon);
      }
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
