#include "baselines/quad.h"

#include "index/quadtree.h"

namespace slam {

Status ComputeQuad(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (options.quad_epsilon < 0.0) {
    return Status::InvalidArgument("quad_epsilon must be non-negative");
  }
  SLAM_ASSIGN_OR_RETURN(QuadTree index, QuadTree::Build(task.points));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  // Exact mode decomposes the density over R(q) aggregates (possible for
  // the polynomial kernels); the epsilon mode and the Gaussian kernel go
  // through the bound-midpoint traversal.
  const bool exact_via_aggregates =
      options.quad_epsilon == 0.0 && KernelSupportedBySlam(task.kernel);
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      return Status::Cancelled("QUAD exceeded the time budget");
    }
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      if (exact_via_aggregates) {
        const RangeAggregates agg =
            index.RangeAggregateQuery(q, task.bandwidth);
        row[ix] = DensityFromAggregates(task.kernel, q, agg, task.bandwidth,
                                        task.weight);
      } else {
        row[ix] = task.weight *
                  index.AccumulateKernelBounded(q, task.kernel,
                                                task.bandwidth,
                                                options.quad_epsilon);
      }
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
