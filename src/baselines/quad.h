// QUAD baseline (Chan, Cheng, Yiu — SIGMOD 2020 [16], paper Table 6):
// quad-tree filter-and-refinement with quadratic bound functions on node
// contributions. With quad_epsilon == 0 (the default) every straddling node
// is refined to its points, so the result is exact; whole nodes inside the
// bandwidth disk contribute via stored aggregates in O(1), and nodes
// outside are pruned. With quad_epsilon > 0 it reproduces QUAD's
// approximate mode.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeQuad(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out);

}  // namespace slam
