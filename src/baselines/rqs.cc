#include "baselines/rqs.h"

#include "index/balltree.h"
#include "index/kdtree.h"

namespace slam {

namespace {

/// Shared pixel loop: `index` must provide RangeQuery(q, radius, fn) and
/// MemoryUsageBytes(). The index heap is charged against the context's
/// budget for the duration of the loop.
template <typename Index>
Status RqsLoop(const Index& index, const KdvTask& task,
               const ComputeOptions& options, DensityMap* out) {
  ScopedMemoryCharge charge(options.exec, "rqs/index");
  SLAM_RETURN_NOT_OK(charge.Update(index.MemoryUsageBytes()));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const KernelType kernel = task.kernel;
  const double b = task.bandwidth;
  const double w = task.weight;
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "rqs/row"));
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      double sum = 0.0;
      index.RangeQuery(q, b, [&](const Point& p) {
        sum += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      });
      row[ix] = w * sum;
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace

Status ComputeRqsKd(const KdvTask& task, const ComputeOptions& options,
                    DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  KdTreeOptions kd_options;
  kd_options.exec = options.exec;
  SLAM_ASSIGN_OR_RETURN(KdTree index, KdTree::Build(task.points, kd_options));
  return RqsLoop(index, task, options, out);
}

Status ComputeRqsBall(const KdvTask& task, const ComputeOptions& options,
                      DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  BallTreeOptions ball_options;
  ball_options.exec = options.exec;
  SLAM_ASSIGN_OR_RETURN(BallTree index,
                        BallTree::Build(task.points, ball_options));
  return RqsLoop(index, task, options, out);
}

}  // namespace slam
