#include "baselines/rqs.h"

#include "index/balltree.h"
#include "index/kdtree.h"

namespace slam {

namespace {

/// Shared pixel loop: `index` must provide RangeQuery(q, radius, fn).
template <typename Index>
Status RqsLoop(const Index& index, const KdvTask& task,
               const ComputeOptions& options, DensityMap* out) {
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const KernelType kernel = task.kernel;
  const double b = task.bandwidth;
  const double w = task.weight;
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    if (options.deadline != nullptr && options.deadline->Expired()) {
      return Status::Cancelled("RQS exceeded the time budget");
    }
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      double sum = 0.0;
      index.RangeQuery(q, b, [&](const Point& p) {
        sum += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      });
      row[ix] = w * sum;
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace

Status ComputeRqsKd(const KdvTask& task, const ComputeOptions& options,
                    DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  SLAM_ASSIGN_OR_RETURN(KdTree index, KdTree::Build(task.points));
  return RqsLoop(index, task, options, out);
}

Status ComputeRqsBall(const KdvTask& task, const ComputeOptions& options,
                      DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  SLAM_ASSIGN_OR_RETURN(BallTree index, BallTree::Build(task.points));
  return RqsLoop(index, task, options, out);
}

}  // namespace slam
