// RQS: the range-query-based solution (paper Section 2.2). For every pixel
// q, retrieve R(q) = {p : dist(q, p) <= b} from a spatial index and
// accumulate w·K(q, p) over it. Exact; worst-case O(XYn) despite the index.
// Two index variants, as in the paper's Table 6: kd-tree and ball-tree.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeRqsKd(const KdvTask& task, const ComputeOptions& options,
                    DensityMap* out);

Status ComputeRqsBall(const KdvTask& task, const ComputeOptions& options,
                      DensityMap* out);

}  // namespace slam
