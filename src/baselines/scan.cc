#include "baselines/scan.h"

namespace slam {

Status ComputeScan(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const KernelType kernel = task.kernel;
  const double b = task.bandwidth;
  const double w = task.weight;
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "scan/row"));
    std::span<double> row = map.mutable_row(iy);
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      double sum = 0.0;
      for (const Point& p : task.points) {
        sum += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      }
      row[ix] = w * sum;
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
