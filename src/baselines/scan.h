// SCAN baseline (paper Table 6): evaluate K(q, p) for every (pixel, point)
// pair directly — the O(XYn) ground truth every other method is validated
// against.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeScan(const KdvTask& task, const ComputeOptions& options,
                   DensityMap* out);

}  // namespace slam
