#include "baselines/zorder.h"

#include <vector>

#include "baselines/rqs.h"
#include "index/zorder_index.h"

namespace slam {

Status ComputeZorder(const KdvTask& task, const ComputeOptions& options,
                     DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!(options.zorder_epsilon > 0.0) || options.zorder_epsilon > 1.0) {
    return Status::InvalidArgument("zorder_epsilon must be in (0, 1]");
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "zorder/build"));
  ScopedMemoryCharge charge(options.exec, "zorder/sample");
  std::vector<Point> sample;
  {
    // The Morton-sorted copy lives only long enough to draw the sample, so
    // its charge is returned before the exact KDV on the reduction runs.
    SLAM_ASSIGN_OR_RETURN(ZOrderIndex index,
                          ZOrderIndex::Build(task.points, options.exec));
    SLAM_RETURN_NOT_OK(charge.Update(index.MemoryUsageBytes()));
    const size_t m = index.SampleSizeForEpsilon(options.zorder_epsilon);
    sample = index.StridedSample(m);
  }
  SLAM_RETURN_NOT_OK(charge.Update(sample.capacity() * sizeof(Point)));

  // The reduced dataset approximates the full one once each sampled point
  // is re-weighted to stand for n/m originals.
  KdvTask reduced = task;
  reduced.points = sample;
  if (!sample.empty()) {
    reduced.weight = task.weight * static_cast<double>(task.points.size()) /
                     static_cast<double>(sample.size());
  }
  // "These methods still need to evaluate the exact KDV for the reduced
  // dataset" (paper Section 5) — done here with the kd-tree RQS.
  return ComputeRqsKd(reduced, options, out);
}

}  // namespace slam
