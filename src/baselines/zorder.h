// Z-order sampling baseline (Zheng et al. [73], paper Table 6): sort points
// along the Morton curve, draw an evenly strided sample of size m(eps),
// re-weight it by n/m, and evaluate the reduced dataset exactly. Provides a
// probabilistic error guarantee — i.e. an approximate KDV.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeZorder(const KdvTask& task, const ComputeOptions& options,
                     DensityMap* out);

}  // namespace slam
