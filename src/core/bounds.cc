#include "core/bounds.h"

#include <cmath>

#include "util/logging.h"

namespace slam {

void ComputeBoundIntervals(std::span<const Point> envelope, WorldY k,
                           double bandwidth,
                           std::vector<BoundInterval>* out) {
  out->clear();
  out->reserve(envelope.size());
  const double b2 = bandwidth * bandwidth;
  for (const Point& p : envelope) {
    const double dy = k - WorldY(p.y);
    const double rem = b2 - dy * dy;
    SLAM_DCHECK(rem >= 0.0) << "point outside the envelope of row "
                            << k.value();
    // max() guards the tiny negative remainder FP can produce at |dy| == b.
    const double half_width = std::sqrt(std::max(rem, 0.0));
    out->push_back({p.x - half_width, p.x + half_width, p});
  }
}

}  // namespace slam
