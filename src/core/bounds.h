// Per-point sweep intervals (paper Section 3.3): for a row at y = k, the
// data point p contributes to pixel q exactly when
//   LB_k(p) = p.x - sqrt(b² - (k - p.y)²)  <=  q.x  <=  UB_k(p) (Eqs. 8-9).
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "util/units.h"

namespace slam {

struct BoundInterval {
  double lb = 0.0;  // world-x of the interval ends; see LowerBound/UpperBound
  double ub = 0.0;
  Point p;  // the data point, carried along for the aggregate updates

  WorldX lower() const { return WorldX(lb); }
  WorldX upper() const { return WorldX(ub); }
};

/// Clears `out` and fills it with the interval of every envelope point.
/// Precondition (Definition 1): |k - p.y| <= bandwidth for all inputs —
/// guaranteed by FindEnvelope / EnvelopeScanner; DCHECKed here.
void ComputeBoundIntervals(std::span<const Point> envelope, WorldY k,
                           double bandwidth, std::vector<BoundInterval>* out);

}  // namespace slam
