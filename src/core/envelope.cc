#include "core/envelope.h"

#include <algorithm>
#include <cmath>

namespace slam {

void FindEnvelope(std::span<const Point> points, WorldY k, double bandwidth,
                  std::vector<Point>* out) {
  out->clear();
  for (const Point& p : points) {
    if (std::abs(k - WorldY(p.y)) <= bandwidth) out->push_back(p);
  }
}

EnvelopeScanner::EnvelopeScanner(std::span<const Point> points)
    : sorted_by_y_(points.begin(), points.end()) {
  // Once per compute, not per row — the O(n log n) here is amortized over
  // all Y rows and is exactly what DESIGN.md §4.4 trades it for.
  std::sort(sorted_by_y_.begin(),  // lint:allow(comparison-sort)
            sorted_by_y_.end(),
            [](const Point& a, const Point& b) { return a.y < b.y; });
}

std::span<const Point> EnvelopeScanner::Envelope(WorldY k,
                                                 double bandwidth) const {
  const auto lo = std::lower_bound(
      sorted_by_y_.begin(), sorted_by_y_.end(), (k - bandwidth).value(),
      [](const Point& p, double v) { return p.y < v; });
  const auto hi = std::upper_bound(
      lo, sorted_by_y_.end(), (k + bandwidth).value(),
      [](double v, const Point& p) { return v < p.y; });
  return {lo, hi};
}

}  // namespace slam
