// Envelope point set E(k) (paper Definition 1): the points whose
// y-coordinate is within the bandwidth of pixel row y = k. Every range set
// R(q) of a pixel in that row is a subset of E(k), so the sweep only ever
// touches envelope points.
//
// Two implementations:
//  * FindEnvelope — the paper's O(n) per-row scan (Lemma 1).
//  * EnvelopeScanner — our extension (DESIGN.md §4.4): points pre-sorted by
//    y once, then each row's envelope is a contiguous run found with two
//    binary searches, O(log n + |E(k)|) per row. Exact, same output order
//    not guaranteed (order is irrelevant to the sweep's result).
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "util/result.h"
#include "util/units.h"

namespace slam {

/// Clears `out` and fills it with E(k) for the row at world coordinate
/// `k`. Taking WorldY (not a bare double) pins the unit: an envelope is
/// always cut along the swept axis, never by a pixel index or an x value.
void FindEnvelope(std::span<const Point> points, WorldY k, double bandwidth,
                  std::vector<Point>* out);

class EnvelopeScanner {
 public:
  /// Sorts a copy of the points by y (O(n log n), once per KDV).
  explicit EnvelopeScanner(std::span<const Point> points);

  /// The envelope as a contiguous span of the y-sorted points.
  std::span<const Point> Envelope(WorldY k, double bandwidth) const;

  size_t size() const { return sorted_by_y_.size(); }

 private:
  std::vector<Point> sorted_by_y_;
};

}  // namespace slam
