#include "core/rao.h"

#include "core/slam_bucket.h"
#include "core/slam_sort.h"

namespace slam {

namespace {

using BaseMethod = Status (*)(const KdvTask&, const ComputeOptions&,
                              DensityMap*);

// Numerical stability note: the base sweeps evaluate every pixel in a
// row-local frame (RowLocalOrigin, sweep_state.h). Transposition swaps x
// and y before the sweep runs, so the transposed sweep's row-local frame
// is a column-local frame of the original problem — the conditioning
// guarantee (aggregate magnitudes bounded by sweep-line extent plus
// bandwidth, not by the projection offset) carries through RAO unchanged,
// and the swap itself is exact (no arithmetic on the coordinates). The
// pixel-binned counting sort carries through too: the transposed sweep
// bins endpoints against the transposed x-axis (the original y-axis), so
// RAO's benefit is purely the shorter swept axis — the per-line cost is
// O(n + max(X, Y)) either way (DESIGN.md §12).
Status ComputeWithRao(BaseMethod base, const KdvTask& task,
                      const ComputeOptions& options, DensityMap* out) {
  if (!RaoWouldTranspose(task)) {
    return base(task, options, out);  // X >= Y: the default row sweep wins
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "rao/transpose"));
  ScopedMemoryCharge charge(options.exec, "rao/transposed_points");
  SLAM_RETURN_NOT_OK(charge.Update(task.points.size() * sizeof(Point)));
  const TransposedTask transposed(task);
  DensityMap transposed_map;
  SLAM_RETURN_NOT_OK(base(transposed.task(), options, &transposed_map));
  *out = transposed_map.Transposed();
  return Status::OK();
}

}  // namespace

bool RaoWouldTranspose(const KdvTask& task) {
  return task.grid.height() > task.grid.width();
}

Status ComputeSlamSortRao(const KdvTask& task, const ComputeOptions& options,
                          DensityMap* out) {
  return ComputeWithRao(&ComputeSlamSort, task, options, out);
}

Status ComputeSlamBucketRao(const KdvTask& task,
                            const ComputeOptions& options, DensityMap* out) {
  return ComputeWithRao(&ComputeSlamBucket, task, options, out);
}

}  // namespace slam
