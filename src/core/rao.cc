#include "core/rao.h"

#include "core/slam_bucket.h"
#include "core/slam_sort.h"

namespace slam {

namespace {

using BaseMethod = Status (*)(const KdvTask&, const ComputeOptions&,
                              DensityMap*);

Status ComputeWithRao(BaseMethod base, const KdvTask& task,
                      const ComputeOptions& options, DensityMap* out) {
  if (!RaoWouldTranspose(task)) {
    return base(task, options, out);  // X >= Y: the default row sweep wins
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "rao/transpose"));
  ScopedMemoryCharge charge(options.exec, "rao/transposed_points");
  SLAM_RETURN_NOT_OK(charge.Update(task.points.size() * sizeof(Point)));
  const TransposedTask transposed(task);
  DensityMap transposed_map;
  SLAM_RETURN_NOT_OK(base(transposed.task(), options, &transposed_map));
  *out = transposed_map.Transposed();
  return Status::OK();
}

}  // namespace

bool RaoWouldTranspose(const KdvTask& task) {
  return task.grid.height() > task.grid.width();
}

Status ComputeSlamSortRao(const KdvTask& task, const ComputeOptions& options,
                          DensityMap* out) {
  return ComputeWithRao(&ComputeSlamSort, task, options, out);
}

Status ComputeSlamBucketRao(const KdvTask& task,
                            const ComputeOptions& options, DensityMap* out) {
  return ComputeWithRao(&ComputeSlamBucket, task, options, out);
}

}  // namespace slam
