// Resolution-Aware Optimization (paper Section 3.6): the sweep's per-line
// cost is paid once per line perpendicular to the sweep axis, so sweep
// along whichever axis has MORE pixels — i.e. iterate over the min(X, Y)
// lines. Implemented by transposing the task (swap x/y in points and grid)
// when Y > X, running the base algorithm, and transposing the raster back.
// Exact; lowers the complexity to O(min(X,Y) (max(X,Y) + n [log n]))
// (Theorem 3).
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeSlamSortRao(const KdvTask& task, const ComputeOptions& options,
                          DensityMap* out);

Status ComputeSlamBucketRao(const KdvTask& task,
                            const ComputeOptions& options, DensityMap* out);

/// True when RAO would transpose this task (Y > X). Exposed for tests and
/// the ablation bench.
bool RaoWouldTranspose(const KdvTask& task);

}  // namespace slam
