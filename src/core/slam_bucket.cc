#include "core/slam_bucket.h"

#include "core/sweep_rows.h"

namespace slam {

// The bucket workspace and scalar counting sort that used to live here
// moved behind the dispatched histogram_scatter op (simd/sweep_ops.h) and
// the shared driver in core/sweep_rows.cc, which SLAM_SORT now runs too —
// see DESIGN.md §12. The LowerBucket/UpperBucket formulas stay in the
// header: the SIMD bucket_indices backends inline them, and the boundary
// regression tests pin their clamps.
Status ComputeSlamBucket(const KdvTask& task, const ComputeOptions& options,
                         DensityMap* out) {
  static constexpr SweepMethodLabels kLabels = {
      "SLAM_BUCKET", "slam_bucket/workspace", "slam_bucket/row"};
  return ComputeEndpointSweep(task, options, kLabels, out);
}

}  // namespace slam
