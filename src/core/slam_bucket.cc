#include "core/slam_bucket.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/envelope.h"
#include "core/sweep_state.h"
#include "util/narrow.h"

namespace slam {

namespace {

/// Counting-sort style buckets, reused across rows so a KDV allocates the
/// bucket arrays once. Bucket i (0 <= i < X) holds the endpoints applied
/// when the sweep line reaches pixel i; bucket X holds endpoints beyond the
/// last pixel, which the sweep never applies.
struct BucketWorkspace {
  std::vector<Point> envelope;
  std::vector<BoundInterval> intervals;
  // Per-bucket counts -> exclusive prefix offsets; points scattered into
  // contiguous arrays.
  std::vector<int32_t> lower_offsets;  // size X + 2
  std::vector<int32_t> upper_offsets;
  std::vector<Point> lower_points;
  std::vector<Point> upper_points;

  void PrepareRow(int num_pixels) {
    // size_t arithmetic: num_pixels + 2 overflows `int` when the axis is
    // within 2 pixels of INT_MAX (overflow regression test in
    // tests/kdv/grid_overflow_test.cc).
    lower_offsets.assign(CheckedSize(num_pixels) + 2, 0);
    upper_offsets.assign(CheckedSize(num_pixels) + 2, 0);
  }

  /// Heap held by the bucket workspace, accounted against the memory
  /// budget (the scatter cursors inside BucketEndpoints are transient and
  /// bounded by the offset arrays, so they are folded in here).
  size_t HeapBytes() const {
    return envelope.capacity() * sizeof(Point) +
           intervals.capacity() * sizeof(BoundInterval) +
           (lower_offsets.capacity() + upper_offsets.capacity()) * 2 *
               sizeof(int32_t) +
           (lower_points.capacity() + upper_points.capacity()) *
               sizeof(Point);
  }
};

void BucketEndpoints(BucketWorkspace& ws, const GridAxis& xs) {
  ws.PrepareRow(xs.count);
  // Count per bucket (offset index shifted by one for the exclusive scan).
  // Bucket indices go through size_t before the +1 shift: LowerBucket can
  // legitimately return X itself, and X + 1 in `int` is UB at X = INT_MAX.
  for (const BoundInterval& iv : ws.intervals) {
    ++ws.lower_offsets[CheckedSize(LowerBucket(iv.lb, xs)) + 1];
    ++ws.upper_offsets[CheckedSize(UpperBucket(iv.ub, xs)) + 1];
  }
  for (size_t i = 1; i < ws.lower_offsets.size(); ++i) {
    ws.lower_offsets[i] += ws.lower_offsets[i - 1];
    ws.upper_offsets[i] += ws.upper_offsets[i - 1];
  }
  ws.lower_points.resize(ws.intervals.size());
  ws.upper_points.resize(ws.intervals.size());
  // Scatter, advancing a cursor per bucket (the offsets are restored by
  // shifting: after scattering, offsets[i] holds the start of bucket i+1,
  // so we keep a scratch copy instead).
  std::vector<int32_t> lower_cursor(ws.lower_offsets.begin(),
                                    ws.lower_offsets.end() - 1);
  std::vector<int32_t> upper_cursor(ws.upper_offsets.begin(),
                                    ws.upper_offsets.end() - 1);
  for (const BoundInterval& iv : ws.intervals) {
    ws.lower_points[lower_cursor[LowerBucket(iv.lb, xs)]++] = iv.p;
    ws.upper_points[upper_cursor[UpperBucket(iv.ub, xs)]++] = iv.p;
  }
}

/// Aggregates are accumulated in the row-local frame (see RowLocalOrigin):
/// bucket assignment already happened on the global coordinates, so the
/// translation only affects the accumulated values, never which bucket an
/// endpoint lands in.
template <typename State>
void SweepRowBuckets(const BucketWorkspace& ws, const KdvTask& task,
                     double row_y, std::span<double> row) {
  State state;
  const GridAxis& xs = task.grid.x_axis();
  const Point origin = RowLocalOrigin(xs, row_y);
  for (int ix = 0; ix < xs.count; ++ix) {
    for (int32_t i = ws.lower_offsets[ix]; i < ws.lower_offsets[ix + 1]; ++i) {
      state.PassLowerBound(ws.lower_points[i] - origin);
    }
    for (int32_t i = ws.upper_offsets[ix]; i < ws.upper_offsets[ix + 1]; ++i) {
      state.PassUpperBound(ws.upper_points[i] - origin);
    }
    row[ix] = state.Density(task.kernel, Point{xs.Coord(ix), row_y} - origin,
                            task.bandwidth, task.weight);
  }
}

}  // namespace

Status ComputeSlamBucket(const KdvTask& task, const ComputeOptions& options,
                         DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM has no aggregate decomposition for the " +
        std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  if (task.points.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    // The bucket offset/cursor arrays count endpoints in int32_t (sized to
    // the space model in EstimateAuxiliarySpaceBytes); beyond 2^31 - 1
    // points per row they would wrap.
    return Status::InvalidArgument(
        "SLAM_BUCKET supports at most 2^31 - 1 points");
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* exec = options.exec;
  ScopedMemoryCharge charge(exec, "slam_bucket/workspace");
  std::unique_ptr<EnvelopeScanner> scanner;
  if (options.incremental_envelope) {
    SLAM_RETURN_NOT_OK(charge.Update(task.points.size() * sizeof(Point)));
    scanner = std::make_unique<EnvelopeScanner>(task.points);
  }
  const size_t scanner_bytes = scanner ? scanner->size() * sizeof(Point) : 0;

  BucketWorkspace ws;
  const GridAxis& ys = task.grid.y_axis();
  for (int iy = 0; iy < ys.count; ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "slam_bucket/row"));
    const double k = ys.Coord(iy);
    std::span<const Point> envelope;
    if (scanner) {
      envelope = scanner->Envelope(k, task.bandwidth);
    } else {
      FindEnvelope(task.points, k, task.bandwidth, &ws.envelope);
      envelope = ws.envelope;
    }
    ComputeBoundIntervals(envelope, k, task.bandwidth, &ws.intervals);
    BucketEndpoints(ws, task.grid.x_axis());
    SLAM_RETURN_NOT_OK(charge.Update(scanner_bytes + ws.HeapBytes()));
    if (options.compensated_aggregates) {
      SweepRowBuckets<CompensatedSweepState>(ws, task, k, map.mutable_row(iy));
    } else {
      SweepRowBuckets<SweepState>(ws, task, k, map.mutable_row(iy));
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
