#include "core/slam_bucket.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/envelope.h"
#include "core/sweep_state.h"
#include "simd/sweep_ops.h"
#include "util/narrow.h"

namespace slam {

namespace {

/// Counting-sort style buckets, reused across rows so a KDV allocates the
/// bucket arrays once. Bucket i (0 <= i < X) holds the endpoints applied
/// when the sweep line reaches pixel i; bucket X holds endpoints beyond the
/// last pixel, which the sweep never applies.
struct BucketWorkspace {
  // SoA envelope (global coordinates), interval endpoints, and the bucket
  // index of every endpoint (computed once per row by the dispatched
  // bucket_indices pass — the pre-SoA code evaluated Eqs. 19-20 twice per
  // endpoint, once counting and once scattering).
  std::vector<double> ex, ey;
  std::vector<double> lb, ub;
  std::vector<int32_t> lower_idx, upper_idx;
  // Per-bucket counts -> exclusive prefix offsets (size X + 2); endpoints
  // scattered into contiguous row-local SoA lanes.
  std::vector<int32_t> lower_offsets, upper_offsets;
  std::vector<int32_t> lower_cursor, upper_cursor;
  std::vector<double> lower_px, lower_py, upper_px, upper_py;
  // Row-local pixel x-coordinates; identical for every row, filled once.
  std::vector<double> qx;
  RowSweepScratch scratch;

  void PrepareRow(int num_pixels) {
    // size_t arithmetic: num_pixels + 2 overflows `int` when the axis is
    // within 2 pixels of INT_MAX (overflow regression test in
    // tests/kdv/grid_overflow_test.cc).
    lower_offsets.assign(CheckedSize(num_pixels) + 2, 0);
    upper_offsets.assign(CheckedSize(num_pixels) + 2, 0);
  }

  /// Heap held by the bucket workspace, accounted against the memory
  /// budget.
  size_t HeapBytes() const {
    return (ex.capacity() + ey.capacity() + lb.capacity() + ub.capacity() +
            lower_px.capacity() + lower_py.capacity() + upper_px.capacity() +
            upper_py.capacity() + qx.capacity()) *
               sizeof(double) +
           (lower_idx.capacity() + upper_idx.capacity() +
            lower_offsets.capacity() + upper_offsets.capacity() +
            lower_cursor.capacity() + upper_cursor.capacity()) *
               sizeof(int32_t) +
           scratch.HeapBytes();
  }
};

/// Counting sort of the endpoints by their precomputed bucket indices,
/// scattering row-local coordinates into the SoA lanes. Input order within
/// a bucket is preserved (stable), matching the pre-SoA scatter.
void BucketEndpoints(BucketWorkspace& ws, const GridAxis& xs,
                     const Point& origin) {
  ws.PrepareRow(xs.count);
  const size_t m = ws.lower_idx.size();
  for (size_t i = 0; i < m; ++i) {
    // Offset index shifted by one for the exclusive scan; through size_t
    // because the bucket can legitimately be X itself and X + 1 in `int`
    // is UB at X = INT_MAX.
    ++ws.lower_offsets[CheckedSize(ws.lower_idx[i]) + 1];
    ++ws.upper_offsets[CheckedSize(ws.upper_idx[i]) + 1];
  }
  for (size_t i = 1; i < ws.lower_offsets.size(); ++i) {
    ws.lower_offsets[i] += ws.lower_offsets[i - 1];
    ws.upper_offsets[i] += ws.upper_offsets[i - 1];
  }
  ws.lower_px.resize(m);
  ws.lower_py.resize(m);
  ws.upper_px.resize(m);
  ws.upper_py.resize(m);
  ws.lower_cursor.assign(ws.lower_offsets.begin(),
                         ws.lower_offsets.end() - 1);
  ws.upper_cursor.assign(ws.upper_offsets.begin(),
                         ws.upper_offsets.end() - 1);
  for (size_t i = 0; i < m; ++i) {
    const int32_t lo = ws.lower_cursor[CheckedSize(ws.lower_idx[i])]++;
    const int32_t up = ws.upper_cursor[CheckedSize(ws.upper_idx[i])]++;
    ws.lower_px[CheckedSize(lo)] = ws.ex[i] - origin.x;
    ws.lower_py[CheckedSize(lo)] = ws.ey[i] - origin.y;
    ws.upper_px[CheckedSize(up)] = ws.ex[i] - origin.x;
    ws.upper_py[CheckedSize(up)] = ws.ey[i] - origin.y;
  }
}

/// Copies an AoS envelope span (from the y-sorted scanner) into the SoA
/// lanes (caller-sized to the full point count) and returns its size.
size_t SoaFromSpan(std::span<const Point> envelope, double* ex, double* ey) {
  for (size_t i = 0; i < envelope.size(); ++i) {
    ex[i] = envelope[i].x;
    ey[i] = envelope[i].y;
  }
  return envelope.size();
}

}  // namespace

Status ComputeSlamBucket(const KdvTask& task, const ComputeOptions& options,
                         DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM has no aggregate decomposition for the " +
        std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  if (task.points.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    // The bucket offset/cursor arrays count endpoints in int32_t (sized to
    // the space model in EstimateAuxiliarySpaceBytes); beyond 2^31 - 1
    // points per row they would wrap.
    return Status::InvalidArgument(
        "SLAM_BUCKET supports at most 2^31 - 1 points");
  }
  SLAM_ASSIGN_OR_RETURN(const SimdOps* ops, GetSimdOps(options.simd));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* exec = options.exec;
  ScopedMemoryCharge charge(exec, "slam_bucket/workspace");
  std::unique_ptr<EnvelopeScanner> scanner;
  if (options.incremental_envelope) {
    SLAM_RETURN_NOT_OK(charge.Update(task.points.size() * sizeof(Point)));
    scanner = std::make_unique<EnvelopeScanner>(task.points);
  }
  const size_t scanner_bytes = scanner ? scanner->size() * sizeof(Point) : 0;

  BucketWorkspace ws;
  // The envelope lanes are sized to n once: the dispatched filter writes
  // survivors through a raw cursor (vector backends store whole registers
  // at it), so no per-survivor capacity check runs in the hot scan.
  ws.ex.resize(task.points.size());
  ws.ey.resize(task.points.size());
  const GridAxis& xs = task.grid.x_axis();
  const GridAxis& ys = task.grid.y_axis();
  const double origin_x = RowLocalOrigin(xs, 0.0).x;
  ws.qx.resize(CheckedSize(xs.count));
  for (int ix = 0; ix < xs.count; ++ix) {
    ws.qx[CheckedSize(ix)] = xs.Coord(ix) - origin_x;
  }
  for (int iy = 0; iy < ys.count; ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "slam_bucket/row"));
    const double k = ys.Coord(iy);
    const Point origin = RowLocalOrigin(xs, k);
    const size_t m =
        scanner ? SoaFromSpan(scanner->Envelope(k, task.bandwidth),
                              ws.ex.data(), ws.ey.data())
                : ops->envelope_filter(task.points, k, task.bandwidth,
                                       ws.ex.data(), ws.ey.data());
    ws.lb.resize(m);
    ws.ub.resize(m);
    ops->bound_intervals(ws.ex.data(), ws.ey.data(), m, k, task.bandwidth,
                         ws.lb.data(), ws.ub.data());
    ws.lower_idx.resize(m);
    ws.upper_idx.resize(m);
    ops->bucket_indices(ws.lb.data(), ws.ub.data(), m, xs,
                        ws.lower_idx.data(), ws.upper_idx.data());
    BucketEndpoints(ws, xs, origin);
    SLAM_RETURN_NOT_OK(charge.Update(scanner_bytes + ws.HeapBytes()));

    RowSweepArgs args;
    args.kernel = task.kernel;
    args.compensated = options.compensated_aggregates;
    args.width = xs.count;
    args.bandwidth = task.bandwidth;
    args.weight = task.weight;
    args.qy = 0.0;  // the row-local frame pins the query y to the row
    args.qx = ws.qx.data();
    args.lower = {ws.lower_offsets.data(), ws.lower_px.data(),
                  ws.lower_py.data()};
    args.upper = {ws.upper_offsets.data(), ws.upper_px.data(),
                  ws.upper_py.data()};
    args.out = map.mutable_row(iy).data();
    ops->row_sweep(args, &ws.scratch);
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
