// SLAM_BUCKET (paper Algorithm 2, Section 3.5): instead of sorting the
// interval endpoints, drop each endpoint into the bucket between the two
// consecutive pixels that bracket it (O(1) per endpoint thanks to the
// uniform pixel gap, Eqs. 19-20), then sweep pixels left to right, merging
// each pixel's buckets into the L/U aggregates. Exact. O(Y (n + X)) total
// (Theorem 2) — the log n of SLAM_SORT is gone.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeSlamBucket(const KdvTask& task, const ComputeOptions& options,
                         DensityMap* out);

}  // namespace slam
