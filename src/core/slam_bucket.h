// SLAM_BUCKET (paper Algorithm 2, Section 3.5): instead of sorting the
// interval endpoints, drop each endpoint into the bucket between the two
// consecutive pixels that bracket it (O(1) per endpoint thanks to the
// uniform pixel gap, Eqs. 19-20), then sweep pixels left to right, merging
// each pixel's buckets into the L/U aggregates. Exact. O(Y (n + X)) total
// (Theorem 2) — the log n of SLAM_SORT is gone.
#pragma once

#include <cmath>

#include "kdv/density_map.h"
#include "kdv/grid.h"
#include "kdv/task.h"
#include "util/status.h"
#include "util/units.h"

namespace slam {

/// Bucket of a lower bound (a world-x interval end, never a pixel index —
/// the WorldX parameter makes the unit a compile-time fact): the first
/// pixel index i with value <= x_i, i.e. ceil((value - x0) / gap),
/// clamped to [0, X] (Eq. 19). The result is a bucket slot, not a pixel:
/// X is the valid park bucket, one past the last pixel. Exposed for the
/// boundary regression tests — the strict-inequality convention of
/// sweep_state.h lives or dies on these two clamps.
inline int LowerBucket(WorldX value, const GridAxis& xs) {
  const double t = std::ceil((value.value() - xs.origin) / xs.gap);
  if (t <= 0.0) return 0;
  if (t >= static_cast<double>(xs.count)) return xs.count;
  // In-range by the clamps above; one of the two sanctioned float->index
  // conversion sites (see util/narrow.h).
  return static_cast<int>(t);  // lint:allow(narrowing-cast) NOLINT(slam-narrowing-cast)
}

/// Bucket of an upper bound: the first pixel index i with value < x_i,
/// i.e. floor((value - x0) / gap) + 1, clamped to [0, X] (Eq. 20; strict
/// so boundary points still count at the pixel they end on, see
/// sweep_state.h).
inline int UpperBucket(WorldX value, const GridAxis& xs) {
  const double t = std::floor((value.value() - xs.origin) / xs.gap) + 1.0;
  if (t <= 0.0) return 0;
  if (t >= static_cast<double>(xs.count)) return xs.count;
  // In-range by the clamps above (the other sanctioned site).
  return static_cast<int>(t);  // lint:allow(narrowing-cast) NOLINT(slam-narrowing-cast)
}

Status ComputeSlamBucket(const KdvTask& task, const ComputeOptions& options,
                         DensityMap* out);

}  // namespace slam
