#include "core/slam_sort.h"

#include "core/sweep_rows.h"

namespace slam {

// Historically this file carried Algorithm 1 verbatim: per row, sort the
// interval endpoints with std::sort and merge them against the pixel
// coordinates. The per-pixel runs that merge produced never needed an
// internal order (DESIGN.md §12), so the comparison sort was replaced by
// the pixel-binned counting sort — at which point the implementation became
// the same five dispatched passes as SLAM_BUCKET, and both now live in
// ComputeEndpointSweep. The public method identity (name, checkpoint
// sites, budget tags) is all that remains here; complexity is now
// O(Y (n + X)), matching Theorem 2 rather than Theorem 1's O(Y (n log n +
// X)) bound.
Status ComputeSlamSort(const KdvTask& task, const ComputeOptions& options,
                       DensityMap* out) {
  static constexpr SweepMethodLabels kLabels = {
      "SLAM_SORT", "slam_sort/workspace", "slam_sort/row"};
  return ComputeEndpointSweep(task, options, kLabels, out);
}

}  // namespace slam
