#include "core/slam_sort.h"

#include <algorithm>
#include <vector>

#include "core/bounds.h"
#include "core/envelope.h"
#include "core/sweep_state.h"

namespace slam {

namespace {

/// One endpoint event of the sweep: the x-value where a point's interval
/// opens (lower bound) or closes (upper bound).
struct Event {
  double x;
  Point p;
};

struct RowWorkspace {
  std::vector<Point> envelope;
  std::vector<BoundInterval> intervals;
  std::vector<Event> lower_events;
  std::vector<Event> upper_events;

  /// Heap held by the sweep workspace, accounted against the memory budget.
  size_t HeapBytes() const {
    return envelope.capacity() * sizeof(Point) +
           intervals.capacity() * sizeof(BoundInterval) +
           (lower_events.capacity() + upper_events.capacity()) *
               sizeof(Event);
  }
};

/// Sweeps one row: pixels at x0, x0+gx, ..., writing densities into `row`.
/// The three sorted streams (lower events, upper events, pixels) are merged
/// by advancing the event cursors up to each pixel — LB events fire on
/// x <= q.x and UB events on x < q.x, so a point whose interval ends
/// exactly on a pixel still counts there (see sweep_state.h).
///
/// All aggregate arithmetic happens in a row-local frame: points and query
/// are translated by the row's center before accumulating, so aggregate
/// magnitudes scale with the row extent and bandwidth instead of the map
/// projection (kernels depend only on q − p, so Eq. 5 is preserved
/// exactly). The event x-coordinates stay global — only the accumulated
/// values shift — so the merge order is untouched.
template <typename State>
void SweepRow(const RowWorkspace& ws, const KdvTask& task, double row_y,
              std::span<double> row) {
  State state;
  size_t li = 0;
  size_t ui = 0;
  const GridAxis& xs = task.grid.x_axis();
  const Point origin = RowLocalOrigin(xs, row_y);
  for (int ix = 0; ix < xs.count; ++ix) {
    const double px = xs.Coord(ix);
    while (li < ws.lower_events.size() && ws.lower_events[li].x <= px) {
      state.PassLowerBound(ws.lower_events[li].p - origin);
      ++li;
    }
    while (ui < ws.upper_events.size() && ws.upper_events[ui].x < px) {
      state.PassUpperBound(ws.upper_events[ui].p - origin);
      ++ui;
    }
    row[ix] = state.Density(task.kernel, Point{px, row_y} - origin,
                            task.bandwidth, task.weight);
  }
}

}  // namespace

Status ComputeSlamSort(const KdvTask& task, const ComputeOptions& options,
                       DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM has no aggregate decomposition for the " +
        std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* exec = options.exec;
  ScopedMemoryCharge charge(exec, "slam_sort/workspace");
  // The y-sorted scanner is an optional exact optimization; Algorithm 1
  // rescans all n points per row.
  std::unique_ptr<EnvelopeScanner> scanner;
  if (options.incremental_envelope) {
    SLAM_RETURN_NOT_OK(
        charge.Update(task.points.size() * sizeof(Point)));
    scanner = std::make_unique<EnvelopeScanner>(task.points);
  }
  const size_t scanner_bytes = scanner ? scanner->size() * sizeof(Point) : 0;

  RowWorkspace ws;
  const GridAxis& ys = task.grid.y_axis();
  for (int iy = 0; iy < ys.count; ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "slam_sort/row"));
    const double k = ys.Coord(iy);
    std::span<const Point> envelope;
    if (scanner) {
      envelope = scanner->Envelope(k, task.bandwidth);
    } else {
      FindEnvelope(task.points, k, task.bandwidth, &ws.envelope);
      envelope = ws.envelope;
    }
    ComputeBoundIntervals(envelope, k, task.bandwidth, &ws.intervals);

    ws.lower_events.clear();
    ws.upper_events.clear();
    ws.lower_events.reserve(ws.intervals.size());
    ws.upper_events.reserve(ws.intervals.size());
    for (const BoundInterval& iv : ws.intervals) {
      ws.lower_events.push_back({iv.lb, iv.p});
      ws.upper_events.push_back({iv.ub, iv.p});
    }
    SLAM_RETURN_NOT_OK(charge.Update(scanner_bytes + ws.HeapBytes()));
    // The O(n log n) step Theorem 1 charges per row.
    const auto by_x = [](const Event& a, const Event& b) { return a.x < b.x; };
    std::sort(ws.lower_events.begin(), ws.lower_events.end(), by_x);
    std::sort(ws.upper_events.begin(), ws.upper_events.end(), by_x);

    if (options.compensated_aggregates) {
      SweepRow<CompensatedSweepState>(ws, task, k, map.mutable_row(iy));
    } else {
      SweepRow<SweepState>(ws, task, k, map.mutable_row(iy));
    }
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
