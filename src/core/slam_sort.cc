#include "core/slam_sort.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "core/envelope.h"
#include "core/sweep_state.h"
#include "simd/sweep_ops.h"
#include "util/narrow.h"

namespace slam {

namespace {

/// One endpoint event of the sweep: the x-value where a point's interval
/// opens (lower bound) or closes (upper bound), carrying the point's
/// global coordinates for the aggregate updates.
struct Event {
  double x;
  double px;
  double py;
};

struct RowWorkspace {
  // SoA envelope (global coordinates) and interval endpoints.
  std::vector<double> ex, ey;
  std::vector<double> lb, ub;
  std::vector<Event> lower_events, upper_events;
  // Per-pixel run offsets into the sorted event arrays (width + 1 entries):
  // events [offsets[i], offsets[i+1]) are applied before pixel i, i.e. the
  // lower events with x <= x_i and the upper events with x < x_i — the
  // merge loop the pre-SoA sweep ran per pixel, done once per row.
  std::vector<int32_t> lower_offsets, upper_offsets;
  // Sorted events split into SoA row-local coordinate lanes.
  std::vector<double> lower_px, lower_py, upper_px, upper_py;
  // Row-local pixel x-coordinates; identical for every row, filled once.
  std::vector<double> qx;
  RowSweepScratch scratch;

  /// Heap held by the sweep workspace, accounted against the memory budget.
  size_t HeapBytes() const {
    return (ex.capacity() + ey.capacity() + lb.capacity() + ub.capacity() +
            lower_px.capacity() + lower_py.capacity() + upper_px.capacity() +
            upper_py.capacity() + qx.capacity()) *
               sizeof(double) +
           (lower_events.capacity() + upper_events.capacity()) *
               sizeof(Event) +
           (lower_offsets.capacity() + upper_offsets.capacity()) *
               sizeof(int32_t) +
           scratch.HeapBytes();
  }
};

/// Copies an AoS envelope span (from the y-sorted scanner) into the SoA
/// lanes (caller-sized to the full point count) and returns its size.
size_t SoaFromSpan(std::span<const Point> envelope, double* ex, double* ey) {
  for (size_t i = 0; i < envelope.size(); ++i) {
    ex[i] = envelope[i].x;
    ey[i] = envelope[i].y;
  }
  return envelope.size();
}

/// Merges the sorted events against the pixel coordinates into per-pixel
/// run offsets, and splits the events into row-local SoA lanes. LB events
/// fire on x <= q.x and UB events on x < q.x, so a point whose interval
/// ends exactly on a pixel still counts there (see sweep_state.h).
void BuildRuns(const std::vector<Event>& events, const GridAxis& xs,
               const Point& origin, bool strict,
               std::vector<int32_t>* offsets, std::vector<double>* px,
               std::vector<double>* py) {
  offsets->resize(CheckedSize(xs.count) + 1);
  (*offsets)[0] = 0;
  size_t i = 0;
  for (int ix = 0; ix < xs.count; ++ix) {
    const double qx = xs.Coord(ix);
    if (strict) {
      while (i < events.size() && events[i].x < qx) ++i;
    } else {
      while (i < events.size() && events[i].x <= qx) ++i;
    }
    (*offsets)[CheckedSize(ix) + 1] = CheckedNarrow<int32_t>(i);
  }
  px->resize(events.size());
  py->resize(events.size());
  for (size_t e = 0; e < events.size(); ++e) {
    (*px)[e] = events[e].px - origin.x;
    (*py)[e] = events[e].py - origin.y;
  }
}

}  // namespace

Status ComputeSlamSort(const KdvTask& task, const ComputeOptions& options,
                       DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM has no aggregate decomposition for the " +
        std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  if (task.points.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    // The per-pixel run offsets count endpoints in int32_t (the SIMD row
    // sweep's run representation, simd/sweep_ops.h).
    return Status::InvalidArgument(
        "SLAM_SORT supports at most 2^31 - 1 points");
  }
  SLAM_ASSIGN_OR_RETURN(const SimdOps* ops, GetSimdOps(options.simd));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* exec = options.exec;
  ScopedMemoryCharge charge(exec, "slam_sort/workspace");
  // The y-sorted scanner is an optional exact optimization; Algorithm 1
  // rescans all n points per row.
  std::unique_ptr<EnvelopeScanner> scanner;
  if (options.incremental_envelope) {
    SLAM_RETURN_NOT_OK(
        charge.Update(task.points.size() * sizeof(Point)));
    scanner = std::make_unique<EnvelopeScanner>(task.points);
  }
  const size_t scanner_bytes = scanner ? scanner->size() * sizeof(Point) : 0;

  RowWorkspace ws;
  // Envelope lanes sized to n once so the dispatched filter writes
  // survivors through a raw cursor with no per-survivor capacity check
  // (vector backends store whole registers at the cursor).
  ws.ex.resize(task.points.size());
  ws.ey.resize(task.points.size());
  const GridAxis& xs = task.grid.x_axis();
  const GridAxis& ys = task.grid.y_axis();
  // The row-local frame's x-origin is row-independent, so the translated
  // pixel coordinates are computed once for the whole KDV.
  const double origin_x = RowLocalOrigin(xs, 0.0).x;
  ws.qx.resize(CheckedSize(xs.count));
  for (int ix = 0; ix < xs.count; ++ix) {
    ws.qx[CheckedSize(ix)] = xs.Coord(ix) - origin_x;
  }
  for (int iy = 0; iy < ys.count; ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "slam_sort/row"));
    const double k = ys.Coord(iy);
    const Point origin = RowLocalOrigin(xs, k);
    const size_t m =
        scanner ? SoaFromSpan(scanner->Envelope(k, task.bandwidth),
                              ws.ex.data(), ws.ey.data())
                : ops->envelope_filter(task.points, k, task.bandwidth,
                                       ws.ex.data(), ws.ey.data());
    ws.lb.resize(m);
    ws.ub.resize(m);
    ops->bound_intervals(ws.ex.data(), ws.ey.data(), m, k, task.bandwidth,
                         ws.lb.data(), ws.ub.data());

    ws.lower_events.resize(m);
    ws.upper_events.resize(m);
    for (size_t i = 0; i < m; ++i) {
      ws.lower_events[i] = {ws.lb[i], ws.ex[i], ws.ey[i]};
      ws.upper_events[i] = {ws.ub[i], ws.ex[i], ws.ey[i]};
    }
    // The O(n log n) step Theorem 1 charges per row.
    const auto by_x = [](const Event& a, const Event& b) { return a.x < b.x; };
    std::sort(ws.lower_events.begin(), ws.lower_events.end(), by_x);
    std::sort(ws.upper_events.begin(), ws.upper_events.end(), by_x);
    BuildRuns(ws.lower_events, xs, origin, /*strict=*/false,
              &ws.lower_offsets, &ws.lower_px, &ws.lower_py);
    BuildRuns(ws.upper_events, xs, origin, /*strict=*/true,
              &ws.upper_offsets, &ws.upper_px, &ws.upper_py);
    SLAM_RETURN_NOT_OK(charge.Update(scanner_bytes + ws.HeapBytes()));

    RowSweepArgs args;
    args.kernel = task.kernel;
    args.compensated = options.compensated_aggregates;
    args.width = xs.count;
    args.bandwidth = task.bandwidth;
    args.weight = task.weight;
    args.qy = 0.0;  // the row-local frame pins the query y to the row
    args.qx = ws.qx.data();
    args.lower = {ws.lower_offsets.data(), ws.lower_px.data(),
                  ws.lower_py.data()};
    args.upper = {ws.upper_offsets.data(), ws.upper_px.data(),
                  ws.upper_py.data()};
    args.out = map.mutable_row(iy).data();
    ops->row_sweep(args, &ws.scratch);
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
