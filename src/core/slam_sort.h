// SLAM_SORT (paper Algorithm 1, Section 3.4): per pixel row, sort the
// interval endpoints of the envelope points and sweep them together with
// the (already sorted) pixel x-coordinates, maintaining the L/U aggregates.
// Exact. O(Y (n log n + X)) total (Theorem 1).
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeSlamSort(const KdvTask& task, const ComputeOptions& options,
                       DensityMap* out);

}  // namespace slam
