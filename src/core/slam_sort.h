// SLAM_SORT (paper Algorithm 1, Section 3.4): per pixel row, order the
// interval endpoints of the envelope points and sweep them together with
// the (already sorted) pixel x-coordinates, maintaining the L/U aggregates.
// Exact. The paper's per-row comparison sort gives O(Y (n log n + X))
// (Theorem 1); this implementation orders the endpoints with the
// pixel-binned counting sort instead (per-pixel runs need no internal
// order — DESIGN.md §12), which drops the row cost to O(n + X) and makes
// the method share SLAM_BUCKET's five-pass driver (core/sweep_rows.h).
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

Status ComputeSlamSort(const KdvTask& task, const ComputeOptions& options,
                       DensityMap* out);

}  // namespace slam
