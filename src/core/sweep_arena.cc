#include "core/sweep_arena.h"

#include "core/sweep_state.h"
#include "util/narrow.h"

namespace slam {

namespace {

thread_local SweepArena t_thread_arena;
thread_local bool t_thread_arena_in_use = false;

}  // namespace

void SweepArena::PrepareCompute(size_t num_points, const GridAxis& xs) {
  ex.resize(num_points);
  ey.resize(num_points);
  const size_t pixels = CheckedSize(xs.count);
  // size_t arithmetic: pixels + 2 overflows `int` when the axis is within
  // 2 pixels of INT_MAX (regression test in tests/kdv/grid_overflow_test.cc).
  lower_offsets.resize(pixels + 2);
  upper_offsets.resize(pixels + 2);
  lower_cursor.resize(pixels + 1);
  upper_cursor.resize(pixels + 1);
  if (!qx_valid_ || qx_origin_ != xs.origin || qx_gap_ != xs.gap ||
      qx_count_ != xs.count) {
    // The row-local frame's x-origin is row-independent, so the translated
    // pixel coordinates serve every row — and every later compute on the
    // same axis.
    const double origin_x = RowLocalOrigin(xs, WorldY(0.0)).x;
    qx.resize(pixels);
    for (int ix = 0; ix < xs.count; ++ix) {
      qx[CheckedSize(ix)] = xs.Coord(ix) - origin_x;
    }
    qx_valid_ = true;
    qx_origin_ = xs.origin;
    qx_gap_ = xs.gap;
    qx_count_ = xs.count;
  }
}

void SweepArena::PrepareRow(size_t num_endpoints) {
  lb.resize(num_endpoints);
  ub.resize(num_endpoints);
  lower_idx.resize(num_endpoints);
  upper_idx.resize(num_endpoints);
  lower_px.resize(num_endpoints);
  lower_py.resize(num_endpoints);
  upper_px.resize(num_endpoints);
  upper_py.resize(num_endpoints);
}

size_t SweepArena::HeapBytes() const {
  return (ex.capacity() + ey.capacity() + lb.capacity() + ub.capacity() +
          lower_px.capacity() + lower_py.capacity() + upper_px.capacity() +
          upper_py.capacity() + qx.capacity()) *
             sizeof(double) +
         (lower_idx.capacity() + upper_idx.capacity() +
          lower_offsets.capacity() + upper_offsets.capacity() +
          lower_cursor.capacity() + upper_cursor.capacity()) *
             sizeof(int32_t) +
         scratch.HeapBytes();
}

void SweepArena::Release() {
  *this = SweepArena();
}

ScopedArena::ScopedArena() {
  if (!t_thread_arena_in_use) {
    t_thread_arena_in_use = true;
    borrowed_thread_arena_ = true;
    arena_ = &t_thread_arena;
  } else {
    fallback_ = std::make_unique<SweepArena>();
    arena_ = fallback_.get();
  }
}

ScopedArena::~ScopedArena() {
  if (borrowed_thread_arena_) t_thread_arena_in_use = false;
}

SweepArena& ThreadSweepArenaForTest() { return t_thread_arena; }

}  // namespace slam
