// Per-thread reusable workspace for the endpoint sweep methods (DESIGN.md
// §12). One compute over a Y-row grid runs Y rows through the same five
// dispatched passes (simd/sweep_ops.h); every lane the passes touch lives
// here so a row costs zero allocations once the arena has grown to the
// task's high-water mark, and — via the thread-local borrow in ScopedArena —
// consecutive computes on the same thread (parallel stripes, animation
// frames, serving retries) reuse the same heap instead of re-growing it.
//
// Accounting contract: the arena's heap is charged against the borrowing
// compute's ExecContext memory budget (ScopedMemoryCharge over HeapBytes())
// for the duration of that compute. Between computes the thread arena holds
// its memory uncharged — it is a thread cache, like a malloc arena; the
// engine's pre-flight (EstimateAuxiliarySpaceBytes) still sees the full
// per-compute footprint. A compute whose charge fails must call Release()
// before surfacing the error so a tightened budget is honored on the next
// attempt rather than failing forever against cached capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kdv/grid.h"
#include "simd/sweep_ops.h"

namespace slam {

struct SweepArena {
  // SoA envelope (global coordinates) and interval endpoints.
  std::vector<double> ex, ey;
  std::vector<double> lb, ub;
  // Pixel bucket of every endpoint (the bucket_indices pass).
  std::vector<int32_t> lower_idx, upper_idx;
  // Per-pixel run offsets (X + 2) and scatter cursors (X + 1) for the
  // histogram_scatter pass; endpoints scattered into contiguous row-local
  // SoA lanes.
  std::vector<int32_t> lower_offsets, upper_offsets;
  std::vector<int32_t> lower_cursor, upper_cursor;
  std::vector<double> lower_px, lower_py, upper_px, upper_py;
  // Row-local pixel x-coordinates. Identical for every row of a compute,
  // and cached across computes keyed on the axis parameters, so a stripe
  // worker rendering the same grid repeatedly never refills it.
  std::vector<double> qx;
  RowSweepScratch scratch;

  /// Sizes the per-compute lanes: envelope lanes to the full point count
  /// (the dispatched filter writes survivors through a raw cursor, whole
  /// registers at a time — see SimdOps::envelope_filter), offset/cursor
  /// arrays to the pixel axis, and qx filled unless the cache key (origin,
  /// gap, count) already matches.
  void PrepareCompute(size_t num_points, const GridAxis& xs);

  /// Sizes the per-row endpoint lanes for `num_endpoints` envelope points.
  void PrepareRow(size_t num_endpoints);

  /// Heap held by the arena, accounted against the borrowing compute's
  /// memory budget.
  size_t HeapBytes() const;

  /// Frees every lane (and invalidates the qx cache) so a failed budget
  /// charge is not sticky across computes.
  void Release();

 private:
  bool qx_valid_ = false;
  double qx_origin_ = 0.0;
  double qx_gap_ = 0.0;
  int qx_count_ = 0;
};

/// RAII borrow of the calling thread's arena. The thread-local arena is
/// handed to one borrower at a time; a nested borrow (a compute issued from
/// inside another compute on the same thread) falls back to a private
/// heap-allocated arena so the outer compute's lanes are never clobbered.
class ScopedArena {
 public:
  ScopedArena();
  ~ScopedArena();

  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

  SweepArena& operator*() { return *arena_; }
  SweepArena* operator->() { return arena_; }

  /// True when this borrow got the shared thread arena (false = nested
  /// fallback). Exposed for the reuse tests.
  bool owns_thread_arena() const { return borrowed_thread_arena_; }

 private:
  SweepArena* arena_ = nullptr;
  std::unique_ptr<SweepArena> fallback_;
  bool borrowed_thread_arena_ = false;
};

/// The calling thread's shared arena, for tests that assert reuse (lane
/// capacity surviving across computes) without reaching into ScopedArena.
SweepArena& ThreadSweepArenaForTest();

}  // namespace slam
