#include "core/sweep_rows.h"

#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "core/envelope.h"
#include "core/sweep_arena.h"
#include "core/sweep_state.h"
#include "simd/sweep_ops.h"
#include "util/narrow.h"
#include "util/units.h"

namespace slam {

namespace {

/// Copies an AoS envelope span (from the y-sorted scanner) into the SoA
/// lanes (caller-sized to the full point count) and returns its size.
/// The lanes are typed at this boundary (TypedLane, util/units.h): the
/// compiler rejects scattering a y coordinate into the x lane; only the
/// dispatched backends below ever see the raw doubles.
size_t SoaFromSpan(std::span<const Point> envelope, TypedLane<WorldX> ex,
                   TypedLane<WorldY> ey) {
  for (size_t i = 0; i < envelope.size(); ++i) {
    ex.Store(i, WorldX(envelope[i].x));
    ey.Store(i, WorldY(envelope[i].y));
  }
  return envelope.size();
}

}  // namespace

Status ComputeEndpointSweep(const KdvTask& task, const ComputeOptions& options,
                            const SweepMethodLabels& labels, DensityMap* out) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (!KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM has no aggregate decomposition for the " +
        std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  if (task.points.size() >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    // The per-pixel run offsets and scatter cursors count endpoints in
    // int32_t (the SIMD run representation, simd/sweep_ops.h); beyond
    // 2^31 - 1 points per row they would wrap.
    return Status::InvalidArgument(std::string(labels.method) +
                                   " supports at most 2^31 - 1 points");
  }
  SLAM_ASSIGN_OR_RETURN(const SimdOps* ops, GetSimdOps(options.simd));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* exec = options.exec;
  ScopedMemoryCharge charge(exec, labels.workspace);
  // The y-sorted scanner is an optional exact optimization; Algorithms 1-2
  // rescan all n points per row.
  std::unique_ptr<EnvelopeScanner> scanner;
  if (options.incremental_envelope) {
    SLAM_RETURN_NOT_OK(charge.Update(task.points.size() * sizeof(Point)));
    scanner = std::make_unique<EnvelopeScanner>(task.points);
  }
  const size_t scanner_bytes = scanner ? scanner->size() * sizeof(Point) : 0;

  const GridAxis& xs = task.grid.x_axis();
  const RowIndex rows(task.grid.height());
  ScopedArena ws;
  ws->PrepareCompute(task.points.size(), xs);
  for (RowIndex iy(0); iy < rows; ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, labels.row));
    const WorldY k = task.grid.YCoord(iy);
    const Point origin = RowLocalOrigin(xs, k);
    const size_t lane_size = task.points.size();
    const size_t m =
        scanner ? SoaFromSpan(scanner->Envelope(k, task.bandwidth),
                              TypedLane<WorldX>(ws->ex.data(), lane_size),
                              TypedLane<WorldY>(ws->ey.data(), lane_size))
                : ops->envelope_filter(task.points, k.value(), task.bandwidth,
                                       ws->ex.data(), ws->ey.data());
    ws->PrepareRow(m);
    ops->bound_intervals(ws->ex.data(), ws->ey.data(), m, k.value(),
                         task.bandwidth, ws->lb.data(), ws->ub.data());
    ops->bucket_indices(ws->lb.data(), ws->ub.data(), m, xs,
                        ws->lower_idx.data(), ws->upper_idx.data());

    HistogramScatterArgs hs;
    hs.n = m;
    hs.num_pixels = xs.count;
    hs.lower_idx = ws->lower_idx.data();
    hs.upper_idx = ws->upper_idx.data();
    hs.ex = ws->ex.data();
    hs.ey = ws->ey.data();
    hs.origin_x = origin.x;
    hs.origin_y = origin.y;
    hs.lower_offsets = ws->lower_offsets.data();
    hs.upper_offsets = ws->upper_offsets.data();
    hs.lower_cursor = ws->lower_cursor.data();
    hs.upper_cursor = ws->upper_cursor.data();
    hs.lower_px = ws->lower_px.data();
    hs.lower_py = ws->lower_py.data();
    hs.upper_px = ws->upper_px.data();
    hs.upper_py = ws->upper_py.data();
    ops->histogram_scatter(hs);

    if (Status charged = charge.Update(scanner_bytes + ws->HeapBytes());
        !charged.ok()) {
      // Drop the cached capacity before surfacing the failure: the arena
      // outlives this compute, and a budget refusal must not be sticky for
      // the thread's next (possibly smaller) task.
      ws->Release();
      return charged;
    }

    RowSweepArgs args;
    args.kernel = task.kernel;
    args.compensated = options.compensated_aggregates;
    args.width = xs.count;
    args.bandwidth = task.bandwidth;
    args.weight = task.weight;
    args.qy = 0.0;  // the row-local frame pins the query y to the row
    args.qx = ws->qx.data();
    args.lower = {ws->lower_offsets.data(), ws->lower_px.data(),
                  ws->lower_py.data()};
    args.upper = {ws->upper_offsets.data(), ws->upper_px.data(),
                  ws->upper_py.data()};
    args.out = map.mutable_density_row(iy).raw();
    ops->row_sweep(args, &ws->scratch);
  }
  *out = std::move(map);
  return Status::OK();
}

}  // namespace slam
