// The shared row driver behind SLAM_SORT and SLAM_BUCKET (DESIGN.md §12).
// Since the pixel-binned counting sort replaced SLAM_SORT's per-row
// comparison sort, both methods run the identical five dispatched passes
// (simd/sweep_ops.h) per row; only their public names — checkpoint sites,
// budget-charge tags, error messages — differ, so they share one driver
// parameterized on those labels.
#pragma once

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/status.h"

namespace slam {

/// The method-identity strings threaded through the shared driver. The
/// fault-injection sites and budget-charge tags are part of each method's
/// observable contract (util/exec_context.h), so unifying the
/// implementations must not unify the labels.
struct SweepMethodLabels {
  const char* method;     // error messages, e.g. "SLAM_SORT"
  const char* workspace;  // budget-charge tag, e.g. "slam_sort/workspace"
  const char* row;        // per-row checkpoint site, e.g. "slam_sort/row"
};

Status ComputeEndpointSweep(const KdvTask& task, const ComputeOptions& options,
                            const SweepMethodLabels& labels, DensityMap* out);

}  // namespace slam
