// The sweep line's running state (paper Section 3.4): the aggregates of
//   L_ell = {p in E(k) : LB_k(p) <= ell.x}   (lower bounds passed)
//   U_ell = {p in E(k) : UB_k(p) <  ell.x}   (upper bounds passed)
// R(q) = L \ U when the sweep line sits on q.x, so the range aggregates are
// the component-wise difference (Lemmas 3 and 5).
//
// Note the strict inequality in U: the paper uses <= (Eq. 11), under which
// a point at distance exactly b from q is dropped — harmless for the
// Epanechnikov/quartic kernels (their value at b is 0) but off by w/b for
// the uniform kernel. The strict form matches direct evaluation
// (dist <= b contributes) for every kernel, so all methods agree bit-wise
// on boundary points.
#pragma once

#include "geom/point.h"
#include "kdv/kernel.h"

namespace slam {

struct SweepState {
  RangeAggregates lower;  // aggregates of L_ell
  RangeAggregates upper;  // aggregates of U_ell

  void PassLowerBound(const Point& p) { lower.Add(p); }
  void PassUpperBound(const Point& p) { upper.Add(p); }

  void Reset() {
    lower = RangeAggregates{};
    upper = RangeAggregates{};
  }

  /// Exact density at pixel q (Lemma 3 / Lemma 5 + Eq. 5).
  double Density(KernelType kernel, const Point& q, double bandwidth,
                 double weight) const {
    return DensityFromAggregates(kernel, q, lower.Minus(upper), bandwidth,
                                 weight);
  }
};

}  // namespace slam
