// The sweep line's running state (paper Section 3.4): the aggregates of
//   L_ell = {p in E(k) : LB_k(p) <= ell.x}   (lower bounds passed)
//   U_ell = {p in E(k) : UB_k(p) <  ell.x}   (upper bounds passed)
// R(q) = L \ U when the sweep line sits on q.x, so the range aggregates are
// the component-wise difference (Lemmas 3 and 5).
//
// Note the strict inequality in U: the paper uses <= (Eq. 11), under which
// a point at distance exactly b from q is dropped — harmless for the
// Epanechnikov/quartic kernels (their value at b is 0) but off by w/b for
// the uniform kernel. The strict form matches direct evaluation
// (dist <= b contributes) for every kernel, so all methods agree bit-wise
// on boundary points.
//
// Two state layouts live here:
//  * SweepStateT — the original array-of-structs accumulator pair over
//    RangeAggregates / CompensatedRangeAggregates. Kept as the readable
//    reference implementation and for the unit tests that pin the sweep
//    semantics.
//  * SoA lanes — the layout the row sweeps actually run on since the SIMD
//    refactor (DESIGN.md §11): each aggregate channel is one slot of a
//    contiguous, 32-byte-aligned array, with a parallel array of Neumaier
//    compensation terms. A vector backend loads `kSweepLanes`-sized groups
//    of channels into registers and keeps the entire running state
//    register-resident across a row. Channel values and channel count per
//    kernel are defined here so scalar and vector backends cannot drift.
//
// Because set union is commutative and Add folds one endpoint at a time,
// the aggregates depend only on the *set* of endpoints applied before each
// pixel, never on the order within that per-pixel run — the
// run-order-irrelevance invariant (DESIGN.md §12) that lets the sweep
// methods feed the accumulators from a counting sort instead of a
// comparison sort. (The compensated rounding *error* does depend on
// fold order at the last-ulp level; the 1e-9 oracle bound is what the
// methods promise, and it holds for any run order.)
#pragma once

#include <cstddef>

#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "util/units.h"

namespace slam {

/// Origin of the row-local evaluation frame shared by the sweep variants:
/// the row's x-center paired with the row's own y. Accumulating p − origin
/// and querying at q − origin keeps every aggregate magnitude at the scale
/// of the row extent plus bandwidth, independent of how far the map
/// projection puts the viewport from (0, 0) — the fix for the catastrophic
/// cancellation Langrené & Warin document for fast-sum KDE. Exact for the
/// density: every kernel in Table 2 depends only on q − p.
inline Point RowLocalOrigin(const GridAxis& xs, WorldY row_y) {
  return {0.5 * (xs.origin + xs.last()), row_y.value()};
}

/// Templated over the aggregate accumulator so the compensated variant
/// (CompensatedRangeAggregates, ComputeOptions::compensated_aggregates)
/// shares the sweep logic with the plain one.
template <typename Aggregates>
struct SweepStateT {
  Aggregates lower;  // aggregates of L_ell
  Aggregates upper;  // aggregates of U_ell

  void PassLowerBound(const Point& p) { lower.Add(p); }
  void PassUpperBound(const Point& p) { upper.Add(p); }

  void Reset() {
    lower = Aggregates{};
    upper = Aggregates{};
  }

  /// Exact density at pixel q (Lemma 3 / Lemma 5 + Eq. 5).
  double Density(KernelType kernel, const Point& q, double bandwidth,
                 double weight) const {
    return DensityFromAggregates(kernel, q, lower.Minus(upper), bandwidth,
                                 weight);
  }
};

using SweepState = SweepStateT<RangeAggregates>;
using CompensatedSweepState = SweepStateT<CompensatedRangeAggregates>;

// ---------------------------------------------------------------------------
// Structure-of-arrays sweep state
// ---------------------------------------------------------------------------

/// Fixed channel order of the SoA aggregate lanes. The first
/// SweepChannels(kernel) channels are live for a given kernel; the rest are
/// never written and stay zero, so the uniform/Epanechnikov sweeps skip the
/// quartic-only moment arithmetic entirely (the big scalar win of the SoA
/// layout, independent of vectorization).
enum SweepChannel : int {
  kChCount = 0,   // |R|
  kChSumX = 1,    // A.x
  kChSumY = 2,    // A.y
  kChSumSq = 3,   // S
  kChSumSqPX = 4,  // C.x
  kChSumSqPY = 5,  // C.y
  kChSumQuad = 6,  // Q
  kChMxx = 7,      // M.xx
  kChMxy = 8,      // M.xy
  kChMyy = 9,      // M.yy
  kSweepChannelCount = 10,
  /// Lane arrays are padded to a multiple of 4 doubles so a 256-bit backend
  /// processes channels in whole register loads with no tail.
  kSweepChannelsPadded = 12,
};

/// Live channel count per kernel: 1 (uniform), 4 (Epanechnikov: count, A,
/// S) or kSweepChannelCount (quartic: + C, Q, M). Distinct from
/// AggregateArity, which counts the 9 distinct scalar *moments* of the
/// decomposition for the space model; here A and C contribute two lanes
/// each because x and y occupy separate slots.
inline int SweepChannels(KernelType kernel) {
  switch (kernel) {
    case KernelType::kUniform:
      return 1;
    case KernelType::kEpanechnikov:
      return 4;
    case KernelType::kQuartic:
      return kSweepChannelCount;
    case KernelType::kGaussian:
      return 0;  // no decomposition; the sweeps reject Gaussian upstream
  }
  return 0;
}

/// The per-endpoint channel value vector v(p): adding endpoint p to an
/// aggregate set adds v(p) channel-wise. Mirrors RangeAggregates::Add /
/// CompensatedRangeAggregates::Add expression for expression so the SoA
/// sweep reproduces the AoS reference bit for bit.
inline void SweepChannelValues(double px, double py,
                               double v[kSweepChannelsPadded]) {
  const double s = px * px + py * py;  // Point::SquaredNorm
  v[kChCount] = 1.0;
  v[kChSumX] = px;
  v[kChSumY] = py;
  v[kChSumSq] = s;
  v[kChSumSqPX] = px * s;
  v[kChSumSqPY] = py * s;
  v[kChSumQuad] = s * s;
  v[kChMxx] = px * px;
  v[kChMxy] = px * py;
  v[kChMyy] = py * py;
  v[kSweepChannelCount] = 0.0;
  v[kSweepChannelCount + 1] = 0.0;
}

/// One side (L or U) of the SoA sweep state: contiguous sum lanes plus
/// contiguous Neumaier compensation lanes. 32-byte aligned so vector
/// backends use aligned register loads; zero-initialized.
struct alignas(32) SoaAccumulator {
  double sums[kSweepChannelsPadded] = {};
  double comps[kSweepChannelsPadded] = {};

  /// Folds endpoint (px, py) into the first `channels` lanes.
  /// Compensated variant: the count lane is an integer sum (exact until
  /// 2^53, its compensation term stays exactly 0) and every other lane
  /// takes one Neumaier step — identical arithmetic to
  /// CompensatedRangeAggregates::Add.
  template <bool kCompensated>
  void Add(double px, double py, int channels) {
    double v[kSweepChannelsPadded];
    SweepChannelValues(px, py, v);
    if constexpr (kCompensated) {
      sums[kChCount] += 1.0;
      for (int ch = 1; ch < channels; ++ch) {
        NeumaierAdd(sums[ch], comps[ch], v[ch]);
      }
    } else {
      for (int ch = 0; ch < channels; ++ch) sums[ch] += v[ch];
    }
  }
};

/// D = L − U, folding the compensation difference in after the primary
/// difference exactly as CompensatedRangeAggregates::Minus does (the count
/// lane's compensation terms are identically +0, so folding them uniformly
/// is bitwise equal to skipping the count lane). Writes the first
/// `channels` lanes of `d`; callers must have zeroed the rest once.
template <bool kCompensated>
inline void SoaDifference(const SoaAccumulator& lower,
                          const SoaAccumulator& upper, int channels,
                          double d[kSweepChannelsPadded]) {
  for (int ch = 0; ch < channels; ++ch) {
    double r = lower.sums[ch] - upper.sums[ch];
    if constexpr (kCompensated) {
      r += lower.comps[ch] - upper.comps[ch];
    }
    d[ch] = r;
  }
}

/// View of a channel-lane difference vector as the AoS aggregate struct the
/// closed-form evaluator takes. Unwritten lanes must be zero.
inline RangeAggregates AggregatesFromLanes(
    const double d[kSweepChannelsPadded]) {
  RangeAggregates agg;
  agg.count = d[kChCount];
  agg.sum = {d[kChSumX], d[kChSumY]};
  agg.sum_sq = d[kChSumSq];
  agg.sum_sq_p = {d[kChSumSqPX], d[kChSumSqPY]};
  agg.sum_quad = d[kChSumQuad];
  agg.m_xx = d[kChMxx];
  agg.m_xy = d[kChMxy];
  agg.m_yy = d[kChMyy];
  return agg;
}

}  // namespace slam
