// The sweep line's running state (paper Section 3.4): the aggregates of
//   L_ell = {p in E(k) : LB_k(p) <= ell.x}   (lower bounds passed)
//   U_ell = {p in E(k) : UB_k(p) <  ell.x}   (upper bounds passed)
// R(q) = L \ U when the sweep line sits on q.x, so the range aggregates are
// the component-wise difference (Lemmas 3 and 5).
//
// Note the strict inequality in U: the paper uses <= (Eq. 11), under which
// a point at distance exactly b from q is dropped — harmless for the
// Epanechnikov/quartic kernels (their value at b is 0) but off by w/b for
// the uniform kernel. The strict form matches direct evaluation
// (dist <= b contributes) for every kernel, so all methods agree bit-wise
// on boundary points.
#pragma once

#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"

namespace slam {

/// Origin of the row-local evaluation frame shared by the sweep variants:
/// the row's x-center paired with the row's own y. Accumulating p − origin
/// and querying at q − origin keeps every aggregate magnitude at the scale
/// of the row extent plus bandwidth, independent of how far the map
/// projection puts the viewport from (0, 0) — the fix for the catastrophic
/// cancellation Langrené & Warin document for fast-sum KDE. Exact for the
/// density: every kernel in Table 2 depends only on q − p.
inline Point RowLocalOrigin(const GridAxis& xs, double row_y) {
  return {0.5 * (xs.origin + xs.last()), row_y};
}

/// Templated over the aggregate accumulator so the compensated variant
/// (CompensatedRangeAggregates, ComputeOptions::compensated_aggregates)
/// shares the sweep logic with the plain one.
template <typename Aggregates>
struct SweepStateT {
  Aggregates lower;  // aggregates of L_ell
  Aggregates upper;  // aggregates of U_ell

  void PassLowerBound(const Point& p) { lower.Add(p); }
  void PassUpperBound(const Point& p) { upper.Add(p); }

  void Reset() {
    lower = Aggregates{};
    upper = Aggregates{};
  }

  /// Exact density at pixel q (Lemma 3 / Lemma 5 + Eq. 5).
  double Density(KernelType kernel, const Point& q, double bandwidth,
                 double weight) const {
    return DensityFromAggregates(kernel, q, lower.Minus(upper), bandwidth,
                                 weight);
  }
};

using SweepState = SweepStateT<RangeAggregates>;
using CompensatedSweepState = SweepStateT<CompensatedRangeAggregates>;

}  // namespace slam
