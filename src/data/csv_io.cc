#include "data/csv_io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/validate.h"

namespace slam {

namespace {
struct ColumnMap {
  int x = -1;
  int y = -1;
  int time = -1;
  int category = -1;
};
}  // namespace

Result<PointDataset> LoadDatasetCsv(const std::string& path) {
  return LoadDatasetCsv(path, CsvLoadOptions{}, nullptr);
}

Result<PointDataset> LoadDatasetCsv(const std::string& path,
                                    const CsvLoadOptions& options,
                                    size_t* dropped_rows) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return LoadDatasetCsvStream(in, path, options, dropped_rows);
}

Result<PointDataset> LoadDatasetCsvStream(std::istream& in,
                                          std::string_view name,
                                          const CsvLoadOptions& options,
                                          size_t* dropped_rows) {
  ColumnMap columns;
  PointDataset ds{std::string(name)};
  size_t dropped = 0;
  const Status st = ReadCsvStream(
      in, options.csv,
      [&columns](const std::vector<std::string>& header) -> Status {
        for (size_t i = 0; i < header.size(); ++i) {
          const std::string col = ToLower(Trim(header[i]));
          const int idx = static_cast<int>(i);
          if (col == "x" || col == "lon" || col == "longitude") {
            columns.x = idx;
          } else if (col == "y" || col == "lat" || col == "latitude") {
            columns.y = idx;
          } else if (col == "time" || col == "timestamp") {
            columns.time = idx;
          } else if (col == "category" || col == "type") {
            columns.category = idx;
          }
        }
        if (columns.x < 0 || columns.y < 0) {
          return Status::InvalidArgument(
              "CSV header must contain x and y columns");
        }
        return Status::OK();
      },
      [&columns, &ds, &options, &dropped](
          int64_t line, const std::vector<std::string>& fields) -> Status {
        const long long lline = static_cast<long long>(line);
        const auto need = [&](int idx) -> Result<std::string_view> {
          if (idx < 0 || static_cast<size_t>(idx) >= fields.size()) {
            return Status::InvalidArgument(
                StringPrintf("line %lld: missing column %d", lline, idx));
          }
          return std::string_view(fields[idx]);
        };
        const auto parse = [&](std::string_view field,
                               const char* what) -> Result<double> {
          const auto value = ParseDouble(field);
          if (!value.ok()) {
            return Status::InvalidArgument(
                StringPrintf("line %lld: bad %s value: ", lline, what) +
                value.status().message());
          }
          return value;
        };
        SLAM_ASSIGN_OR_RETURN(std::string_view xs, need(columns.x));
        SLAM_ASSIGN_OR_RETURN(std::string_view ys, need(columns.y));
        SLAM_ASSIGN_OR_RETURN(double x, parse(xs, "x coordinate"));
        SLAM_ASSIGN_OR_RETURN(double y, parse(ys, "y coordinate"));
        x = CanonicalizeCoordinate(x);
        y = CanonicalizeCoordinate(y);
        const Status coord = CheckCoordinatePair(x, y, "coordinate");
        if (!coord.ok()) {
          if (options.sanitize) {
            ++dropped;
            return Status::OK();
          }
          return Status::InvalidArgument(
              StringPrintf("line %lld: ", lline) + coord.message() +
              "; pass CsvLoadOptions::sanitize to drop such rows");
        }
        if (options.max_rows > 0 && ds.size() >= options.max_rows) {
          return Status::ResourceExhausted(StringPrintf(
              "line %lld: dataset exceeds the %zu-row cap", lline,
              options.max_rows));
        }
        int64_t t = 0;
        int32_t category = 0;
        if (columns.time >= 0 &&
            static_cast<size_t>(columns.time) < fields.size()) {
          const auto parsed_t = ParseInt64(fields[columns.time]);
          if (!parsed_t.ok()) {
            return Status::InvalidArgument(
                StringPrintf("line %lld: bad time value: ", lline) +
                parsed_t.status().message());
          }
          t = *parsed_t;
        }
        if (columns.category >= 0 &&
            static_cast<size_t>(columns.category) < fields.size()) {
          const auto parsed_c = ParseInt64(fields[columns.category]);
          if (!parsed_c.ok() || *parsed_c < INT32_MIN || *parsed_c > INT32_MAX) {
            return Status::InvalidArgument(
                StringPrintf("line %lld: bad category value", lline) +
                (parsed_c.ok() ? std::string(" (outside int32 range)")
                               : ": " + parsed_c.status().message()));
          }
          category = static_cast<int32_t>(*parsed_c);
        }
        ds.Add({x, y}, t, category);
        return Status::OK();
      });
  if (!st.ok()) return st;
  if (dropped > 0) {
    SLAM_LOG(Warning) << "LoadDatasetCsv: dropped " << dropped
                      << " row(s) with invalid coordinates from '"
                      << std::string(name) << "'";
  }
  if (dropped_rows != nullptr) *dropped_rows = dropped;
  return ds;
}

Status SaveDatasetCsv(const PointDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  WriteCsvRecord(out, {"x", "y", "time", "category"});
  for (size_t i = 0; i < dataset.size(); ++i) {
    WriteCsvRecord(out, {StringPrintf("%.9g", dataset.coord(i).x),
                         StringPrintf("%.9g", dataset.coord(i).y),
                         std::to_string(dataset.event_time(i)),
                         std::to_string(dataset.category(i))});
  }
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace slam
