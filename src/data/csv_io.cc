#include "data/csv_io.h"

#include <fstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace slam {

namespace {
struct ColumnMap {
  int x = -1;
  int y = -1;
  int time = -1;
  int category = -1;
};
}  // namespace

Result<PointDataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  ColumnMap columns;
  PointDataset ds(path);
  const Status st = ReadCsvStream(
      in, CsvOptions{},
      [&columns](const std::vector<std::string>& header) -> Status {
        for (size_t i = 0; i < header.size(); ++i) {
          const std::string name = ToLower(Trim(header[i]));
          const int idx = static_cast<int>(i);
          if (name == "x" || name == "lon" || name == "longitude") {
            columns.x = idx;
          } else if (name == "y" || name == "lat" || name == "latitude") {
            columns.y = idx;
          } else if (name == "time" || name == "timestamp") {
            columns.time = idx;
          } else if (name == "category" || name == "type") {
            columns.category = idx;
          }
        }
        if (columns.x < 0 || columns.y < 0) {
          return Status::InvalidArgument(
              "CSV header must contain x and y columns");
        }
        return Status::OK();
      },
      [&columns, &ds](int64_t row,
                      const std::vector<std::string>& fields) -> Status {
        const auto need = [&](int idx) -> Result<std::string_view> {
          if (idx < 0 || static_cast<size_t>(idx) >= fields.size()) {
            return Status::InvalidArgument(StringPrintf(
                "row %lld: missing column %d", static_cast<long long>(row),
                idx));
          }
          return std::string_view(fields[idx]);
        };
        SLAM_ASSIGN_OR_RETURN(std::string_view xs, need(columns.x));
        SLAM_ASSIGN_OR_RETURN(std::string_view ys, need(columns.y));
        SLAM_ASSIGN_OR_RETURN(double x, ParseDouble(xs));
        SLAM_ASSIGN_OR_RETURN(double y, ParseDouble(ys));
        int64_t t = 0;
        int32_t category = 0;
        if (columns.time >= 0 &&
            static_cast<size_t>(columns.time) < fields.size()) {
          SLAM_ASSIGN_OR_RETURN(t, ParseInt64(fields[columns.time]));
        }
        if (columns.category >= 0 &&
            static_cast<size_t>(columns.category) < fields.size()) {
          SLAM_ASSIGN_OR_RETURN(int64_t c,
                                ParseInt64(fields[columns.category]));
          category = static_cast<int32_t>(c);
        }
        ds.Add({x, y}, t, category);
        return Status::OK();
      });
  if (!st.ok()) return st;
  return ds;
}

Status SaveDatasetCsv(const PointDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  WriteCsvRecord(out, {"x", "y", "time", "category"});
  for (size_t i = 0; i < dataset.size(); ++i) {
    WriteCsvRecord(out, {StringPrintf("%.9g", dataset.coord(i).x),
                         StringPrintf("%.9g", dataset.coord(i).y),
                         std::to_string(dataset.event_time(i)),
                         std::to_string(dataset.category(i))});
  }
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace slam
