// Load/save PointDataset as CSV with columns x,y,time,category. Lets users
// run the library on the real municipal exports the paper used (after
// projecting lon/lat to meters; see geom/projection.h).
//
// The load path treats the file as untrusted input: coordinates go through
// the shared validation layer (util/validate.h — NaN/Inf rejected, the
// magnitude cap enforced, -0.0/subnormals canonicalized) and the CSV
// parser enforces the byte/field caps and rejects BOM tricks, embedded
// NULs, and truncated quoted fields with line-numbered errors.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "data/dataset.h"
#include "util/csv.h"
#include "util/result.h"

namespace slam {

struct CsvLoadOptions {
  /// When true, rows whose coordinates fail validation (NaN/Inf or beyond
  /// the magnitude cap) are dropped (with a logged warning and a count in
  /// *dropped_rows) instead of failing the load.
  bool sanitize = false;
  /// Parser hardening caps (delimiter, max field/record bytes, max
  /// fields); see util/csv.h.
  CsvOptions csv;
  /// Upper bound on accepted data rows; rows beyond it fail the load
  /// (0 = unlimited). Serving surfaces pass a bound so one upload cannot
  /// exhaust memory.
  size_t max_rows = 0;
};

/// Expected header: x,y[,time[,category]]. Extra columns are ignored;
/// missing time/category default to 0. Parse failures and invalid
/// coordinates are reported with the offending 1-based line number.
Result<PointDataset> LoadDatasetCsv(const std::string& path);

/// As above; with options.sanitize, invalid-coordinate rows are dropped
/// and their count stored in *dropped_rows (may be null).
Result<PointDataset> LoadDatasetCsv(const std::string& path,
                                    const CsvLoadOptions& options,
                                    size_t* dropped_rows = nullptr);

/// Stream-based core of the loader: parses CSV from `in` into a dataset
/// named `name`. This is the entry point the fuzz targets drive (no file
/// system involved) and what the HTTP upload path will call.
Result<PointDataset> LoadDatasetCsvStream(std::istream& in,
                                          std::string_view name,
                                          const CsvLoadOptions& options,
                                          size_t* dropped_rows = nullptr);

Status SaveDatasetCsv(const PointDataset& dataset, const std::string& path);

}  // namespace slam
