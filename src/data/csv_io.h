// Load/save PointDataset as CSV with columns x,y,time,category. Lets users
// run the library on the real municipal exports the paper used (after
// projecting lon/lat to meters; see geom/projection.h).
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace slam {

struct CsvLoadOptions {
  /// When true, rows with NaN/Inf coordinates are dropped (with a logged
  /// warning and a count in *dropped_rows) instead of failing the load.
  bool sanitize = false;
};

/// Expected header: x,y[,time[,category]]. Extra columns are ignored;
/// missing time/category default to 0. Parse failures and non-finite
/// coordinates are reported with the offending 1-based line number.
Result<PointDataset> LoadDatasetCsv(const std::string& path);

/// As above; with options.sanitize, non-finite rows are dropped and their
/// count stored in *dropped_rows (may be null).
Result<PointDataset> LoadDatasetCsv(const std::string& path,
                                    const CsvLoadOptions& options,
                                    size_t* dropped_rows = nullptr);

Status SaveDatasetCsv(const PointDataset& dataset, const std::string& path);

}  // namespace slam
