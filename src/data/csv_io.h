// Load/save PointDataset as CSV with columns x,y,time,category. Lets users
// run the library on the real municipal exports the paper used (after
// projecting lon/lat to meters; see geom/projection.h).
#pragma once

#include <string>

#include "data/dataset.h"
#include "util/result.h"

namespace slam {

/// Expected header: x,y[,time[,category]]. Extra columns are ignored;
/// missing time/category default to 0.
Result<PointDataset> LoadDatasetCsv(const std::string& path);

Status SaveDatasetCsv(const PointDataset& dataset, const std::string& path);

}  // namespace slam
