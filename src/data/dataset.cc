#include "data/dataset.h"

#include "util/string_util.h"

namespace slam {

PointDataset PointDataset::FromPoints(std::string name,
                                      std::vector<Point> coords) {
  PointDataset ds(std::move(name));
  ds.coords_ = std::move(coords);
  ds.event_times_.assign(ds.coords_.size(), 0);
  ds.categories_.assign(ds.coords_.size(), 0);
  return ds;
}

Result<PointDataset> PointDataset::FromColumns(
    std::string name, std::vector<Point> coords,
    std::vector<int64_t> event_times, std::vector<int32_t> categories) {
  if (coords.size() != event_times.size() ||
      coords.size() != categories.size()) {
    return Status::InvalidArgument(StringPrintf(
        "column lengths differ: coords=%zu event_times=%zu categories=%zu",
        coords.size(), event_times.size(), categories.size()));
  }
  PointDataset ds(std::move(name));
  ds.coords_ = std::move(coords);
  ds.event_times_ = std::move(event_times);
  ds.categories_ = std::move(categories);
  return ds;
}

void PointDataset::Reserve(size_t n) {
  coords_.reserve(n);
  event_times_.reserve(n);
  categories_.reserve(n);
}

void PointDataset::Add(const Point& p, int64_t event_time, int32_t category) {
  coords_.push_back(p);
  event_times_.push_back(event_time);
  categories_.push_back(category);
  extent_valid_ = false;
}

const BoundingBox& PointDataset::Extent() const {
  if (!extent_valid_) {
    extent_ = BoundingBox::FromPoints(coords_);
    extent_valid_ = true;
  }
  return extent_;
}

Result<PointDataset> PointDataset::Select(
    std::span<const size_t> indices) const {
  PointDataset out(name_);
  out.Reserve(indices.size());
  for (const size_t i : indices) {
    if (i >= size()) {
      return Status::OutOfRange(
          StringPrintf("Select index %zu out of range (n=%zu)", i, size()));
    }
    out.Add(coords_[i], event_times_[i], categories_[i]);
  }
  return out;
}

}  // namespace slam
