// Columnar container for a location event dataset: coordinates plus the
// per-event attributes the paper's exploratory operations filter on
// (event time for time-based filtering, category for attribute-based
// filtering). Columnar layout keeps the hot KDV path — a contiguous
// span<const Point> — free of attribute baggage.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"
#include "util/result.h"

namespace slam {

class PointDataset {
 public:
  PointDataset() = default;
  explicit PointDataset(std::string name) : name_(std::move(name)) {}

  /// Builds a dataset from bare coordinates (time = 0, category = 0).
  static PointDataset FromPoints(std::string name, std::vector<Point> coords);

  /// All three columns; they must have equal length.
  static Result<PointDataset> FromColumns(std::string name,
                                          std::vector<Point> coords,
                                          std::vector<int64_t> event_times,
                                          std::vector<int32_t> categories);

  void Reserve(size_t n);
  void Add(const Point& p, int64_t event_time = 0, int32_t category = 0);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return coords_.size(); }
  bool empty() const { return coords_.empty(); }

  std::span<const Point> coords() const { return coords_; }
  std::span<const int64_t> event_times() const { return event_times_; }
  std::span<const int32_t> categories() const { return categories_; }

  const Point& coord(size_t i) const { return coords_[i]; }
  int64_t event_time(size_t i) const { return event_times_[i]; }
  int32_t category(size_t i) const { return categories_[i]; }

  /// Recomputed on demand and cached; invalidated by Add().
  const BoundingBox& Extent() const;

  /// New dataset containing rows at `indices` (order preserved).
  /// Out-of-range indices are an error.
  Result<PointDataset> Select(std::span<const size_t> indices) const;

 private:
  std::string name_;
  std::vector<Point> coords_;
  std::vector<int64_t> event_times_;
  std::vector<int32_t> categories_;
  mutable BoundingBox extent_;
  mutable bool extent_valid_ = false;
};

}  // namespace slam
