#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace slam {

namespace {

Point ClampToBox(Point p, const BoundingBox& box) {
  p.x = std::clamp(p.x, box.min().x, box.max().x);
  p.y = std::clamp(p.y, box.min().y, box.max().y);
  return p;
}

/// Zipf-ish category draw: category c with probability ~ 1/(c+1).
int32_t DrawCategory(Rng& rng, int num_categories) {
  if (num_categories <= 1) return 0;
  // Precomputing the CDF per call would be wasteful; harmonic numbers are
  // tiny (num_categories <= ~32), so compute inline.
  double h = 0.0;
  for (int c = 0; c < num_categories; ++c) h += 1.0 / (c + 1);
  double u = rng.NextDouble() * h;
  for (int c = 0; c < num_categories; ++c) {
    u -= 1.0 / (c + 1);
    if (u <= 0.0) return c;
  }
  return num_categories - 1;
}

constexpr int64_t kUnix20180101 = 1514764800;
// Default event-time window ends mid-2020 so the 2019 calendar-year filter
// (paper Figure 16) always selects a strict subset with events on both
// sides.
constexpr int64_t kUnix20200701 = 1593561600;

}  // namespace

PointDataset GenerateUniform(size_t n, const BoundingBox& extent,
                             uint64_t seed, std::string name) {
  Rng rng(seed);
  PointDataset ds(std::move(name));
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ds.Add({rng.Uniform(extent.min().x, extent.max().x),
            rng.Uniform(extent.min().y, extent.max().y)});
  }
  return ds;
}

PointDataset GenerateGaussianClusters(size_t n, const BoundingBox& extent,
                                      const std::vector<Point>& centers,
                                      double stddev, uint64_t seed,
                                      std::string name) {
  Rng rng(seed);
  PointDataset ds(std::move(name));
  ds.Reserve(n);
  if (centers.empty()) return ds;
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.NextBelow(centers.size())];
    const Point p{rng.Gaussian(c.x, stddev), rng.Gaussian(c.y, stddev)};
    ds.Add(ClampToBox(p, extent));
  }
  return ds;
}

Result<PointDataset> GenerateCity(const CityConfig& config) {
  if (config.n == 0) {
    return Status::InvalidArgument("city dataset size must be positive");
  }
  if (config.width_m <= 0.0 || config.height_m <= 0.0) {
    return Status::InvalidArgument("city extent must be positive");
  }
  if (config.cluster_fraction < 0.0 || config.street_fraction < 0.0 ||
      config.cluster_fraction + config.street_fraction > 1.0) {
    return Status::InvalidArgument(
        "mixture fractions must be non-negative and sum to at most 1");
  }
  if (config.num_clusters <= 0 || config.num_categories <= 0) {
    return Status::InvalidArgument("cluster/category counts must be positive");
  }
  if (config.time_end_unix < config.time_begin_unix) {
    return Status::InvalidArgument("time_end_unix before time_begin_unix");
  }

  Rng rng(config.seed);
  const BoundingBox extent({0.0, 0.0}, {config.width_m, config.height_m});

  // Hotspot cluster shapes: center, anisotropic stddevs, orientation.
  struct Cluster {
    Point center;
    double sx, sy;  // stddev along rotated axes
    double cos_t, sin_t;
    double weight;  // unnormalized mixture weight
  };
  std::vector<Cluster> clusters;
  clusters.reserve(config.num_clusters);
  double total_weight = 0.0;
  for (int c = 0; c < config.num_clusters; ++c) {
    Cluster cl;
    // Bias cluster centers toward the middle of the city (downtowns), by
    // averaging two uniform draws per coordinate.
    cl.center = {(rng.Uniform(0, config.width_m) + rng.Uniform(0, config.width_m)) / 2.0,
                 (rng.Uniform(0, config.height_m) + rng.Uniform(0, config.height_m)) / 2.0};
    const double base =
        rng.Uniform(config.cluster_stddev_min_m, config.cluster_stddev_max_m);
    const double aniso = rng.Uniform(1.0, config.cluster_anisotropy_max);
    cl.sx = base * aniso;
    cl.sy = base;
    const double theta = rng.Uniform(0.0, std::numbers::pi);
    cl.cos_t = std::cos(theta);
    cl.sin_t = std::sin(theta);
    // Skewed cluster intensities: a few dominant hotspots.
    cl.weight = rng.Exponential(1.0) + 0.1;
    total_weight += cl.weight;
    clusters.push_back(cl);
  }
  // Cumulative weights for mixture draws.
  std::vector<double> cdf(clusters.size());
  double acc = 0.0;
  for (size_t i = 0; i < clusters.size(); ++i) {
    acc += clusters[i].weight / total_weight;
    cdf[i] = acc;
  }

  const int64_t t0 =
      config.time_begin_unix != 0 ? config.time_begin_unix : kUnix20180101;
  const int64_t t1 =
      config.time_end_unix != 0 ? config.time_end_unix : kUnix20200701;

  PointDataset ds(config.name);
  ds.Reserve(config.n);
  const size_t n_cluster =
      static_cast<size_t>(config.cluster_fraction * static_cast<double>(config.n));
  const size_t n_street = static_cast<size_t>(config.street_fraction * static_cast<double>(config.n));

  for (size_t i = 0; i < config.n; ++i) {
    Point p;
    if (i < n_cluster) {
      // Gaussian mixture draw.
      const double u = rng.NextDouble();
      size_t ci = std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
      if (ci >= clusters.size()) ci = clusters.size() - 1;
      const Cluster& cl = clusters[ci];
      const double gx = rng.NextGaussian() * cl.sx;
      const double gy = rng.NextGaussian() * cl.sy;
      p = {cl.center.x + gx * cl.cos_t - gy * cl.sin_t,
           cl.center.y + gx * cl.sin_t + gy * cl.cos_t};
    } else if (i < n_cluster + n_street) {
      // Snap one coordinate to a street-lattice line, jittered.
      const bool horizontal = rng.NextU64() & 1;
      if (horizontal) {
        const int64_t line = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(
                std::max(1.0, config.height_m / config.street_spacing_m))));
        p = {rng.Uniform(0, config.width_m),
             static_cast<double>(line) * config.street_spacing_m +
                 rng.Gaussian(0.0, config.street_jitter_m)};
      } else {
        const int64_t line = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(
                std::max(1.0, config.width_m / config.street_spacing_m))));
        p = {static_cast<double>(line) * config.street_spacing_m +
                 rng.Gaussian(0.0, config.street_jitter_m),
             rng.Uniform(0, config.height_m)};
      }
    } else {
      p = {rng.Uniform(0, config.width_m), rng.Uniform(0, config.height_m)};
    }
    const int64_t t = t0 + static_cast<int64_t>(rng.NextBelow(
                               static_cast<uint64_t>(t1 - t0 + 1)));
    ds.Add(ClampToBox(p, extent), t, DrawCategory(rng, config.num_categories));
  }
  return ds;
}

std::string_view CityName(City city) {
  switch (city) {
    case City::kSeattle:
      return "Seattle";
    case City::kLosAngeles:
      return "Los Angeles";
    case City::kNewYork:
      return "New York";
    case City::kSanFrancisco:
      return "San Francisco";
  }
  return "?";
}

size_t CityPaperSize(City city) {
  switch (city) {
    case City::kSeattle:
      return 862873;  // crime events
    case City::kLosAngeles:
      return 1255668;  // crime events
    case City::kNewYork:
      return 1499928;  // traffic accidents
    case City::kSanFrancisco:
      return 4333098;  // 311 calls
  }
  return 0;
}

double CityPaperBandwidth(City city) {
  switch (city) {
    case City::kSeattle:
      return 671.39;
    case City::kLosAngeles:
      return 1588.47;
    case City::kNewYork:
      return 1062.53;
    case City::kSanFrancisco:
      return 279.27;
  }
  return 0.0;
}

CityConfig CityPresetConfig(City city, double scale, uint64_t seed) {
  CityConfig cfg;
  cfg.name = std::string(CityName(city));
  cfg.n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(CityPaperSize(city)) * scale + 0.5));
  cfg.seed = seed + static_cast<uint64_t>(city) * 1000003ULL;
  switch (city) {
    case City::kSeattle:
      // Long, narrow city between water bodies.
      cfg.width_m = 14000.0;
      cfg.height_m = 28000.0;
      cfg.num_clusters = 10;
      cfg.cluster_fraction = 0.60;
      cfg.street_fraction = 0.25;
      break;
    case City::kLosAngeles:
      // Sprawling, many moderate hotspots.
      cfg.width_m = 70000.0;
      cfg.height_m = 50000.0;
      cfg.num_clusters = 24;
      cfg.cluster_fraction = 0.50;
      cfg.street_fraction = 0.35;
      cfg.cluster_stddev_max_m = 2000.0;
      break;
    case City::kNewYork:
      // Dense, grid-dominated (collisions concentrate on avenues).
      cfg.width_m = 35000.0;
      cfg.height_m = 45000.0;
      cfg.num_clusters = 16;
      cfg.cluster_fraction = 0.45;
      cfg.street_fraction = 0.45;
      cfg.street_spacing_m = 250.0;
      break;
    case City::kSanFrancisco:
      // Compact, very dense 311 reporting.
      cfg.width_m = 12000.0;
      cfg.height_m = 12000.0;
      cfg.num_clusters = 14;
      cfg.cluster_fraction = 0.55;
      cfg.street_fraction = 0.30;
      cfg.cluster_stddev_min_m = 80.0;
      cfg.cluster_stddev_max_m = 600.0;
      break;
  }
  return cfg;
}

Result<PointDataset> GenerateCityDataset(City city, double scale,
                                         uint64_t seed) {
  if (!(scale > 0.0)) {
    return Status::InvalidArgument(
        StringPrintf("city scale must be positive, got %f", scale));
  }
  return GenerateCity(CityPresetConfig(city, scale, seed));
}

}  // namespace slam
