// Synthetic dataset generators.
//
// The paper evaluates on four municipal open datasets (Seattle crime,
// Los Angeles crime, New York traffic collisions, San Francisco 311 calls).
// Those exports are not available offline, so each city has a synthetic
// stand-in with the spatial character that drives KDV cost: a handful of
// dense anisotropic hotspot clusters (downtown cores), events snapped to a
// street-like lattice, and a diffuse uniform background, over a city-sized
// extent in meters. Every generated event also carries a timestamp and a
// category so the paper's time-based and attribute-based filtering
// experiments exercise real code paths. See DESIGN.md §2 for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace slam {

/// Uniform points in `extent`.
PointDataset GenerateUniform(size_t n, const BoundingBox& extent,
                             uint64_t seed, std::string name = "uniform");

/// One isotropic Gaussian cluster per entry of `centers` with shared
/// `stddev`, equal mixture weights, clamped to `extent`.
PointDataset GenerateGaussianClusters(size_t n, const BoundingBox& extent,
                                      const std::vector<Point>& centers,
                                      double stddev, uint64_t seed,
                                      std::string name = "clusters");

/// Full synthetic-city recipe.
struct CityConfig {
  std::string name;
  size_t n = 100000;
  // City extent, meters. Origin at (0, 0).
  double width_m = 30000.0;
  double height_m = 25000.0;
  // Mixture fractions (must sum to <= 1; remainder becomes background).
  double cluster_fraction = 0.55;
  double street_fraction = 0.30;
  // Hotspots.
  int num_clusters = 12;
  double cluster_stddev_min_m = 150.0;
  double cluster_stddev_max_m = 900.0;
  double cluster_anisotropy_max = 4.0;  // major/minor axis ratio
  // Street lattice.
  double street_spacing_m = 400.0;
  double street_jitter_m = 15.0;
  // Attributes.
  int num_categories = 8;         // Zipf-skewed
  int64_t time_begin_unix = 0;    // set by preset helpers
  int64_t time_end_unix = 0;
  uint64_t seed = 42;
};

/// Validates the config and generates the dataset.
Result<PointDataset> GenerateCity(const CityConfig& config);

/// The four paper datasets. `scale` multiplies the paper's point count
/// (Table 5) — e.g. scale = 0.05 produces a ~43k-point Seattle. The default
/// bench configs use small scales so the full method grid (including the
/// O(XYn) baselines) finishes on one core; the shape-of-results comparison
/// is unaffected because every method sees identical data.
enum class City { kSeattle, kLosAngeles, kNewYork, kSanFrancisco };

/// Human-readable dataset name, matching the paper's Table 5 rows.
std::string_view CityName(City city);
/// Paper's dataset size n from Table 5.
size_t CityPaperSize(City city);
/// Paper's default Scott-rule bandwidth in meters from Table 5.
double CityPaperBandwidth(City city);

/// Preset CityConfig for a city at the given scale of the paper's n.
CityConfig CityPresetConfig(City city, double scale, uint64_t seed = 42);

Result<PointDataset> GenerateCityDataset(City city, double scale,
                                         uint64_t seed = 42);

}  // namespace slam
