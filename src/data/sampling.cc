#include "data/sampling.h"

#include <numeric>
#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace slam {

Result<PointDataset> SampleFraction(const PointDataset& dataset,
                                    double fraction, uint64_t seed) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    return Status::InvalidArgument(
        StringPrintf("sample fraction must be in (0, 1], got %f", fraction));
  }
  if (fraction == 1.0) {
    std::vector<size_t> all(dataset.size());
    std::iota(all.begin(), all.end(), size_t{0});
    return dataset.Select(all);
  }
  const size_t k = static_cast<size_t>(fraction * static_cast<double>(dataset.size()) + 0.5);
  return SampleCount(dataset, k, seed);
}

Result<PointDataset> SampleCount(const PointDataset& dataset, size_t k,
                                 uint64_t seed) {
  if (k > dataset.size()) {
    return Status::InvalidArgument(
        StringPrintf("cannot sample %zu of %zu rows", k, dataset.size()));
  }
  Rng rng(seed);
  const std::vector<size_t> indices =
      rng.SampleWithoutReplacement(dataset.size(), k);
  return dataset.Select(indices);
}

}  // namespace slam
