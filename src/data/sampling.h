// Random sampling without replacement — the mechanism behind the paper's
// dataset-size sweeps (Figures 14, 17, 19 sample 25/50/75/100% of each
// dataset).
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "util/result.h"

namespace slam {

/// Uniformly samples `fraction` (0 < fraction <= 1) of the rows without
/// replacement. fraction == 1 returns a copy in original order.
Result<PointDataset> SampleFraction(const PointDataset& dataset,
                                    double fraction, uint64_t seed);

/// Uniformly samples exactly k rows without replacement (k <= n).
Result<PointDataset> SampleCount(const PointDataset& dataset, size_t k,
                                 uint64_t seed);

}  // namespace slam
