#include "explore/degrade.h"

#include <algorithm>

#include "util/string_util.h"

namespace slam {

std::string_view FidelityName(Fidelity fidelity) {
  switch (fidelity) {
    case Fidelity::kFull:
      return "full";
    case Fidelity::kHalfRes:
      return "halfres";
    case Fidelity::kSampled:
      return "sampled";
  }
  return "?";
}

std::string_view DegradeModeName(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kOff:
      return "off";
    case DegradeMode::kHalfRes:
      return "halfres";
    case DegradeMode::kSample:
      return "sample";
  }
  return "?";
}

Result<DegradeMode> DegradeModeFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "off" || lower == "none") return DegradeMode::kOff;
  if (lower == "halfres" || lower == "half-res" || lower == "half") {
    return DegradeMode::kHalfRes;
  }
  if (lower == "sample" || lower == "sampled") return DegradeMode::kSample;
  return Status::InvalidArgument("unknown degrade mode '" + std::string(name) +
                                 "' (off, halfres, sample)");
}

std::optional<DegradeStep> DegradeLadderStep(DegradeMode mode, int level,
                                             int max_halvings, int full_width,
                                             int full_height, Method method) {
  if (level < 0) return std::nullopt;
  const int halvings = std::max(0, max_halvings);
  const auto at_shift = [&](int shift) {
    DegradeStep step;
    step.width = std::max(1, full_width >> shift);
    step.height = std::max(1, full_height >> shift);
    step.method = method;
    return step;
  };
  if (level == 0) return at_shift(0);  // full fidelity, any mode
  switch (mode) {
    case DegradeMode::kOff:
      return std::nullopt;
    case DegradeMode::kHalfRes: {
      if (level > halvings) return std::nullopt;
      DegradeStep step = at_shift(level);
      step.fidelity = Fidelity::kHalfRes;
      return step;
    }
    case DegradeMode::kSample: {
      if (level <= halvings) {
        DegradeStep step = at_shift(level);
        step.fidelity = Fidelity::kHalfRes;
        return step;
      }
      if (level == halvings + 1) {
        // The last resort: Z-order sampled subset at the coarsest rung.
        // Approximate but cheap — its cost scales with the sample, not n.
        DegradeStep step = at_shift(halvings);
        step.method = Method::kZorder;
        step.fidelity = Fidelity::kSampled;
        return step;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace slam
