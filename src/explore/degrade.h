// The graceful-degradation ladder: the one shared contract for trading
// answer fidelity for latency under deadline or memory pressure.
//
// Zheng et al. ("Visualization of Big Spatial Data using Coresets for
// KDE") establishes that bounded-error reduced-fidelity densities are an
// acceptable serving currency; this header turns that into a mechanical
// ladder every degrading caller (ExplorerSession::RenderAdaptive, the
// serving core, the slam_kdv CLI) steps the same way:
//
//   level 0             full resolution, requested method   (kFull)
//   level 1..H          resolution halved per level         (kHalfRes)
//   level H+1 (kSample) Z-order sampled subset, coarsest    (kSampled)
//
// where H = max_halvings. Every response is tagged with the Fidelity that
// was actually served, so a degraded answer can never masquerade as a
// full-fidelity one.
#pragma once

#include <optional>
#include <string_view>

#include "kdv/engine.h"
#include "util/result.h"

namespace slam {

/// What a caller actually received, attached to every degradable answer.
enum class Fidelity : int {
  kFull = 0,     // requested resolution, exact requested method
  kHalfRes = 1,  // exact method at a halved (>= once) resolution
  kSampled = 2,  // Z-order sampled subset: approximate, bounded error
};

std::string_view FidelityName(Fidelity fidelity);

/// How far a caller permits the ladder to descend.
enum class DegradeMode : int {
  kOff = 0,      // full fidelity or failure
  kHalfRes = 1,  // allow half-resolution rungs
  kSample = 2,   // allow half-res rungs, then the sampled rung
};

std::string_view DegradeModeName(DegradeMode mode);
/// Accepts "off", "halfres" (also "half-res"/"half"), "sample" (also
/// "sampled") — the CLI --degrade vocabulary.
Result<DegradeMode> DegradeModeFromName(std::string_view name);

/// One rung of the ladder: what to compute at `level`.
struct DegradeStep {
  int width = 0;
  int height = 0;
  Method method = Method::kSlamBucketRao;
  Fidelity fidelity = Fidelity::kFull;
};

/// The plan for ladder rung `level` (0 = full fidelity), or nullopt once
/// the mode's ladder is exhausted. `max_halvings` bounds the half-res
/// rungs; the sampled rung (mode kSample only) reuses the coarsest
/// half-res resolution. Resolutions never drop below 1x1.
std::optional<DegradeStep> DegradeLadderStep(DegradeMode mode, int level,
                                             int max_halvings, int full_width,
                                             int full_height, Method method);

}  // namespace slam
