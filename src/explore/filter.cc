#include "explore/filter.h"

#include <algorithm>

#include "util/string_util.h"

namespace slam {

bool EventFilter::Matches(int64_t event_time, int32_t category) const {
  if (time_begin && event_time < *time_begin) return false;
  if (time_end && event_time > *time_end) return false;
  if (!categories.empty() &&
      std::find(categories.begin(), categories.end(), category) ==
          categories.end()) {
    return false;
  }
  return true;
}

Result<PointDataset> ApplyFilter(const PointDataset& dataset,
                                 const EventFilter& filter) {
  if (filter.time_begin && filter.time_end &&
      *filter.time_begin > *filter.time_end) {
    return Status::InvalidArgument("filter time_begin after time_end");
  }
  PointDataset out(dataset.name());
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (filter.Matches(dataset.event_time(i), dataset.category(i))) {
      out.Add(dataset.coord(i), dataset.event_time(i), dataset.category(i));
    }
  }
  return out;
}

Result<int64_t> UnixFromDate(int year, int month, int day) {
  if (year < 1970 || month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument(
        StringPrintf("invalid date %04d-%02d-%02d", year, month, day));
  }
  // Days since epoch via the civil-from-days algorithm (Howard Hinnant).
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(day) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  const int64_t days =
      static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
  return days * 86400;
}

EventFilter Year2019Filter() {
  EventFilter f;
  f.time_begin = UnixFromDate(2019, 1, 1).ValueOrDie();
  // Inclusive end: last second of 31 Dec 2019.
  f.time_end = UnixFromDate(2020, 1, 1).ValueOrDie() - 1;
  return f;
}

}  // namespace slam
