// Attribute- and time-based filtering (paper Figure 2): restrict a dataset
// to an event-time window ("crime events from 1 Jan 2018 to 1 Jan 2019") or
// to categories ("only robbery events") before generating KDV.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace slam {

struct EventFilter {
  /// Inclusive bounds on event time (unix seconds); unset = unbounded.
  std::optional<int64_t> time_begin;
  std::optional<int64_t> time_end;
  /// Keep only these categories; empty = keep all.
  std::vector<int32_t> categories;

  bool IsNoop() const {
    return !time_begin && !time_end && categories.empty();
  }
  bool Matches(int64_t event_time, int32_t category) const;
};

/// New dataset containing the matching rows, in original order.
Result<PointDataset> ApplyFilter(const PointDataset& dataset,
                                 const EventFilter& filter);

/// Convenience: the paper's Figure 16 setup filters to calendar year 2019.
EventFilter Year2019Filter();

/// Unix-seconds timestamp of midnight UTC on the given date.
Result<int64_t> UnixFromDate(int year, int month, int day);

}  // namespace slam
