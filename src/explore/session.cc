#include "explore/session.h"

#include <algorithm>
#include <cmath>

#include "kdv/bandwidth.h"
#include "util/string_util.h"

namespace slam {

Result<ExplorerSession> ExplorerSession::Create(PointDataset dataset,
                                                const SessionConfig& config) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot explore an empty dataset");
  }
  if (config.width_px <= 0 || config.height_px <= 0) {
    return Status::InvalidArgument("session resolution must be positive");
  }
  double bandwidth;
  if (config.bandwidth) {
    if (!(*config.bandwidth > 0.0)) {
      return Status::InvalidArgument("session bandwidth must be positive");
    }
    bandwidth = *config.bandwidth;
  } else {
    SLAM_ASSIGN_OR_RETURN(bandwidth, ScottBandwidth(dataset.coords()));
  }
  SLAM_ASSIGN_OR_RETURN(
      Viewport viewport,
      Viewport::Create(dataset.Extent(), config.width_px, config.height_px));
  PointDataset filtered = dataset;  // starts unfiltered
  return ExplorerSession(std::move(dataset), std::move(filtered), config,
                         bandwidth, viewport);
}

Status ExplorerSession::Zoom(double ratio) {
  SLAM_ASSIGN_OR_RETURN(viewport_, viewport_.Zoomed(ratio));
  return Status::OK();
}

Status ExplorerSession::Pan(double fraction_x, double fraction_y) {
  SLAM_ASSIGN_OR_RETURN(
      viewport_, viewport_.Panned(fraction_x * viewport_.region().width(),
                                  fraction_y * viewport_.region().height()));
  return Status::OK();
}

Status ExplorerSession::ResetView() {
  if (filtered_.empty()) {
    return Status::InvalidArgument(
        "active filter matches no points; no view to reset to");
  }
  SLAM_ASSIGN_OR_RETURN(viewport_,
                        Viewport::Create(filtered_.Extent(),
                                         config_.width_px, config_.height_px));
  return Status::OK();
}

Status ExplorerSession::SetFilter(const EventFilter& filter) {
  SLAM_ASSIGN_OR_RETURN(filtered_, ApplyFilter(full_, filter));
  return Status::OK();
}

Status ExplorerSession::ScaleBandwidth(double factor) {
  if (!(factor > 0.0) || !std::isfinite(factor)) {
    return Status::InvalidArgument(
        "bandwidth scale factor must be positive and finite");
  }
  bandwidth_ *= factor;
  return Status::OK();
}

Status ExplorerSession::SetBandwidth(double bandwidth) {
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("bandwidth must be positive and finite");
  }
  bandwidth_ = bandwidth;
  return Status::OK();
}

Status ExplorerSession::SetKernel(KernelType kernel) {
  if (MethodIsSlam(config_.method) && !KernelSupportedBySlam(kernel)) {
    return Status::InvalidArgument(
        "current method is a SLAM variant, which cannot support the " +
        std::string(KernelTypeName(kernel)) + " kernel");
  }
  config_.kernel = kernel;
  return Status::OK();
}

Status ExplorerSession::SetMethod(Method method) {
  if (MethodIsSlam(method) && !KernelSupportedBySlam(config_.kernel)) {
    return Status::InvalidArgument(
        "current kernel is " + std::string(KernelTypeName(config_.kernel)) +
        ", which SLAM cannot support");
  }
  config_.method = method;
  return Status::OK();
}

Result<DensityMap> ExplorerSession::Render() const {
  const KdvTask task =
      MakeTask(filtered_, viewport_, config_.kernel, bandwidth_);
  return ComputeKdv(task, config_.method, config_.engine);
}

Result<RenderOutcome> ExplorerSession::RenderAdaptive() const {
  const ExecContext* base_exec = config_.engine.compute.exec;
  RenderOutcome outcome;
  const int max_halvings = std::max(0, config_.max_degrade_retries);
  for (int level = 0;; ++level) {
    const auto step =
        DegradeLadderStep(config_.degrade_mode, level, max_halvings,
                          config_.width_px, config_.height_px, config_.method);
    if (!step) break;  // ladder exhausted
    // Each attempt gets its own deadline (a Deadline cannot be re-armed);
    // cancellation, budget and fault injector pass through unchanged.
    ExecContext attempt_exec;
    if (base_exec != nullptr) attempt_exec = *base_exec;
    Deadline attempt_deadline(config_.render_budget_seconds);
    if (config_.render_budget_seconds > 0.0) {
      attempt_exec.set_deadline(&attempt_deadline);
    }
    EngineOptions attempt_engine = config_.engine;
    attempt_engine.compute.exec = &attempt_exec;

    auto attempt_viewport =
        Viewport::Create(viewport_.region(), step->width, step->height);
    if (!attempt_viewport.ok()) return attempt_viewport.status();
    const KdvTask task =
        MakeTask(filtered_, *attempt_viewport, config_.kernel, bandwidth_);
    auto map = ComputeKdv(task, step->method, attempt_engine);
    if (map.ok()) {
      outcome.map = *std::move(map);
      outcome.degrade_level = level;
      outcome.fidelity = step->fidelity;
      return outcome;
    }
    if (level == 0) outcome.full_res_status = map.status();
    // DeadlineExceeded / ResourceExhausted are pressure, answerable at a
    // lower rung; Cancelled is the user saying "stop", and anything else
    // (InvalidArgument, IoError, ...) would fail identically at any rung.
    const bool degradable = map.status().IsDeadlineExceeded() ||
                            map.status().IsResourceExhausted();
    if (!degradable) return map.status();
  }
  return outcome.full_res_status;
}

}  // namespace slam
