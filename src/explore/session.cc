#include "explore/session.h"

#include "kdv/bandwidth.h"
#include "util/string_util.h"

namespace slam {

Result<ExplorerSession> ExplorerSession::Create(PointDataset dataset,
                                                const SessionConfig& config) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot explore an empty dataset");
  }
  if (config.width_px <= 0 || config.height_px <= 0) {
    return Status::InvalidArgument("session resolution must be positive");
  }
  double bandwidth;
  if (config.bandwidth) {
    if (!(*config.bandwidth > 0.0)) {
      return Status::InvalidArgument("session bandwidth must be positive");
    }
    bandwidth = *config.bandwidth;
  } else {
    SLAM_ASSIGN_OR_RETURN(bandwidth, ScottBandwidth(dataset.coords()));
  }
  SLAM_ASSIGN_OR_RETURN(
      Viewport viewport,
      Viewport::Create(dataset.Extent(), config.width_px, config.height_px));
  PointDataset filtered = dataset;  // starts unfiltered
  return ExplorerSession(std::move(dataset), std::move(filtered), config,
                         bandwidth, viewport);
}

Status ExplorerSession::Zoom(double ratio) {
  SLAM_ASSIGN_OR_RETURN(viewport_, viewport_.Zoomed(ratio));
  return Status::OK();
}

Status ExplorerSession::Pan(double fraction_x, double fraction_y) {
  SLAM_ASSIGN_OR_RETURN(
      viewport_, viewport_.Panned(fraction_x * viewport_.region().width(),
                                  fraction_y * viewport_.region().height()));
  return Status::OK();
}

Status ExplorerSession::ResetView() {
  if (filtered_.empty()) {
    return Status::InvalidArgument(
        "active filter matches no points; no view to reset to");
  }
  SLAM_ASSIGN_OR_RETURN(viewport_,
                        Viewport::Create(filtered_.Extent(),
                                         config_.width_px, config_.height_px));
  return Status::OK();
}

Status ExplorerSession::SetFilter(const EventFilter& filter) {
  SLAM_ASSIGN_OR_RETURN(filtered_, ApplyFilter(full_, filter));
  return Status::OK();
}

Status ExplorerSession::ScaleBandwidth(double factor) {
  if (!(factor > 0.0)) {
    return Status::InvalidArgument("bandwidth scale factor must be positive");
  }
  bandwidth_ *= factor;
  return Status::OK();
}

Status ExplorerSession::SetBandwidth(double bandwidth) {
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  bandwidth_ = bandwidth;
  return Status::OK();
}

Status ExplorerSession::SetKernel(KernelType kernel) {
  if (MethodIsSlam(config_.method) && !KernelSupportedBySlam(kernel)) {
    return Status::InvalidArgument(
        "current method is a SLAM variant, which cannot support the " +
        std::string(KernelTypeName(kernel)) + " kernel");
  }
  config_.kernel = kernel;
  return Status::OK();
}

Status ExplorerSession::SetMethod(Method method) {
  if (MethodIsSlam(method) && !KernelSupportedBySlam(config_.kernel)) {
    return Status::InvalidArgument(
        "current kernel is " + std::string(KernelTypeName(config_.kernel)) +
        ", which SLAM cannot support");
  }
  config_.method = method;
  return Status::OK();
}

Result<DensityMap> ExplorerSession::Render() const {
  const KdvTask task =
      MakeTask(filtered_, viewport_, config_.kernel, bandwidth_);
  return ComputeKdv(task, config_.method, config_.engine);
}

}  // namespace slam
