// ExplorerSession: the stateful interactive-KDV object behind a tool like
// KDV-Explorer [19]. Holds a dataset, the active filter, the current
// viewport, kernel, bandwidth and method; zoom/pan/filter operations mutate
// the state and Render() produces the raster for the current view. This is
// the integration surface the paper's Figure 2 workflow exercises.
#pragma once

#include <memory>
#include <optional>

#include "data/dataset.h"
#include "explore/degrade.h"
#include "explore/filter.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "util/result.h"

namespace slam {

struct SessionConfig {
  int width_px = 1280;
  int height_px = 960;
  KernelType kernel = KernelType::kEpanechnikov;
  /// Unset = choose by Scott's rule on the (filtered) data at creation.
  std::optional<double> bandwidth;
  Method method = Method::kSlamBucketRao;
  EngineOptions engine;
  /// Per-attempt wall-clock budget for RenderAdaptive; <= 0 keeps whatever
  /// deadline engine.compute.exec already carries (possibly none).
  double render_budget_seconds = 0.0;
  /// How many times RenderAdaptive may halve the resolution after a
  /// DeadlineExceeded / ResourceExhausted attempt before giving up.
  int max_degrade_retries = 2;
  /// How far RenderAdaptive's ladder descends (explore/degrade.h).
  /// kHalfRes preserves the historical behaviour; kSample adds a final
  /// Z-order-sampled rung after the halvings are exhausted.
  DegradeMode degrade_mode = DegradeMode::kHalfRes;
};

/// Result of an adaptive render: the raster actually produced, how many
/// halvings were needed to get it, and (when degraded) why full resolution
/// failed.
struct RenderOutcome {
  DensityMap map;
  /// 0 = full resolution; k = rendered at width/2^k x height/2^k (the
  /// sampled rung reuses the coarsest halving's resolution).
  int degrade_level = 0;
  /// What was actually served; never kFull when degrade_level > 0.
  Fidelity fidelity = Fidelity::kFull;
  /// OK at degrade_level 0, else the full-resolution attempt's error.
  Status full_res_status;
};

class ExplorerSession {
 public:
  /// Takes a copy of the dataset. Initial viewport = dataset MBR.
  static Result<ExplorerSession> Create(PointDataset dataset,
                                        const SessionConfig& config);

  // -- Exploratory operations (paper Figure 2) -------------------------

  /// Scales the viewport about its center; ratio < 1 zooms in.
  Status Zoom(double ratio);
  /// Moves the viewport by the given fraction of its own width/height
  /// (e.g. Pan(0.5, 0) pans half a screen east).
  Status Pan(double fraction_x, double fraction_y);
  /// Resets the viewport to the MBR of the active (filtered) data.
  Status ResetView();
  /// Re-filters from the full dataset; pass a default EventFilter to clear.
  Status SetFilter(const EventFilter& filter);
  /// Scales the current bandwidth (bandwidth selection slider).
  Status ScaleBandwidth(double factor);
  Status SetBandwidth(double bandwidth);
  Status SetKernel(KernelType kernel);
  Status SetMethod(Method method);

  // -- Rendering --------------------------------------------------------

  /// Computes the density raster for the current state.
  Result<DensityMap> Render() const;

  /// Render with graceful degradation: when an attempt fails with
  /// DeadlineExceeded (deadline) or ResourceExhausted (memory budget),
  /// steps down the degradation ladder (explore/degrade.h) — half the
  /// resolution per rung, then (config.degrade_mode == kSample) a Z-order
  /// sampled rung. A render_budget_seconds > 0 arms a fresh per-attempt
  /// deadline. Cancelled is honoured immediately — the user asked to
  /// stop, so no degraded retry is attempted. Errors other than
  /// DeadlineExceeded / ResourceExhausted propagate unchanged.
  Result<RenderOutcome> RenderAdaptive() const;

  // -- Introspection ----------------------------------------------------

  const Viewport& viewport() const { return viewport_; }
  const PointDataset& active_data() const { return filtered_; }
  size_t total_points() const { return full_.size(); }
  double bandwidth() const { return bandwidth_; }
  KernelType kernel() const { return config_.kernel; }
  Method method() const { return config_.method; }

 private:
  ExplorerSession(PointDataset full, PointDataset filtered,
                  const SessionConfig& config, double bandwidth,
                  Viewport viewport)
      : full_(std::move(full)),
        filtered_(std::move(filtered)),
        config_(config),
        bandwidth_(bandwidth),
        viewport_(viewport) {}

  PointDataset full_;
  PointDataset filtered_;
  SessionConfig config_;
  double bandwidth_;
  Viewport viewport_;
};

}  // namespace slam
