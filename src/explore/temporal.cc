#include "explore/temporal.h"

#include <algorithm>

#include "explore/filter.h"
#include "kdv/bandwidth.h"
#include "kdv/grid.h"
#include "util/string_util.h"

namespace slam {

Result<std::vector<TimeSlice>> ComputeTimeSlicedKdv(
    const PointDataset& dataset, const Viewport& viewport,
    const TimeSliceConfig& config) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot slice an empty dataset");
  }
  if (config.window_seconds <= 0 || config.step_seconds <= 0) {
    return Status::InvalidArgument(
        "window_seconds and step_seconds must be positive");
  }
  if (MethodIsSlam(config.method) &&
      !KernelSupportedBySlam(config.kernel)) {
    return Status::InvalidArgument(
        "selected SLAM method cannot support the " +
        std::string(KernelTypeName(config.kernel)) + " kernel");
  }

  int64_t t_min = dataset.event_time(0);
  int64_t t_max = t_min;
  for (size_t i = 1; i < dataset.size(); ++i) {
    t_min = std::min(t_min, dataset.event_time(i));
    t_max = std::max(t_max, dataset.event_time(i));
  }
  const int64_t begin = config.begin.value_or(t_min);
  const int64_t end = config.end.value_or(t_max);
  if (begin > end) {
    return Status::InvalidArgument(
        StringPrintf("slice range inverted: begin %lld > end %lld",
                     static_cast<long long>(begin),
                     static_cast<long long>(end)));
  }

  double bandwidth;
  if (config.bandwidth) {
    if (!(*config.bandwidth > 0.0)) {
      return Status::InvalidArgument("bandwidth must be positive");
    }
    bandwidth = *config.bandwidth;
  } else {
    SLAM_ASSIGN_OR_RETURN(bandwidth, ScottBandwidth(dataset.coords()));
  }

  std::vector<TimeSlice> slices;
  for (int64_t window_begin = begin; window_begin <= end;
       window_begin += config.step_seconds) {
    const int64_t window_end =
        std::min(end, window_begin + config.window_seconds - 1);
    EventFilter filter;
    filter.time_begin = window_begin;
    filter.time_end = window_end;
    SLAM_ASSIGN_OR_RETURN(PointDataset window_data,
                          ApplyFilter(dataset, filter));

    TimeSlice slice;
    slice.begin = window_begin;
    slice.end = window_end;
    slice.event_count = window_data.size();
    if (window_data.empty()) {
      SLAM_ASSIGN_OR_RETURN(
          slice.map,
          DensityMap::Create(viewport.width_px(), viewport.height_px()));
    } else {
      KdvTask task = MakeTask(window_data, viewport, config.kernel, bandwidth);
      if (config.weight_by_total) {
        task.weight = 1.0 / static_cast<double>(dataset.size());
      }
      SLAM_ASSIGN_OR_RETURN(slice.map,
                            ComputeKdv(task, config.method, config.engine));
    }
    slices.push_back(std::move(slice));
    if (window_end >= end) break;
  }
  return slices;
}

}  // namespace slam
