// Time-sliced KDV: a sequence of density rasters over sliding event-time
// windows, the building block of spatio-temporal hotspot animation
// (the paper's future-work STKDV direction and the time-based filtering of
// Figure 2, applied repeatedly). Every slice is an exact KDV of the events
// inside its window, over a fixed viewport so frames are comparable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "geom/viewport.h"
#include "kdv/density_map.h"
#include "kdv/engine.h"
#include "util/result.h"

namespace slam {

struct TimeSliceConfig {
  /// Window length in seconds (e.g. 30 days). Must be positive.
  int64_t window_seconds = 30LL * 86400;
  /// Start-to-start distance between consecutive windows. Must be
  /// positive; < window means overlapping windows.
  int64_t step_seconds = 30LL * 86400;
  /// Time range; unset = the dataset's [min, max] event time.
  std::optional<int64_t> begin;
  std::optional<int64_t> end;
  KernelType kernel = KernelType::kEpanechnikov;
  /// Unset = Scott's rule on the FULL dataset (shared across slices so
  /// frame-to-frame smoothness is comparable).
  std::optional<double> bandwidth;
  Method method = Method::kSlamBucketRao;
  EngineOptions engine;
  /// Normalization weight policy: true divides each slice by the FULL
  /// dataset size (comparable absolute intensities across frames); false
  /// divides by the slice's own event count (per-frame normalized).
  bool weight_by_total = true;
};

struct TimeSlice {
  int64_t begin = 0;  // inclusive
  int64_t end = 0;    // inclusive
  size_t event_count = 0;
  DensityMap map;
};

/// Computes one raster per window. Windows with no events yield a zero
/// raster (still emitted, so animations keep their cadence).
Result<std::vector<TimeSlice>> ComputeTimeSlicedKdv(
    const PointDataset& dataset, const Viewport& viewport,
    const TimeSliceConfig& config);

}  // namespace slam
