#include "explore/viewport_ops.h"

#include "util/random.h"
#include "util/string_util.h"

namespace slam {

Result<Viewport> DatasetViewport(const PointDataset& dataset, int width_px,
                                 int height_px) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty; no viewport to derive");
  }
  return Viewport::Create(dataset.Extent(), width_px, height_px);
}

Result<std::vector<Viewport>> ZoomSequence(const PointDataset& dataset,
                                           const std::vector<double>& ratios,
                                           int width_px, int height_px) {
  SLAM_ASSIGN_OR_RETURN(Viewport base,
                        DatasetViewport(dataset, width_px, height_px));
  std::vector<Viewport> out;
  out.reserve(ratios.size());
  for (const double ratio : ratios) {
    SLAM_ASSIGN_OR_RETURN(Viewport v, base.Zoomed(ratio));
    out.push_back(v);
  }
  return out;
}

Result<std::vector<Viewport>> RandomPanViewports(const PointDataset& dataset,
                                                 int count, double ratio,
                                                 int width_px, int height_px,
                                                 uint64_t seed) {
  if (count <= 0) {
    return Status::InvalidArgument("pan viewport count must be positive");
  }
  if (!(ratio > 0.0) || ratio > 1.0) {
    return Status::InvalidArgument(
        StringPrintf("pan rectangle ratio must be in (0, 1], got %f", ratio));
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty; no viewports to derive");
  }
  const BoundingBox mbr = dataset.Extent();
  const double w = mbr.width() * ratio;
  const double h = mbr.height() * ratio;
  Rng rng(seed);
  std::vector<Viewport> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double x0 = mbr.min().x + rng.NextDouble() * (mbr.width() - w);
    const double y0 = mbr.min().y + rng.NextDouble() * (mbr.height() - h);
    SLAM_ASSIGN_OR_RETURN(
        Viewport v, Viewport::Create(BoundingBox({x0, y0}, {x0 + w, y0 + h}),
                                     width_px, height_px));
    out.push_back(v);
  }
  return out;
}

}  // namespace slam
