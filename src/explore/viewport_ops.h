// Viewport construction for the exploratory-operation experiments (paper
// Section 4.2, Figure 16): zoom sequences scaled about the dataset MBR's
// center and random pan rectangles of half the MBR's extent.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geom/viewport.h"
#include "util/result.h"

namespace slam {

/// Viewport over the dataset's minimum bounding rectangle.
Result<Viewport> DatasetViewport(const PointDataset& dataset, int width_px,
                                 int height_px);

/// One viewport per ratio (e.g. {0.25, 0.5, 0.75, 1}), each the MBR scaled
/// about its center, all at the same resolution. Ratio 1 is the MBR itself.
Result<std::vector<Viewport>> ZoomSequence(const PointDataset& dataset,
                                           const std::vector<double>& ratios,
                                           int width_px, int height_px);

/// `count` random rectangles of size (ratio*W, ratio*H) placed uniformly
/// inside the MBR (paper uses count = 5, ratio = 0.5), all at the same
/// resolution. Deterministic in `seed`.
Result<std::vector<Viewport>> RandomPanViewports(const PointDataset& dataset,
                                                 int count, double ratio,
                                                 int width_px, int height_px,
                                                 uint64_t seed);

}  // namespace slam
