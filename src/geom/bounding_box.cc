#include "geom/bounding_box.h"

#include "util/string_util.h"

namespace slam {

BoundingBox BoundingBox::FromPoints(std::span<const Point> points) {
  BoundingBox box;
  for (const Point& p : points) box.Extend(p);
  return box;
}

double BoundingBox::MinSquaredDistance(const Point& q) const {
  const double dx = std::max({min_.x - q.x, 0.0, q.x - max_.x});
  const double dy = std::max({min_.y - q.y, 0.0, q.y - max_.y});
  return dx * dx + dy * dy;
}

double BoundingBox::MaxSquaredDistance(const Point& q) const {
  const double dx = std::max(std::abs(q.x - min_.x), std::abs(q.x - max_.x));
  const double dy = std::max(std::abs(q.y - min_.y), std::abs(q.y - max_.y));
  return dx * dx + dy * dy;
}

BoundingBox BoundingBox::ScaledAboutCenter(double ratio) const {
  const Point c = center();
  const double hw = width() * 0.5 * ratio;
  const double hh = height() * 0.5 * ratio;
  return BoundingBox({c.x - hw, c.y - hh}, {c.x + hw, c.y + hh});
}

std::string BoundingBox::ToString() const {
  return StringPrintf("[(%.3f, %.3f), (%.3f, %.3f)]", min_.x, min_.y, max_.x,
                      max_.y);
}

}  // namespace slam
