// Axis-aligned bounding rectangle. Used for dataset extents, index nodes,
// and the minimum bounding rectangles of the zoom/pan experiments.
#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <string>

#include "geom/point.h"

namespace slam {

class BoundingBox {
 public:
  /// Default: empty (inverted) box; Extend() fixes it up.
  BoundingBox()
      : min_(std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::infinity()),
        max_(-std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()) {}
  BoundingBox(const Point& min, const Point& max) : min_(min), max_(max) {}

  static BoundingBox FromPoints(std::span<const Point> points);

  bool empty() const { return min_.x > max_.x || min_.y > max_.y; }
  const Point& min() const { return min_; }
  const Point& max() const { return max_; }
  double width() const { return max_.x - min_.x; }
  double height() const { return max_.y - min_.y; }
  Point center() const {
    return {(min_.x + max_.x) * 0.5, (min_.y + max_.y) * 0.5};
  }
  double Area() const { return empty() ? 0.0 : width() * height(); }

  void Extend(const Point& p) {
    min_.x = std::min(min_.x, p.x);
    min_.y = std::min(min_.y, p.y);
    max_.x = std::max(max_.x, p.x);
    max_.y = std::max(max_.y, p.y);
  }
  void Extend(const BoundingBox& other) {
    if (other.empty()) return;
    Extend(other.min_);
    Extend(other.max_);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y;
  }
  bool Contains(const BoundingBox& other) const {
    return !other.empty() && Contains(other.min_) && Contains(other.max_);
  }
  bool Intersects(const BoundingBox& other) const {
    return !(other.min_.x > max_.x || other.max_.x < min_.x ||
             other.min_.y > max_.y || other.max_.y < min_.y);
  }

  /// Squared distance from q to the closest point of the box (0 if inside).
  double MinSquaredDistance(const Point& q) const;
  /// Squared distance from q to the farthest corner of the box.
  double MaxSquaredDistance(const Point& q) const;

  /// A box with the same center, scaled by `ratio` in each dimension.
  /// ratio < 1 zooms in (the paper's Figure 16 zoom experiment).
  BoundingBox ScaledAboutCenter(double ratio) const;

  /// Expands every side outward by `margin` (>= 0).
  BoundingBox Expanded(double margin) const {
    return BoundingBox({min_.x - margin, min_.y - margin},
                       {max_.x + margin, max_.y + margin});
  }

  bool operator==(const BoundingBox& o) const {
    return min_ == o.min_ && max_ == o.max_;
  }

  std::string ToString() const;

 private:
  Point min_;
  Point max_;
};

}  // namespace slam
