#include "geom/morton.h"

#include <algorithm>
#include <cmath>

namespace slam {

uint64_t InterleaveBits32(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t DeinterleaveBits32(uint64_t v) {
  uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(x);
}

uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return InterleaveBits32(x) | (InterleaveBits32(y) << 1);
}

void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = DeinterleaveBits32(code);
  *y = DeinterleaveBits32(code >> 1);
}

namespace {
uint32_t Quantize(double v, double lo, double extent) {
  if (extent <= 0.0) return 0;
  const double t = (v - lo) / extent;
  const double scaled = t * 4294967295.0;  // 2^32 - 1
  if (scaled <= 0.0) return 0;
  if (scaled >= 4294967295.0) return 0xffffffffu;
  return static_cast<uint32_t>(scaled);
}
}  // namespace

uint64_t MortonCodeForPoint(const Point& p, const BoundingBox& extent) {
  if (extent.empty()) return 0;
  const uint32_t qx = Quantize(p.x, extent.min().x, extent.width());
  const uint32_t qy = Quantize(p.y, extent.min().y, extent.height());
  return MortonEncode(qx, qy);
}

std::vector<uint32_t> MortonSortOrder(std::span<const Point> points) {
  const BoundingBox extent = BoundingBox::FromPoints(points);
  std::vector<uint64_t> codes(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    codes[i] = MortonCodeForPoint(points[i], extent);
  }
  std::vector<uint32_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&codes](uint32_t a, uint32_t b) {
    return codes[a] != codes[b] ? codes[a] < codes[b] : a < b;
  });
  return order;
}

}  // namespace slam
