// Morton (Z-order) codes. The Z-order baseline of Zheng et al. [73] sorts
// the dataset along the Z-order curve so that a strided sample is spatially
// stratified; these helpers provide the 32-bit-per-axis interleaving.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"

namespace slam {

/// Spreads the low 32 bits of v so bit i lands at position 2i.
uint64_t InterleaveBits32(uint32_t v);

/// Inverse of InterleaveBits32 on even bit positions.
uint32_t DeinterleaveBits32(uint64_t v);

/// Interleaved (y, x) -> 64-bit Morton code; x occupies even bits.
uint64_t MortonEncode(uint32_t x, uint32_t y);

/// Splits a Morton code back into (x, y).
void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y);

/// Quantizes p into [0, 2^32) per axis within `extent` and encodes it.
/// Points outside the extent are clamped. An empty or degenerate extent
/// maps everything to code 0.
uint64_t MortonCodeForPoint(const Point& p, const BoundingBox& extent);

/// Returns the permutation that sorts `points` by Morton code within their
/// bounding box (computed internally).
std::vector<uint32_t> MortonSortOrder(std::span<const Point> points);

}  // namespace slam
