// 2-D point value type used throughout the library. Kept trivially copyable
// and 16 bytes so hot loops over std::span<const Point> vectorize well.
#pragma once

#include <cmath>

namespace slam {

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Point& o) const { return x == o.x && y == o.y; }

  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }
  /// ||p||_2^2
  constexpr double SquaredNorm() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(SquaredNorm()); }
};

/// Squared Euclidean distance — the primitive every kernel evaluation uses.
constexpr double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace slam
