#include "geom/projection.h"

#include <cmath>
#include <numbers>

#include "util/string_util.h"

namespace slam {

namespace {
// WGS84 mean Earth radius, meters.
constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

Result<LocalProjection> LocalProjection::Create(double lon0_deg,
                                                double lat0_deg) {
  if (!(lat0_deg > -89.9 && lat0_deg < 89.9)) {
    return Status::InvalidArgument(StringPrintf(
        "reference latitude %.3f out of supported range (-89.9, 89.9)",
        lat0_deg));
  }
  if (!(lon0_deg >= -180.0 && lon0_deg <= 180.0)) {
    return Status::InvalidArgument(
        StringPrintf("reference longitude %.3f out of [-180, 180]", lon0_deg));
  }
  const double meters_per_deg_lat = kEarthRadiusMeters * kDegToRad;
  const double meters_per_deg_lon =
      meters_per_deg_lat * std::cos(lat0_deg * kDegToRad);
  return LocalProjection(lon0_deg, lat0_deg, meters_per_deg_lon,
                         meters_per_deg_lat);
}

Result<LocalProjection> LocalProjection::ForData(
    std::span<const Point> lonlat) {
  if (lonlat.empty()) {
    return Status::InvalidArgument("cannot center a projection on no points");
  }
  double sum_lon = 0.0, sum_lat = 0.0;
  for (const Point& p : lonlat) {
    sum_lon += p.x;
    sum_lat += p.y;
  }
  const double n = static_cast<double>(lonlat.size());
  return Create(sum_lon / n, sum_lat / n);
}

Point LocalProjection::Forward(const Point& lonlat) const {
  return {(lonlat.x - lon0_deg_) * meters_per_deg_lon_,
          (lonlat.y - lat0_deg_) * meters_per_deg_lat_};
}

Point LocalProjection::Inverse(const Point& xy) const {
  return {lon0_deg_ + xy.x / meters_per_deg_lon_,
          lat0_deg_ + xy.y / meters_per_deg_lat_};
}

std::vector<Point> LocalProjection::ForwardAll(
    std::span<const Point> lonlat) const {
  std::vector<Point> out;
  out.reserve(lonlat.size());
  for (const Point& p : lonlat) out.push_back(Forward(p));
  return out;
}

}  // namespace slam
