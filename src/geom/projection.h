// Geographic projection: WGS84 (lon, lat in degrees) to local planar meters.
// The paper's bandwidths are in meters (Table 5), so datasets given in
// lon/lat must be projected before KDV. We use an equirectangular projection
// about a reference latitude — accurate to well under 1% at city scale,
// which is what the municipal datasets cover.
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "util/result.h"

namespace slam {

class LocalProjection {
 public:
  /// Reference point (lon0, lat0) in degrees; projected coords are meters
  /// east / north of it.
  static Result<LocalProjection> Create(double lon0_deg, double lat0_deg);

  /// Projection centered on the centroid of the (lon, lat) points.
  static Result<LocalProjection> ForData(std::span<const Point> lonlat);

  /// (lon, lat) degrees -> (x, y) meters.
  Point Forward(const Point& lonlat) const;
  /// (x, y) meters -> (lon, lat) degrees.
  Point Inverse(const Point& xy) const;

  std::vector<Point> ForwardAll(std::span<const Point> lonlat) const;

  double lon0_deg() const { return lon0_deg_; }
  double lat0_deg() const { return lat0_deg_; }

 private:
  LocalProjection(double lon0_deg, double lat0_deg, double meters_per_deg_lon,
                  double meters_per_deg_lat)
      : lon0_deg_(lon0_deg),
        lat0_deg_(lat0_deg),
        meters_per_deg_lon_(meters_per_deg_lon),
        meters_per_deg_lat_(meters_per_deg_lat) {}

  double lon0_deg_;
  double lat0_deg_;
  double meters_per_deg_lon_;
  double meters_per_deg_lat_;
};

}  // namespace slam
