#include "geom/viewport.h"

#include <cmath>

#include "util/string_util.h"

namespace slam {

Result<Viewport> Viewport::Create(const BoundingBox& region, int width_px,
                                  int height_px) {
  if (region.empty() || region.width() <= 0.0 || region.height() <= 0.0) {
    return Status::InvalidArgument("viewport region must have positive area, got " +
                                   region.ToString());
  }
  if (!std::isfinite(region.width()) || !std::isfinite(region.height()) ||
      !std::isfinite(region.min().x) || !std::isfinite(region.min().y)) {
    return Status::InvalidArgument("viewport region must be finite, got " +
                                   region.ToString());
  }
  if (width_px <= 0 || height_px <= 0) {
    return Status::InvalidArgument(StringPrintf(
        "viewport resolution must be positive, got %dx%d", width_px,
        height_px));
  }
  return Viewport(region, width_px, height_px);
}

bool Viewport::GeoToPixel(const Point& p, int* ix, int* iy) const {
  if (!region_.Contains(p)) return false;
  int x = static_cast<int>((p.x - region_.min().x) / pixel_gap_x());
  int y = static_cast<int>((p.y - region_.min().y) / pixel_gap_y());
  if (x >= width_px_) x = width_px_ - 1;  // p.x == region max edge
  if (y >= height_px_) y = height_px_ - 1;
  *ix = x;
  *iy = y;
  return true;
}

Result<PixelCoord> Viewport::ToPixel(const Point& p) const {
  int ix = 0;
  int iy = 0;
  if (!GeoToPixel(p, &ix, &iy)) {
    return Status::OutOfRange(StringPrintf(
        "point (%.17g, %.17g) outside viewport region %s", p.x, p.y,
        region_.ToString().c_str()));
  }
  return PixelCoord{PixelX(ix), PixelY(iy)};
}

Result<Viewport> Viewport::Zoomed(double ratio) const {
  if (!(ratio > 0.0) || !std::isfinite(ratio)) {
    return Status::InvalidArgument(
        StringPrintf("zoom ratio must be positive and finite, got %f", ratio));
  }
  return Create(region_.ScaledAboutCenter(ratio), width_px_, height_px_);
}

Result<Viewport> Viewport::Panned(double dx, double dy) const {
  if (!std::isfinite(dx) || !std::isfinite(dy)) {
    return Status::InvalidArgument("pan offsets must be finite");
  }
  const BoundingBox moved({region_.min().x + dx, region_.min().y + dy},
                          {region_.max().x + dx, region_.max().y + dy});
  return Create(moved, width_px_, height_px_);
}

std::string Viewport::ToString() const {
  return StringPrintf("Viewport(%s @ %dx%d)", region_.ToString().c_str(),
                      width_px_, height_px_);
}

}  // namespace slam
