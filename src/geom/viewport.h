// Viewport: a geographic region rendered at a fixed pixel resolution.
// This is the object the exploratory operations (zoom / pan, Figure 16 of
// the paper) manipulate: the resolution stays fixed (e.g. 1280x960) while
// the geographic region changes.
#pragma once

#include <string>

#include "geom/bounding_box.h"
#include "geom/point.h"
#include "util/result.h"
#include "util/units.h"

namespace slam {

class Viewport {
 public:
  /// `region` must be non-empty with positive area; width/height in pixels
  /// must be positive.
  static Result<Viewport> Create(const BoundingBox& region, int width_px,
                                 int height_px);

  const BoundingBox& region() const { return region_; }
  int width_px() const { return width_px_; }
  int height_px() const { return height_px_; }
  int64_t pixel_count() const {
    return static_cast<int64_t>(width_px_) * height_px_;
  }

  /// Geographic extent of one pixel.
  double pixel_gap_x() const { return region_.width() / width_px_; }
  double pixel_gap_y() const { return region_.height() / height_px_; }

  /// Geographic coordinates of the center of pixel (ix, iy),
  /// 0 <= ix < width_px, 0 <= iy < height_px. Row iy = 0 is the bottom row
  /// (min y); the image writer flips for display.
  Point PixelCenter(int ix, int iy) const {
    return {region_.min().x + (ix + 0.5) * pixel_gap_x(),
            region_.min().y + (iy + 0.5) * pixel_gap_y()};
  }

  /// Pixel indices containing the geographic point; points on the max edge
  /// map to the last pixel. Returns false if p is outside the region.
  bool GeoToPixel(const Point& p, int* ix, int* iy) const;

  /// Typed variants (util/units.h, DESIGN.md §13): the checked world→pixel
  /// conversion returns axis-tagged indices, so a caller cannot feed the
  /// y index where an x index is expected without an explicit (greppable)
  /// unwrap.
  Result<PixelCoord> ToPixel(const Point& p) const;
  Point PixelCenter(PixelX ix, PixelY iy) const {
    return PixelCenter(ix.value(), iy.value());
  }

  /// Zoomed viewport: same center and resolution, region scaled by `ratio`
  /// per axis (ratio < 1 zooms in). Mirrors the paper's Figure 16a/b setup.
  Result<Viewport> Zoomed(double ratio) const;

  /// Panned viewport: region translated by (dx, dy) geographic units.
  Result<Viewport> Panned(double dx, double dy) const;

  /// Viewport over a different region at the same resolution.
  Result<Viewport> WithRegion(const BoundingBox& region) const {
    return Create(region, width_px_, height_px_);
  }

  bool operator==(const Viewport& o) const {
    return region_ == o.region_ && width_px_ == o.width_px_ &&
           height_px_ == o.height_px_;
  }

  std::string ToString() const;

 private:
  Viewport(const BoundingBox& region, int width_px, int height_px)
      : region_(region), width_px_(width_px), height_px_(height_px) {}

  BoundingBox region_;
  int width_px_;
  int height_px_;
};

}  // namespace slam
