#include "index/balltree.h"

#include <algorithm>
#include <cmath>

#include "geom/bounding_box.h"

namespace slam {

Result<BallTree> BallTree::Build(std::span<const Point> points,
                                 const BallTreeOptions& options) {
  if (options.leaf_size <= 0) {
    return Status::InvalidArgument("ball-tree leaf size must be positive");
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "balltree/build"));
  BallTree tree;
  tree.points_.assign(points.begin(), points.end());
  if (!tree.points_.empty()) {
    tree.nodes_.reserve(2 * tree.points_.size() / options.leaf_size + 2);
    Status build_status;
    tree.root_ = tree.BuildRecursive(
        0, static_cast<uint32_t>(tree.points_.size()), options.leaf_size,
        options.exec, &build_status);
    SLAM_RETURN_NOT_OK(build_status);
  }
  return tree;
}

int32_t BallTree::BuildRecursive(uint32_t begin, uint32_t end, int leaf_size,
                                 const ExecContext* exec,
                                 Status* build_status) {
  if (!build_status->ok()) return -1;
  if (exec != nullptr && nodes_.size() % 64 == 0) {
    *build_status = exec->Check("balltree/build");
    if (!build_status->ok()) return -1;
  }
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    Point centroid{0.0, 0.0};
    for (uint32_t i = begin; i < end; ++i) {
      centroid += points_[i];
    }
    centroid = centroid * (1.0 / (end - begin));
    double max_sq = 0.0;
    // Aggregates anchored at the ball center: magnitudes scale with the
    // node radius, not the global coordinate frame.
    for (uint32_t i = begin; i < end; ++i) {
      max_sq = std::max(max_sq, SquaredDistance(centroid, points_[i]));
      node.aggregates.Add(points_[i] - centroid);
    }
    node.center = centroid;
    node.radius = std::sqrt(max_sq);
  }
  if (end - begin <= static_cast<uint32_t>(leaf_size)) {
    return index;
  }
  // Split on the dimension with the larger spread, at the median.
  BoundingBox bounds;
  for (uint32_t i = begin; i < end; ++i) bounds.Extend(points_[i]);
  const bool split_x = bounds.width() >= bounds.height();
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(points_.begin() + begin, points_.begin() + mid,
                   points_.begin() + end,
                   [split_x](const Point& a, const Point& b) {
                     return split_x ? a.x < b.x : a.y < b.y;
                   });
  const int32_t left = BuildRecursive(begin, mid, leaf_size, exec,
                                      build_status);
  const int32_t right = BuildRecursive(mid, end, leaf_size, exec,
                                       build_status);
  if (!build_status->ok()) return -1;
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void BallTree::RangeQuery(const Point& q, double radius,
                          const std::function<void(const Point&)>& fn) const {
  if (root_ < 0 || radius < 0.0) return;
  const double r2 = radius * radius;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    const double center_dist = Distance(q, node.center);
    if (center_dist - node.radius > radius) continue;  // ball fully outside
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(q, points_[i]) <= r2) fn(points_[i]);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

int64_t BallTree::RangeCount(const Point& q, double radius) const {
  int64_t count = 0;
  RangeQuery(q, radius, [&count](const Point&) { ++count; });
  return count;
}

RangeAggregates BallTree::RangeAggregateQuery(const Point& q,
                                              double radius) const {
  RangeAggregates agg;
  if (root_ < 0 || radius < 0.0) return agg;
  const double r2 = radius * radius;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    const double center_dist = Distance(q, node.center);
    if (center_dist - node.radius > radius) continue;
    if (center_dist + node.radius <= radius) {
      // Ball fully inside the disk: shift its center-anchored aggregates
      // into the query frame.
      agg.Merge(TranslatedAggregates(node.aggregates, node.center - q));
      continue;
    }
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(q, points_[i]) <= r2) agg.Add(points_[i] - q);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return agg;
}

size_t BallTree::MemoryUsageBytes() const {
  return points_.capacity() * sizeof(Point) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace slam
