// Bulk-loaded 2-D ball-tree [Moore 2000 "anchors hierarchy" family]:
// each node stores the centroid of its points and the radius of the
// smallest centered ball containing them. Powers the RQS_ball baseline
// (paper Table 6, Section 2.2).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/point.h"
#include "kdv/kernel.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

struct BallTreeOptions {
  int leaf_size = 32;
  /// Polled periodically during the build; not owned, may be null.
  const ExecContext* exec = nullptr;
};

class BallTree {
 public:
  static Result<BallTree> Build(std::span<const Point> points,
                                const BallTreeOptions& options = {});

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  size_t node_count() const { return nodes_.size(); }

  /// Calls `fn(p)` for every point with dist(q, p) <= radius.
  void RangeQuery(const Point& q, double radius,
                  const std::function<void(const Point&)>& fn) const;

  int64_t RangeCount(const Point& q, double radius) const;

  /// Exact aggregates of R(q), using whole-ball containment for O(1) node
  /// contributions.
  /// Exact aggregates of R(q), expressed in the query-centered frame
  /// (each member enters as p - q); node aggregates are anchored at the
  /// ball center and shifted at merge time, keeping all magnitudes
  /// bandwidth-scaled. Evaluate with DensityFromAggregates at q = (0, 0).
  RangeAggregates RangeAggregateQuery(const Point& q, double radius) const;

  size_t MemoryUsageBytes() const;

 private:
  struct Node {
    Point center;
    double radius = 0.0;
    RangeAggregates aggregates;
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    bool IsLeaf() const { return left < 0; }
  };

  int32_t BuildRecursive(uint32_t begin, uint32_t end, int leaf_size,
                         const ExecContext* exec, Status* build_status);

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace slam
