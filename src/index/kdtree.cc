#include "index/kdtree.h"

#include <algorithm>

#include "util/logging.h"

namespace slam {

Result<KdTree> KdTree::Build(std::span<const Point> points,
                             const KdTreeOptions& options) {
  if (options.leaf_size <= 0) {
    return Status::InvalidArgument("kd-tree leaf size must be positive");
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "kdtree/build"));
  KdTree tree;
  tree.points_.assign(points.begin(), points.end());
  if (!tree.points_.empty()) {
    tree.nodes_.reserve(2 * tree.points_.size() / options.leaf_size + 2);
    Status build_status;
    tree.root_ = tree.BuildRecursive(0, static_cast<uint32_t>(tree.points_.size()),
                                     options.leaf_size, options.exec,
                                     &build_status);
    SLAM_RETURN_NOT_OK(build_status);
  }
  return tree;
}

int32_t KdTree::BuildRecursive(uint32_t begin, uint32_t end, int leaf_size,
                               const ExecContext* exec,
                               Status* build_status) {
  if (!build_status->ok()) return -1;
  // Poll at node-creation granularity (every 64 nodes keeps the overhead
  // well under the aggregate pass that follows).
  if (exec != nullptr && nodes_.size() % 64 == 0) {
    *build_status = exec->Check("kdtree/build");
    if (!build_status->ok()) return -1;
  }
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    for (uint32_t i = begin; i < end; ++i) {
      node.bounds.Extend(points_[i]);
    }
    // Anchor the aggregates at the node center so their magnitudes scale
    // with the node extent, not the global coordinate frame.
    node.anchor = node.bounds.center();
    for (uint32_t i = begin; i < end; ++i) {
      node.aggregates.Add(points_[i] - node.anchor);
    }
  }
  if (end - begin <= static_cast<uint32_t>(leaf_size)) {
    return index;  // leaf
  }
  // Split on the wider dimension at the median.
  const BoundingBox bounds = nodes_[index].bounds;  // copy: nodes_ may grow
  const bool split_x = bounds.width() >= bounds.height();
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(points_.begin() + begin, points_.begin() + mid,
                   points_.begin() + end,
                   [split_x](const Point& a, const Point& b) {
                     return split_x ? a.x < b.x : a.y < b.y;
                   });
  const int32_t left = BuildRecursive(begin, mid, leaf_size, exec,
                                      build_status);
  const int32_t right = BuildRecursive(mid, end, leaf_size, exec,
                                       build_status);
  if (!build_status->ok()) return -1;
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void KdTree::RangeQuery(const Point& q, double radius,
                        const std::function<void(const Point&)>& fn) const {
  if (root_ < 0 || radius < 0.0) return;
  const double r2 = radius * radius;
  // Explicit stack: recursion depth can reach ~log2(n) but an iterative
  // traversal avoids std::function call frames on the spine.
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.bounds.MinSquaredDistance(q) > r2) continue;
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(q, points_[i]) <= r2) fn(points_[i]);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

int64_t KdTree::RangeCount(const Point& q, double radius) const {
  int64_t count = 0;
  RangeQuery(q, radius, [&count](const Point&) { ++count; });
  return count;
}

RangeAggregates KdTree::RangeAggregateQuery(const Point& q,
                                            double radius) const {
  RangeAggregates agg;
  if (root_ < 0 || radius < 0.0) return agg;
  const double r2 = radius * radius;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.bounds.MinSquaredDistance(q) > r2) continue;
    if (node.bounds.MaxSquaredDistance(q) <= r2) {
      // Whole node inside the disk: shift its anchored aggregates into the
      // query frame (|anchor - q| <= radius + node extent).
      agg.Merge(TranslatedAggregates(node.aggregates, node.anchor - q));
      continue;
    }
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(q, points_[i]) <= r2) agg.Add(points_[i] - q);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return agg;
}

double KdTree::AccumulateKernelBounded(const Point& q, KernelType kernel,
                                       double bandwidth,
                                       double epsilon) const {
  if (root_ < 0) return 0.0;
  const double b2 = bandwidth * bandwidth;
  const bool bounded_support = KernelSupportedBySlam(kernel);
  double sum = 0.0;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    const double min_d2 = node.bounds.MinSquaredDistance(q);
    if (bounded_support && min_d2 > b2) continue;  // node fully outside
    const double max_d2 = node.bounds.MaxSquaredDistance(q);
    // Monotone decreasing kernels: bounds from the distance extremes.
    const double k_upper = EvaluateKernel(kernel, min_d2, bandwidth);
    const double k_lower = EvaluateKernel(kernel, max_d2, bandwidth);
    if (k_upper - k_lower <= epsilon) {
      sum += node.aggregates.count * 0.5 * (k_upper + k_lower);
      continue;
    }
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        sum += EvaluateKernel(kernel, SquaredDistance(q, points_[i]),
                              bandwidth);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return sum;
}

size_t KdTree::MemoryUsageBytes() const {
  return points_.capacity() * sizeof(Point) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace slam
