// Bulk-loaded 2-D kd-tree [Bentley 1975] with per-node kernel aggregates.
//
// Powers two baselines from the paper's Table 6:
//  * RQS_kd — exact range query per pixel (Section 2.2): RangeQuery().
//  * aKDE  — bound-based approximate evaluation (Gray & Moore [33]):
//            AccumulateKernelBounded().
// The per-node RangeAggregates also allow an exact O(1) contribution when a
// node lies entirely inside the query disk: RangeAggregateQuery().
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"
#include "kdv/kernel.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

struct KdTreeOptions {
  int leaf_size = 32;
  /// Polled periodically during the build so a cancelled or expired
  /// context aborts index construction promptly. Not owned; may be null.
  const ExecContext* exec = nullptr;
};

class KdTree {
 public:
  /// Copies (and internally reorders) the points.
  static Result<KdTree> Build(std::span<const Point> points,
                              const KdTreeOptions& options = {});

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  size_t node_count() const { return nodes_.size(); }

  /// Calls `fn(p)` for every point with dist(q, p) <= radius.
  void RangeQuery(const Point& q, double radius,
                  const std::function<void(const Point&)>& fn) const;

  /// Counts points with dist(q, p) <= radius.
  int64_t RangeCount(const Point& q, double radius) const;

  /// Exact aggregates of the range set R(q) = {p : dist(q,p) <= radius}.
  /// Uses whole-node aggregates where the node ball test allows it.
  /// Exact aggregates of R(q), expressed in the query-centered frame
  /// (each member enters as p - q); node aggregates are stored anchored
  /// at the node center and shifted at merge time, keeping all magnitudes
  /// bandwidth-scaled. Evaluate with DensityFromAggregates at q = (0, 0).
  RangeAggregates RangeAggregateQuery(const Point& q, double radius) const;

  /// aKDE-style bounded evaluation of sum_p K(q, p): prunes nodes outside
  /// the bandwidth; approximates a node's contribution by the midpoint of
  /// its kernel bounds when (upper - lower) <= epsilon; recurses otherwise.
  /// epsilon == 0 degenerates to exact per-point evaluation.
  double AccumulateKernelBounded(const Point& q, KernelType kernel,
                                 double bandwidth, double epsilon) const;

  /// Bytes of heap the index holds (points + nodes); the Figure 17 space
  /// experiment reads this.
  size_t MemoryUsageBytes() const;

 private:
  struct Node {
    BoundingBox bounds;
    Point anchor;  // bounds center; aggregates are over p - anchor
    RangeAggregates aggregates;
    int32_t left = -1;    // internal iff left >= 0
    int32_t right = -1;
    uint32_t begin = 0;   // leaf point range [begin, end)
    uint32_t end = 0;
    bool IsLeaf() const { return left < 0; }
  };

  int32_t BuildRecursive(uint32_t begin, uint32_t end, int leaf_size,
                         const ExecContext* exec, Status* build_status);

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace slam
