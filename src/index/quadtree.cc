#include "index/quadtree.h"

#include <algorithm>

namespace slam {

Result<QuadTree> QuadTree::Build(std::span<const Point> points,
                                 const QuadTreeOptions& options) {
  if (options.leaf_size <= 0 || options.max_depth <= 0) {
    return Status::InvalidArgument(
        "quadtree leaf size and max depth must be positive");
  }
  SLAM_RETURN_NOT_OK(ExecCheck(options.exec, "quadtree/build"));
  QuadTree tree;
  tree.points_.assign(points.begin(), points.end());
  if (!tree.points_.empty()) {
    BoundingBox root_cell = BoundingBox::FromPoints(tree.points_);
    // Degenerate extents (all points collinear) still need a 2-D cell.
    if (root_cell.width() <= 0.0 || root_cell.height() <= 0.0) {
      root_cell = root_cell.Expanded(1.0);
    }
    Status build_status;
    tree.root_ = tree.BuildRecursive(
        0, static_cast<uint32_t>(tree.points_.size()), root_cell, 0, options,
        &build_status);
    SLAM_RETURN_NOT_OK(build_status);
  }
  return tree;
}

int32_t QuadTree::BuildRecursive(uint32_t begin, uint32_t end,
                                 const BoundingBox& cell, int depth,
                                 const QuadTreeOptions& options,
                                 Status* build_status) {
  if (!build_status->ok()) return -1;
  if (options.exec != nullptr && nodes_.size() % 64 == 0) {
    *build_status = options.exec->Check("quadtree/build");
    if (!build_status->ok()) return -1;
  }
  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.cell = cell;
    node.anchor = cell.center();
    node.begin = begin;
    node.end = end;
    for (uint32_t i = begin; i < end; ++i) {
      node.aggregates.Add(points_[i] - node.anchor);
    }
  }
  if (end - begin <= static_cast<uint32_t>(options.leaf_size) ||
      depth >= options.max_depth) {
    return index;
  }
  const Point c = cell.center();
  // Partition points into quadrants: in-place, two binary partitions.
  // Quadrant id: bit 0 = east (x >= cx), bit 1 = north (y >= cy).
  auto* base = points_.data();
  auto mid_y =
      std::partition(base + begin, base + end,
                     [&c](const Point& p) { return p.y < c.y; });
  auto mid_x_south =
      std::partition(base + begin, mid_y,
                     [&c](const Point& p) { return p.x < c.x; });
  auto mid_x_north =
      std::partition(mid_y, base + end,
                     [&c](const Point& p) { return p.x < c.x; });
  const uint32_t b0 = begin;
  const uint32_t b1 = static_cast<uint32_t>(mid_x_south - base);
  const uint32_t b2 = static_cast<uint32_t>(mid_y - base);
  const uint32_t b3 = static_cast<uint32_t>(mid_x_north - base);
  const uint32_t ranges[5] = {b0, b1, b2, b3, end};
  const BoundingBox cells[4] = {
      BoundingBox(cell.min(), c),                                  // SW
      BoundingBox({c.x, cell.min().y}, {cell.max().x, c.y}),       // SE
      BoundingBox({cell.min().x, c.y}, {c.x, cell.max().y}),       // NW
      BoundingBox(c, cell.max()),                                  // NE
  };
  int32_t children[4] = {-1, -1, -1, -1};
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    if (ranges[quadrant] < ranges[quadrant + 1]) {
      children[quadrant] =
          BuildRecursive(ranges[quadrant], ranges[quadrant + 1],
                         cells[quadrant], depth + 1, options, build_status);
    }
  }
  if (!build_status->ok()) return -1;
  Node& node = nodes_[index];
  node.leaf = false;
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    node.children[quadrant] = children[quadrant];
  }
  return index;
}

RangeAggregates QuadTree::RangeAggregateQuery(const Point& q,
                                              double radius) const {
  RangeAggregates agg;
  if (root_ < 0 || radius < 0.0) return agg;
  const double r2 = radius * radius;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.cell.MinSquaredDistance(q) > r2) continue;
    if (node.cell.MaxSquaredDistance(q) <= r2) {
      agg.Merge(TranslatedAggregates(node.aggregates, node.anchor - q));
      continue;
    }
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        if (SquaredDistance(q, points_[i]) <= r2) agg.Add(points_[i] - q);
      }
    } else {
      for (const int32_t child : node.children) {
        if (child >= 0) stack.push_back(child);
      }
    }
  }
  return agg;
}

double QuadTree::AccumulateKernelBounded(const Point& q, KernelType kernel,
                                         double bandwidth,
                                         double epsilon) const {
  if (root_ < 0) return 0.0;
  const double b2 = bandwidth * bandwidth;
  const bool bounded_support = KernelSupportedBySlam(kernel);
  double sum = 0.0;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    const double min_d2 = node.cell.MinSquaredDistance(q);
    if (bounded_support && min_d2 > b2) continue;
    const double max_d2 = node.cell.MaxSquaredDistance(q);
    const double k_upper = EvaluateKernel(kernel, min_d2, bandwidth);
    const double k_lower = EvaluateKernel(kernel, max_d2, bandwidth);
    if (k_upper - k_lower <= epsilon) {
      sum += node.aggregates.count * 0.5 * (k_upper + k_lower);
      continue;
    }
    if (node.leaf) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        sum += EvaluateKernel(kernel, SquaredDistance(q, points_[i]),
                              bandwidth);
      }
    } else {
      for (const int32_t child : node.children) {
        if (child >= 0) stack.push_back(child);
      }
    }
  }
  return sum;
}

size_t QuadTree::MemoryUsageBytes() const {
  return points_.capacity() * sizeof(Point) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace slam
