// Region quadtree with per-node kernel aggregates. Substrate for the QUAD
// baseline (Chan et al., SIGMOD 2020 [16]): QUAD traverses a quad-tree with
// quadratic lower/upper bound functions on node contributions and refines
// straddling nodes. The exact variant implemented here contributes a whole
// node in O(1) when its cell lies inside the query disk, prunes cells
// outside it, and refines the rest — the filter-and-refinement behaviour
// the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bounding_box.h"
#include "geom/point.h"
#include "kdv/kernel.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

struct QuadTreeOptions {
  int leaf_size = 32;
  int max_depth = 24;
  /// Polled periodically during the build; not owned, may be null.
  const ExecContext* exec = nullptr;
};

class QuadTree {
 public:
  static Result<QuadTree> Build(std::span<const Point> points,
                                const QuadTreeOptions& options = {});

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  size_t node_count() const { return nodes_.size(); }

  /// Exact aggregates of R(q) = {p : dist(q, p) <= radius}, expressed in
  /// the query-centered frame (each member enters as p - q). Node
  /// aggregates are stored anchored at the node's cell center and shifted
  /// by the bandwidth-scaled offset anchor - q at merge time
  /// (TranslatedAggregates), so the magnitudes never grow with the global
  /// coordinate scale. Evaluate densities with DensityFromAggregates at
  /// q = (0, 0).
  RangeAggregates RangeAggregateQuery(const Point& q, double radius) const;

  /// Bounded approximate kernel sum, mirroring QUAD's epsilon-refinement
  /// mode: a node whose kernel bound gap is <= epsilon contributes the
  /// bound midpoint. epsilon == 0 is exact.
  double AccumulateKernelBounded(const Point& q, KernelType kernel,
                                 double bandwidth, double epsilon) const;

  size_t MemoryUsageBytes() const;

 private:
  struct Node {
    BoundingBox cell;  // the node's quadrant (not tight over points)
    Point anchor;      // cell center; aggregates are over p - anchor
    RangeAggregates aggregates;
    int32_t children[4] = {-1, -1, -1, -1};
    uint32_t begin = 0;
    uint32_t end = 0;
    bool leaf = true;
  };

  int32_t BuildRecursive(uint32_t begin, uint32_t end,
                         const BoundingBox& cell, int depth,
                         const QuadTreeOptions& options,
                         Status* build_status);

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace slam
