#include "index/zorder_index.h"

#include <algorithm>
#include <cmath>

#include "geom/morton.h"

namespace slam {

Result<ZOrderIndex> ZOrderIndex::Build(std::span<const Point> points,
                                       const ExecContext* exec) {
  SLAM_RETURN_NOT_OK(ExecCheck(exec, "zorder_index/build"));
  ZOrderIndex index;
  const std::vector<uint32_t> order = MortonSortOrder(points);
  index.sorted_points_.reserve(points.size());
  for (const uint32_t i : order) index.sorted_points_.push_back(points[i]);
  return index;
}

std::vector<Point> ZOrderIndex::StridedSample(size_t m) const {
  std::vector<Point> sample;
  if (empty() || m == 0) return sample;
  m = std::min(m, size());
  sample.reserve(m);
  // Pick the midpoint of each of m equal strides so the sample is balanced
  // even when n is not a multiple of m.
  const double stride = static_cast<double>(size()) / static_cast<double>(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t idx = static_cast<size_t>((static_cast<double>(i) + 0.5) * stride);
    sample.push_back(sorted_points_[std::min(idx, size() - 1)]);
  }
  return sample;
}

size_t ZOrderIndex::SampleSizeForEpsilon(double eps) const {
  if (empty()) return 0;
  if (!(eps > 0.0)) return size();
  const double m = std::ceil(1.0 / (eps * eps));
  if (m >= static_cast<double>(size())) return size();
  return std::max<size_t>(1, static_cast<size_t>(m));
}

}  // namespace slam
