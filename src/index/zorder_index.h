// Z-order index: the dataset sorted along the Morton curve. The Z-order
// baseline (Zheng et al. [73]) draws a spatially stratified sample by
// taking every (n/m)-th point of this ordering; the strided sample
// approximates an eps-sample of the point set for kernel range spaces.
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

class ZOrderIndex {
 public:
  /// `exec` (not owned, may be null) is polled before the Morton sort.
  static Result<ZOrderIndex> Build(std::span<const Point> points,
                                   const ExecContext* exec = nullptr);

  size_t size() const { return sorted_points_.size(); }
  bool empty() const { return sorted_points_.empty(); }

  /// Points in Morton order.
  std::span<const Point> sorted_points() const { return sorted_points_; }

  /// An evenly strided sample of m points (1 <= m <= n) along the curve.
  /// Returns the sample by value; deterministic.
  std::vector<Point> StridedSample(size_t m) const;

  /// Sample size m(eps) for a target uniform density error eps in (0, 1]:
  /// m = ceil(1 / eps^2), clamped to [1, n]. (Zheng et al. give
  /// O((1/eps^2) log(1/delta)); the constant-free form is the conventional
  /// practical choice.)
  size_t SampleSizeForEpsilon(double eps) const;

  size_t MemoryUsageBytes() const {
    return sorted_points_.capacity() * sizeof(Point);
  }

 private:
  std::vector<Point> sorted_points_;
};

}  // namespace slam
