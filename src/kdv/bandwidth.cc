#include "kdv/bandwidth.h"

#include <cmath>

#include "util/string_util.h"

namespace slam {

Result<Point> SampleStddev(std::span<const Point> points) {
  if (points.size() < 2) {
    return Status::InvalidArgument(
        "need at least 2 points to estimate a standard deviation");
  }
  const double n = static_cast<double>(points.size());
  double mean_x = 0.0, mean_y = 0.0;
  for (const Point& p : points) {
    mean_x += p.x;
    mean_y += p.y;
  }
  mean_x /= n;
  mean_y /= n;
  double var_x = 0.0, var_y = 0.0;
  for (const Point& p : points) {
    var_x += (p.x - mean_x) * (p.x - mean_x);
    var_y += (p.y - mean_y) * (p.y - mean_y);
  }
  var_x /= (n - 1.0);
  var_y /= (n - 1.0);
  return Point{std::sqrt(var_x), std::sqrt(var_y)};
}

namespace {
Result<double> RuleOfThumb(std::span<const Point> points, double factor) {
  SLAM_ASSIGN_OR_RETURN(Point sd, SampleStddev(points));
  const double sigma = (sd.x + sd.y) / 2.0;
  if (!(sigma > 0.0)) {
    return Status::InvalidArgument(
        "points are degenerate (zero spread); bandwidth rule undefined");
  }
  const double n = static_cast<double>(points.size());
  // d = 2  =>  exponent -1/(d+4) = -1/6.
  return factor * sigma * std::pow(n, -1.0 / 6.0);
}
}  // namespace

Result<double> ScottBandwidth(std::span<const Point> points) {
  return RuleOfThumb(points, 1.0);
}

Result<double> SilvermanBandwidth(std::span<const Point> points) {
  // (4 / (d + 2))^(1/(d+4)) with d = 2 is (4/4)^(1/6) = 1: in two
  // dimensions Silverman's factor coincides with Scott's.
  return RuleOfThumb(points, 1.0);
}

}  // namespace slam
