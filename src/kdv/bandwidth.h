// Bandwidth selection. The paper follows Scott's rule [57] to pick the
// default bandwidth per dataset (Table 5); Silverman's rule is provided as
// the common alternative.
#pragma once

#include <span>

#include "geom/point.h"
#include "util/result.h"

namespace slam {

/// Scott's rule for 2-D data: b = n^(-1/(d+4)) * sigma, d = 2, where sigma
/// is the mean of the per-axis sample standard deviations. Requires at
/// least 2 points with non-degenerate spread.
Result<double> ScottBandwidth(std::span<const Point> points);

/// Silverman's rule of thumb for 2-D data:
/// b = sigma * (4 / (d + 2))^(1/(d+4)) * n^(-1/(d+4)).
Result<double> SilvermanBandwidth(std::span<const Point> points);

/// Per-axis sample standard deviations (denominator n-1).
Result<Point> SampleStddev(std::span<const Point> points);

}  // namespace slam
