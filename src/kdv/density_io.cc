#include "kdv/density_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace slam {

namespace {
constexpr char kMagic[4] = {'S', 'L', 'D', 'M'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveDensityMap(const DensityMap& map, const std::string& path) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot save an empty density map");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  const int32_t width = map.width();
  const int32_t height = map.height();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  out.write(reinterpret_cast<const char*>(&height), sizeof(height));
  out.write(reinterpret_cast<const char*>(map.values().data()),
            static_cast<std::streamsize>(map.values().size() * sizeof(double)));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<DensityMap> LoadDensityMap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  char magic[4];
  uint32_t version = 0;
  int32_t width = 0, height = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  in.read(reinterpret_cast<char*>(&height), sizeof(height));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SLDM file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StringPrintf("unsupported SLDM version %u", version));
  }
  if (width <= 0 || height <= 0 || width > (1 << 20) || height > (1 << 20)) {
    return Status::InvalidArgument(
        StringPrintf("implausible SLDM dimensions %dx%d", width, height));
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(width, height));
  in.read(reinterpret_cast<char*>(map.mutable_values().data()),
          static_cast<std::streamsize>(map.mutable_values().size() *
                                       sizeof(double)));
  if (!in || in.gcount() != static_cast<std::streamsize>(
                                map.mutable_values().size() * sizeof(double))) {
    return Status::IoError("'" + path + "' truncated");
  }
  return map;
}

Status ExportDensityCsv(const DensityMap& map, const std::string& path) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot export an empty density map");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "x,y,density\n";
  for (int y = 0; y < map.height(); ++y) {
    for (int x = 0; x < map.width(); ++x) {
      out << x << ',' << y << ','
          << StringPrintf("%.17g", map.at(x, y)) << '\n';
    }
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace slam
