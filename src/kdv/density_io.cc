#include "kdv/density_io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>

#include "util/string_util.h"

namespace slam {

namespace {
constexpr char kMagic[4] = {'S', 'L', 'D', 'M'};
constexpr uint32_t kVersion = 1;

std::string Label(std::string_view name) {
  return "'" + std::string(name) + "'";
}
}  // namespace

Status SaveDensityMap(const DensityMap& map, const std::string& path) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot save an empty density map");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  const int32_t width = map.width();
  const int32_t height = map.height();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  out.write(reinterpret_cast<const char*>(&height), sizeof(height));
  out.write(reinterpret_cast<const char*>(map.values().data()),
            static_cast<std::streamsize>(map.values().size() * sizeof(double)));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<DensityMap> LoadDensityMap(const std::string& path) {
  return LoadDensityMap(path, DensityIoLimits{});
}

Result<DensityMap> LoadDensityMap(const std::string& path,
                                  const DensityIoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  return LoadDensityMapStream(in, path, limits);
}

Result<DensityMap> LoadDensityMapStream(std::istream& in,
                                        std::string_view name,
                                        const DensityIoLimits& limits) {
  char magic[4];
  uint32_t version = 0;
  int32_t width = 0, height = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  in.read(reinterpret_cast<char*>(&height), sizeof(height));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(Label(name) + " is not a SLDM file");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StringPrintf("unsupported SLDM version %u in ", version) +
        Label(name));
  }
  // All header validation happens BEFORE the raster allocation. The
  // product cap is the load-bearing one: per-axis caps alone admit
  // 2^20 x 2^20 = 8 TiB of doubles from a 16-byte header.
  SLAM_RETURN_NOT_OK(CheckGridDims(width, height));
  if (width > limits.max_dim || height > limits.max_dim) {
    return Status::InvalidArgument(StringPrintf(
        "SLDM dimensions %dx%d exceed the caller's %d per-axis cap", width,
        height, limits.max_dim));
  }
  const int64_t cells = static_cast<int64_t>(width) * height;
  if (cells > limits.max_cells) {
    return Status::InvalidArgument(StringPrintf(
        "SLDM raster of %lld cells exceeds the caller's %lld-cell cap",
        static_cast<long long>(cells),
        static_cast<long long>(limits.max_cells)));
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(width, height));
  // Row-sized reads: a truncated file fails on its first short row with
  // the row index in the message instead of a single opaque "truncated".
  const size_t row_bytes = static_cast<size_t>(width) * sizeof(double);
  for (int32_t y = 0; y < height; ++y) {
    char* row = reinterpret_cast<char*>(map.mutable_values().data()) +
                static_cast<size_t>(y) * row_bytes;
    in.read(row, static_cast<std::streamsize>(row_bytes));
    if (!in || in.gcount() != static_cast<std::streamsize>(row_bytes)) {
      return Status::IoError(
          StringPrintf("%s truncated: row %d of %d incomplete",
                       Label(name).c_str(), y, height));
    }
  }
  // Trailing garbage after the payload is rejected too: a correct writer
  // never produces it, so its presence means the header lies about the
  // dimensions (the classic length-confusion smuggle).
  char extra;
  if (in.read(&extra, 1) && in.gcount() == 1) {
    return Status::InvalidArgument(
        Label(name) + " has trailing bytes after the declared raster");
  }
  if (limits.require_finite) {
    const auto& values = map.values();
    for (size_t i = 0; i < values.size(); ++i) {
      if (!std::isfinite(values[i])) {
        return Status::InvalidArgument(StringPrintf(
            "%s contains a non-finite density (%g) at cell %zu",
            Label(name).c_str(), values[i], i));
      }
    }
  }
  return map;
}

Status ExportDensityCsv(const DensityMap& map, const std::string& path) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot export an empty density map");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "x,y,density\n";
  for (int y = 0; y < map.height(); ++y) {
    for (int x = 0; x < map.width(); ++x) {
      out << x << ',' << y << ','
          << StringPrintf("%.17g", map.at(x, y)) << '\n';
    }
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace slam
