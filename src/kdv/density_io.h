// DensityMap persistence: a small binary format ("SLDM") for exact
// round-trips between runs, and CSV export for plotting pipelines.
//
// The load path is hardened for untrusted files: the header's dimensions
// go through the shared validation layer (util/validate.h), the
// width*height product is capped BEFORE any allocation (per-axis caps
// alone would let a 16-byte header demand an 8 TiB raster), the payload
// length must match the header exactly, and non-finite density values are
// rejected so a crafted map cannot smuggle NaN into downstream sums.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "kdv/density_map.h"
#include "util/result.h"
#include "util/validate.h"

namespace slam {

/// Caps for loading an untrusted SLDM stream. Defaults come from the
/// shared InputLimits; surfaces with tighter budgets (fuzzers, request
/// handlers) pass smaller ones.
struct DensityIoLimits {
  int max_dim = InputLimits::kMaxGridDim;
  int64_t max_cells = InputLimits::kMaxGridCells;
  /// Reject NaN/Inf payload values. On by default: a density is a finite
  /// sum of finite kernel values, so a non-finite cell is corruption.
  bool require_finite = true;
};

/// Binary format: magic "SLDM", uint32 version, int32 width, int32 height,
/// then width*height little-endian doubles, row-major. Exact round-trip.
Status SaveDensityMap(const DensityMap& map, const std::string& path);
Result<DensityMap> LoadDensityMap(const std::string& path);
Result<DensityMap> LoadDensityMap(const std::string& path,
                                  const DensityIoLimits& limits);

/// Stream-based core of the loader — the entry point the fuzz target
/// drives and what a network tile path would call. `name` labels errors.
Result<DensityMap> LoadDensityMapStream(std::istream& in,
                                        std::string_view name,
                                        const DensityIoLimits& limits = {});

/// CSV with a "x,y,density" header and one row per pixel (raster
/// coordinates). Lossy at %.17g only by textual round-trip, i.e. exact for
/// doubles per IEEE-754 shortest-round-trip guarantees of %.17g.
Status ExportDensityCsv(const DensityMap& map, const std::string& path);

}  // namespace slam
