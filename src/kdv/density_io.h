// DensityMap persistence: a small binary format ("SLDM") for exact
// round-trips between runs, and CSV export for plotting pipelines.
#pragma once

#include <string>

#include "kdv/density_map.h"
#include "util/result.h"

namespace slam {

/// Binary format: magic "SLDM", uint32 version, int32 width, int32 height,
/// then width*height little-endian doubles, row-major. Exact round-trip.
Status SaveDensityMap(const DensityMap& map, const std::string& path);
Result<DensityMap> LoadDensityMap(const std::string& path);

/// CSV with a "x,y,density" header and one row per pixel (raster
/// coordinates). Lossy at %.17g only by textual round-trip, i.e. exact for
/// doubles per IEEE-754 shortest-round-trip guarantees of %.17g.
Status ExportDensityCsv(const DensityMap& map, const std::string& path);

}  // namespace slam
