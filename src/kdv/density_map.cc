#include "kdv/density_map.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace slam {

Result<DensityMap> DensityMap::Create(int width, int height) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument(StringPrintf(
        "density map dimensions must be positive, got %dx%d", width, height));
  }
  DensityMap m;
  m.width_ = width;
  m.height_ = height;
  m.values_.assign(static_cast<size_t>(width) * height, 0.0);
  return m;
}

double DensityMap::MinValue() const {
  return values_.empty() ? 0.0
                         : *std::min_element(values_.begin(), values_.end());
}

double DensityMap::MaxValue() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

double DensityMap::Sum() const {
  // Neumaier-compensated: the sum doubles as a checksum in tests and
  // benchmarks, and naive left-to-right accumulation drifts by
  // O(pixels · eps) on large grids — enough to flap golden pins.
  double s = 0.0;
  double comp = 0.0;
  for (const double v : values_) {
    const double t = s + v;
    if (std::abs(s) >= std::abs(v)) {
      comp += (s - t) + v;
    } else {
      comp += (v - t) + s;
    }
    s = t;
  }
  return s + comp;
}

DensityMap DensityMap::Transposed() const {
  DensityMap t;
  t.width_ = height_;
  t.height_ = width_;
  t.values_.resize(values_.size());
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      t.values_[static_cast<size_t>(x) * height_ + y] = at(x, y);
    }
  }
  return t;
}

Result<DensityMap::Comparison> DensityMap::CompareTo(
    const DensityMap& other, double abs_tolerance) const {
  if (width_ != other.width_ || height_ != other.height_) {
    return Status::InvalidArgument(StringPrintf(
        "cannot compare %dx%d map with %dx%d map", width_, height_,
        other.width_, other.height_));
  }
  Comparison cmp;
  for (size_t i = 0; i < values_.size(); ++i) {
    const double a = values_[i];
    const double b = other.values_[i];
    const double diff = std::abs(a - b);
    cmp.max_abs_diff = std::max(cmp.max_abs_diff, diff);
    const double denom = std::max(std::abs(a), std::abs(b));
    if (denom > 0.0) {
      cmp.max_rel_diff = std::max(cmp.max_rel_diff, diff / denom);
    }
    if (diff > abs_tolerance) ++cmp.mismatched_pixels;
  }
  return cmp;
}

std::string DensityMap::ToString() const {
  return StringPrintf("DensityMap(%dx%d, min=%.6g, max=%.6g)", width_,
                      height_, MinValue(), MaxValue());
}

}  // namespace slam
