// The output raster of a KDV computation: one density value per pixel.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/units.h"

namespace slam {

class DensityMap {
 public:
  DensityMap() = default;
  /// Zero-initialized raster of width x height (both must be positive;
  /// checked by the factory).
  static Result<DensityMap> Create(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  int64_t pixel_count() const {
    return static_cast<int64_t>(width_) * height_;
  }
  bool empty() const { return values_.empty(); }

  double at(int ix, int iy) const {
    return values_[static_cast<size_t>(iy) * width_ + ix];
  }
  void set(int ix, int iy, double v) {
    values_[static_cast<size_t>(iy) * width_ + ix] = v;
  }

  // Typed coordinate-space accessors (util/units.h, DESIGN.md §13): the
  // subscripts are pixel indices and the cells are densities, and with
  // these overloads the compiler enforces both — at(iy, ix) transpositions
  // and density-as-coordinate leaks do not build.
  DensityValue at(PixelX ix, PixelY iy) const {
    return DensityValue(at(ix.value(), iy.value()));
  }
  void set(PixelX ix, PixelY iy, DensityValue v) {
    set(ix.value(), iy.value(), v.value());
  }

  /// Row-major (y-major) raw values.
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  /// Direct row access for the sweep algorithms (writes one row at a time).
  std::span<double> mutable_row(int iy) {
    return std::span<double>(values_).subspan(
        static_cast<size_t>(iy) * width_, width_);
  }
  std::span<const double> row(int iy) const {
    return std::span<const double>(values_).subspan(
        static_cast<size_t>(iy) * width_, width_);
  }

  /// Typed row view for the sweep writers: a density lane addressed by a
  /// row index. The raw pointer the SIMD row sweep writes through comes
  /// from TypedLane::raw() at the dispatch boundary.
  TypedLane<DensityValue> mutable_density_row(RowIndex iy) {
    auto r = mutable_row(iy.value());
    return TypedLane<DensityValue>(r.data(), r.size());
  }

  double MinValue() const;
  double MaxValue() const;
  double Sum() const;

  /// Transposed copy (RAO computes into the transposed raster).
  DensityMap Transposed() const;

  struct Comparison {
    double max_abs_diff = 0.0;
    double max_rel_diff = 0.0;  // relative to the larger |value|, zero-safe
    int64_t mismatched_pixels = 0;  // pixels with abs diff > abs_tolerance
  };
  /// Element-wise comparison; shape mismatch is an error.
  Result<Comparison> CompareTo(const DensityMap& other,
                               double abs_tolerance = 0.0) const;

  std::string ToString() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<double> values_;
};

}  // namespace slam
