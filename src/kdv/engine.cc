#include "kdv/engine.h"

#include <array>

#include "baselines/akde.h"
#include "baselines/quad.h"
#include "baselines/rqs.h"
#include "baselines/scan.h"
#include "baselines/zorder.h"
#include "core/rao.h"
#include "core/slam_bucket.h"
#include "core/slam_sort.h"
#include "util/string_util.h"

namespace slam {

namespace {

constexpr std::array<Method, 10> kAllMethods = {
    Method::kScan,      Method::kRqsKd,       Method::kRqsBall,
    Method::kZorder,    Method::kAkde,        Method::kQuad,
    Method::kSlamSort,  Method::kSlamBucket,  Method::kSlamSortRao,
    Method::kSlamBucketRao,
};

constexpr std::array<Method, 8> kExactMethods = {
    Method::kScan,        Method::kRqsKd,       Method::kRqsBall,
    Method::kQuad,        Method::kSlamSort,    Method::kSlamBucket,
    Method::kSlamSortRao, Method::kSlamBucketRao,
};

using MethodFn = Status (*)(const KdvTask&, const ComputeOptions&,
                            DensityMap*);

MethodFn Dispatch(Method method) {
  switch (method) {
    case Method::kScan:
      return &ComputeScan;
    case Method::kRqsKd:
      return &ComputeRqsKd;
    case Method::kRqsBall:
      return &ComputeRqsBall;
    case Method::kZorder:
      return &ComputeZorder;
    case Method::kAkde:
      return &ComputeAkde;
    case Method::kQuad:
      return &ComputeQuad;
    case Method::kSlamSort:
      return &ComputeSlamSort;
    case Method::kSlamBucket:
      return &ComputeSlamBucket;
    case Method::kSlamSortRao:
      return &ComputeSlamSortRao;
    case Method::kSlamBucketRao:
      return &ComputeSlamBucketRao;
  }
  return nullptr;
}

}  // namespace

std::span<const Method> AllMethods() { return kAllMethods; }
std::span<const Method> ExactMethods() { return kExactMethods; }

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kScan:
      return "SCAN";
    case Method::kRqsKd:
      return "RQS_kd";
    case Method::kRqsBall:
      return "RQS_ball";
    case Method::kZorder:
      return "Z-order";
    case Method::kAkde:
      return "aKDE";
    case Method::kQuad:
      return "QUAD";
    case Method::kSlamSort:
      return "SLAM_SORT";
    case Method::kSlamBucket:
      return "SLAM_BUCKET";
    case Method::kSlamSortRao:
      return "SLAM_SORT_RAO";
    case Method::kSlamBucketRao:
      return "SLAM_BUCKET_RAO";
  }
  return "?";
}

Result<Method> MethodFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  for (const Method m : kAllMethods) {
    if (lower == ToLower(MethodName(m))) return m;
  }
  // Friendly aliases.
  if (lower == "slam_sort_(rao)" || lower == "slam_sort(rao)") {
    return Method::kSlamSortRao;
  }
  if (lower == "slam_bucket_(rao)" || lower == "slam_bucket(rao)") {
    return Method::kSlamBucketRao;
  }
  if (lower == "zorder") return Method::kZorder;
  return Status::InvalidArgument("unknown KDV method '" + std::string(name) +
                                 "'");
}

bool MethodIsExact(Method method) {
  return method != Method::kZorder && method != Method::kAkde;
}

bool MethodIsSlam(Method method) {
  switch (method) {
    case Method::kSlamSort:
    case Method::kSlamBucket:
    case Method::kSlamSortRao:
    case Method::kSlamBucketRao:
      return true;
    default:
      return false;
  }
}

Result<DensityMap> ComputeKdv(const KdvTask& task, Method method,
                              const EngineOptions& options) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  MethodFn fn = Dispatch(method);
  if (fn == nullptr) {
    return Status::InvalidArgument(
        StringPrintf("unknown method id %d", static_cast<int>(method)));
  }
  if (MethodIsSlam(method) && !KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM cannot support the " + std::string(KernelTypeName(task.kernel)) +
        " kernel: its density has no finite aggregate decomposition "
        "(paper Section 3.7)");
  }
  DensityMap map;
  if (options.recenter_coordinates) {
    const Point c = {task.grid.x_axis().Coord(task.grid.width() / 2),
                     task.grid.y_axis().Coord(task.grid.height() / 2)};
    const TranslatedTask translated(task, c.x, c.y);
    SLAM_RETURN_NOT_OK(fn(translated.task(), options.compute, &map));
  } else {
    SLAM_RETURN_NOT_OK(fn(task, options.compute, &map));
  }
  return map;
}

size_t EstimateAuxiliarySpaceBytes(Method method, size_t n, int width,
                                   int height) {
  const size_t point_bytes = sizeof(Point);
  // Tree nodes: ~2n/leaf_size nodes; sizes from the index headers.
  const size_t tree_nodes = 2 * n / 32 + 2;
  switch (method) {
    case Method::kScan:
      return 0;
    case Method::kRqsKd:
    case Method::kAkde:
      return n * point_bytes + tree_nodes * 160;  // KdTree::Node
    case Method::kRqsBall:
      return n * point_bytes + tree_nodes * 152;  // BallTree::Node
    case Method::kZorder:
      return n * point_bytes;  // Morton-sorted copy (sample is tiny)
    case Method::kQuad:
      return n * point_bytes + tree_nodes * 176;  // QuadTree::Node
    case Method::kSlamSort:
    case Method::kSlamSortRao:
      // Envelope + intervals + two event arrays, each at most n entries.
      return n * (point_bytes + sizeof(double) * 4 + point_bytes * 3);
    case Method::kSlamBucket:
    case Method::kSlamBucketRao: {
      // Envelope + intervals + scattered endpoint arrays + bucket offsets.
      // RAO sweeps min(X, Y) lines of max(X, Y) pixels, so its bucket
      // arrays span the longer axis.
      const size_t x = static_cast<size_t>(method == Method::kSlamBucketRao
                                               ? std::max(width, height)
                                               : width);
      return n * (point_bytes * 3 + sizeof(double) * 4) +
             (x + 2) * sizeof(int32_t) * 4;
    }
  }
  return 0;
}

}  // namespace slam
