#include "kdv/engine.h"

#include <array>
#include <vector>

#include "baselines/akde.h"
#include "baselines/quad.h"
#include "baselines/rqs.h"
#include "baselines/scan.h"
#include "baselines/zorder.h"
#include "core/rao.h"
#include "core/slam_bucket.h"
#include "core/slam_sort.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace slam {

namespace {

constexpr std::array<Method, 10> kAllMethods = {
    Method::kScan,      Method::kRqsKd,       Method::kRqsBall,
    Method::kZorder,    Method::kAkde,        Method::kQuad,
    Method::kSlamSort,  Method::kSlamBucket,  Method::kSlamSortRao,
    Method::kSlamBucketRao,
};

constexpr std::array<Method, 8> kExactMethods = {
    Method::kScan,        Method::kRqsKd,       Method::kRqsBall,
    Method::kQuad,        Method::kSlamSort,    Method::kSlamBucket,
    Method::kSlamSortRao, Method::kSlamBucketRao,
};

using MethodFn = Status (*)(const KdvTask&, const ComputeOptions&,
                            DensityMap*);

MethodFn Dispatch(Method method) {
  switch (method) {
    case Method::kScan:
      return &ComputeScan;
    case Method::kRqsKd:
      return &ComputeRqsKd;
    case Method::kRqsBall:
      return &ComputeRqsBall;
    case Method::kZorder:
      return &ComputeZorder;
    case Method::kAkde:
      return &ComputeAkde;
    case Method::kQuad:
      return &ComputeQuad;
    case Method::kSlamSort:
      return &ComputeSlamSort;
    case Method::kSlamBucket:
      return &ComputeSlamBucket;
    case Method::kSlamSortRao:
      return &ComputeSlamSortRao;
    case Method::kSlamBucketRao:
      return &ComputeSlamBucketRao;
  }
  return nullptr;
}

}  // namespace

std::span<const Method> AllMethods() { return kAllMethods; }
std::span<const Method> ExactMethods() { return kExactMethods; }

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kScan:
      return "SCAN";
    case Method::kRqsKd:
      return "RQS_kd";
    case Method::kRqsBall:
      return "RQS_ball";
    case Method::kZorder:
      return "Z-order";
    case Method::kAkde:
      return "aKDE";
    case Method::kQuad:
      return "QUAD";
    case Method::kSlamSort:
      return "SLAM_SORT";
    case Method::kSlamBucket:
      return "SLAM_BUCKET";
    case Method::kSlamSortRao:
      return "SLAM_SORT_RAO";
    case Method::kSlamBucketRao:
      return "SLAM_BUCKET_RAO";
  }
  return "?";
}

Result<Method> MethodFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  for (const Method m : kAllMethods) {
    if (lower == ToLower(MethodName(m))) return m;
  }
  // Friendly aliases.
  if (lower == "slam_sort_(rao)" || lower == "slam_sort(rao)") {
    return Method::kSlamSortRao;
  }
  if (lower == "slam_bucket_(rao)" || lower == "slam_bucket(rao)") {
    return Method::kSlamBucketRao;
  }
  if (lower == "zorder") return Method::kZorder;
  return Status::InvalidArgument("unknown KDV method '" + std::string(name) +
                                 "'");
}

bool MethodIsExact(Method method) {
  return method != Method::kZorder && method != Method::kAkde;
}

bool MethodIsSlam(Method method) {
  switch (method) {
    case Method::kSlamSort:
    case Method::kSlamBucket:
    case Method::kSlamSortRao:
    case Method::kSlamBucketRao:
      return true;
    default:
      return false;
  }
}

Result<DensityMap> ComputeKdv(const KdvTask& task, Method method,
                              const EngineOptions& options) {
  const ExecContext* exec = options.compute.exec;
  SLAM_RETURN_NOT_OK(ExecCheck(exec, "engine/start"));
  MethodFn fn = Dispatch(method);
  if (fn == nullptr) {
    return Status::InvalidArgument(
        StringPrintf("unknown method id %d",
                     static_cast<int>(method)));  // lint:allow(narrowing-cast)
  }
  // Sanitization precedes validation so that NaN/Inf points are dropped
  // rather than fatal; everything else (grid, bandwidth, weight) still
  // fails fast.
  KdvTask run_task = task;
  // Resolve the SIMD backend once per engine call: kAuto becomes a concrete
  // level here, so every row of every method in this computation runs the
  // same backend, and a pinned-but-unavailable level fails fast.
  EngineOptions run_options = options;
  SLAM_ASSIGN_OR_RETURN(run_options.compute.simd,
                        ResolveSimdLevel(options.compute.simd));
  std::vector<Point> finite_points;
  if (options.sanitize) {
    const size_t dropped = CopyFinitePoints(task.points, &finite_points);
    if (dropped > 0) {
      SLAM_LOG(Warning) << "sanitize: dropped " << dropped << " of "
                        << task.points.size()
                        << " points with non-finite coordinates";
      run_task.points = finite_points;
    }
  }
  SLAM_RETURN_NOT_OK(ValidateTask(run_task));
  if (MethodIsSlam(method) && !KernelSupportedBySlam(run_task.kernel)) {
    return Status::InvalidArgument(
        "SLAM cannot support the " +
        std::string(KernelTypeName(run_task.kernel)) +
        " kernel: its density has no finite aggregate decomposition "
        "(paper Section 3.7)");
  }
  // Pre-flight memory check: refuse before doing any work if the method's
  // analytic peak auxiliary space cannot fit in the remaining budget.
  if (exec != nullptr && exec->memory_budget() != nullptr) {
    SLAM_RETURN_NOT_OK(exec->CheckBudgetFor(
        EstimateAuxiliarySpaceBytes(method, run_task.points.size(),
                                    run_task.grid.width(),
                                    run_task.grid.height()),
        MethodName(method)));
  }
  DensityMap map;
  // Recentering only pays off when the coordinates are ill-conditioned for
  // the subtractive aggregate forms; skipping it otherwise keeps
  // well-conditioned tasks copy-free and bitwise stable across releases.
  if (options.recenter_coordinates && TaskFarFromOrigin(run_task)) {
    ScopedMemoryCharge recenter_charge(exec, "engine/recentered_points");
    SLAM_RETURN_NOT_OK(
        recenter_charge.Update(run_task.points.size() * sizeof(Point)));
    const Point c = {run_task.grid.x_axis().Coord(run_task.grid.width() / 2),
                     run_task.grid.y_axis().Coord(run_task.grid.height() / 2)};
    const TranslatedTask translated(run_task, c.x, c.y);
    SLAM_RETURN_NOT_OK(fn(translated.task(), run_options.compute, &map));
  } else {
    SLAM_RETURN_NOT_OK(fn(run_task, run_options.compute, &map));
  }
  return map;
}

size_t EstimateAuxiliarySpaceBytes(Method method, size_t n, int width,
                                   int height) {
  const size_t point_bytes = sizeof(Point);
  // Tree nodes: ~2n/leaf_size nodes; sizes from the index headers.
  const size_t tree_nodes = 2 * n / 32 + 2;
  switch (method) {
    case Method::kScan:
      return 0;
    case Method::kRqsKd:
    case Method::kAkde:
      return n * point_bytes + tree_nodes * 160;  // KdTree::Node
    case Method::kRqsBall:
      return n * point_bytes + tree_nodes * 152;  // BallTree::Node
    case Method::kZorder:
      return n * point_bytes;  // Morton-sorted copy (sample is tiny)
    case Method::kQuad:
      return n * point_bytes + tree_nodes * 176;  // QuadTree::Node
    case Method::kSlamSort:
    case Method::kSlamSortRao:
    case Method::kSlamBucket:
    case Method::kSlamBucketRao: {
      // Both sweep methods run the shared counting-sort driver
      // (core/sweep_rows.cc) on one SweepArena: SoA envelope + interval +
      // scattered endpoint lanes (8 doubles per point) + per-endpoint
      // bucket indices (2 int32), plus bucket offset/cursor arrays and the
      // per-pixel lanes (<= 12 snapshot channels + qx, 13 doubles per
      // pixel) spanning the swept axis. RAO sweeps min(X, Y) lines of
      // max(X, Y) pixels, so its per-pixel arrays span the longer axis.
      const size_t x = static_cast<size_t>((method == Method::kSlamSortRao ||
                                            method == Method::kSlamBucketRao)
                                               ? std::max(width, height)
                                               : width);
      return n * (point_bytes + sizeof(double) * 8 + sizeof(int32_t) * 2) +
             (x + 2) * sizeof(int32_t) * 4 + x * sizeof(double) * 13;
    }
  }
  return 0;
}

}  // namespace slam
