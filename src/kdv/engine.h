// KdvEngine: single entry point over all ten KDV methods of the paper's
// Table 6. Validates the task, optionally recenters coordinates for
// floating-point conditioning, dispatches, and returns the density raster.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "kdv/density_map.h"
#include "kdv/task.h"
#include "util/result.h"

namespace slam {

enum class Method : int {
  kScan = 0,
  kRqsKd = 1,
  kRqsBall = 2,
  kZorder = 3,
  kAkde = 4,
  kQuad = 5,
  kSlamSort = 6,
  kSlamBucket = 7,
  kSlamSortRao = 8,
  kSlamBucketRao = 9,
};

/// All methods, in the paper's Table 6 column order.
std::span<const Method> AllMethods();
/// The paper's exact methods (everything but Z-order and aKDE).
std::span<const Method> ExactMethods();

std::string_view MethodName(Method method);
Result<Method> MethodFromName(std::string_view name);
/// True for methods that return the exact density (Z-order and aKDE are
/// the approximate ones).
bool MethodIsExact(Method method);
/// True for the four SLAM variants.
bool MethodIsSlam(Method method);

struct EngineOptions {
  ComputeOptions compute;
  /// Translate points and grid so the viewport center sits at the origin
  /// before computing. Improves conditioning of the aggregate arithmetic
  /// when coordinates are large (e.g. projected meters with a far datum);
  /// costs one O(n) copy. The result is identical up to FP rounding.
  /// On by default since PR 3; the copy is only actually made when the
  /// viewport center's magnitude dwarfs its extent (TaskFarFromOrigin), so
  /// well-conditioned tasks pay nothing and stay bitwise identical.
  bool recenter_coordinates = true;
  /// Opt-in input sanitization: drop points with NaN/Inf coordinates (one
  /// O(n) copy, warning logged with the dropped count) instead of failing
  /// validation. Off by default — silent data loss should be a choice.
  bool sanitize = false;
};

/// Computes the density raster with the chosen method. Returns
/// InvalidArgument for unsupported kernel/method combinations (e.g. any
/// SLAM variant with the Gaussian kernel), Cancelled if the options'
/// ExecContext token is cancelled mid-computation, DeadlineExceeded if its
/// deadline expires, and ResourceExhausted if the method's estimated or
/// actual auxiliary space exceeds the context's memory budget.
///
/// Thread safety: ComputeKdv is a pure function of its arguments — it
/// mutates neither the task (points are a const span) nor the options, and
/// keeps all working state on the stack or in locals. Concurrent calls are
/// safe provided each call's options.compute.exec is either null or not
/// shared mutably: ExecContext itself is internally synchronized, so even a
/// shared context is safe; sharing one merely couples the callers'
/// cancellation/deadline/budget, which the serving core exploits on
/// purpose. This guarantee is what lets src/serve run one engine over many
/// concurrent requests without a lock around the compute path.
Result<DensityMap> ComputeKdv(const KdvTask& task, Method method,
                              const EngineOptions& options = {});

/// Analytic peak-auxiliary-space model of each method in bytes, excluding
/// the input points and the output raster (which all methods share —
/// Theorem 4's O(XY + n)). Backs the Figure 17 space experiment.
size_t EstimateAuxiliarySpaceBytes(Method method, size_t n, int width,
                                   int height);

}  // namespace slam
