#include "kdv/grid.h"

#include <cmath>

#include "util/string_util.h"

namespace slam {

namespace {

/// Shared checked conversion: the index of the pixel whose half-open cell
/// [center − gap/2, center + gap/2) contains `w`, or OutOfRange. The
/// round is exact integer arithmetic for every on-lattice coordinate, so
/// ToPixel(Coord(i)) == i round-trips for all i in [0, count).
Result<int> NearestPixel(double w, const GridAxis& axis, const char* name) {
  const double t = std::floor((w - axis.origin) / axis.gap + 0.5);
  if (!(t >= 0.0) || t >= static_cast<double>(axis.count)) {
    return Status::OutOfRange(StringPrintf(
        "%s coordinate %.17g outside the pixel lattice [%.17g, %.17g]", name,
        w, axis.origin, axis.last()));
  }
  // In [0, count) by the checks above; count is a positive int
  // (Grid::Create), so the narrow is lossless.
  return static_cast<int>(t);  // lint:allow(narrowing-cast) NOLINT(slam-narrowing-cast)
}

}  // namespace

Result<PixelX> Grid::ToPixelX(WorldX wx) const {
  SLAM_ASSIGN_OR_RETURN(const int ix, NearestPixel(wx.value(), x_, "x"));
  return PixelX(ix);
}

Result<PixelY> Grid::ToPixelY(WorldY wy) const {
  SLAM_ASSIGN_OR_RETURN(const int iy, NearestPixel(wy.value(), y_, "y"));
  return PixelY(iy);
}

Result<PixelX> ToPixel(WorldX wx, const Grid& grid) {
  return grid.ToPixelX(wx);
}

Result<PixelY> ToPixel(WorldY wy, const Grid& grid) {
  return grid.ToPixelY(wy);
}

Result<Grid> Grid::Create(const GridAxis& x_axis, const GridAxis& y_axis) {
  if (x_axis.count <= 0 || y_axis.count <= 0) {
    return Status::InvalidArgument(
        StringPrintf("grid counts must be positive, got %d x %d",
                     x_axis.count, y_axis.count));
  }
  if (!(x_axis.gap > 0.0) || !(y_axis.gap > 0.0)) {
    return Status::InvalidArgument("grid gaps must be positive");
  }
  Grid g;
  g.x_ = x_axis;
  g.y_ = y_axis;
  return g;
}

Grid Grid::FromViewport(const Viewport& viewport) {
  Grid g;
  g.x_ = GridAxis{viewport.region().min().x + 0.5 * viewport.pixel_gap_x(),
                  viewport.pixel_gap_x(), viewport.width_px()};
  g.y_ = GridAxis{viewport.region().min().y + 0.5 * viewport.pixel_gap_y(),
                  viewport.pixel_gap_y(), viewport.height_px()};
  return g;
}

std::string Grid::ToString() const {
  return StringPrintf(
      "Grid(%dx%d, x: %.3f step %.3f, y: %.3f step %.3f)", x_.count, y_.count,
      x_.origin, x_.gap, y_.origin, y_.gap);
}

}  // namespace slam
