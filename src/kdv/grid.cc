#include "kdv/grid.h"

#include "util/string_util.h"

namespace slam {

Result<Grid> Grid::Create(const GridAxis& x_axis, const GridAxis& y_axis) {
  if (x_axis.count <= 0 || y_axis.count <= 0) {
    return Status::InvalidArgument(
        StringPrintf("grid counts must be positive, got %d x %d",
                     x_axis.count, y_axis.count));
  }
  if (!(x_axis.gap > 0.0) || !(y_axis.gap > 0.0)) {
    return Status::InvalidArgument("grid gaps must be positive");
  }
  Grid g;
  g.x_ = x_axis;
  g.y_ = y_axis;
  return g;
}

Grid Grid::FromViewport(const Viewport& viewport) {
  Grid g;
  g.x_ = GridAxis{viewport.region().min().x + 0.5 * viewport.pixel_gap_x(),
                  viewport.pixel_gap_x(), viewport.width_px()};
  g.y_ = GridAxis{viewport.region().min().y + 0.5 * viewport.pixel_gap_y(),
                  viewport.pixel_gap_y(), viewport.height_px()};
  return g;
}

std::string Grid::ToString() const {
  return StringPrintf(
      "Grid(%dx%d, x: %.3f step %.3f, y: %.3f step %.3f)", x_.count, y_.count,
      x_.origin, x_.gap, y_.origin, y_.gap);
}

}  // namespace slam
