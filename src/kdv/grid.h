// The pixel grid the sweep line algorithms operate on: pixel centers laid
// out on a uniform lattice, exactly the paper's q_1..q_X per row with gap
// g_x (Section 3.5 relies on the uniform gap for O(1) bucket assignment).
#pragma once

#include <string>

#include "geom/point.h"
#include "geom/viewport.h"
#include "util/result.h"
#include "util/units.h"

namespace slam {

/// One axis of the lattice: `count` coordinates origin, origin+gap, ...
struct GridAxis {
  double origin = 0.0;  // coordinate of the first pixel center
  double gap = 1.0;     // distance between consecutive pixel centers
  int count = 0;

  double Coord(int i) const { return origin + i * gap; }
  double last() const { return Coord(count - 1); }
};

class Grid {
 public:
  Grid() = default;

  /// Axis gaps must be positive and counts positive.
  static Result<Grid> Create(const GridAxis& x_axis, const GridAxis& y_axis);

  /// Pixel centers of a viewport: X×Y lattice over its region.
  static Grid FromViewport(const Viewport& viewport);

  const GridAxis& x_axis() const { return x_; }
  const GridAxis& y_axis() const { return y_; }
  int width() const { return x_.count; }    // X
  int height() const { return y_.count; }   // Y
  int64_t pixel_count() const {
    return static_cast<int64_t>(x_.count) * y_.count;
  }

  Point PixelCenter(int ix, int iy) const {
    return {x_.Coord(ix), y_.Coord(iy)};
  }

  // Typed coordinate-space API (util/units.h, DESIGN.md §13). Pixel ->
  // world is total; world -> pixel is checked (the world coordinate may
  // fall outside the lattice) and returns the pixel whose center is
  // nearest, i.e. whose half-open cell [center − gap/2, center + gap/2)
  // contains the coordinate.
  WorldX XCoord(PixelX ix) const { return WorldX(x_.Coord(ix.value())); }
  WorldY YCoord(PixelY iy) const { return WorldY(y_.Coord(iy.value())); }
  Point PixelCenter(PixelX ix, PixelY iy) const {
    return {x_.Coord(ix.value()), y_.Coord(iy.value())};
  }
  /// OutOfRange when the coordinate is beyond half a gap outside the
  /// first/last pixel center.
  Result<PixelX> ToPixelX(WorldX wx) const;
  Result<PixelY> ToPixelY(WorldY wy) const;

  /// Swaps the axes — the RAO transformation (paper Section 3.6) runs the
  /// row sweep on the transposed problem when Y > X.
  Grid Transposed() const {
    Grid g;
    g.x_ = y_;
    g.y_ = x_;
    return g;
  }

  /// Grid translated by (-dx, -dy); used to recenter coordinates near the
  /// origin for floating-point conditioning.
  Grid Translated(double dx, double dy) const {
    Grid g = *this;
    g.x_.origin -= dx;
    g.y_.origin -= dy;
    return g;
  }

  std::string ToString() const;

 private:
  GridAxis x_;
  GridAxis y_;
};

/// Free-function spellings of the checked world -> pixel conversions; the
/// axis-specific parameter type picks the axis, so there is no way to ask
/// for "the pixel of this y coordinate along x".
Result<PixelX> ToPixel(WorldX wx, const Grid& grid);
Result<PixelY> ToPixel(WorldY wy, const Grid& grid);

}  // namespace slam
