#include "kdv/kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace slam {

std::string_view KernelTypeName(KernelType kernel) {
  switch (kernel) {
    case KernelType::kUniform:
      return "uniform";
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kQuartic:
      return "quartic";
    case KernelType::kGaussian:
      return "gaussian";
  }
  return "?";
}

Result<KernelType> KernelTypeFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "uniform") return KernelType::kUniform;
  if (lower == "epanechnikov" || lower == "epan") {
    return KernelType::kEpanechnikov;
  }
  if (lower == "quartic" || lower == "biweight") return KernelType::kQuartic;
  if (lower == "gaussian") return KernelType::kGaussian;
  return Status::InvalidArgument("unknown kernel '" + std::string(name) + "'");
}

bool KernelSupportedBySlam(KernelType kernel) {
  switch (kernel) {
    case KernelType::kUniform:
    case KernelType::kEpanechnikov:
    case KernelType::kQuartic:
      return true;
    case KernelType::kGaussian:
      return false;
  }
  return false;
}

KernelEvalProfile MakeKernelEvalProfile(double bandwidth) {
  constexpr double kMinNormal = std::numeric_limits<double>::min();
  KernelEvalProfile prof;
  // `!(x >= min)` (rather than `x < min`) also catches NaN.
  prof.bandwidth = !(bandwidth >= kMinNormal) ? kMinNormal : bandwidth;
  const double b2 = prof.bandwidth * prof.bandwidth;
  // The square underflows for bandwidth < ~1.5e-154 even when the
  // bandwidth itself is normal.
  prof.b2 = !(b2 >= kMinNormal) ? kMinNormal : b2;
  return prof;
}

double EvaluateKernel(KernelType kernel, double squared_distance,
                      double bandwidth) {
  const KernelEvalProfile prof = MakeKernelEvalProfile(bandwidth);
  const double b2 = prof.b2;
  switch (kernel) {
    case KernelType::kUniform:
      return squared_distance <= b2 ? 1.0 / prof.bandwidth : 0.0;
    case KernelType::kEpanechnikov:
      return squared_distance <= b2
                 ? EpanechnikovProfile(ScaleSquaredDistance(squared_distance,
                                                            prof))
                 : 0.0;
    case KernelType::kQuartic:
      return squared_distance <= b2
                 ? QuarticProfile(ScaleSquaredDistance(squared_distance, prof))
                 : 0.0;
    case KernelType::kGaussian:
      return std::exp(-squared_distance / (2.0 * b2));
  }
  return 0.0;
}

RangeAggregates TranslatedAggregates(const RangeAggregates& agg,
                                     const Point& t) {
  const double n = agg.count;
  const double t2 = t.x * t.x + t.y * t.y;
  const double t_dot_sum = t.x * agg.sum.x + t.y * agg.sum.y;
  // M t, with M = Σ u uᵀ.
  const double mt_x = agg.m_xx * t.x + agg.m_xy * t.y;
  const double mt_y = agg.m_xy * t.x + agg.m_yy * t.y;
  RangeAggregates r;
  r.count = n;
  r.sum = {agg.sum.x + n * t.x, agg.sum.y + n * t.y};
  // Σ ||u + t||² = S + 2 t·A + n ||t||²
  r.sum_sq = agg.sum_sq + 2.0 * t_dot_sum + n * t2;
  // Σ ||u + t||² (u + t) = C + S t + 2 M t + 2 (t·A) t + ||t||² A + n ||t||² t
  r.sum_sq_p.x = agg.sum_sq_p.x + agg.sum_sq * t.x + 2.0 * mt_x +
                 2.0 * t_dot_sum * t.x + t2 * agg.sum.x + n * t2 * t.x;
  r.sum_sq_p.y = agg.sum_sq_p.y + agg.sum_sq * t.y + 2.0 * mt_y +
                 2.0 * t_dot_sum * t.y + t2 * agg.sum.y + n * t2 * t.y;
  // Σ ||u + t||⁴ = Q + 4 tᵀM t + 4 t·C + 2 ||t||² S + 4 ||t||² (t·A)
  //               + n ||t||⁴
  r.sum_quad = agg.sum_quad + 4.0 * (t.x * mt_x + t.y * mt_y) +
               4.0 * (t.x * agg.sum_sq_p.x + t.y * agg.sum_sq_p.y) +
               2.0 * t2 * agg.sum_sq + 4.0 * t2 * t_dot_sum + n * t2 * t2;
  r.m_xx = agg.m_xx + 2.0 * t.x * agg.sum.x + n * t.x * t.x;
  r.m_xy = agg.m_xy + t.x * agg.sum.y + t.y * agg.sum.x + n * t.x * t.y;
  r.m_yy = agg.m_yy + 2.0 * t.y * agg.sum.y + n * t.y * t.y;
  return r;
}

double DensityFromAggregates(KernelType kernel, const Point& q,
                             const RangeAggregates& agg, double bandwidth,
                             double weight) {
  SLAM_DCHECK(KernelSupportedBySlam(kernel))
      << "no aggregate decomposition for kernel "
      << KernelTypeName(kernel);
  const KernelEvalProfile prof = MakeKernelEvalProfile(bandwidth);
  const double b2 = prof.b2;
  // The true density is a sum of non-negative kernel values; the
  // subtractive closed forms below can round to tiny negatives (~1e-14 of
  // the aggregate scale), so clamp at zero.
  switch (kernel) {
    case KernelType::kUniform:
      // F = (w / b) |R|
      return weight / prof.bandwidth * agg.count;
    case KernelType::kEpanechnikov: {
      // F = w|R| - (w/b²)(|R| ||q||² - 2 qᵀA + S)     (paper Eq. 5)
      const double u = q.SquaredNorm();
      return std::max(
          0.0, weight * agg.count -
                   weight / b2 *
                       (agg.count * u - 2.0 * q.Dot(agg.sum) + agg.sum_sq));
    }
    case KernelType::kQuartic: {
      // K = (1 - d²/b²)² = 1 - 2d²/b² + d⁴/b⁴ with d² = ||q||² - 2qᵀp + ||p||².
      // Σ d² = |R| u - 2 qᵀA + S                       (u = ||q||²)
      // Σ d⁴ = |R| u² + 4 qᵀM q + Q - 4u qᵀA + 2u S - 4 qᵀC
      const double u = q.SquaredNorm();
      const double sum_d2 =
          agg.count * u - 2.0 * q.Dot(agg.sum) + agg.sum_sq;
      const double qMq = q.x * (agg.m_xx * q.x + agg.m_xy * q.y) +
                         q.y * (agg.m_xy * q.x + agg.m_yy * q.y);
      const double sum_d4 = agg.count * u * u + 4.0 * qMq + agg.sum_quad -
                            4.0 * u * q.Dot(agg.sum) + 2.0 * u * agg.sum_sq -
                            4.0 * q.Dot(agg.sum_sq_p);
      return std::max(
          0.0, weight * (agg.count - 2.0 / b2 * sum_d2 + sum_d4 / (b2 * b2)));
    }
    case KernelType::kGaussian:
      break;
  }
  SLAM_CHECK(false) << "unreachable: kernel "
                    << static_cast<int>(kernel);  // lint:allow(narrowing-cast) NOLINT(slam-narrowing-cast)
  return 0.0;
}

int AggregateArity(KernelType kernel) {
  switch (kernel) {
    case KernelType::kUniform:
      return 1;  // |R|
    case KernelType::kEpanechnikov:
      return 4;  // |R|, A (2), S
    case KernelType::kQuartic:
      return 9;  // + C (2), Q, M (3 distinct entries)
    case KernelType::kGaussian:
      return 0;
  }
  return 0;
}

}  // namespace slam
