// Kernel functions (paper Table 2) and their aggregate decompositions
// (paper Eq. 5 and Section 3.7 / Table 4).
//
// The bandwidth-limited polynomial kernels — uniform, Epanechnikov,
// quartic — admit an exact decomposition of the density
//   F_P(q) = sum_{p in R(q)} w * K(q, p)
// into a closed form over a fixed set of aggregates of R(q):
//   |R|           (all kernels)
//   A  = Σ p      (Epanechnikov, quartic)
//   S  = Σ ||p||² (Epanechnikov, quartic)
//   C  = Σ ||p||² p,  Q = Σ ||p||⁴,  M = Σ p pᵀ   (quartic only)
// That decomposition is what lets the sweep line maintain densities in O(1)
// per pixel. The Gaussian kernel has no such finite decomposition, so SLAM
// cannot support it (paper Section 3.7) — kept in the enum so the engine
// can reject it with a useful error.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

#include "geom/point.h"
#include "util/result.h"
#include "util/units.h"

namespace slam {

enum class KernelType : int {
  kUniform = 0,
  kEpanechnikov = 1,
  kQuartic = 2,
  kGaussian = 3,  // NOT supported by SLAM; see header comment.
};

std::string_view KernelTypeName(KernelType kernel);
Result<KernelType> KernelTypeFromName(std::string_view name);

/// True for the bandwidth-limited kernels SLAM's decomposition covers.
bool KernelSupportedBySlam(KernelType kernel);

/// Guarded per-evaluation constants shared by every kernel path — the
/// scalar closed forms below, the SIMD row sweeps (src/simd/), and direct
/// evaluation. The kernel polynomials divide by the bandwidth and its
/// square; a zero, subnormal, or NaN bandwidth (reachable through the
/// oracle and fuzz harnesses, which bypass task validation) would turn
/// those divisions into Inf/NaN. Both divisors are clamped to the smallest
/// positive normal double, which leaves every validated bandwidth
/// (>= 1e-9, util/validate.h) bit-for-bit unchanged.
struct KernelEvalProfile {
  double bandwidth = 1.0;  // clamped to the positive-normal range
  double b2 = 1.0;         // clamped bandwidth²
};
KernelEvalProfile MakeKernelEvalProfile(double bandwidth);

/// The bandwidth-scaled squared distance u² = d²/b² — the dimensionless
/// quantity every bounded-kernel profile is a polynomial in. Typed
/// (util/units.h) so a raw, unscaled distance cannot reach a profile
/// polynomial: the scaling step is the only constructor call site.
inline BandwidthScaled ScaleSquaredDistance(double squared_distance,
                                            const KernelEvalProfile& prof) {
  return BandwidthScaled(squared_distance / prof.b2);
}

/// Profile polynomials over bandwidth-scaled inputs (paper Table 2,
/// support checks excluded — callers gate on d² <= b² against the RAW
/// squared distance, never the scaled one, so boundary membership is
/// bit-identical to direct evaluation).
inline double EpanechnikovProfile(BandwidthScaled u2) {
  return 1.0 - u2.value();
}
inline double QuarticProfile(BandwidthScaled u2) {
  const double t = 1.0 - u2.value();
  return t * t;
}

/// Direct evaluation of K(q, p) given squared distance. This is the ground
/// truth every optimized path is tested against.
/// For distances > bandwidth the bounded kernels return 0.
double EvaluateKernel(KernelType kernel, double squared_distance,
                      double bandwidth);

/// The aggregates of a range set R(q) (paper Table 4). All fields are
/// maintained unconditionally — the marginal cost is a few adds per point —
/// so one accumulator type serves every kernel.
struct RangeAggregates {
  double count = 0.0;   // |R|
  Point sum{};          // A   = Σ p
  double sum_sq = 0.0;  // S   = Σ ||p||²
  Point sum_sq_p{};     // C   = Σ ||p||² p
  double sum_quad = 0.0;  // Q = Σ ||p||⁴
  double m_xx = 0.0;      // M = Σ p pᵀ (symmetric 2x2: xx, xy, yy)
  double m_xy = 0.0;
  double m_yy = 0.0;

  void Add(const Point& p) {
    const double s = p.SquaredNorm();
    count += 1.0;
    sum += p;
    sum_sq += s;
    sum_sq_p += p * s;
    sum_quad += s * s;
    m_xx += p.x * p.x;
    m_xy += p.x * p.y;
    m_yy += p.y * p.y;
  }

  void Merge(const RangeAggregates& o) {
    count += o.count;
    sum += o.sum;
    sum_sq += o.sum_sq;
    sum_sq_p += o.sum_sq_p;
    sum_quad += o.sum_quad;
    m_xx += o.m_xx;
    m_xy += o.m_xy;
    m_yy += o.m_yy;
  }

  /// Component-wise difference; used for L_ell - U_ell (paper Lemma 3/5).
  RangeAggregates Minus(const RangeAggregates& o) const {
    RangeAggregates r = *this;
    r.count -= o.count;
    r.sum -= o.sum;
    r.sum_sq -= o.sum_sq;
    r.sum_sq_p -= o.sum_sq_p;
    r.sum_quad -= o.sum_quad;
    r.m_xx -= o.m_xx;
    r.m_xy -= o.m_xy;
    r.m_yy -= o.m_yy;
    return r;
  }
};

/// Aggregates of the translated set {u + t : u in R} from the aggregates
/// of R — the binomial moment-shift identity, exact as polynomials. The
/// spatial indexes store each node's aggregates anchored at the node
/// center and shift them into the query-centered frame at merge time, so
/// every magnitude the density recombination sees is O(bandwidth)-scaled
/// no matter where the data sits globally (the tree analog of the sweep's
/// row-local frame; well conditioned because |t| <= radius + node extent).
RangeAggregates TranslatedAggregates(const RangeAggregates& agg,
                                     const Point& t);

/// One Neumaier (improved Kahan–Babuška) step: folds `value` into the
/// running `sum`, pushing the rounding error of the addition into `comp`.
/// The true total is sum + comp at any time. Unlike plain Kahan, this
/// stays correct when |value| > |sum| (common when the sweep's aggregates
/// swing through near-cancellation).
inline void NeumaierAdd(double& sum, double& comp, double value) {
  const double t = sum + value;
  if (std::abs(sum) >= std::abs(value)) {
    comp += (sum - t) + value;
  } else {
    comp += (value - t) + sum;
  }
  sum = t;
}

/// RangeAggregates with one Neumaier compensation term per scalar channel.
/// The sweep's L and U accumulators see millions of endpoint passes on
/// production rows; uncompensated, their drift is O(n·eps) of the largest
/// intermediate, which the subtraction L − U then exposes. Compensation
/// caps the drift at O(eps) of the true value for ~2x the adds — enabled
/// by default via ComputeOptions::compensated_aggregates.
struct CompensatedRangeAggregates {
  RangeAggregates sums;
  RangeAggregates comps;  // same channels, holding the compensation terms

  void Add(const Point& p) {
    const double s = p.SquaredNorm();
    sums.count += 1.0;  // counts are integers: exact until 2^53, no comp
    NeumaierAdd(sums.sum.x, comps.sum.x, p.x);
    NeumaierAdd(sums.sum.y, comps.sum.y, p.y);
    NeumaierAdd(sums.sum_sq, comps.sum_sq, s);
    NeumaierAdd(sums.sum_sq_p.x, comps.sum_sq_p.x, p.x * s);
    NeumaierAdd(sums.sum_sq_p.y, comps.sum_sq_p.y, p.y * s);
    NeumaierAdd(sums.sum_quad, comps.sum_quad, s * s);
    NeumaierAdd(sums.m_xx, comps.m_xx, p.x * p.x);
    NeumaierAdd(sums.m_xy, comps.m_xy, p.x * p.y);
    NeumaierAdd(sums.m_yy, comps.m_yy, p.y * p.y);
  }

  void Merge(const CompensatedRangeAggregates& o) {
    sums.count += o.sums.count;
    NeumaierAdd(sums.sum.x, comps.sum.x, o.sums.sum.x);
    NeumaierAdd(sums.sum.y, comps.sum.y, o.sums.sum.y);
    NeumaierAdd(sums.sum_sq, comps.sum_sq, o.sums.sum_sq);
    NeumaierAdd(sums.sum_sq_p.x, comps.sum_sq_p.x, o.sums.sum_sq_p.x);
    NeumaierAdd(sums.sum_sq_p.y, comps.sum_sq_p.y, o.sums.sum_sq_p.y);
    NeumaierAdd(sums.sum_quad, comps.sum_quad, o.sums.sum_quad);
    NeumaierAdd(sums.m_xx, comps.m_xx, o.sums.m_xx);
    NeumaierAdd(sums.m_xy, comps.m_xy, o.sums.m_xy);
    NeumaierAdd(sums.m_yy, comps.m_yy, o.sums.m_yy);
    comps.Merge(o.comps);
  }

  /// L − U with the compensation folded in: the primary difference first
  /// (benefiting from Sterbenz cancellation when L ≈ U), then the small
  /// compensation difference as a correction.
  RangeAggregates Minus(const CompensatedRangeAggregates& o) const {
    RangeAggregates r = sums.Minus(o.sums);
    const RangeAggregates c = comps.Minus(o.comps);
    r.sum += c.sum;
    r.sum_sq += c.sum_sq;
    r.sum_sq_p += c.sum_sq_p;
    r.sum_quad += c.sum_quad;
    r.m_xx += c.m_xx;
    r.m_xy += c.m_xy;
    r.m_yy += c.m_yy;
    return r;
  }
};

/// Exact density at pixel q from the aggregates of R(q) (paper Eq. 5 for
/// Epanechnikov; Section 3.7 expansions for uniform and quartic).
/// `weight` is the paper's normalization constant w. Gaussian is a
/// programming error here (checked).
double DensityFromAggregates(KernelType kernel, const Point& q,
                             const RangeAggregates& agg, double bandwidth,
                             double weight);

/// Number of scalar aggregate values the kernel's decomposition needs
/// (1, 4, or 9). Used by the space model and the ablation bench.
int AggregateArity(KernelType kernel);

}  // namespace slam
