#include "kdv/parallel.h"

#include <algorithm>
#include <vector>

#include "util/exec_context.h"
#include "util/mutex.h"
#include "util/narrow.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace slam {

namespace {

/// First-failure-wins aggregation across stripe threads. Record() keeps
/// only the first status and trips the stripe cancellation token so
/// sibling stripes stop at their next row poll; later statuses (usually
/// the secondary Cancelled the siblings then report) are dropped.
class FirstErrorCollector {
 public:
  explicit FirstErrorCollector(CancellationToken* stripe_cancel)
      : stripe_cancel_(stripe_cancel) {}

  void Record(const Status& status) {
    MutexLock lock(&mutex_);
    if (first_error_.ok()) {
      first_error_ = status;
      stripe_cancel_->Cancel();  // stop sibling stripes
    }
  }

  /// Safe to call only after every stripe thread has joined.
  Status TakeStatus() {
    MutexLock lock(&mutex_);
    return first_error_;
  }

 private:
  CancellationToken* const stripe_cancel_;
  Mutex mutex_;
  Status first_error_ SLAM_GUARDED_BY(mutex_);
};

}  // namespace

Result<DensityMap> ComputeKdvParallel(const KdvTask& task, Method method,
                                      const ParallelOptions& options) {
  // Sanitize once here rather than per stripe, so every stripe sees the
  // same point set and the dropped-count warning is logged once.
  KdvTask clean_task = task;
  std::vector<Point> finite_points;
  if (options.engine.sanitize) {
    if (CopyFinitePoints(task.points, &finite_points) > 0) {
      clean_task.points = finite_points;
    }
  }
  SLAM_RETURN_NOT_OK(ValidateTask(clean_task));
  if (MethodIsSlam(method) && !KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM cannot support the " + std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const ExecContext* caller_exec = options.engine.compute.exec;
  SLAM_RETURN_NOT_OK(ExecCheck(caller_exec, "parallel/start"));

  // Stripes share the caller's deadline/budget/fault injector but get a
  // cancellation token chained to the caller's: the first failing stripe
  // trips it, so sibling stripes stop at their next row poll instead of
  // running to completion.
  CancellationToken stripe_cancel(
      caller_exec != nullptr ? caller_exec->cancellation() : nullptr);
  ExecContext stripe_exec;
  if (caller_exec != nullptr) stripe_exec = *caller_exec;
  stripe_exec.set_cancellation(&stripe_cancel);
  EngineOptions stripe_engine = options.engine;
  stripe_engine.compute.exec = &stripe_exec;
  stripe_engine.sanitize = false;  // already sanitized above, once

  FirstErrorCollector errors(&stripe_cancel);

  {
    // Scope: the pool joins before first_error is read or `map` returned,
    // so no stripe thread outlives this function.
    ThreadPool pool(options.num_threads);
    ParallelFor(
        &pool, 0, task.grid.height(),
        [&](int64_t row_begin, int64_t row_end) {
          const Status entry = stripe_exec.Check("parallel/stripe");
          if (!entry.ok()) {
            // Cancellation here is a sibling's doing; its error is already
            // recorded. Anything else (deadline, injected fault) is this
            // stripe's own failure.
            errors.Record(entry);
            return;
          }
          // Sub-task: same lattice restricted to rows [row_begin, row_end).
          KdvTask stripe = clean_task;
          GridAxis y = task.grid.y_axis();
          y.origin = task.grid.y_axis().Coord(PixelIndex(row_begin));
          y.count = PixelIndex(row_end - row_begin);
          const auto stripe_grid = Grid::Create(task.grid.x_axis(), y);
          if (!stripe_grid.ok()) {
            errors.Record(stripe_grid.status());
            return;
          }
          stripe.grid = *stripe_grid;
          const auto stripe_map = ComputeKdv(stripe, method, stripe_engine);
          if (!stripe_map.ok()) {
            errors.Record(stripe_map.status());
            return;
          }
          for (int iy = 0; iy < stripe_map->height(); ++iy) {
            const auto src = stripe_map->row(iy);
            auto dst = map.mutable_row(PixelIndex(row_begin) + iy);
            std::copy(src.begin(), src.end(), dst.begin());
          }
        });
  }

  const Status first_error = errors.TakeStatus();
  if (!first_error.ok()) return first_error;
  return map;
}

}  // namespace slam
