#include "kdv/parallel.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "util/thread_pool.h"

namespace slam {

Result<DensityMap> ComputeKdvParallel(const KdvTask& task, Method method,
                                      const ParallelOptions& options) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  if (MethodIsSlam(method) && !KernelSupportedBySlam(task.kernel)) {
    return Status::InvalidArgument(
        "SLAM cannot support the " + std::string(KernelTypeName(task.kernel)) +
        " kernel (paper Section 3.7)");
  }
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  ThreadPool pool(options.num_threads);
  std::mutex status_mutex;
  Status first_error;  // first failure wins; stripes are independent

  ParallelFor(
      &pool, 0, task.grid.height(),
      [&](int64_t row_begin, int64_t row_end) {
        // Sub-task: same lattice restricted to rows [row_begin, row_end).
        KdvTask stripe = task;
        GridAxis y = task.grid.y_axis();
        y.origin = task.grid.y_axis().Coord(static_cast<int>(row_begin));
        y.count = static_cast<int>(row_end - row_begin);
        const auto stripe_grid = Grid::Create(task.grid.x_axis(), y);
        if (!stripe_grid.ok()) {
          std::lock_guard<std::mutex> lock(status_mutex);
          if (first_error.ok()) first_error = stripe_grid.status();
          return;
        }
        stripe.grid = *stripe_grid;
        const auto stripe_map = ComputeKdv(stripe, method, options.engine);
        if (!stripe_map.ok()) {
          std::lock_guard<std::mutex> lock(status_mutex);
          if (first_error.ok()) first_error = stripe_map.status();
          return;
        }
        for (int iy = 0; iy < stripe_map->height(); ++iy) {
          const auto src = stripe_map->row(iy);
          auto dst = map.mutable_row(static_cast<int>(row_begin) + iy);
          std::copy(src.begin(), src.end(), dst.begin());
        }
      });

  if (!first_error.ok()) return first_error;
  return map;
}

}  // namespace slam
