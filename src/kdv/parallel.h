// Row-parallel KDV (the paper's "parallel/distributed methods" future-work
// axis, Section 5). Pixel rows are independent in every method here, so
// the raster is split into horizontal stripes, each computed by the base
// method on a sub-grid, on its own thread with its own workspace.
//
// Exactness is preserved: a stripe's sub-task has the same points, kernel,
// bandwidth and pixel lattice — only the y range is restricted.
//
// Intended for the SLAM methods, whose per-call setup is O(1): index-based
// baselines would rebuild their index once per stripe (still correct, just
// wasteful), which mirrors why the paper treats parallelism as orthogonal.
#pragma once

#include "kdv/density_map.h"
#include "kdv/engine.h"
#include "kdv/task.h"
#include "util/result.h"

namespace slam {

struct ParallelOptions {
  /// <= 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  EngineOptions engine;
};

/// Computes the same raster as ComputeKdv(task, method), using stripes of
/// pixel rows across a thread pool.
///
/// Concurrency contract (checked by clang -Wthread-safety over the
/// annotated primitives in util/mutex.h, and exercised under TSan by
/// tests/engine/parallel_stress_test.cc):
///  * stripes write disjoint row ranges of the shared raster, so raster
///    writes need no lock;
///  * failure aggregation is first-error-wins through a mutex-guarded
///    collector that also trips a stripe-local CancellationToken chained
///    to the caller's, so sibling stripes stop at their next row poll;
///  * the pool joins before the raster or status is read, so no stripe
///    thread outlives the call.
Result<DensityMap> ComputeKdvParallel(const KdvTask& task, Method method,
                                      const ParallelOptions& options = {});

}  // namespace slam
