#include "kdv/task.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "util/validate.h"

namespace slam {

namespace {

/// The per-point acceptance test shared by ValidateTask (reject) and
/// CopyFinitePoints (drop): finite AND within the shared magnitude cap.
/// The cap closes the finite-but-huge hole — a 1e300 coordinate passes
/// std::isfinite yet overflows the fourth-power aggregate moments, turning
/// the closed-form sweep into NaN with no error anywhere.
bool PointAcceptable(const Point& p) {
  return CheckCoordinate(p.x, "x").ok() && CheckCoordinate(p.y, "y").ok();
}

}  // namespace

Status ValidateTask(const KdvTask& task) {
  SLAM_RETURN_NOT_OK(CheckGridDims(task.grid.width(), task.grid.height()));
  if (!(task.grid.x_axis().gap > 0.0) || !(task.grid.y_axis().gap > 0.0)) {
    return Status::InvalidArgument("task grid gaps must be positive");
  }
  SLAM_RETURN_NOT_OK(CheckCoordinate(task.grid.x_axis().origin,
                                     "grid x origin"));
  SLAM_RETURN_NOT_OK(CheckCoordinate(task.grid.y_axis().origin,
                                     "grid y origin"));
  SLAM_RETURN_NOT_OK(CheckPositiveNormal(task.bandwidth, "bandwidth"));
  SLAM_RETURN_NOT_OK(
      CheckPositiveNormal(task.weight, "normalization weight"));
  for (size_t i = 0; i < task.points.size(); ++i) {
    const Point& p = task.points[i];
    if (!PointAcceptable(p)) {
      return Status::InvalidArgument(StringPrintf(
          "point %zu has non-finite or out-of-range coordinates (%g, %g); "
          "the magnitude cap is %g; enable EngineOptions::sanitize to drop "
          "such points",
          i, p.x, p.y, InputLimits::kMaxCoordinateMagnitude));
    }
  }
  return Status::OK();
}

size_t CopyFinitePoints(std::span<const Point> points,
                        std::vector<Point>* out) {
  out->clear();
  out->reserve(points.size());
  for (const Point& p : points) {
    if (PointAcceptable(p)) out->push_back(p);
  }
  return points.size() - out->size();
}

bool TaskFarFromOrigin(const KdvTask& task) {
  const GridAxis& xs = task.grid.x_axis();
  const GridAxis& ys = task.grid.y_axis();
  const double cx = 0.5 * (xs.origin + xs.last());
  const double cy = 0.5 * (ys.origin + ys.last());
  const double span = std::max(xs.last() - xs.origin, ys.last() - ys.origin);
  // The aggregate terms grow like ||p||^4 while the densities live at the
  // bandwidth scale; once the offset exceeds ~16x the working extent the
  // recentering copy is cheaper than the precision it saves.
  const double extent = std::max(span + 2.0 * task.bandwidth, 1e-300);
  return std::max(std::abs(cx), std::abs(cy)) > 16.0 * extent;
}

KdvTask MakeTask(const PointDataset& dataset, const Viewport& viewport,
                 KernelType kernel, double bandwidth) {
  KdvTask task;
  task.points = dataset.coords();
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = dataset.empty() ? 1.0 : 1.0 / static_cast<double>(dataset.size());
  task.grid = Grid::FromViewport(viewport);
  return task;
}

TranslatedTask::TranslatedTask(const KdvTask& task, double dx, double dy) {
  shifted_points_.reserve(task.points.size());
  for (const Point& p : task.points) {
    shifted_points_.push_back({p.x - dx, p.y - dy});
  }
  task_ = task;
  task_.points = shifted_points_;
  task_.grid = task.grid.Translated(dx, dy);
}

TransposedTask::TransposedTask(const KdvTask& task) {
  swapped_points_.reserve(task.points.size());
  for (const Point& p : task.points) {
    swapped_points_.push_back({p.y, p.x});
  }
  task_ = task;
  task_.points = swapped_points_;
  task_.grid = task.grid.Transposed();
}

}  // namespace slam
