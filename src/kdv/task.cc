#include "kdv/task.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace slam {

Status ValidateTask(const KdvTask& task) {
  if (task.grid.width() <= 0 || task.grid.height() <= 0) {
    return Status::InvalidArgument("task grid is empty");
  }
  if (!(task.grid.x_axis().gap > 0.0) || !(task.grid.y_axis().gap > 0.0)) {
    return Status::InvalidArgument("task grid gaps must be positive");
  }
  if (!(task.bandwidth > 0.0) || !std::isfinite(task.bandwidth)) {
    return Status::InvalidArgument(StringPrintf(
        "bandwidth must be positive and finite, got %g", task.bandwidth));
  }
  if (!(task.weight > 0.0) || !std::isfinite(task.weight)) {
    return Status::InvalidArgument(StringPrintf(
        "normalization weight must be positive and finite, got %g",
        task.weight));
  }
  for (size_t i = 0; i < task.points.size(); ++i) {
    const Point& p = task.points[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidArgument(StringPrintf(
          "point %zu has non-finite coordinates (%g, %g); enable "
          "EngineOptions::sanitize to drop such points",
          i, p.x, p.y));
    }
  }
  return Status::OK();
}

size_t CopyFinitePoints(std::span<const Point> points,
                        std::vector<Point>* out) {
  out->clear();
  out->reserve(points.size());
  for (const Point& p : points) {
    if (std::isfinite(p.x) && std::isfinite(p.y)) out->push_back(p);
  }
  return points.size() - out->size();
}

bool TaskFarFromOrigin(const KdvTask& task) {
  const GridAxis& xs = task.grid.x_axis();
  const GridAxis& ys = task.grid.y_axis();
  const double cx = 0.5 * (xs.origin + xs.last());
  const double cy = 0.5 * (ys.origin + ys.last());
  const double span = std::max(xs.last() - xs.origin, ys.last() - ys.origin);
  // The aggregate terms grow like ||p||^4 while the densities live at the
  // bandwidth scale; once the offset exceeds ~16x the working extent the
  // recentering copy is cheaper than the precision it saves.
  const double extent = std::max(span + 2.0 * task.bandwidth, 1e-300);
  return std::max(std::abs(cx), std::abs(cy)) > 16.0 * extent;
}

KdvTask MakeTask(const PointDataset& dataset, const Viewport& viewport,
                 KernelType kernel, double bandwidth) {
  KdvTask task;
  task.points = dataset.coords();
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = dataset.empty() ? 1.0 : 1.0 / static_cast<double>(dataset.size());
  task.grid = Grid::FromViewport(viewport);
  return task;
}

TranslatedTask::TranslatedTask(const KdvTask& task, double dx, double dy) {
  shifted_points_.reserve(task.points.size());
  for (const Point& p : task.points) {
    shifted_points_.push_back({p.x - dx, p.y - dy});
  }
  task_ = task;
  task_.points = shifted_points_;
  task_.grid = task.grid.Translated(dx, dy);
}

TransposedTask::TransposedTask(const KdvTask& task) {
  swapped_points_.reserve(task.points.size());
  for (const Point& p : task.points) {
    swapped_points_.push_back({p.y, p.x});
  }
  task_ = task;
  task_.points = swapped_points_;
  task_.grid = task.grid.Transposed();
}

}  // namespace slam
