// A KDV task: the full input to any of the ten methods — data points,
// kernel, bandwidth, normalization constant, and the pixel grid.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.h"
#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "simd/dispatch.h"
#include "util/exec_context.h"
#include "util/result.h"

namespace slam {

struct KdvTask {
  std::span<const Point> points;
  KernelType kernel = KernelType::kEpanechnikov;
  double bandwidth = 1.0;
  /// The paper's normalization constant w (Problem 1). 1/n by convention;
  /// any positive value is legal since it only scales the raster.
  double weight = 1.0;
  Grid grid;
};

/// Per-computation knobs shared by every method implementation.
struct ComputeOptions {
  /// Hardened execution context: cancellation token, deadline, memory
  /// budget, fault injection (util/exec_context.h). Methods poll it between
  /// pixel rows and at phase boundaries (index build, transposition) and
  /// account their workspace allocations against its budget. Nullptr =
  /// unlimited. The deadline member implements the paper's ">14400 sec"
  /// censoring rule for the experiment harness.
  const ExecContext* exec = nullptr;
  /// Z-order baseline: target uniform density error (fraction of the
  /// density scale); sample size is ~1/eps² (Zheng et al. [73]).
  double zorder_epsilon = 0.005;
  /// aKDE baseline: per-point absolute kernel-value tolerance. The tight
  /// default mirrors the paper's setup, where aKDE refines almost
  /// everything and lands at the slow end of the field (Table 7).
  double akde_epsilon = 1e-6;
  /// QUAD baseline: bound-gap tolerance; 0 = exact filter-and-refine.
  double quad_epsilon = 0.0;
  /// SLAM methods: find each row's envelope from a y-sorted copy with two
  /// binary searches instead of the paper's O(n) per-row scan. Exact either
  /// way; off by default for faithfulness to Algorithm 1/2 (DESIGN.md §4.4).
  bool incremental_envelope = false;
  /// Sweep methods: accumulate the L/U aggregates with Neumaier-compensated
  /// summation so long rows (millions of endpoint passes) don't drift. On
  /// by default — roughly doubles the per-endpoint add cost, which is
  /// dwarfed by the per-pixel closed-form evaluation (DESIGN.md §7).
  bool compensated_aggregates = true;
  /// Sweep methods: instruction-set backend for the row primitives
  /// (src/simd/, DESIGN.md §11). kAuto picks the best available at runtime,
  /// resolved once per engine call; pinning an unavailable level is an
  /// InvalidArgument, never a silent fallback. All backends agree with the
  /// scalar reference to well under the 1e-9 oracle tolerance.
  SimdLevel simd = SimdLevel::kAuto;
};

/// Rejects empty grids, non-positive or non-finite bandwidth/weight, and
/// points with NaN/Inf coordinates (the O(n) scan is negligible next to
/// any density computation, which is at least O(n) per pixel row). To drop
/// bad points instead of failing, see EngineOptions::sanitize.
Status ValidateTask(const KdvTask& task);

/// Indices-free helper behind EngineOptions::sanitize: copies the finite
/// points of `points` into `*out` and returns how many were dropped.
size_t CopyFinitePoints(std::span<const Point> points,
                        std::vector<Point>* out);

/// True when the task's coordinates are poorly conditioned for the
/// subtractive aggregate arithmetic: the grid center's magnitude dwarfs
/// the working extent (viewport span plus a bandwidth margin), as with
/// projected coordinates far from the datum (EPSG:3857 meters). Drives
/// the engine's automatic recentering and QUAD's local-frame build.
bool TaskFarFromOrigin(const KdvTask& task);

/// Convenience: a task over a dataset rendered through a viewport, with
/// weight defaulting to 1/n.
KdvTask MakeTask(const PointDataset& dataset, const Viewport& viewport,
                 KernelType kernel, double bandwidth);

/// Materialized translated copy of a task (for floating-point conditioning
/// and for the RAO transposition). Owns the shifted points.
class TranslatedTask {
 public:
  /// Shifts all coordinates by (-dx, -dy).
  TranslatedTask(const KdvTask& task, double dx, double dy);

  const KdvTask& task() const { return task_; }

 private:
  std::vector<Point> shifted_points_;
  KdvTask task_;
};

/// Transposed copy of a task: x and y swapped in both points and grid.
/// Running a row sweep on the transposed task is a column sweep on the
/// original (RAO, paper Section 3.6).
class TransposedTask {
 public:
  explicit TransposedTask(const KdvTask& task);

  const KdvTask& task() const { return task_; }

 private:
  std::vector<Point> swapped_points_;
  KdvTask task_;
};

}  // namespace slam
