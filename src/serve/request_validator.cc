#include "serve/request_validator.h"

#include <cmath>
#include <set>
#include <string>

#include "serve/resilient_render.h"
#include "util/string_util.h"
#include "util/validate.h"

namespace slam {

namespace {

bool MethodRequiresSlamKernel(Method method) {
  switch (method) {
    case Method::kSlamSort:
    case Method::kSlamBucket:
    case Method::kSlamSortRao:
    case Method::kSlamBucketRao:
      return true;
    default:
      return false;
  }
}

Status CheckKernelMethodPair(KernelType kernel, Method method) {
  if (MethodRequiresSlamKernel(method) && !KernelSupportedBySlam(kernel)) {
    return Status::InvalidArgument(StringPrintf(
        "method %s has no sweep-line decomposition for kernel %s",
        std::string(MethodName(method)).c_str(),
        std::string(KernelTypeName(kernel)).c_str()));
  }
  return Status::OK();
}

Status CheckDeadlineSeconds(double deadline_seconds) {
  // NaN is the dangerous case: `NaN > 0` is false, so an unvalidated NaN
  // deadline would silently disable the deadline instead of erroring.
  SLAM_RETURN_NOT_OK(CheckFinite(deadline_seconds, "deadline"));
  if (deadline_seconds > InputLimits::kMaxDeadlineSeconds) {
    return Status::InvalidArgument(StringPrintf(
        "deadline %g s exceeds the %g s cap", deadline_seconds,
        InputLimits::kMaxDeadlineSeconds));
  }
  return Status::OK();
}

Result<double> ParseParamDouble(std::string_view key, std::string_view value) {
  const auto parsed = ParseDouble(value);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StringPrintf("parameter '%.*s': ", static_cast<int>(key.size()),
                     key.data()) +
        parsed.status().message());
  }
  return parsed;
}

Result<int> ParseParamDim(std::string_view key, std::string_view value) {
  const auto parsed = ParseInt64(value);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StringPrintf("parameter '%.*s': ", static_cast<int>(key.size()),
                     key.data()) +
        parsed.status().message());
  }
  if (*parsed < 1 || *parsed > InputLimits::kMaxGridDim) {
    return Status::InvalidArgument(StringPrintf(
        "parameter '%.*s': %lld outside [1, %d]",
        static_cast<int>(key.size()), key.data(),
        static_cast<long long>(*parsed), InputLimits::kMaxGridDim));
  }
  return static_cast<int>(*parsed);
}

}  // namespace

Result<RenderParamSet> DecodeRenderParams(std::string_view query) {
  RenderParamSet params;
  if (query.empty()) return params;
  std::set<std::string, std::less<>> seen;
  for (const std::string_view pair : Split(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          "malformed parameter '" + std::string(pair) +
          "': expected key=value");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key.empty()) {
      return Status::InvalidArgument("empty parameter key");
    }
    if (value.empty()) {
      return Status::InvalidArgument("parameter '" + std::string(key) +
                                     "' has an empty value");
    }
    if (!seen.insert(std::string(key)).second) {
      return Status::InvalidArgument("duplicate parameter '" +
                                     std::string(key) + "'");
    }
    if (key == "width") {
      SLAM_ASSIGN_OR_RETURN(params.width, ParseParamDim(key, value));
    } else if (key == "height") {
      SLAM_ASSIGN_OR_RETURN(params.height, ParseParamDim(key, value));
    } else if (key == "bandwidth") {
      SLAM_ASSIGN_OR_RETURN(const double b, ParseParamDouble(key, value));
      params.bandwidth = b;
    } else if (key == "kernel") {
      SLAM_ASSIGN_OR_RETURN(params.kernel, KernelTypeFromName(value));
    } else if (key == "method") {
      SLAM_ASSIGN_OR_RETURN(params.method, MethodFromName(value));
    } else if (key == "deadline_ms") {
      SLAM_ASSIGN_OR_RETURN(const double ms, ParseParamDouble(key, value));
      params.deadline_seconds = ms / 1000.0;
    } else if (key == "xmin") {
      SLAM_ASSIGN_OR_RETURN(const double v, ParseParamDouble(key, value));
      params.min_x = v;
    } else if (key == "xmax") {
      SLAM_ASSIGN_OR_RETURN(const double v, ParseParamDouble(key, value));
      params.max_x = v;
    } else if (key == "ymin") {
      SLAM_ASSIGN_OR_RETURN(const double v, ParseParamDouble(key, value));
      params.min_y = v;
    } else if (key == "ymax") {
      SLAM_ASSIGN_OR_RETURN(const double v, ParseParamDouble(key, value));
      params.max_y = v;
    } else {
      return Status::InvalidArgument("unknown parameter '" +
                                     std::string(key) + "'");
    }
  }
  SLAM_RETURN_NOT_OK(ValidateRenderParams(params));
  return params;
}

Status ValidateRenderParams(const RenderParamSet& params) {
  SLAM_RETURN_NOT_OK(CheckGridDims(params.width, params.height));
  if (params.bandwidth.has_value()) {
    SLAM_RETURN_NOT_OK(CheckBandwidth(*params.bandwidth));
  }
  if (params.deadline_seconds < 0.0) {
    return Status::InvalidArgument(StringPrintf(
        "deadline %g s must be non-negative", params.deadline_seconds));
  }
  SLAM_RETURN_NOT_OK(CheckDeadlineSeconds(params.deadline_seconds));
  const int region_fields =
      static_cast<int>(params.min_x.has_value()) +
      static_cast<int>(params.max_x.has_value()) +
      static_cast<int>(params.min_y.has_value()) +
      static_cast<int>(params.max_y.has_value());
  if (region_fields != 0 && region_fields != 4) {
    return Status::InvalidArgument(
        "viewport requires all four of xmin, xmax, ymin, ymax");
  }
  if (params.has_region()) {
    SLAM_RETURN_NOT_OK(CheckRegion(*params.min_x, *params.min_y,
                                   *params.max_x, *params.max_y));
  }
  return CheckKernelMethodPair(params.kernel, params.method);
}

Status ValidateServingOptions(const ServingOptions& options) {
  SLAM_RETURN_NOT_OK(CheckGridDims(options.width_px, options.height_px));
  if (options.bandwidth.has_value()) {
    SLAM_RETURN_NOT_OK(CheckBandwidth(*options.bandwidth));
  }
  if (options.max_halvings < 0) {
    return Status::InvalidArgument("serving max_halvings must be >= 0");
  }
  SLAM_RETURN_NOT_OK(ValidateRetryOptions(options.retry));
  return CheckKernelMethodPair(options.kernel, options.method);
}

Status ValidateRenderRequest(const RenderRequest& request) {
  // Finite non-positive budgets are legal (they mean "no deadline",
  // matching the RenderRequest contract); NaN/Inf are not — see
  // CheckDeadlineSeconds.
  SLAM_RETURN_NOT_OK(CheckDeadlineSeconds(request.deadline_seconds));
  return Status::OK();
}

}  // namespace slam
