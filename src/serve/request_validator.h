// Request-side validation for the serving path: the single place where
// untrusted render parameters — whether they arrive as a query string, CLI
// flags, or a programmatic struct — are decoded and checked before they
// reach ServingCore.
//
// Two layers:
//   * DecodeRenderParams: a strict "key=value&key=value" decoder. Unknown
//     keys, duplicate keys, empty keys/values and malformed numbers are
//     all typed InvalidArgument errors — nothing is silently ignored, so a
//     typo'd "bandwith=0.5" cannot fall back to a default the caller did
//     not choose.
//   * ValidateRenderParams / ValidateServingOptions / ValidateRenderRequest:
//     semantic checks through the shared validation layer (util/validate.h)
//     so the serving path rejects exactly the same hostile values as the
//     loaders and the CLI.
#pragma once

#include <optional>
#include <string_view>

#include "kdv/engine.h"
#include "kdv/kernel.h"
#include "serve/serving_core.h"
#include "util/result.h"

namespace slam {

/// Decoded render parameters. Defaults mirror ServingOptions so an empty
/// query renders the core's configured view.
struct RenderParamSet {
  int width = 512;
  int height = 512;
  /// Unset = the core's bandwidth (Scott's rule at Create()).
  std::optional<double> bandwidth;
  KernelType kernel = KernelType::kEpanechnikov;
  Method method = Method::kSlamBucketRao;
  /// 0 = no deadline. Decoded from "deadline_ms".
  double deadline_seconds = 0.0;
  /// Optional explicit viewport; all four present or all four absent.
  std::optional<double> min_x;
  std::optional<double> max_x;
  std::optional<double> min_y;
  std::optional<double> max_y;

  bool has_region() const {
    return min_x.has_value() && max_x.has_value() && min_y.has_value() &&
           max_y.has_value();
  }
};

/// Parses "key=value&key=value" with keys: width, height, bandwidth,
/// kernel, method, deadline_ms, xmin, xmax, ymin, ymax. Strict: unknown or
/// duplicate keys, empty keys/values, malformed numbers, and values that
/// fail ValidateRenderParams all return InvalidArgument. An empty query
/// yields the defaults. The returned set has already passed
/// ValidateRenderParams.
Result<RenderParamSet> DecodeRenderParams(std::string_view query);

/// Semantic validation of an already-decoded parameter set: grid dims
/// through CheckGridDims, bandwidth through CheckBandwidth, deadline
/// finite and within InputLimits::kMaxDeadlineSeconds, region (if any)
/// complete and ordered, and the kernel/method pairing renderable (SLAM
/// methods reject the Gaussian kernel at validation time, not deep inside
/// the engine).
Status ValidateRenderParams(const RenderParamSet& params);

/// Validation of the operator-supplied serving configuration; called by
/// ServingCore::Create before any allocation.
Status ValidateServingOptions(const ServingOptions& options);

/// Per-request validation; called by ServingCore::Handle before admission.
/// Rejects NaN/Inf deadlines (NaN would silently disable the deadline via
/// a failed `> 0` comparison) and deadlines beyond the shared cap.
Status ValidateRenderRequest(const RenderRequest& request);

}  // namespace slam
