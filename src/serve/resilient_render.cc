#include "serve/resilient_render.h"

#include <chrono>
#include <thread>
#include <utility>

#include "kdv/task.h"

namespace slam {

namespace {

/// Rung-descent policy: which failures are worth answering at lower
/// fidelity. Deadline/memory pressure shrinks with the task; a transient
/// fault that survived its retry budget gets fresh attempts at a cheaper
/// rung. Everything else (InvalidArgument, ...) would fail identically at
/// any resolution.
bool Degradable(const Status& status) {
  return status.IsDeadlineExceeded() || status.IsResourceExhausted() ||
         RetryPolicy::IsRetryable(status);
}

}  // namespace

Result<ResilientRenderOutcome> RenderResilient(
    const ResilientRenderParams& params, const Deadline* deadline) {
  if (params.data == nullptr) {
    return Status::InvalidArgument("RenderResilient requires a dataset");
  }
  SLAM_RETURN_NOT_OK(ValidateRetryOptions(params.retry));

  const ExecContext* base_exec = params.engine.compute.exec;
  ResilientRenderOutcome outcome;
  Status last = Status::Internal("degradation ladder is empty");

  for (int level = params.start_level;; ++level) {
    const auto step = DegradeLadderStep(params.degrade_mode, level,
                                        params.max_halvings, params.width_px,
                                        params.height_px, params.method);
    if (!step) break;  // ladder exhausted

    auto rung_viewport =
        Viewport::Create(params.region, step->width, step->height);
    if (!rung_viewport.ok()) return rung_viewport.status();
    const KdvTask task =
        MakeTask(*params.data, *rung_viewport, params.kernel, params.bandwidth);

    RetryPolicy policy(params.retry, params.retry_seed + uint64_t(level));
    for (int attempt = 0;; ++attempt) {
      // Layer the request deadline onto a copy of the caller's context;
      // token, budget and fault injector pass through unchanged.
      ExecContext attempt_exec;
      if (base_exec != nullptr) attempt_exec = *base_exec;
      if (deadline != nullptr) attempt_exec.set_deadline(deadline);
      EngineOptions attempt_engine = params.engine;
      attempt_engine.compute.exec = &attempt_exec;

      ++outcome.attempts;
      auto map = ComputeKdv(task, step->method, attempt_engine);
      if (map.ok()) {
        outcome.map = *std::move(map);
        outcome.degrade_level = level;
        outcome.fidelity = step->fidelity;
        return outcome;
      }
      last = map.status();
      if (last.IsCancelled()) return last;  // user said stop: final

      const auto delay = policy.DelayBeforeRetry(last, attempt, deadline);
      if (!delay) break;  // not retryable / budget spent / past deadline
      ++outcome.retries;
      std::this_thread::sleep_for(std::chrono::duration<double>(*delay));
    }

    if (!Degradable(last)) return last;
    if (deadline != nullptr && deadline->Expired()) {
      // No rung, however small, can finish after the deadline.
      return Status::DeadlineExceeded(
          "request deadline expired during degradation (last rung: " +
          std::string(last.message()) + ")");
    }
  }
  return last;
}

}  // namespace slam
