// The resilient attempt loop: one request's journey through retry,
// backoff, and the degradation ladder.
//
// Two nested loops. The inner loop retries the CURRENT ladder rung on
// transient faults (RetryPolicy: kIoError/kInternal), sleeping a
// decorrelated-jitter backoff between attempts and never scheduling a
// sleep past the request deadline. The outer loop descends the
// degradation ladder (explore/degrade.h) when a rung is out of reach —
// its deadline expired, its memory was exhausted, or its retry budget ran
// dry — trading fidelity for a smaller, faster computation that may still
// fit the remaining budget. Cancellation is final at every point: the
// user asked to stop, so neither loop continues.
//
// This is deliberately a free function over plain parameters (not a
// method of ServingCore) so tests can drive it without standing up
// admission control and a breaker around it.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "explore/degrade.h"
#include "geom/bounding_box.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "util/backoff.h"
#include "util/result.h"
#include "util/timer.h"

namespace slam {

struct ResilientRenderParams {
  /// Not owned; must outlive the call.
  const PointDataset* data = nullptr;
  /// Spatial region to render; the ladder re-grids it per rung.
  BoundingBox region;
  /// Full-resolution raster size (ladder level 0).
  int width_px = 512;
  int height_px = 512;
  KernelType kernel = KernelType::kEpanechnikov;
  double bandwidth = 1.0;
  Method method = Method::kSlamBucketRao;
  /// Base engine options. compute.exec may carry a cancellation token /
  /// fault injector / memory budget; the loop layers the request deadline
  /// on a per-attempt copy and leaves the original untouched.
  EngineOptions engine;
  DegradeMode degrade_mode = DegradeMode::kHalfRes;
  /// Ladder depth: halvings before the optional sampled rung.
  int max_halvings = 2;
  /// First ladder rung to try; > 0 when the circuit breaker is open and
  /// the core serves degraded-only (ServingCore::Handle).
  int start_level = 0;
  RetryOptions retry;
  /// Seed for the backoff jitter; vary per request to decorrelate clients.
  uint64_t retry_seed = 1;
};

struct ResilientRenderOutcome {
  DensityMap map;
  Fidelity fidelity = Fidelity::kFull;
  /// Ladder rung that produced the map (0 = full resolution).
  int degrade_level = 0;
  /// Total engine invocations, across retries and rungs.
  int attempts = 0;
  /// Same-rung retries (attempts minus first-tries).
  int retries = 0;
};

/// Runs the loop described above. `deadline` is the REQUEST deadline,
/// shared by all attempts (null = none); on failure the returned status is
/// the last attempt's, except that an expired request deadline always
/// surfaces as DeadlineExceeded.
Result<ResilientRenderOutcome> RenderResilient(
    const ResilientRenderParams& params, const Deadline* deadline);

}  // namespace slam
