#include "serve/serving_core.h"

#include <utility>

#include "kdv/bandwidth.h"
#include "serve/request_validator.h"

namespace slam {

namespace {

/// Breaker classification: what counts as the dependency failing.
/// Infrastructure faults, deadline blowouts and memory exhaustion are all
/// symptoms of an engine under pressure; Cancelled and InvalidArgument are
/// the caller's doing and must not open the breaker.
bool BreakerFailure(const Status& status) {
  return status.IsIoError() || status.IsInternal() ||
         status.IsDeadlineExceeded() || status.IsResourceExhausted();
}

}  // namespace

Result<std::unique_ptr<ServingCore>> ServingCore::Create(
    PointDataset dataset, const ServingOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot serve an empty dataset");
  }
  // All option-group checks live in the shared request validator so the
  // serving configuration is held to the same standard as a decoded query.
  SLAM_RETURN_NOT_OK(ValidateServingOptions(options));
  double bandwidth;
  if (options.bandwidth) {
    bandwidth = *options.bandwidth;
  } else {
    SLAM_ASSIGN_OR_RETURN(bandwidth, ScottBandwidth(dataset.coords()));
  }
  SLAM_ASSIGN_OR_RETURN(
      Viewport viewport,
      Viewport::Create(dataset.Extent(), options.width_px, options.height_px));
  SLAM_ASSIGN_OR_RETURN(auto admission,
                        AdmissionController::Create(options.admission));
  SLAM_ASSIGN_OR_RETURN(auto breaker, CircuitBreaker::Create(options.breaker));
  return std::unique_ptr<ServingCore>(
      new ServingCore(std::move(dataset), options, bandwidth, viewport,
                      std::move(admission), std::move(breaker)));
}

ServingCore::ServingCore(PointDataset dataset, const ServingOptions& options,
                         double bandwidth, Viewport viewport,
                         std::unique_ptr<AdmissionController> admission,
                         std::unique_ptr<CircuitBreaker> breaker)
    : dataset_(std::move(dataset)),
      options_(options),
      bandwidth_(bandwidth),
      viewport_(viewport),
      admission_(std::move(admission)),
      breaker_(std::move(breaker)) {}

Result<RenderResponse> ServingCore::Handle(const RenderRequest& request) {
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  // Reject hostile requests before they touch admission: a NaN deadline
  // would otherwise fail the `> 0` test below and silently run unbounded.
  const Status request_valid = ValidateRenderRequest(request);
  if (!request_valid.ok()) {
    n_failed_.fetch_add(1, std::memory_order_relaxed);
    return request_valid;
  }
  const Timer request_timer;

  // The request deadline lives on this stack frame for the whole pipeline:
  // admission waits against it, every render attempt polls it.
  const Deadline deadline(request.deadline_seconds);
  const Deadline* deadline_ptr =
      request.deadline_seconds > 0.0 ? &deadline : nullptr;

  Status admitted = admission_->Admit(deadline_ptr);
  if (!admitted.ok()) {
    if (admitted.IsDeadlineExceeded()) {
      n_deadline_.fetch_add(1, std::memory_order_relaxed);
    } else {
      n_shed_.fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }

  // Breaker gate. Open + degradation available => serve degraded-only
  // (start the ladder past the full-resolution rung); open + degradation
  // off => shed. Only an admitted probe/call reports back to the breaker.
  int start_level = 0;
  const Status breaker_gate = breaker_->Admit();
  const bool breaker_admitted = breaker_gate.ok();
  if (!breaker_admitted) {
    if (options_.degrade_mode == DegradeMode::kOff ||
        (options_.max_halvings == 0 &&
         options_.degrade_mode == DegradeMode::kHalfRes)) {
      admission_->Release(-1.0);
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      return breaker_gate;
    }
    start_level = 1;
  }

  ResilientRenderParams params;
  params.data = &dataset_;
  params.region = viewport_.region();
  params.width_px = options_.width_px;
  params.height_px = options_.height_px;
  params.kernel = options_.kernel;
  params.bandwidth = bandwidth_;
  params.method = options_.method;
  params.engine = options_.engine;
  if (request.exec != nullptr) params.engine.compute.exec = request.exec;
  params.degrade_mode = options_.degrade_mode;
  params.max_halvings = options_.max_halvings;
  params.start_level = start_level;
  params.retry = options_.retry;
  params.retry_seed =
      options_.seed + request_counter_.fetch_add(1, std::memory_order_relaxed);

  auto rendered = RenderResilient(params, deadline_ptr);

  const double latency = request_timer.ElapsedSeconds();
  if (rendered.ok()) {
    n_attempts_.fetch_add(rendered->attempts, std::memory_order_relaxed);
    n_retries_.fetch_add(rendered->retries, std::memory_order_relaxed);
    if (rendered->fidelity == Fidelity::kFull) {
      n_ok_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      n_ok_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (breaker_admitted) breaker_->RecordSuccess();
    admission_->Release(latency);
    RenderResponse response;
    response.map = std::move(rendered->map);
    response.fidelity = rendered->fidelity;
    response.degrade_level = rendered->degrade_level;
    response.attempts = rendered->attempts;
    response.retries = rendered->retries;
    response.latency_seconds = latency;
    return response;
  }

  const Status& failure = rendered.status();
  if (failure.IsDeadlineExceeded()) {
    n_deadline_.fetch_add(1, std::memory_order_relaxed);
  } else if (failure.IsCancelled()) {
    n_cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    n_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (breaker_admitted) {
    // Every breaker admit is balanced by exactly one outcome report;
    // caller-attributable failures count as success so they cannot trip it.
    if (BreakerFailure(failure)) {
      breaker_->RecordFailure();
    } else {
      breaker_->RecordSuccess();
    }
  }
  admission_->Release(-1.0);
  return failure;
}

ServingStats ServingCore::stats() const {
  ServingStats s;
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.ok_full = n_ok_full_.load(std::memory_order_relaxed);
  s.ok_degraded = n_ok_degraded_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = n_deadline_.load(std::memory_order_relaxed);
  s.cancelled = n_cancelled_.load(std::memory_order_relaxed);
  s.failed = n_failed_.load(std::memory_order_relaxed);
  s.retries = n_retries_.load(std::memory_order_relaxed);
  s.attempts = n_attempts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace slam
