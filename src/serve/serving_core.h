// ServingCore: the resilient request gate in front of the KDV engine.
//
// One core owns one dataset and serves concurrent render requests over it.
// Each request runs the pipeline
//
//   deadline check -> admission control -> circuit breaker
//       -> resilient render (retry / backoff / degradation ladder)
//       -> breaker + latency feedback
//
// Admission (util/admission.h) sheds requests that cannot be served in
// time — infeasible deadlines, full queue — before they cost anything.
// The breaker (util/circuit_breaker.h) watches the engine's recent
// failure rate; while it is OPEN the core does not attempt full-fidelity
// work: with degradation enabled it serves straight from the degraded
// rungs (cheap, likely to succeed, keeps clients alive), and with
// degradation off it sheds. The render loop itself is
// serve/resilient_render.h.
//
// Thread safety: Handle() is safe to call from any number of threads.
// The dataset, viewport and options are immutable after Create();
// admission and breaker are internally locked; counters are atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "data/dataset.h"
#include "explore/degrade.h"
#include "geom/viewport.h"
#include "kdv/engine.h"
#include "serve/resilient_render.h"
#include "util/admission.h"
#include "util/backoff.h"
#include "util/circuit_breaker.h"
#include "util/result.h"

namespace slam {

struct ServingOptions {
  /// Full-resolution raster served at ladder level 0.
  int width_px = 512;
  int height_px = 512;
  KernelType kernel = KernelType::kEpanechnikov;
  /// Unset = Scott's rule on the dataset at Create().
  std::optional<double> bandwidth;
  Method method = Method::kSlamBucketRao;
  /// Base engine options; per-request ExecContexts are layered on top of
  /// compute.exec (see RenderRequest::exec), so leave it null here unless
  /// every request should share a context.
  EngineOptions engine;
  RetryOptions retry;
  DegradeMode degrade_mode = DegradeMode::kHalfRes;
  /// Ladder halvings before the optional sampled rung.
  int max_halvings = 2;
  AdmissionOptions admission;
  CircuitBreakerOptions breaker;
  /// Base seed for per-request backoff jitter (request i uses seed + i).
  uint64_t seed = 0x5eed5eedULL;
};

struct RenderRequest {
  /// Per-request wall-clock budget; <= 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Optional caller context (cancellation token, fault injector, memory
  /// budget). Not owned; must outlive the Handle() call. The request
  /// deadline is layered on internally — any deadline already present in
  /// this context also still applies.
  const ExecContext* exec = nullptr;
};

struct RenderResponse {
  DensityMap map;
  /// What was actually served; check this before trusting the resolution.
  Fidelity fidelity = Fidelity::kFull;
  int degrade_level = 0;
  int attempts = 0;
  int retries = 0;
  double latency_seconds = 0.0;
};

/// Monotonic counters, snapshot via ServingCore::stats().
struct ServingStats {
  int64_t requests = 0;
  int64_t ok_full = 0;
  int64_t ok_degraded = 0;
  int64_t shed = 0;               // admission or open-breaker rejections
  int64_t deadline_exceeded = 0;  // expired before or during work
  int64_t cancelled = 0;
  int64_t failed = 0;  // everything else
  int64_t retries = 0;
  int64_t attempts = 0;
};

class ServingCore {
 public:
  /// Takes a copy of the dataset; validates every option group. The served
  /// region is the dataset's bounding box.
  static Result<std::unique_ptr<ServingCore>> Create(
      PointDataset dataset, const ServingOptions& options);

  ServingCore(const ServingCore&) = delete;
  ServingCore& operator=(const ServingCore&) = delete;

  /// Serves one request; thread-safe. Failure codes: ResourceExhausted =
  /// shed (admission or breaker), DeadlineExceeded = deadline expired,
  /// Cancelled = the caller's token fired; anything else is an engine
  /// error that survived retry and degradation.
  Result<RenderResponse> Handle(const RenderRequest& request);

  ServingStats stats() const;
  BreakerStats breaker_stats() const { return breaker_->stats(); }
  BreakerState breaker_state() const { return breaker_->state(); }
  AdmissionStats admission_stats() const { return admission_->stats(); }
  double bandwidth() const { return bandwidth_; }
  const ServingOptions& options() const { return options_; }

 private:
  ServingCore(PointDataset dataset, const ServingOptions& options,
              double bandwidth, Viewport viewport,
              std::unique_ptr<AdmissionController> admission,
              std::unique_ptr<CircuitBreaker> breaker);

  const PointDataset dataset_;
  const ServingOptions options_;
  const double bandwidth_;
  const Viewport viewport_;
  const std::unique_ptr<AdmissionController> admission_;
  const std::unique_ptr<CircuitBreaker> breaker_;

  std::atomic<uint64_t> request_counter_{0};
  std::atomic<int64_t> n_requests_{0};
  std::atomic<int64_t> n_ok_full_{0};
  std::atomic<int64_t> n_ok_degraded_{0};
  std::atomic<int64_t> n_shed_{0};
  std::atomic<int64_t> n_deadline_{0};
  std::atomic<int64_t> n_cancelled_{0};
  std::atomic<int64_t> n_failed_{0};
  std::atomic<int64_t> n_retries_{0};
  std::atomic<int64_t> n_attempts_{0};
};

}  // namespace slam
