#include "simd/dispatch.h"

#include <string>

#include "simd/sweep_ops.h"
#include "util/string_util.h"

namespace slam {

namespace {

/// CPU feature check only; whether the backend is compiled in is the ops
/// getters' concern.
bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__) || defined(__ARM_NEON)
      return true;  // NEON is baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

SimdLevel DetectOnce() {
  if (SimdLevelAvailable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (SimdLevelAvailable(SimdLevel::kNeon)) return SimdLevel::kNeon;
  return SimdLevel::kScalar;
}

}  // namespace

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
      return "auto";
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "?";
}

Result<SimdLevel> SimdLevelFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "auto") return SimdLevel::kAuto;
  if (lower == "scalar" || lower == "none") return SimdLevel::kScalar;
  if (lower == "avx2") return SimdLevel::kAvx2;
  if (lower == "neon") return SimdLevel::kNeon;
  return Status::InvalidArgument("unknown SIMD level '" + std::string(name) +
                                 "' (want auto|scalar|avx2|neon)");
}

bool SimdLevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto:
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return GetAvx2Ops() != nullptr && CpuSupports(level);
    case SimdLevel::kNeon:
      return GetNeonOps() != nullptr && CpuSupports(level);
  }
  return false;
}

SimdLevel DetectSimdLevel() {
  static const SimdLevel cached = DetectOnce();
  return cached;
}

Result<SimdLevel> ResolveSimdLevel(SimdLevel requested) {
  if (requested == SimdLevel::kAuto) return DetectSimdLevel();
  if (!SimdLevelAvailable(requested)) {
    return Status::InvalidArgument(
        "SIMD level '" + std::string(SimdLevelName(requested)) +
        "' is not available on this build/CPU (detected best: " +
        std::string(SimdLevelName(DetectSimdLevel())) + ")");
  }
  return requested;
}

}  // namespace slam
