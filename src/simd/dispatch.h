// Runtime SIMD dispatch for the sweep hot paths (ROADMAP item 2).
//
// The per-row sweep work — envelope filtering, bound-interval computation,
// endpoint bucketing, the pixel-binned counting sort, and the closed-form
// per-pixel polynomial over the (count, A, S, C, Q, M) aggregates — is
// data-parallel across points and pixels. Each instruction-set backend implements the same row primitives
// (simd/sweep_ops.h); the level is chosen once per engine call and carried
// in ComputeOptions::simd, so a binary built on any machine picks the best
// available backend at runtime and can be pinned to a specific one
// (`slam_kdv --simd=scalar`) for debugging and differential testing.
//
// The scalar backend is the semantic reference: it reproduces the original
// per-pixel sweep arithmetic operation for operation, and every vector
// backend is held to it (and to the long-double oracle) at 1e-9 by
// tests/simd/simd_equivalence_test.cc and the differential fuzz target.
#pragma once

#include <string_view>

#include "util/result.h"

namespace slam {

enum class SimdLevel : int {
  kAuto = 0,    // resolve to the best available backend at runtime
  kScalar = 1,  // portable reference path, always available
  kAvx2 = 2,    // x86-64 AVX2 (256-bit, 4 doubles per op)
  kNeon = 3,    // AArch64 NEON (128-bit, 2 doubles per op)
};

std::string_view SimdLevelName(SimdLevel level);
Result<SimdLevel> SimdLevelFromName(std::string_view name);

/// True when `level` can actually run here: the backend was compiled in
/// (the AVX2/NEON translation units are arch-gated) and the CPU reports
/// the feature at runtime. kScalar is always available; kAuto is always
/// "available" (it resolves to something that is).
bool SimdLevelAvailable(SimdLevel level);

/// The best available concrete level on this machine (never kAuto).
/// Detection runs once and is cached.
SimdLevel DetectSimdLevel();

/// Resolves kAuto to DetectSimdLevel() and validates explicit requests:
/// asking for a backend this build/CPU cannot run is InvalidArgument, not
/// a silent fallback — a pinned `--simd=avx2` must mean AVX2 ran.
Result<SimdLevel> ResolveSimdLevel(SimdLevel requested);

}  // namespace slam
