// The per-row sweep primitives behind SLAM_SORT / SLAM_BUCKET / RAO, as a
// table of function pointers selected once per compute call (dispatch.h).
//
// A row sweep decomposes into four data-parallel passes:
//   1. envelope_filter — E(k) membership test over all points, emitting the
//      survivors as SoA coordinate lanes (x[], y[]).
//   2. bound_intervals — per envelope point, the sweep interval
//      [p.x − √(b² − dy²), p.x + √(b² − dy²)] (paper Eqs. 8–9) into
//      contiguous lb[]/ub[] lanes.
//   3. bucket_indices — per interval endpoint, the pixel bucket it lands in
//      (paper Eqs. 19–20, SLAM_BUCKET only).
//   4. row_sweep — the sweep itself: fold each pixel's endpoint runs into
//      the L/U SoA accumulators (core/sweep_state.h) and evaluate the
//      kernel's closed-form polynomial at the pixel.
//
// Both sweep methods feed row_sweep the same run-list shape: per pixel i,
// the endpoints in [offsets[i], offsets[i+1]) are applied before pixel i is
// evaluated. SLAM_BUCKET produces that directly from its counting-sort
// buckets; SLAM_SORT derives it from the sorted event arrays with one
// linear merge against the pixel coordinates. That is what lets all three
// methods (RAO delegates to the other two) share one dispatched kernel.
//
// The scalar backend is the reference: it mirrors the pre-SoA sweep
// arithmetic operation for operation. Vector backends replay the identical
// operation sequence in lanes — no FMA contraction, Knuth two-sum in place
// of the branched Neumaier step (both produce the exact rounding error of
// the addition, so they are interchangeable bit for bit) — and are held to
// the scalar path and the long-double oracle at 1e-9 by
// tests/simd/simd_equivalence_test.cc and fuzz/target_differential.cc.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "simd/dispatch.h"
#include "util/result.h"

namespace slam {

/// One side's endpoint runs for a row sweep, in SoA row-local coordinates.
/// Run i = [offsets[i], offsets[i + 1]) is applied before pixel i is
/// evaluated; `offsets` therefore has at least width + 1 entries and is
/// non-decreasing. Endpoints at or beyond offsets[width] are never applied
/// (SLAM_BUCKET parks beyond-the-last-pixel endpoints there).
struct EndpointRuns {
  const int32_t* offsets = nullptr;
  const double* px = nullptr;
  const double* py = nullptr;
};

/// Inputs of one row sweep. All coordinates are row-local (see
/// RowLocalOrigin): px/py/qx are pre-translated, and the query y is qy for
/// every pixel of the row (0.0 from the sweep methods; kept symbolic so
/// the backends stay testable on arbitrary frames).
struct RowSweepArgs {
  KernelType kernel = KernelType::kEpanechnikov;
  bool compensated = true;
  int width = 0;
  double bandwidth = 1.0;
  double weight = 1.0;
  double qy = 0.0;
  const double* qx = nullptr;  // length `width`
  EndpointRuns lower;
  EndpointRuns upper;
  double* out = nullptr;  // densities, length `width`
};

/// Reusable scratch for the two-pass vector backends (pass 1 snapshots the
/// per-pixel aggregate differences into interleaved lanes, pass 2 evaluates
/// the polynomial across pixels). The scalar backend never touches it.
struct RowSweepScratch {
  std::vector<double> lanes;

  /// Heap held, accounted against the memory budget by the sweep methods.
  size_t HeapBytes() const { return lanes.capacity() * sizeof(double); }
};

/// One backend's implementations of the four row passes. The function
/// pointers are never null in a table returned by GetSimdOps.
struct SimdOps {
  SimdLevel level = SimdLevel::kScalar;

  /// Writes the points of E(k) = {p : |k − p.y| <= bandwidth} into the SoA
  /// lanes ex/ey in input order and returns the survivor count. The caller
  /// sizes both lanes to points.size(): the vector backends compress whole
  /// registers to the output cursor, so up to one full vector width beyond
  /// the survivor count is scribbled (never past points.size()). A
  /// per-survivor `push_back` here was the single hottest instruction path
  /// of SLAM_BUCKET — the capacity check serializes an otherwise
  /// data-parallel scan over all n points every row.
  size_t (*envelope_filter)(std::span<const Point> points, double k,
                            double bandwidth, double* ex,
                            double* ey) = nullptr;

  /// lb[i] = ex[i] − √(max(b² − (k − ey[i])², 0)), ub[i] = ex[i] + √(...).
  void (*bound_intervals)(const double* ex, const double* ey, size_t n,
                          double k, double bandwidth, double* lb,
                          double* ub) = nullptr;

  /// lower_bucket[i] = LowerBucket(lb[i], xs), upper_bucket[i] =
  /// UpperBucket(ub[i], xs) (core/slam_bucket.h, Eqs. 19–20).
  void (*bucket_indices)(const double* lb, const double* ub, size_t n,
                         const GridAxis& xs, int32_t* lower_bucket,
                         int32_t* upper_bucket) = nullptr;

  /// The row sweep proper; see RowSweepArgs.
  void (*row_sweep)(const RowSweepArgs& args,
                    RowSweepScratch* scratch) = nullptr;
};

/// Backend tables. The vector getters return nullptr when the backend is
/// not compiled into this binary (arch-gated translation units); they do
/// NOT check CPU features — that is SimdLevelAvailable's job.
const SimdOps* GetScalarOps();
const SimdOps* GetAvx2Ops();
const SimdOps* GetNeonOps();

/// Resolves `level` (kAuto → best available) and returns its ops table;
/// InvalidArgument when a pinned level cannot run on this build/CPU.
Result<const SimdOps*> GetSimdOps(SimdLevel level);

}  // namespace slam
