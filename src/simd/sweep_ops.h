// The per-row sweep primitives behind SLAM_SORT / SLAM_BUCKET / RAO, as a
// table of function pointers selected once per compute call (dispatch.h).
//
// A row sweep decomposes into five data-parallel passes:
//   1. envelope_filter — E(k) membership test over all points, emitting the
//      survivors as SoA coordinate lanes (x[], y[]).
//   2. bound_intervals — per envelope point, the sweep interval
//      [p.x − √(b² − dy²), p.x + √(b² − dy²)] (paper Eqs. 8–9) into
//      contiguous lb[]/ub[] lanes.
//   3. bucket_indices — per interval endpoint, the pixel bucket it lands in
//      (paper Eqs. 19–20).
//   4. histogram_scatter — the pixel-binned counting sort: per-bucket
//      histograms of the endpoint bins, prefix-summed into per-pixel run
//      offsets, and the endpoint coordinates scattered (stably, in input
//      order) into row-local SoA lanes.
//   5. row_sweep — the sweep itself: fold each pixel's endpoint runs into
//      the L/U SoA accumulators (core/sweep_state.h) and evaluate the
//      kernel's closed-form polynomial at the pixel.
//
// Both sweep methods feed row_sweep the same run-list shape: per pixel i,
// the endpoints in [offsets[i], offsets[i+1]) are applied before pixel i is
// evaluated, and both now produce it with the same counting sort (passes
// 3 + 4): SLAM_SORT's per-row comparison sort is gone — per-pixel runs
// need no internal order (DESIGN.md §12), so an O(m + X) counting sort
// keyed on the pixel bin produces the identical run *sets* the old
// sort-then-merge produced in O(m log m). That is what lets all three
// methods (RAO delegates to the other two) share one dispatched kernel.
//
// The scalar backend is the reference: it mirrors the pre-SoA sweep
// arithmetic operation for operation. Vector backends replay the identical
// operation sequence in lanes — no FMA contraction, Knuth two-sum in place
// of the branched Neumaier step (both produce the exact rounding error of
// the addition, so they are interchangeable bit for bit) — and are held to
// the scalar path and the long-double oracle at 1e-9 by
// tests/simd/simd_equivalence_test.cc and fuzz/target_differential.cc.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "simd/dispatch.h"
#include "util/result.h"

namespace slam {

/// One side's endpoint runs for a row sweep, in SoA row-local coordinates.
/// Run i = [offsets[i], offsets[i + 1]) is applied before pixel i is
/// evaluated; `offsets` therefore has at least width + 1 entries and is
/// non-decreasing. Endpoints at or beyond offsets[width] are never applied
/// (SLAM_BUCKET parks beyond-the-last-pixel endpoints there).
struct EndpointRuns {
  const int32_t* offsets = nullptr;
  const double* px = nullptr;
  const double* py = nullptr;
};

/// Inputs of one row sweep. All coordinates are row-local (see
/// RowLocalOrigin): px/py/qx are pre-translated, and the query y is qy for
/// every pixel of the row (0.0 from the sweep methods; kept symbolic so
/// the backends stay testable on arbitrary frames).
struct RowSweepArgs {
  KernelType kernel = KernelType::kEpanechnikov;
  bool compensated = true;
  int width = 0;
  double bandwidth = 1.0;
  double weight = 1.0;
  double qy = 0.0;
  const double* qx = nullptr;  // length `width`
  EndpointRuns lower;
  EndpointRuns upper;
  double* out = nullptr;  // densities, length `width`
};

/// Inputs/outputs of the pixel-binned counting sort (pass 4). All pointers
/// are caller-sized: `n` endpoints per side with bucket indices in [0,
/// num_pixels] (bucket_indices' clamped range), offsets num_pixels + 2
/// entries, cursors num_pixels + 1, coordinate lanes n each. On return,
/// offsets[0] == 0, offsets is non-decreasing, offsets[num_pixels + 1] ==
/// n, and run i = [offsets[i], offsets[i + 1]) holds the endpoints with
/// bucket i in input order (stable) as row-local coordinates (global minus
/// origin). Bucket num_pixels is the park run the row sweep never applies.
struct HistogramScatterArgs {
  size_t n = 0;
  int num_pixels = 0;
  const int32_t* lower_idx = nullptr;
  const int32_t* upper_idx = nullptr;
  const double* ex = nullptr;  // global endpoint coordinates
  const double* ey = nullptr;
  double origin_x = 0.0;  // row-local frame origin (RowLocalOrigin)
  double origin_y = 0.0;
  int32_t* lower_offsets = nullptr;
  int32_t* upper_offsets = nullptr;
  int32_t* lower_cursor = nullptr;  // scratch for the scatter pass
  int32_t* upper_cursor = nullptr;
  double* lower_px = nullptr;
  double* lower_py = nullptr;
  double* upper_px = nullptr;
  double* upper_py = nullptr;
};

/// Reusable scratch for the two-pass vector backends (pass 1 snapshots the
/// per-pixel aggregate differences into interleaved lanes, pass 2 evaluates
/// the polynomial across pixels). The scalar backend never touches it.
struct RowSweepScratch {
  std::vector<double> lanes;

  /// Heap held, accounted against the memory budget by the sweep methods.
  size_t HeapBytes() const { return lanes.capacity() * sizeof(double); }
};

/// One backend's implementations of the four row passes. The function
/// pointers are never null in a table returned by GetSimdOps.
struct SimdOps {
  SimdLevel level = SimdLevel::kScalar;

  /// Writes the points of E(k) = {p : |k − p.y| <= bandwidth} into the SoA
  /// lanes ex/ey in input order and returns the survivor count. The caller
  /// sizes both lanes to points.size(): the vector backends compress whole
  /// registers to the output cursor, so up to one full vector width beyond
  /// the survivor count is scribbled (never past points.size()). A
  /// per-survivor `push_back` here was the single hottest instruction path
  /// of SLAM_BUCKET — the capacity check serializes an otherwise
  /// data-parallel scan over all n points every row.
  size_t (*envelope_filter)(std::span<const Point> points, double k,
                            double bandwidth, double* ex,
                            double* ey) = nullptr;

  /// lb[i] = ex[i] − √(max(b² − (k − ey[i])², 0)), ub[i] = ex[i] + √(...).
  void (*bound_intervals)(const double* ex, const double* ey, size_t n,
                          double k, double bandwidth, double* lb,
                          double* ub) = nullptr;

  /// lower_bucket[i] = LowerBucket(lb[i], xs), upper_bucket[i] =
  /// UpperBucket(ub[i], xs) (core/slam_bucket.h, Eqs. 19–20).
  void (*bucket_indices)(const double* lb, const double* ub, size_t n,
                         const GridAxis& xs, int32_t* lower_bucket,
                         int32_t* upper_bucket) = nullptr;

  /// The pixel-binned counting sort; see HistogramScatterArgs. Integer-only
  /// control flow plus an exact coordinate translation, so every backend
  /// produces bit-identical output (the vector backends vectorize the
  /// X-length prefix-sum pass; the count and scatter passes stay scalar —
  /// scattered increments have no conflict-free vector form before
  /// AVX-512 CD, and both passes are memory-bound anyway).
  void (*histogram_scatter)(const HistogramScatterArgs& args) = nullptr;

  /// The row sweep proper; see RowSweepArgs.
  void (*row_sweep)(const RowSweepArgs& args,
                    RowSweepScratch* scratch) = nullptr;
};

/// Backend tables. The vector getters return nullptr when the backend is
/// not compiled into this binary (arch-gated translation units); they do
/// NOT check CPU features — that is SimdLevelAvailable's job.
const SimdOps* GetScalarOps();
const SimdOps* GetAvx2Ops();
const SimdOps* GetNeonOps();

/// Resolves `level` (kAuto → best available) and returns its ops table;
/// InvalidArgument when a pinned level cannot run on this build/CPU.
Result<const SimdOps*> GetSimdOps(SimdLevel level);

}  // namespace slam
