// AVX2 backend: 4 doubles per operation. Compiled with -mavx2 (and
// -ffp-contract=off — see below) on x86 only; on other targets, or when the
// toolchain lacks AVX2 support, this TU degrades to a nullptr getter and
// dispatch.cc never selects the level.
//
// Bitwise-parity discipline (vs the scalar reference in
// sweep_ops_inline.h):
//  * every vector expression replays the scalar operation sequence lane
//    for lane — same association, same hoisted divisors (weight/b²
//    evaluates identically per pixel whether hoisted or not, since the
//    operands are loop-invariant);
//  * no FMA: -mfma is never passed and -ffp-contract=off stops the
//    compiler from contracting mul+add pairs, so each rounding matches the
//    scalar code (which the default build cannot contract either — no FMA
//    target);
//  * compensation uses Knuth's branchless two-sum, which computes the same
//    exact rounding error as the branched Neumaier step in kernel.h;
//  * clamps are written max(x, 0) (second operand returned on equality) so
//    ±0 results keep the scalar sign.
//
// Layout: pass 1 walks the endpoint runs keeping the entire L/U SoA state
// (core/sweep_state.h channel order) in registers — one __m256d per 4
// channels, 4 (Epanechnikov) or 12 (quartic) registers total — and
// snapshots the per-pixel channel differences into interleaved scratch
// lanes. Pass 2 re-reads the snapshots 4 pixels at a time, transposes
// 4×4, and evaluates the closed-form polynomial across pixels. The uniform
// kernel needs no per-endpoint arithmetic at all: its count equals the
// difference of the run offsets, evaluated 4 pixels per op.
#include "simd/sweep_ops.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

#include "simd/sweep_ops_inline.h"

namespace slam {

namespace {

/// Knuth two-sum: folds v into (sum, comp) exactly like NeumaierAdd.
inline void TwoSumAccumulate(__m256d& sum, __m256d& comp, __m256d v) {
  const __m256d t = _mm256_add_pd(sum, v);
  const __m256d bb = _mm256_sub_pd(t, sum);
  const __m256d err = _mm256_add_pd(
      _mm256_sub_pd(sum, _mm256_sub_pd(t, bb)), _mm256_sub_pd(v, bb));
  comp = _mm256_add_pd(comp, err);
  sum = t;
}

inline void Transpose4x4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                         __m256d& c0, __m256d& c1, __m256d& c2,
                         __m256d& c3) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

// ---------------------------------------------------------------------------
// envelope_filter
// ---------------------------------------------------------------------------

// Left-packing permutations for the compressed envelope store, indexed by
// the RAW movemask of the unpacked register (whose lanes are in point
// order 0,2,1,3): entry [mask][...] lists the 32-bit lane pairs of the
// surviving doubles in ascending *point* order, for
// _mm256_permutevar8x32_ps (AVX2 has no double compress; permuting the
// float view is the standard workaround). Folding the 0,2,1,3 -> 0,1,2,3
// reorder into the table saves two cross-lane permutes per iteration —
// shuffle-port throughput is what bounds this loop. Trailing slots are
// don't-cares (zero).
//
// Lane L of the unpacked register holds point {0,2,1,3}[L], so mask bit
// 0,1,2,3 is point 0,2,1,3; each table entry lists lane pairs (2L, 2L+1)
// of the set bits' lanes, ordered by point index.
alignas(32) constexpr int32_t kCompressLut[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},   // ----
    {0, 1, 0, 0, 0, 0, 0, 0},   // p0
    {2, 3, 0, 0, 0, 0, 0, 0},   // p2        (bit 1 = lane 1 = point 2)
    {0, 1, 2, 3, 0, 0, 0, 0},   // p0 p2
    {4, 5, 0, 0, 0, 0, 0, 0},   // p1        (bit 2 = lane 2 = point 1)
    {0, 1, 4, 5, 0, 0, 0, 0},   // p0 p1
    {4, 5, 2, 3, 0, 0, 0, 0},   // p1 p2  -> lanes 2, 1
    {0, 1, 4, 5, 2, 3, 0, 0},   // p0 p1 p2
    {6, 7, 0, 0, 0, 0, 0, 0},   // p3
    {0, 1, 6, 7, 0, 0, 0, 0},   // p0 p3
    {2, 3, 6, 7, 0, 0, 0, 0},   // p2 p3
    {0, 1, 2, 3, 6, 7, 0, 0},   // p0 p2 p3
    {4, 5, 6, 7, 0, 0, 0, 0},   // p1 p3
    {0, 1, 4, 5, 6, 7, 0, 0},   // p0 p1 p3
    {4, 5, 2, 3, 6, 7, 0, 0},   // p1 p2 p3
    {0, 1, 4, 5, 2, 3, 6, 7}};  // all -> lanes 0, 2, 1, 3

size_t EnvelopeFilter(std::span<const Point> points, double k,
                      double bandwidth, double* ex, double* ey) {
  const size_t n = points.size();
  const double* base = &points.data()->x;  // Point is two packed doubles
  const __m256d kv = _mm256_set1_pd(k);
  const __m256d bv = _mm256_set1_pd(bandwidth);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  size_t m = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // (x0 y0 x1 y1) and (x2 y2 x3 y3) -> ys in point order 0,2,1,3; the
    // membership test runs on that raw lane order, and the compress LUT
    // restores point order, so nothing but the two unpacks competes for
    // the shuffle port until a survivor actually needs storing.
    const __m256d p01 = _mm256_loadu_pd(base + 2 * i);
    const __m256d p23 = _mm256_loadu_pd(base + 2 * i + 4);
    const __m256d ys = _mm256_unpackhi_pd(p01, p23);
    const __m256d ady = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(kv, ys));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(ady, bv, _CMP_LE_OQ));
    // No skip branch: with scattered survivors a "skip empty packs" branch
    // is data-dependent and mispredicts its way to ~4x the loop latency.
    // An unconditional compress store of a mask-0 pack writes 4 don't-care
    // lanes at the cursor and advances it by 0 — harmless, branch-free.
    const __m256d xs = _mm256_unpacklo_pd(p01, p23);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompressLut[mask]));
    // Full-register stores at the cursor: the survivors land at ex[m..),
    // the don't-care lanes are overwritten by the next store or fall in
    // [m, n) scratch the caller sized for exactly this purpose.
    _mm256_storeu_pd(
        ex + m, _mm256_castps_pd(_mm256_permutevar8x32_ps(
                    _mm256_castpd_ps(xs), perm)));
    _mm256_storeu_pd(
        ey + m, _mm256_castps_pd(_mm256_permutevar8x32_ps(
                    _mm256_castpd_ps(ys), perm)));
    m += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    if (std::abs(k - points[i].y) <= bandwidth) {
      ex[m] = points[i].x;
      ey[m] = points[i].y;
      ++m;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// bound_intervals
// ---------------------------------------------------------------------------

void BoundIntervals(const double* ex, const double* ey, size_t n, double k,
                    double bandwidth, double* lb, double* ub) {
  const double b2 = bandwidth * bandwidth;
  const __m256d kv = _mm256_set1_pd(k);
  const __m256d b2v = _mm256_set1_pd(b2);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dy = _mm256_sub_pd(kv, _mm256_loadu_pd(ey + i));
    // max(rem, 0): second operand wins ties, matching std::max(rem, 0.0)'s
    // sign only for rem > -0 — but sqrt(±0) == ±0 and ex ± 0 == ex either
    // way, so lb/ub match the scalar values exactly.
    const __m256d rem =
        _mm256_max_pd(_mm256_sub_pd(b2v, _mm256_mul_pd(dy, dy)), zero);
    const __m256d hw = _mm256_sqrt_pd(rem);
    const __m256d x = _mm256_loadu_pd(ex + i);
    _mm256_storeu_pd(lb + i, _mm256_sub_pd(x, hw));
    _mm256_storeu_pd(ub + i, _mm256_add_pd(x, hw));
  }
  simd_internal::BoundIntervalsScalarRange(ex, ey, i, n, k, bandwidth, lb,
                                           ub);
}

// ---------------------------------------------------------------------------
// bucket_indices
// ---------------------------------------------------------------------------

void BucketIndices(const double* lb, const double* ub, size_t n,
                   const GridAxis& xs, int32_t* lower_bucket,
                   int32_t* upper_bucket) {
  const __m256d origin = _mm256_set1_pd(xs.origin);
  const __m256d gap = _mm256_set1_pd(xs.gap);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d count = _mm256_set1_pd(static_cast<double>(xs.count));
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // LowerBucket: ceil((v - x0) / gap), clamped to [0, X] (Eq. 19).
    __m256d lo = _mm256_ceil_pd(_mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(lb + i), origin), gap));
    lo = _mm256_min_pd(_mm256_max_pd(lo, zero), count);
    // UpperBucket: floor((v - x0) / gap) + 1, same clamp (Eq. 20).
    __m256d up = _mm256_add_pd(
        _mm256_floor_pd(_mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(ub + i), origin), gap)),
        one);
    up = _mm256_min_pd(_mm256_max_pd(up, zero), count);
    // Integral and within [0, X <= 2^20] by the clamps: conversion exact.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lower_bucket + i),
                     _mm256_cvttpd_epi32(lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(upper_bucket + i),
                     _mm256_cvttpd_epi32(up));
  }
  simd_internal::BucketIndicesScalarRange(lb, ub, i, n, xs, lower_bucket,
                                          upper_bucket);
}

// ---------------------------------------------------------------------------
// histogram_scatter
// ---------------------------------------------------------------------------

/// Inclusive prefix sum of 8 int32 lanes: two within-128-bit-lane shifted
/// adds, then the low lane's total carried into the high lane. Integer adds
/// are associative, so regrouping is exact — no parity discipline needed.
inline __m256i PrefixSum8(__m256i v) {
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
  const __m256i lane_totals =
      _mm256_shuffle_epi32(v, _MM_SHUFFLE(3, 3, 3, 3));
  // imm 0x08: low half zeroed, high half = src low half — the low lane's
  // running total positioned under the high lane only.
  const __m256i carry_up =
      _mm256_permute2x128_si256(lane_totals, lane_totals, 0x08);
  return _mm256_add_epi32(v, carry_up);
}

void HistogramScatter(const HistogramScatterArgs& a) {
  const size_t bins = static_cast<size_t>(a.num_pixels) + 2;
  simd_internal::HistogramCountScalar(a);
  // The X-length pass, 8 bins per op with a broadcast running carry. The
  // count and scatter passes stay scalar (see the op comment in
  // sweep_ops.h).
  const __m256i splat_last = _mm256_set1_epi32(7);
  for (int32_t* offsets : {a.lower_offsets, a.upper_offsets}) {
    __m256i carry = _mm256_setzero_si256();
    size_t b = 0;
    for (; b + 8 <= bins; b += 8) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(offsets + b));
      v = _mm256_add_epi32(PrefixSum8(v), carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(offsets + b), v);
      carry = _mm256_permutevar8x32_epi32(v, splat_last);
    }
    int32_t run = (b > 0) ? offsets[b - 1] : 0;
    for (; b < bins; ++b) {
      run += offsets[b];
      offsets[b] = run;
    }
  }
  simd_internal::HistogramScatterEndpointsScalar(a);
}

// ---------------------------------------------------------------------------
// row_sweep
// ---------------------------------------------------------------------------

/// Uniform kernel: count at pixel i is exactly the difference of the run
/// offsets (the scalar path's repeated +1.0 adds are exact integers, and
/// the count lane's compensation terms are identically zero).
void RowSweepUniform(const RowSweepArgs& a) {
  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const double wob = a.weight / prof.bandwidth;
  const __m256d wobv = _mm256_set1_pd(wob);
  int ix = 0;
  for (; ix + 4 <= a.width; ix += 4) {
    const __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a.lower.offsets + ix + 1));
    const __m128i up = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a.upper.offsets + ix + 1));
    const __m256d cnt = _mm256_cvtepi32_pd(_mm_sub_epi32(lo, up));
    _mm256_storeu_pd(a.out + ix, _mm256_mul_pd(wobv, cnt));
  }
  for (; ix < a.width; ++ix) {
    a.out[ix] = wob * static_cast<double>(a.lower.offsets[ix + 1] -
                                          a.upper.offsets[ix + 1]);
  }
}

/// Epanechnikov: 4 live channels = one register per accumulator component.
template <bool kCompensated>
void RowSweepEpan(const RowSweepArgs& a, RowSweepScratch* scratch) {
  scratch->lanes.resize(static_cast<size_t>(a.width) * 4);
  double* lanes = scratch->lanes.data();
  const __m256d zero = _mm256_setzero_pd();
  __m256d ls = zero, lc = zero, us = zero, uc = zero;
  const auto accumulate = [](__m256d& sum, __m256d& comp,
                             const EndpointRuns& runs, int32_t begin,
                             int32_t end) {
    for (int32_t i = begin; i < end; ++i) {
      const double px = runs.px[i];
      const double py = runs.py[i];
      const double s = px * px + py * py;
      const __m256d v = _mm256_set_pd(s, py, px, 1.0);
      if constexpr (kCompensated) {
        TwoSumAccumulate(sum, comp, v);
      } else {
        sum = _mm256_add_pd(sum, v);
      }
    }
  };
  for (int ix = 0; ix < a.width; ++ix) {
    accumulate(ls, lc, a.lower, a.lower.offsets[ix],
               a.lower.offsets[ix + 1]);
    accumulate(us, uc, a.upper, a.upper.offsets[ix],
               a.upper.offsets[ix + 1]);
    __m256d d = _mm256_sub_pd(ls, us);
    if constexpr (kCompensated) {
      d = _mm256_add_pd(d, _mm256_sub_pd(lc, uc));
    }
    _mm256_storeu_pd(lanes + static_cast<size_t>(ix) * 4, d);
  }

  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const __m256d qyv = _mm256_set1_pd(a.qy);
  const __m256d wv = _mm256_set1_pd(a.weight);
  const __m256d wob2 = _mm256_set1_pd(a.weight / prof.b2);
  const __m256d two = _mm256_set1_pd(2.0);
  int ix = 0;
  for (; ix + 4 <= a.width; ix += 4) {
    const double* r = lanes + static_cast<size_t>(ix) * 4;
    __m256d cnt, ax, ay, sq;
    Transpose4x4(_mm256_loadu_pd(r), _mm256_loadu_pd(r + 4),
                 _mm256_loadu_pd(r + 8), _mm256_loadu_pd(r + 12), cnt, ax,
                 ay, sq);
    const __m256d qx = _mm256_loadu_pd(a.qx + ix);
    // u = ||q||², dot = q·A, F = w|R| − (w/b²)(|R|u − 2 dot + S) (Eq. 5).
    const __m256d u =
        _mm256_add_pd(_mm256_mul_pd(qx, qx), _mm256_mul_pd(qyv, qyv));
    const __m256d dot =
        _mm256_add_pd(_mm256_mul_pd(qx, ax), _mm256_mul_pd(qyv, ay));
    const __m256d inner = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(cnt, u), _mm256_mul_pd(two, dot)), sq);
    const __m256d f =
        _mm256_sub_pd(_mm256_mul_pd(wv, cnt), _mm256_mul_pd(wob2, inner));
    _mm256_storeu_pd(a.out + ix, _mm256_max_pd(f, zero));
  }
  for (; ix < a.width; ++ix) {
    double d[kSweepChannelsPadded] = {};
    const double* r = lanes + static_cast<size_t>(ix) * 4;
    for (int ch = 0; ch < 4; ++ch) d[ch] = r[ch];
    a.out[ix] =
        DensityFromAggregates(a.kernel, Point{a.qx[ix], a.qy},
                              AggregatesFromLanes(d), a.bandwidth, a.weight);
  }
}

/// Quartic: 10 live channels padded to 12 = three registers per component.
template <bool kCompensated>
void RowSweepQuartic(const RowSweepArgs& a, RowSweepScratch* scratch) {
  scratch->lanes.resize(static_cast<size_t>(a.width) * 12);
  double* lanes = scratch->lanes.data();
  const __m256d zero = _mm256_setzero_pd();
  __m256d ls0 = zero, ls1 = zero, ls2 = zero;
  __m256d lc0 = zero, lc1 = zero, lc2 = zero;
  __m256d us0 = zero, us1 = zero, us2 = zero;
  __m256d uc0 = zero, uc1 = zero, uc2 = zero;
  const auto accumulate = [](__m256d& s0, __m256d& s1, __m256d& s2,
                             __m256d& c0, __m256d& c1, __m256d& c2,
                             const EndpointRuns& runs, int32_t begin,
                             int32_t end) {
    for (int32_t i = begin; i < end; ++i) {
      const double px = runs.px[i];
      const double py = runs.py[i];
      const double s = px * px + py * py;
      // Channel order (core/sweep_state.h): count Ax Ay S | Cx Cy Q Mxx |
      // Mxy Myy 0 0 — same expressions as SweepChannelValues.
      const __m256d v0 = _mm256_set_pd(s, py, px, 1.0);
      const __m256d v1 = _mm256_set_pd(px * px, s * s, py * s, px * s);
      const __m256d v2 = _mm256_set_pd(0.0, 0.0, py * py, px * py);
      if constexpr (kCompensated) {
        TwoSumAccumulate(s0, c0, v0);
        TwoSumAccumulate(s1, c1, v1);
        TwoSumAccumulate(s2, c2, v2);
      } else {
        s0 = _mm256_add_pd(s0, v0);
        s1 = _mm256_add_pd(s1, v1);
        s2 = _mm256_add_pd(s2, v2);
      }
    }
  };
  for (int ix = 0; ix < a.width; ++ix) {
    accumulate(ls0, ls1, ls2, lc0, lc1, lc2, a.lower, a.lower.offsets[ix],
               a.lower.offsets[ix + 1]);
    accumulate(us0, us1, us2, uc0, uc1, uc2, a.upper, a.upper.offsets[ix],
               a.upper.offsets[ix + 1]);
    __m256d d0 = _mm256_sub_pd(ls0, us0);
    __m256d d1 = _mm256_sub_pd(ls1, us1);
    __m256d d2 = _mm256_sub_pd(ls2, us2);
    if constexpr (kCompensated) {
      d0 = _mm256_add_pd(d0, _mm256_sub_pd(lc0, uc0));
      d1 = _mm256_add_pd(d1, _mm256_sub_pd(lc1, uc1));
      d2 = _mm256_add_pd(d2, _mm256_sub_pd(lc2, uc2));
    }
    double* row = lanes + static_cast<size_t>(ix) * 12;
    _mm256_storeu_pd(row, d0);
    _mm256_storeu_pd(row + 4, d1);
    _mm256_storeu_pd(row + 8, d2);
  }

  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const __m256d qyv = _mm256_set1_pd(a.qy);
  const __m256d wv = _mm256_set1_pd(a.weight);
  const __m256d c1v = _mm256_set1_pd(2.0 / prof.b2);
  const __m256d b4v = _mm256_set1_pd(prof.b2 * prof.b2);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d four = _mm256_set1_pd(4.0);
  int ix = 0;
  for (; ix + 4 <= a.width; ix += 4) {
    const double* r0 = lanes + static_cast<size_t>(ix) * 12;
    const double* r1 = r0 + 12;
    const double* r2 = r0 + 24;
    const double* r3 = r0 + 36;
    __m256d cnt, ax, ay, sq;
    Transpose4x4(_mm256_loadu_pd(r0), _mm256_loadu_pd(r1),
                 _mm256_loadu_pd(r2), _mm256_loadu_pd(r3), cnt, ax, ay, sq);
    __m256d cx, cy, qd, mxx;
    Transpose4x4(_mm256_loadu_pd(r0 + 4), _mm256_loadu_pd(r1 + 4),
                 _mm256_loadu_pd(r2 + 4), _mm256_loadu_pd(r3 + 4), cx, cy,
                 qd, mxx);
    __m256d mxy, myy, pad0, pad1;
    Transpose4x4(_mm256_loadu_pd(r0 + 8), _mm256_loadu_pd(r1 + 8),
                 _mm256_loadu_pd(r2 + 8), _mm256_loadu_pd(r3 + 8), mxy, myy,
                 pad0, pad1);
    (void)pad0;
    (void)pad1;
    const __m256d qx = _mm256_loadu_pd(a.qx + ix);
    const __m256d u =
        _mm256_add_pd(_mm256_mul_pd(qx, qx), _mm256_mul_pd(qyv, qyv));
    const __m256d dot =
        _mm256_add_pd(_mm256_mul_pd(qx, ax), _mm256_mul_pd(qyv, ay));
    // Σd² = |R|u − 2 qᵀA + S
    const __m256d sum_d2 = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(cnt, u), _mm256_mul_pd(two, dot)), sq);
    // qᵀM q, evaluated exactly as the scalar form in kernel.cc.
    const __m256d mt_x =
        _mm256_add_pd(_mm256_mul_pd(mxx, qx), _mm256_mul_pd(mxy, qyv));
    const __m256d mt_y =
        _mm256_add_pd(_mm256_mul_pd(mxy, qx), _mm256_mul_pd(myy, qyv));
    const __m256d qmq =
        _mm256_add_pd(_mm256_mul_pd(qx, mt_x), _mm256_mul_pd(qyv, mt_y));
    const __m256d dot_c =
        _mm256_add_pd(_mm256_mul_pd(qx, cx), _mm256_mul_pd(qyv, cy));
    // Σd⁴ = |R|u² + 4qᵀMq + Q − 4u qᵀA + 2u S − 4 qᵀC, in scalar order.
    __m256d sum_d4 = _mm256_mul_pd(_mm256_mul_pd(cnt, u), u);
    sum_d4 = _mm256_add_pd(sum_d4, _mm256_mul_pd(four, qmq));
    sum_d4 = _mm256_add_pd(sum_d4, qd);
    sum_d4 = _mm256_sub_pd(sum_d4,
                           _mm256_mul_pd(_mm256_mul_pd(four, u), dot));
    sum_d4 =
        _mm256_add_pd(sum_d4, _mm256_mul_pd(_mm256_mul_pd(two, u), sq));
    sum_d4 = _mm256_sub_pd(sum_d4, _mm256_mul_pd(four, dot_c));
    // F = w (|R| − (2/b²) Σd² + Σd⁴/b⁴)
    const __m256d inner =
        _mm256_add_pd(_mm256_sub_pd(cnt, _mm256_mul_pd(c1v, sum_d2)),
                      _mm256_div_pd(sum_d4, b4v));
    _mm256_storeu_pd(a.out + ix,
                     _mm256_max_pd(_mm256_mul_pd(wv, inner), zero));
  }
  for (; ix < a.width; ++ix) {
    double d[kSweepChannelsPadded] = {};
    const double* r = lanes + static_cast<size_t>(ix) * 12;
    for (int ch = 0; ch < kSweepChannelCount; ++ch) d[ch] = r[ch];
    a.out[ix] =
        DensityFromAggregates(a.kernel, Point{a.qx[ix], a.qy},
                              AggregatesFromLanes(d), a.bandwidth, a.weight);
  }
}

void RowSweep(const RowSweepArgs& a, RowSweepScratch* scratch) {
  switch (SweepChannels(a.kernel)) {
    case 1:
      RowSweepUniform(a);
      return;
    case 4:
      if (a.compensated) {
        RowSweepEpan<true>(a, scratch);
      } else {
        RowSweepEpan<false>(a, scratch);
      }
      return;
    case kSweepChannelCount:
      if (a.compensated) {
        RowSweepQuartic<true>(a, scratch);
      } else {
        RowSweepQuartic<false>(a, scratch);
      }
      return;
    default:
      simd_internal::RowSweepScalar(a, scratch);  // unreachable (Gaussian)
      return;
  }
}

constexpr SimdOps kAvx2Ops = {
    SimdLevel::kAvx2, &EnvelopeFilter,   &BoundIntervals,
    &BucketIndices,   &HistogramScatter, &RowSweep,
};

}  // namespace

const SimdOps* GetAvx2Ops() { return &kAvx2Ops; }

}  // namespace slam

#else  // !defined(__AVX2__)

namespace slam {

const SimdOps* GetAvx2Ops() { return nullptr; }

}  // namespace slam

#endif
