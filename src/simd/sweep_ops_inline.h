// Internal to src/simd/: the scalar reference implementations of the four
// row passes, shared between the scalar backend (which uses them whole) and
// the vector backends (which use them for remainder tails and rare slow
// paths). Header-only so each backend translation unit compiles them with
// its own (contraction-free) flag set.
//
// Everything here mirrors the pre-SoA sweep arithmetic operation for
// operation — see the bitwise-parity notes in sweep_ops.h. Changing an
// expression here changes the reference the vector paths and the oracle
// tests are held against; don't, unless the AoS originals in
// core/sweep_state.h / core/bounds.cc change too.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/slam_bucket.h"
#include "core/sweep_state.h"
#include "geom/point.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "simd/sweep_ops.h"

namespace slam::simd_internal {

inline size_t EnvelopeFilterScalar(std::span<const Point> points, double k,
                                   double bandwidth, double* ex, double* ey) {
  size_t m = 0;
  for (const Point& p : points) {
    if (std::abs(k - p.y) <= bandwidth) {
      ex[m] = p.x;
      ey[m] = p.y;
      ++m;
    }
  }
  return m;
}

/// Interval computation over the index range [begin, end) — the vector
/// backends call this for their tail elements.
inline void BoundIntervalsScalarRange(const double* ex, const double* ey,
                                      size_t begin, size_t end, double k,
                                      double bandwidth, double* lb,
                                      double* ub) {
  const double b2 = bandwidth * bandwidth;
  for (size_t i = begin; i < end; ++i) {
    const double dy = k - ey[i];
    const double rem = b2 - dy * dy;
    // max() guards the tiny negative remainder FP can produce at |dy| == b
    // (same guard as core/bounds.cc).
    const double half_width = std::sqrt(std::max(rem, 0.0));
    lb[i] = ex[i] - half_width;
    ub[i] = ex[i] + half_width;
  }
}

inline void BucketIndicesScalarRange(const double* lb, const double* ub,
                                     size_t begin, size_t end,
                                     const GridAxis& xs,
                                     int32_t* lower_bucket,
                                     int32_t* upper_bucket) {
  for (size_t i = begin; i < end; ++i) {
    lower_bucket[i] = LowerBucket(WorldX(lb[i]), xs);
    upper_bucket[i] = UpperBucket(WorldX(ub[i]), xs);
  }
}

// The reference counting sort (sweep_ops.h pass 4) in three passes, all
// exact integer/translation work: histogram the bucket indices (shifted by
// one for the exclusive scan), prefix-sum into the run offsets, then
// scatter the endpoint coordinates — translated into the row-local frame —
// through per-bucket cursors. The scatter preserves input order within a
// bucket (stable), which is all the run-order-irrelevance invariant
// (DESIGN.md §12) asks. Split into pieces so the vector backends can reuse
// the count/scatter passes around their own prefix sums.

/// Pass 1: zero both histograms and count each endpoint into the bin one
/// past its bucket (exclusive-scan shift).
inline void HistogramCountScalar(const HistogramScatterArgs& a) {
  const size_t bins = static_cast<size_t>(a.num_pixels) + 2;
  std::fill(a.lower_offsets, a.lower_offsets + bins, 0);
  std::fill(a.upper_offsets, a.upper_offsets + bins, 0);
  for (size_t i = 0; i < a.n; ++i) {
    // Through size_t: the bucket can legitimately be X itself, and X + 1
    // in `int` is UB at X = INT_MAX.
    ++a.lower_offsets[static_cast<size_t>(a.lower_idx[i]) + 1];
    ++a.upper_offsets[static_cast<size_t>(a.upper_idx[i]) + 1];
  }
}

/// Pass 2: in-place inclusive prefix sum over one histogram.
inline void HistogramPrefixSumScalar(int32_t* offsets, size_t bins) {
  for (size_t b = 1; b < bins; ++b) offsets[b] += offsets[b - 1];
}

/// Pass 3: scatter through per-bucket cursors seeded from the offsets.
inline void HistogramScatterEndpointsScalar(const HistogramScatterArgs& a) {
  const size_t bins = static_cast<size_t>(a.num_pixels) + 2;
  std::copy(a.lower_offsets, a.lower_offsets + bins - 1, a.lower_cursor);
  std::copy(a.upper_offsets, a.upper_offsets + bins - 1, a.upper_cursor);
  for (size_t i = 0; i < a.n; ++i) {
    const size_t lo = static_cast<size_t>(
        a.lower_cursor[static_cast<size_t>(a.lower_idx[i])]++);
    const size_t up = static_cast<size_t>(
        a.upper_cursor[static_cast<size_t>(a.upper_idx[i])]++);
    a.lower_px[lo] = a.ex[i] - a.origin_x;
    a.lower_py[lo] = a.ey[i] - a.origin_y;
    a.upper_px[up] = a.ex[i] - a.origin_x;
    a.upper_py[up] = a.ey[i] - a.origin_y;
  }
}

inline void HistogramScatterScalar(const HistogramScatterArgs& a) {
  const size_t bins = static_cast<size_t>(a.num_pixels) + 2;
  HistogramCountScalar(a);
  HistogramPrefixSumScalar(a.lower_offsets, bins);
  HistogramPrefixSumScalar(a.upper_offsets, bins);
  HistogramScatterEndpointsScalar(a);
}

/// The reference row sweep: SoA accumulators, one pixel at a time.
template <bool kCompensated>
void RowSweepScalarImpl(const RowSweepArgs& a) {
  const int channels = SweepChannels(a.kernel);
  SoaAccumulator lower;
  SoaAccumulator upper;
  double d[kSweepChannelsPadded] = {};
  for (int ix = 0; ix < a.width; ++ix) {
    for (int32_t i = a.lower.offsets[ix]; i < a.lower.offsets[ix + 1]; ++i) {
      lower.Add<kCompensated>(a.lower.px[i], a.lower.py[i], channels);
    }
    for (int32_t i = a.upper.offsets[ix]; i < a.upper.offsets[ix + 1]; ++i) {
      upper.Add<kCompensated>(a.upper.px[i], a.upper.py[i], channels);
    }
    SoaDifference<kCompensated>(lower, upper, channels, d);
    a.out[ix] =
        DensityFromAggregates(a.kernel, Point{a.qx[ix], a.qy},
                              AggregatesFromLanes(d), a.bandwidth, a.weight);
  }
}

inline void RowSweepScalar(const RowSweepArgs& a, RowSweepScratch* /*s*/) {
  if (a.compensated) {
    RowSweepScalarImpl<true>(a);
  } else {
    RowSweepScalarImpl<false>(a);
  }
}

}  // namespace slam::simd_internal
