// AArch64 NEON backend: 2 doubles per operation. Same structure and the
// same bitwise-parity discipline as the AVX2 backend (see
// sweep_ops_avx2.cc): scalar operation order replayed in lanes, Knuth
// two-sum for compensation, no FMA contraction (-ffp-contract=off; NEON
// fused ops are never emitted from these explicit intrinsics).
//
// The running L/U state lives in the SoaAccumulator arrays and is updated
// with 2-wide channel vectors — simpler than the AVX2 register-resident
// scheme, chosen because this backend favors being obviously correct on
// hardware the CI fleet may not cover; the equivalence tests exercise it
// whenever they run on AArch64.
#include "simd/sweep_ops.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "simd/sweep_ops_inline.h"

namespace slam {

namespace {

inline void TwoSumAccumulate(float64x2_t& sum, float64x2_t& comp,
                             float64x2_t v) {
  const float64x2_t t = vaddq_f64(sum, v);
  const float64x2_t bb = vsubq_f64(t, sum);
  const float64x2_t err = vaddq_f64(vsubq_f64(sum, vsubq_f64(t, bb)),
                                    vsubq_f64(v, bb));
  comp = vaddq_f64(comp, err);
  sum = t;
}

/// {r0[ch], r1[ch]} — channel gather across two pixel snapshots.
inline float64x2_t Gather2(const double* r0, const double* r1, int ch) {
  return vsetq_lane_f64(r1[ch], vdupq_n_f64(r0[ch]), 1);
}

size_t EnvelopeFilter(std::span<const Point> points, double k,
                      double bandwidth, double* ex, double* ey) {
  const size_t n = points.size();
  const float64x2_t kv = vdupq_n_f64(k);
  const float64x2_t bv = vdupq_n_f64(bandwidth);
  size_t m = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2x2_t p = vld2q_f64(&points[i].x);  // deinterleaved x, y
    const float64x2_t ady = vabsq_f64(vsubq_f64(kv, p.val[1]));
    const uint64x2_t mask = vcleq_f64(ady, bv);
    // Branch-free cursor advance: always store the lane at the cursor,
    // bump only when it survived (never writes past n; the caller sizes
    // ex/ey to points.size()).
    ex[m] = vgetq_lane_f64(p.val[0], 0);
    ey[m] = vgetq_lane_f64(p.val[1], 0);
    m += vgetq_lane_u64(mask, 0) & 1;
    ex[m] = vgetq_lane_f64(p.val[0], 1);
    ey[m] = vgetq_lane_f64(p.val[1], 1);
    m += vgetq_lane_u64(mask, 1) & 1;
  }
  for (; i < n; ++i) {
    if (std::abs(k - points[i].y) <= bandwidth) {
      ex[m] = points[i].x;
      ey[m] = points[i].y;
      ++m;
    }
  }
  return m;
}

void BoundIntervals(const double* ex, const double* ey, size_t n, double k,
                    double bandwidth, double* lb, double* ub) {
  const double b2 = bandwidth * bandwidth;
  const float64x2_t kv = vdupq_n_f64(k);
  const float64x2_t b2v = vdupq_n_f64(b2);
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dy = vsubq_f64(kv, vld1q_f64(ey + i));
    const float64x2_t rem =
        vmaxq_f64(vsubq_f64(b2v, vmulq_f64(dy, dy)), zero);
    const float64x2_t hw = vsqrtq_f64(rem);
    const float64x2_t x = vld1q_f64(ex + i);
    vst1q_f64(lb + i, vsubq_f64(x, hw));
    vst1q_f64(ub + i, vaddq_f64(x, hw));
  }
  simd_internal::BoundIntervalsScalarRange(ex, ey, i, n, k, bandwidth, lb,
                                           ub);
}

void BucketIndices(const double* lb, const double* ub, size_t n,
                   const GridAxis& xs, int32_t* lower_bucket,
                   int32_t* upper_bucket) {
  const float64x2_t origin = vdupq_n_f64(xs.origin);
  const float64x2_t gap = vdupq_n_f64(xs.gap);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t count = vdupq_n_f64(static_cast<double>(xs.count));
  const float64x2_t one = vdupq_n_f64(1.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t lo = vrndpq_f64(
        vdivq_f64(vsubq_f64(vld1q_f64(lb + i), origin), gap));
    lo = vminq_f64(vmaxq_f64(lo, zero), count);
    float64x2_t up = vaddq_f64(
        vrndmq_f64(vdivq_f64(vsubq_f64(vld1q_f64(ub + i), origin), gap)),
        one);
    up = vminq_f64(vmaxq_f64(up, zero), count);
    vst1_s32(lower_bucket + i, vmovn_s64(vcvtq_s64_f64(lo)));
    vst1_s32(upper_bucket + i, vmovn_s64(vcvtq_s64_f64(up)));
  }
  simd_internal::BucketIndicesScalarRange(lb, ub, i, n, xs, lower_bucket,
                                          upper_bucket);
}

/// Inclusive prefix sum of 4 int32 lanes via two zero-filled vext shifted
/// adds. Integer adds are associative, so regrouping is exact.
inline int32x4_t PrefixSum4(int32x4_t v) {
  const int32x4_t zero = vdupq_n_s32(0);
  v = vaddq_s32(v, vextq_s32(zero, v, 3));
  v = vaddq_s32(v, vextq_s32(zero, v, 2));
  return v;
}

void HistogramScatter(const HistogramScatterArgs& a) {
  const size_t bins = static_cast<size_t>(a.num_pixels) + 2;
  simd_internal::HistogramCountScalar(a);
  // The X-length pass, 4 bins per op with a broadcast running carry. The
  // count and scatter passes stay scalar (see the op comment in
  // sweep_ops.h).
  for (int32_t* offsets : {a.lower_offsets, a.upper_offsets}) {
    int32x4_t carry = vdupq_n_s32(0);
    size_t b = 0;
    for (; b + 4 <= bins; b += 4) {
      int32x4_t v = vaddq_s32(PrefixSum4(vld1q_s32(offsets + b)), carry);
      vst1q_s32(offsets + b, v);
      carry = vdupq_laneq_s32(v, 3);
    }
    int32_t run = (b > 0) ? offsets[b - 1] : 0;
    for (; b < bins; ++b) {
      run += offsets[b];
      offsets[b] = run;
    }
  }
  simd_internal::HistogramScatterEndpointsScalar(a);
}

void RowSweepUniform(const RowSweepArgs& a) {
  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const double wob = a.weight / prof.bandwidth;
  const float64x2_t wobv = vdupq_n_f64(wob);
  int ix = 0;
  for (; ix + 2 <= a.width; ix += 2) {
    const int32x2_t lo = vld1_s32(a.lower.offsets + ix + 1);
    const int32x2_t up = vld1_s32(a.upper.offsets + ix + 1);
    const float64x2_t cnt = vcvtq_f64_s64(vmovl_s32(vsub_s32(lo, up)));
    vst1q_f64(a.out + ix, vmulq_f64(wobv, cnt));
  }
  for (; ix < a.width; ++ix) {
    a.out[ix] = wob * static_cast<double>(a.lower.offsets[ix + 1] -
                                          a.upper.offsets[ix + 1]);
  }
}

/// Pass 1 shared by the Epanechnikov and quartic paths: accumulate with
/// 2-wide channel vectors over the SoA lane arrays, snapshotting D = L − U
/// per pixel into `lanes` (stride `padded`).
template <bool kCompensated>
void SnapshotPass(const RowSweepArgs& a, int padded, double* lanes) {
  SoaAccumulator lower;
  SoaAccumulator upper;
  const auto accumulate = [padded](SoaAccumulator& acc,
                                   const EndpointRuns& runs, int32_t begin,
                                   int32_t end) {
    for (int32_t i = begin; i < end; ++i) {
      double v[kSweepChannelsPadded];
      SweepChannelValues(runs.px[i], runs.py[i], v);
      for (int ch = 0; ch < padded; ch += 2) {
        float64x2_t sum = vld1q_f64(acc.sums + ch);
        const float64x2_t vv = vld1q_f64(v + ch);
        if constexpr (kCompensated) {
          float64x2_t comp = vld1q_f64(acc.comps + ch);
          TwoSumAccumulate(sum, comp, vv);
          vst1q_f64(acc.comps + ch, comp);
        } else {
          sum = vaddq_f64(sum, vv);
        }
        vst1q_f64(acc.sums + ch, sum);
      }
    }
  };
  for (int ix = 0; ix < a.width; ++ix) {
    accumulate(lower, a.lower, a.lower.offsets[ix], a.lower.offsets[ix + 1]);
    accumulate(upper, a.upper, a.upper.offsets[ix], a.upper.offsets[ix + 1]);
    double* row = lanes + static_cast<size_t>(ix) * padded;
    for (int ch = 0; ch < padded; ch += 2) {
      float64x2_t d = vsubq_f64(vld1q_f64(lower.sums + ch),
                                vld1q_f64(upper.sums + ch));
      if constexpr (kCompensated) {
        d = vaddq_f64(d, vsubq_f64(vld1q_f64(lower.comps + ch),
                                   vld1q_f64(upper.comps + ch)));
      }
      vst1q_f64(row + ch, d);
    }
  }
}

template <bool kCompensated>
void RowSweepEpan(const RowSweepArgs& a, RowSweepScratch* scratch) {
  scratch->lanes.resize(static_cast<size_t>(a.width) * 4);
  double* lanes = scratch->lanes.data();
  SnapshotPass<kCompensated>(a, 4, lanes);

  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const float64x2_t qyv = vdupq_n_f64(a.qy);
  const float64x2_t wv = vdupq_n_f64(a.weight);
  const float64x2_t wob2 = vdupq_n_f64(a.weight / prof.b2);
  const float64x2_t two = vdupq_n_f64(2.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  int ix = 0;
  for (; ix + 2 <= a.width; ix += 2) {
    const double* r0 = lanes + static_cast<size_t>(ix) * 4;
    const double* r1 = r0 + 4;
    const float64x2_t cnt = Gather2(r0, r1, kChCount);
    const float64x2_t ax = Gather2(r0, r1, kChSumX);
    const float64x2_t ay = Gather2(r0, r1, kChSumY);
    const float64x2_t sq = Gather2(r0, r1, kChSumSq);
    const float64x2_t qx = vld1q_f64(a.qx + ix);
    const float64x2_t u =
        vaddq_f64(vmulq_f64(qx, qx), vmulq_f64(qyv, qyv));
    const float64x2_t dot =
        vaddq_f64(vmulq_f64(qx, ax), vmulq_f64(qyv, ay));
    const float64x2_t inner = vaddq_f64(
        vsubq_f64(vmulq_f64(cnt, u), vmulq_f64(two, dot)), sq);
    const float64x2_t f =
        vsubq_f64(vmulq_f64(wv, cnt), vmulq_f64(wob2, inner));
    vst1q_f64(a.out + ix, vmaxq_f64(f, zero));
  }
  for (; ix < a.width; ++ix) {
    double d[kSweepChannelsPadded] = {};
    const double* r = lanes + static_cast<size_t>(ix) * 4;
    for (int ch = 0; ch < 4; ++ch) d[ch] = r[ch];
    a.out[ix] =
        DensityFromAggregates(a.kernel, Point{a.qx[ix], a.qy},
                              AggregatesFromLanes(d), a.bandwidth, a.weight);
  }
}

template <bool kCompensated>
void RowSweepQuartic(const RowSweepArgs& a, RowSweepScratch* scratch) {
  scratch->lanes.resize(static_cast<size_t>(a.width) * 12);
  double* lanes = scratch->lanes.data();
  SnapshotPass<kCompensated>(a, 12, lanes);

  const KernelEvalProfile prof = MakeKernelEvalProfile(a.bandwidth);
  const float64x2_t qyv = vdupq_n_f64(a.qy);
  const float64x2_t wv = vdupq_n_f64(a.weight);
  const float64x2_t c1v = vdupq_n_f64(2.0 / prof.b2);
  const float64x2_t b4v = vdupq_n_f64(prof.b2 * prof.b2);
  const float64x2_t two = vdupq_n_f64(2.0);
  const float64x2_t four = vdupq_n_f64(4.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  int ix = 0;
  for (; ix + 2 <= a.width; ix += 2) {
    const double* r0 = lanes + static_cast<size_t>(ix) * 12;
    const double* r1 = r0 + 12;
    const float64x2_t cnt = Gather2(r0, r1, kChCount);
    const float64x2_t ax = Gather2(r0, r1, kChSumX);
    const float64x2_t ay = Gather2(r0, r1, kChSumY);
    const float64x2_t sq = Gather2(r0, r1, kChSumSq);
    const float64x2_t cx = Gather2(r0, r1, kChSumSqPX);
    const float64x2_t cy = Gather2(r0, r1, kChSumSqPY);
    const float64x2_t qd = Gather2(r0, r1, kChSumQuad);
    const float64x2_t mxx = Gather2(r0, r1, kChMxx);
    const float64x2_t mxy = Gather2(r0, r1, kChMxy);
    const float64x2_t myy = Gather2(r0, r1, kChMyy);
    const float64x2_t qx = vld1q_f64(a.qx + ix);
    const float64x2_t u =
        vaddq_f64(vmulq_f64(qx, qx), vmulq_f64(qyv, qyv));
    const float64x2_t dot =
        vaddq_f64(vmulq_f64(qx, ax), vmulq_f64(qyv, ay));
    const float64x2_t sum_d2 = vaddq_f64(
        vsubq_f64(vmulq_f64(cnt, u), vmulq_f64(two, dot)), sq);
    const float64x2_t mt_x =
        vaddq_f64(vmulq_f64(mxx, qx), vmulq_f64(mxy, qyv));
    const float64x2_t mt_y =
        vaddq_f64(vmulq_f64(mxy, qx), vmulq_f64(myy, qyv));
    const float64x2_t qmq =
        vaddq_f64(vmulq_f64(qx, mt_x), vmulq_f64(qyv, mt_y));
    const float64x2_t dot_c =
        vaddq_f64(vmulq_f64(qx, cx), vmulq_f64(qyv, cy));
    float64x2_t sum_d4 = vmulq_f64(vmulq_f64(cnt, u), u);
    sum_d4 = vaddq_f64(sum_d4, vmulq_f64(four, qmq));
    sum_d4 = vaddq_f64(sum_d4, qd);
    sum_d4 = vsubq_f64(sum_d4, vmulq_f64(vmulq_f64(four, u), dot));
    sum_d4 = vaddq_f64(sum_d4, vmulq_f64(vmulq_f64(two, u), sq));
    sum_d4 = vsubq_f64(sum_d4, vmulq_f64(four, dot_c));
    const float64x2_t inner = vaddq_f64(
        vsubq_f64(cnt, vmulq_f64(c1v, sum_d2)), vdivq_f64(sum_d4, b4v));
    vst1q_f64(a.out + ix, vmaxq_f64(vmulq_f64(wv, inner), zero));
  }
  for (; ix < a.width; ++ix) {
    double d[kSweepChannelsPadded] = {};
    const double* r = lanes + static_cast<size_t>(ix) * 12;
    for (int ch = 0; ch < kSweepChannelCount; ++ch) d[ch] = r[ch];
    a.out[ix] =
        DensityFromAggregates(a.kernel, Point{a.qx[ix], a.qy},
                              AggregatesFromLanes(d), a.bandwidth, a.weight);
  }
}

void RowSweep(const RowSweepArgs& a, RowSweepScratch* scratch) {
  switch (SweepChannels(a.kernel)) {
    case 1:
      RowSweepUniform(a);
      return;
    case 4:
      if (a.compensated) {
        RowSweepEpan<true>(a, scratch);
      } else {
        RowSweepEpan<false>(a, scratch);
      }
      return;
    case kSweepChannelCount:
      if (a.compensated) {
        RowSweepQuartic<true>(a, scratch);
      } else {
        RowSweepQuartic<false>(a, scratch);
      }
      return;
    default:
      simd_internal::RowSweepScalar(a, scratch);  // unreachable (Gaussian)
      return;
  }
}

constexpr SimdOps kNeonOps = {
    SimdLevel::kNeon, &EnvelopeFilter,   &BoundIntervals,
    &BucketIndices,   &HistogramScatter, &RowSweep,
};

}  // namespace

const SimdOps* GetNeonOps() { return &kNeonOps; }

}  // namespace slam

#else  // !AArch64 NEON

namespace slam {

const SimdOps* GetNeonOps() { return nullptr; }

}  // namespace slam

#endif
