// The scalar backend: the portable reference every vector backend is
// measured against (sweep_ops.h). Also where GetSimdOps lives, so the
// dispatch logic is compiled exactly once.
#include "simd/dispatch.h"
#include "simd/sweep_ops.h"
#include "simd/sweep_ops_inline.h"

namespace slam {

namespace {

size_t EnvelopeFilter(std::span<const Point> points, double k,
                      double bandwidth, double* ex, double* ey) {
  return simd_internal::EnvelopeFilterScalar(points, k, bandwidth, ex, ey);
}

void BoundIntervals(const double* ex, const double* ey, size_t n, double k,
                    double bandwidth, double* lb, double* ub) {
  simd_internal::BoundIntervalsScalarRange(ex, ey, 0, n, k, bandwidth, lb,
                                           ub);
}

void BucketIndices(const double* lb, const double* ub, size_t n,
                   const GridAxis& xs, int32_t* lower_bucket,
                   int32_t* upper_bucket) {
  simd_internal::BucketIndicesScalarRange(lb, ub, 0, n, xs, lower_bucket,
                                          upper_bucket);
}

void HistogramScatter(const HistogramScatterArgs& args) {
  simd_internal::HistogramScatterScalar(args);
}

constexpr SimdOps kScalarOps = {
    SimdLevel::kScalar,
    &EnvelopeFilter,
    &BoundIntervals,
    &BucketIndices,
    &HistogramScatter,
    &simd_internal::RowSweepScalar,
};

}  // namespace

const SimdOps* GetScalarOps() { return &kScalarOps; }

Result<const SimdOps*> GetSimdOps(SimdLevel level) {
  SLAM_ASSIGN_OR_RETURN(const SimdLevel resolved, ResolveSimdLevel(level));
  switch (resolved) {
    case SimdLevel::kScalar:
      return GetScalarOps();
    case SimdLevel::kAvx2:
      return GetAvx2Ops();
    case SimdLevel::kNeon:
      return GetNeonOps();
    case SimdLevel::kAuto:
      break;  // ResolveSimdLevel never returns kAuto
  }
  return Status::Internal("unresolved SIMD level");
}

}  // namespace slam
