#include "testing/oracle.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/string_util.h"

namespace slam::testing {

namespace {

long double KernelLongDouble(KernelType kernel, long double squared_distance,
                             long double bandwidth) {
  const long double b2 = bandwidth * bandwidth;
  switch (kernel) {
    case KernelType::kUniform:
      return squared_distance <= b2 ? 1.0L / bandwidth : 0.0L;
    case KernelType::kEpanechnikov:
      return squared_distance <= b2 ? 1.0L - squared_distance / b2 : 0.0L;
    case KernelType::kQuartic: {
      if (squared_distance > b2) return 0.0L;
      const long double t = 1.0L - squared_distance / b2;
      return t * t;
    }
    case KernelType::kGaussian:
      return std::exp(-squared_distance / (2.0L * b2));
  }
  return 0.0L;
}

/// Ordered-integer mapping: monotone in the double ordering, with -0.0 and
/// +0.0 collapsing to the same rank.
int64_t OrderedRank(double v) {
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits < 0 ? std::numeric_limits<int64_t>::min() - bits : bits;
}

}  // namespace

Result<DensityMap> ReferenceScan(const KdvTask& task,
                                 const ExecContext* exec) {
  SLAM_RETURN_NOT_OK(ValidateTask(task));
  SLAM_ASSIGN_OR_RETURN(DensityMap map, DensityMap::Create(task.grid.width(),
                                                           task.grid.height()));
  const long double b = task.bandwidth;
  const long double w = task.weight;
  const GridAxis& xs = task.grid.x_axis();
  const GridAxis& ys = task.grid.y_axis();
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    SLAM_RETURN_NOT_OK(ExecCheck(exec, "oracle/reference_row"));
    std::span<double> row = map.mutable_row(iy);
    // Pixel centers in long double from the axis parameters: the oracle
    // defines the *ideal* lattice origin + i*gap. Grid::PixelCenter's
    // double evaluation quantizes centers at ulp(origin), which at 1e7
    // magnitudes is ~2e-9 in position — a real displacement that every
    // method's recentered (exactly translated) frame avoids; charging it
    // to the methods would drown the errors this oracle exists to catch.
    const long double qy = static_cast<long double>(ys.origin) +
                           static_cast<long double>(iy) * ys.gap;
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const long double qx = static_cast<long double>(xs.origin) +
                             static_cast<long double>(ix) * xs.gap;
      long double sum = 0.0L;
      for (const Point& p : task.points) {
        const long double dx = qx - p.x;
        const long double dy = qy - p.y;
        sum += KernelLongDouble(task.kernel, dx * dx + dy * dy, b);
      }
      row[ix] = static_cast<double>(w * sum);
    }
  }
  return map;
}

int64_t UlpDistance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<int64_t>::max();
  }
  const int64_t ra = OrderedRank(a);
  const int64_t rb = OrderedRank(b);
  // Subtract in unsigned space to dodge signed overflow, then saturate.
  const uint64_t diff = ra >= rb ? static_cast<uint64_t>(ra) - rb
                                 : static_cast<uint64_t>(rb) - ra;
  if (diff > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(diff);
}

Result<OracleReport> CompareToReference(const DensityMap& actual,
                                        const DensityMap& reference,
                                        double rel_floor_fraction) {
  if (actual.width() != reference.width() ||
      actual.height() != reference.height()) {
    return Status::InvalidArgument(StringPrintf(
        "oracle shape mismatch: %dx%d vs reference %dx%d", actual.width(),
        actual.height(), reference.width(), reference.height()));
  }
  OracleReport report;
  report.reference_peak = reference.MaxValue();
  const double floor =
      std::max(rel_floor_fraction * report.reference_peak, DBL_MIN);
  for (int iy = 0; iy < actual.height(); ++iy) {
    for (int ix = 0; ix < actual.width(); ++ix) {
      const double a = actual.at(ix, iy);
      const double r = reference.at(ix, iy);
      const double abs_err = std::abs(a - r);
      report.max_abs_error = std::max(report.max_abs_error, abs_err);
      report.max_ulps = std::max(report.max_ulps, UlpDistance(a, r));
      const double rel = abs_err / std::max(std::abs(r), floor);
      if (rel > report.max_rel_error) {
        report.max_rel_error = rel;
        report.worst_ix = ix;
        report.worst_iy = iy;
        report.worst_value = a;
        report.worst_reference = r;
      }
    }
  }
  return report;
}

EngineOptions ExactEngineOptions() {
  EngineOptions options;
  // Z-order: m = ceil(1/eps^2) clamped to n, so a tiny eps selects the
  // whole dataset and the "approximation" degenerates to exact RQS.
  options.compute.zorder_epsilon = 1e-9;
  // aKDE: zero bound-gap tolerance refines every node to its points.
  options.compute.akde_epsilon = 0.0;
  return options;
}

Result<OracleReport> DiffAgainstReference(const KdvTask& task, Method method,
                                          const EngineOptions& options,
                                          const DensityMap& reference) {
  SLAM_ASSIGN_OR_RETURN(DensityMap map, ComputeKdv(task, method, options));
  return CompareToReference(map, reference);
}

}  // namespace slam::testing
