// Differential correctness oracle (PR 3): renders a KdvTask with any of
// the ten methods and measures its per-pixel error against an
// extended-precision (long double) reference SCAN. This is the tool that
// proves the numerical-stability machinery — row-local sweep frames,
// compensated aggregates, automatic recentering — actually holds on
// adversarial inputs (EPSG:3857-scale offsets), and the guard every later
// performance PR runs before it ships.
//
// Used three ways:
//  * tests/oracle/oracle_test.cc — parameterized property tests (ctest).
//  * tools/slam_diff.cc — the CLI gate run in CI on offset datasets.
//  * bench/common/harness.cc — per-cell max_rel_error in the BENCH json.
#pragma once

#include <cstdint>

#include "kdv/density_map.h"
#include "kdv/engine.h"
#include "kdv/task.h"
#include "util/result.h"

namespace slam::testing {

/// O(XYn) reference density with every distance, kernel value and
/// accumulation carried in long double (64-bit mantissa on x86). No
/// decomposition, no shared library fast path: this is as close to ground
/// truth as the hardware gives us without software big-floats. Supports
/// all four kernels. `exec` (optional) is polled once per pixel row.
Result<DensityMap> ReferenceScan(const KdvTask& task,
                                 const ExecContext* exec = nullptr);

/// Distance in units-in-the-last-place between two doubles, via the
/// ordered-integer mapping (negative zero == positive zero). NaN against
/// anything, or opposite-sign infinities, saturate to INT64_MAX.
int64_t UlpDistance(double a, double b);

struct OracleReport {
  /// max over pixels of |actual - ref| / max(|ref|, floor); the floor is
  /// rel_floor_fraction of the reference peak, so near-empty pixels are
  /// judged relative to a meaningful density scale instead of 0/0. The
  /// default floor (1e-4 of peak) is far below anything a colormap can
  /// resolve, but keeps a method's O(eps)-absolute noise at visually
  /// empty pixels from masquerading as huge relative error.
  double max_rel_error = 0.0;
  double max_abs_error = 0.0;
  int64_t max_ulps = 0;
  // The pixel attaining max_rel_error, for diagnosis.
  int worst_ix = -1;
  int worst_iy = -1;
  double worst_value = 0.0;
  double worst_reference = 0.0;
  double reference_peak = 0.0;
};

/// Per-pixel comparison of a rendered map against the reference; shape
/// mismatch is an error.
Result<OracleReport> CompareToReference(const DensityMap& actual,
                                        const DensityMap& reference,
                                        double rel_floor_fraction = 1e-4);

/// Engine options that put every method into its *exact* configuration so
/// the oracle measures floating-point error, not approximation error:
/// Z-order's eps-sample is forced to the full dataset and aKDE's bound
/// tolerance to zero. Exact methods are unaffected.
EngineOptions ExactEngineOptions();

/// Renders `task` with `method` under `options` and compares against a
/// precomputed reference (from ReferenceScan on the same task).
Result<OracleReport> DiffAgainstReference(const KdvTask& task, Method method,
                                          const EngineOptions& options,
                                          const DensityMap& reference);

}  // namespace slam::testing
