#include "util/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace slam {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Upper bound on a single CondVar wait slice. Signals make waits end early;
// the slice only bounds how long a lost race to a signal can stall a waiter.
constexpr double kMaxWaitSliceSeconds = 0.25;

}  // namespace

Result<std::unique_ptr<AdmissionController>> AdmissionController::Create(
    const AdmissionOptions& options, std::function<double()> now_seconds) {
  if (options.max_concurrent < 1) {
    return Status::InvalidArgument(
        "admission max_concurrent must be >= 1, got " +
        std::to_string(options.max_concurrent));
  }
  if (options.max_queue_depth < 0) {
    return Status::InvalidArgument("admission max_queue_depth must be >= 0");
  }
  if (options.tokens_per_second > 0.0 && !(options.burst >= 1.0)) {
    return Status::InvalidArgument(
        "admission burst must be >= 1 when rate limiting is enabled");
  }
  if (!(options.latency_ewma_alpha > 0.0 &&
        options.latency_ewma_alpha <= 1.0)) {
    return Status::InvalidArgument(
        "admission latency_ewma_alpha must be in (0, 1]");
  }
  if (options.initial_latency_seconds < 0.0 ||
      !std::isfinite(options.initial_latency_seconds)) {
    return Status::InvalidArgument(
        "admission initial_latency_seconds must be finite and >= 0");
  }
  if (now_seconds == nullptr) now_seconds = SteadyNowSeconds;
  return std::unique_ptr<AdmissionController>(
      new AdmissionController(options, std::move(now_seconds)));
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         std::function<double()> now_seconds)
    : options_(options), now_seconds_(std::move(now_seconds)) {
  MutexLock lock(&mutex_);
  tokens_ = options_.burst;
  last_refill_seconds_ = now_seconds_();
  latency_estimate_seconds_ = options_.initial_latency_seconds;
}

Status AdmissionController::Admit(const Deadline* deadline) {
  const bool has_deadline = deadline != nullptr &&
                            std::isfinite(deadline->budget_seconds());
  MutexLock lock(&mutex_);
  const double now0 = now_seconds_();
  RefillTokens(now0);

  if (has_deadline && deadline->Expired()) {
    ++stats_.expired_in_queue;
    return Status::DeadlineExceeded("request deadline expired on arrival");
  }
  // Gate 1: feasibility at observed latency.
  if (has_deadline && latency_estimate_seconds_ > 0.0 &&
      deadline->RemainingSeconds() < latency_estimate_seconds_) {
    ++stats_.shed_infeasible;
    return Status::ResourceExhausted(
        "shed: deadline shorter than observed service latency");
  }

  // Fast path: no waiters ahead, capacity and a token available now.
  if (queue_.empty() && executing_ < options_.max_concurrent &&
      !RateLimited()) {
    Grant();
    return Status::OK();
  }

  // Gate 3 bound: shed rather than queue beyond the depth limit.
  if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
    ++stats_.shed_queue_full;
    return Status::ResourceExhausted("shed: admission queue full");
  }

  const double abs_deadline =
      has_deadline ? now0 + deadline->RemainingSeconds()
                   : std::numeric_limits<double>::infinity();
  const auto ticket = queue_.emplace(abs_deadline, next_seq_++).first;

  while (true) {
    const double now = now_seconds_();
    RefillTokens(now);
    if (*queue_.begin() == *ticket && executing_ < options_.max_concurrent &&
        !RateLimited()) {
      queue_.erase(ticket);
      Grant();
      // Our departure may unblock the new head-of-queue.
      cv_.SignalAll();
      return Status::OK();
    }
    if (now >= abs_deadline) {
      queue_.erase(ticket);
      ++stats_.expired_in_queue;
      cv_.SignalAll();  // the next waiter may now be at the head
      return Status::DeadlineExceeded("request deadline expired while queued");
    }
    double wait = std::min(abs_deadline - now, kMaxWaitSliceSeconds);
    if (*queue_.begin() == *ticket && options_.tokens_per_second > 0.0 &&
        tokens_ < 1.0) {
      // Head-of-queue blocked only on tokens: wake when the next one lands.
      wait = std::min(wait,
                      (1.0 - tokens_) / options_.tokens_per_second + 1e-4);
    }
    cv_.WaitFor(mutex_, wait);
  }
}

void AdmissionController::Release(double observed_latency_seconds) {
  MutexLock lock(&mutex_);
  if (executing_ > 0) --executing_;
  if (observed_latency_seconds >= 0.0 &&
      std::isfinite(observed_latency_seconds)) {
    if (latency_estimate_seconds_ <= 0.0) {
      latency_estimate_seconds_ = observed_latency_seconds;
    } else {
      latency_estimate_seconds_ =
          options_.latency_ewma_alpha * observed_latency_seconds +
          (1.0 - options_.latency_ewma_alpha) * latency_estimate_seconds_;
    }
  }
  cv_.SignalAll();
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

double AdmissionController::LatencyEstimateSeconds() const {
  MutexLock lock(&mutex_);
  return latency_estimate_seconds_;
}

int AdmissionController::Executing() const {
  MutexLock lock(&mutex_);
  return executing_;
}

int AdmissionController::Queued() const {
  MutexLock lock(&mutex_);
  return static_cast<int>(queue_.size());
}

void AdmissionController::RefillTokens(double now) {
  if (options_.tokens_per_second <= 0.0) return;
  const double elapsed = now - last_refill_seconds_;
  if (elapsed > 0.0) {
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed * options_.tokens_per_second);
  }
  last_refill_seconds_ = now;
}

bool AdmissionController::RateLimited() const {
  return options_.tokens_per_second > 0.0 && tokens_ < 1.0;
}

void AdmissionController::Grant() {
  ++executing_;
  if (options_.tokens_per_second > 0.0) tokens_ -= 1.0;
  ++stats_.admitted;
}

}  // namespace slam
