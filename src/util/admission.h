// Admission control for the serving core: decides, before any rendering
// work starts, whether a request should run now, wait, or be shed.
//
// Three gates compose, in order:
//
//  1. Feasibility — a request whose deadline is shorter than the observed
//     service latency (EWMA) cannot finish in time no matter what; admitting
//     it only wastes capacity that a feasible request could use. Shed
//     immediately (ResourceExhausted).
//  2. Token bucket — a sustained-rate limit with burst capacity. Tokens
//     refill continuously at `tokens_per_second` up to `burst`; each
//     admitted request spends one.
//  3. Concurrency + bounded EDF queue — at most `max_concurrent` requests
//     execute at once. Excess requests wait in a deadline-ordered
//     (earliest-deadline-first) queue of bounded depth; arrivals beyond
//     the bound are shed rather than queued (a queue longer than the
//     deadline horizon only manufactures timeouts). A queued request whose
//     deadline passes while waiting is removed and fails with
//     DeadlineExceeded — it never reaches the engine.
//
// Thread-safe; annotated Mutex + CondVar throughout. Time is injected via
// a monotonic now() callback for deterministic tests, with the caveat that
// blocking waits still sleep in real time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace slam {

struct AdmissionOptions {
  /// Requests executing concurrently; further admits wait in the EDF queue.
  int max_concurrent = 4;
  /// Waiters beyond this are shed (queue depth excludes executing requests).
  int max_queue_depth = 16;
  /// Sustained admission rate; <= 0 disables the token bucket entirely.
  double tokens_per_second = 0.0;
  /// Bucket capacity (burst size) when the token bucket is enabled.
  double burst = 8.0;
  /// EWMA smoothing for the observed-latency estimate, in (0, 1].
  double latency_ewma_alpha = 0.2;
  /// Seed for the latency estimate; 0 disables feasibility shedding until
  /// the first completed request reports a real latency.
  double initial_latency_seconds = 0.0;
};

struct AdmissionStats {
  int64_t admitted = 0;
  int64_t shed_infeasible = 0;   // deadline < observed latency at arrival
  int64_t shed_queue_full = 0;   // EDF queue at max_queue_depth
  int64_t expired_in_queue = 0;  // deadline passed while waiting
};

class AdmissionController {
 public:
  /// Validates options; clock defaults to the steady wall clock (must be
  /// monotonic non-decreasing). Returned by pointer: owns a Mutex.
  static Result<std::unique_ptr<AdmissionController>> Create(
      const AdmissionOptions& options,
      std::function<double()> now_seconds = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Runs the three gates. OK means a slot was acquired and MUST be
  /// balanced by exactly one Release(). Blocks (deadline-bounded) while
  /// queued; `deadline` may be null for a request with no deadline.
  /// Failure codes: ResourceExhausted = shed (infeasible or queue full),
  /// DeadlineExceeded = expired while queued or already expired on arrival.
  Status Admit(const Deadline* deadline);

  /// Reports completion of an admitted request. `observed_latency_seconds`
  /// feeds the feasibility EWMA; pass a negative value to skip the update
  /// (e.g. for requests that failed without doing representative work).
  void Release(double observed_latency_seconds);

  AdmissionStats stats() const;
  double LatencyEstimateSeconds() const;
  int Executing() const;
  int Queued() const;

 private:
  AdmissionController(const AdmissionOptions& options,
                      std::function<double()> now_seconds);

  void RefillTokens(double now) SLAM_REQUIRES(mutex_);
  bool RateLimited() const SLAM_REQUIRES(mutex_);
  void Grant() SLAM_REQUIRES(mutex_);

  const AdmissionOptions options_;
  const std::function<double()> now_seconds_;

  mutable Mutex mutex_;
  CondVar cv_;
  /// EDF order: (absolute deadline seconds, arrival sequence) — the
  /// sequence breaks ties FIFO among equal deadlines.
  std::set<std::pair<double, uint64_t>> queue_ SLAM_GUARDED_BY(mutex_);
  uint64_t next_seq_ SLAM_GUARDED_BY(mutex_) = 0;
  int executing_ SLAM_GUARDED_BY(mutex_) = 0;
  double tokens_ SLAM_GUARDED_BY(mutex_);
  double last_refill_seconds_ SLAM_GUARDED_BY(mutex_);
  double latency_estimate_seconds_ SLAM_GUARDED_BY(mutex_);
  AdmissionStats stats_ SLAM_GUARDED_BY(mutex_);
};

}  // namespace slam
