#include "util/backoff.h"

#include <cmath>

namespace slam {

Status ValidateRetryOptions(const RetryOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1, got " +
                                   std::to_string(options.max_attempts));
  }
  const BackoffOptions& b = options.backoff;
  if (!(b.initial_seconds > 0.0) || !std::isfinite(b.initial_seconds)) {
    return Status::InvalidArgument(
        "backoff initial_seconds must be positive and finite");
  }
  if (!(b.max_seconds >= b.initial_seconds) || !std::isfinite(b.max_seconds)) {
    return Status::InvalidArgument(
        "backoff max_seconds must be finite and >= initial_seconds");
  }
  return Status::OK();
}

bool RetryPolicy::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

std::optional<double> RetryPolicy::DelayBeforeRetry(const Status& failure,
                                                    int attempt,
                                                    const Deadline* deadline) {
  if (!IsRetryable(failure)) return std::nullopt;
  if (attempt + 1 >= options_.max_attempts) return std::nullopt;
  const double delay = backoff_.NextDelaySeconds();
  if (deadline != nullptr && delay >= deadline->RemainingSeconds()) {
    // Sleeping `delay` would wake up at (or past) the deadline with the
    // actual work still undone; retrying is pointless.
    return std::nullopt;
  }
  return delay;
}

}  // namespace slam
