// Retry with capped exponential backoff and decorrelated jitter, made
// deadline-aware: a retry is never scheduled past the request's deadline.
//
// The jitter scheme is the "decorrelated jitter" variant (next delay drawn
// uniformly from [base, 3 * previous]), which spreads synchronized
// retry storms better than full jitter while still growing geometrically.
// All randomness flows through util/random.h's Rng, so a retry schedule is
// reproducible from its seed.
//
// What is retryable: transient infrastructure faults (kIoError,
// kInternal). What is not: the caller's own decisions (kInvalidArgument,
// kNotFound, ...), explicit cancellation (kCancelled — the user said
// stop), deadline expiry (kDeadlineExceeded — retrying the same work
// against the same deadline cannot succeed), and memory exhaustion
// (kResourceExhausted — the same attempt needs the same bytes; the right
// response is degradation, not repetition).
#pragma once

#include <cstdint>
#include <optional>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/timer.h"

namespace slam {

struct BackoffOptions {
  /// First delay, and the lower bound of every jittered draw.
  double initial_seconds = 0.010;
  /// Upper cap on any single delay.
  double max_seconds = 1.0;
};

/// Stateful decorrelated-jitter backoff sequence. Not thread-safe; one
/// instance per request attempt chain.
class Backoff {
 public:
  Backoff(const BackoffOptions& options, uint64_t seed)
      : options_(options), rng_(seed), previous_(options.initial_seconds) {}

  /// The next delay: uniform in [initial, 3 * previous], capped at max.
  double NextDelaySeconds() {
    const double hi = previous_ * 3.0;
    double delay = rng_.Uniform(options_.initial_seconds,
                                hi > options_.initial_seconds
                                    ? hi
                                    : options_.initial_seconds * (1 + 1e-9));
    if (delay > options_.max_seconds) delay = options_.max_seconds;
    previous_ = delay;
    return delay;
  }

  void Reset() { previous_ = options_.initial_seconds; }

 private:
  BackoffOptions options_;
  Rng rng_;
  double previous_;
};

struct RetryOptions {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  BackoffOptions backoff;
};

/// Validates max_attempts >= 1 and 0 < initial <= max, both finite.
Status ValidateRetryOptions(const RetryOptions& options);

/// Retry decision-maker: classifies failures and schedules deadline-aware
/// backoff. Not thread-safe; one instance per request.
class RetryPolicy {
 public:
  /// `options` must pass ValidateRetryOptions (callers constructing from
  /// user input validate first; see ServingCore::Create).
  RetryPolicy(const RetryOptions& options, uint64_t seed)
      : options_(options), backoff_(options.backoff, seed) {}

  /// True for transient faults worth repeating (kIoError, kInternal).
  static bool IsRetryable(const Status& status);

  /// Decides whether to retry after `failure`, where `attempt` is the
  /// 0-based index of the attempt that just failed. Returns the seconds to
  /// sleep before the next attempt, or nullopt when the failure is not
  /// retryable, the attempt budget is spent, or — the deadline-aware
  /// clause — the backoff delay would land past `deadline` (nullptr =
  /// no deadline). Never returns a delay exceeding the deadline's
  /// remaining time.
  std::optional<double> DelayBeforeRetry(const Status& failure, int attempt,
                                         const Deadline* deadline);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  Backoff backoff_;
};

}  // namespace slam
