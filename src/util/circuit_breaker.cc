#include "util/circuit_breaker.h"

#include <chrono>
#include <cmath>

namespace slam {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::unique_ptr<CircuitBreaker>> CircuitBreaker::Create(
    const CircuitBreakerOptions& options,
    std::function<double()> now_seconds) {
  if (options.window_size < 1) {
    return Status::InvalidArgument("breaker window_size must be >= 1, got " +
                                   std::to_string(options.window_size));
  }
  if (options.min_samples < 1 || options.min_samples > options.window_size) {
    return Status::InvalidArgument(
        "breaker min_samples must be in [1, window_size], got " +
        std::to_string(options.min_samples));
  }
  if (!(options.failure_threshold > 0.0 && options.failure_threshold <= 1.0)) {
    return Status::InvalidArgument(
        "breaker failure_threshold must be in (0, 1]");
  }
  if (!(options.open_cooldown_seconds >= 0.0) ||
      !std::isfinite(options.open_cooldown_seconds)) {
    return Status::InvalidArgument(
        "breaker open_cooldown_seconds must be finite and >= 0");
  }
  if (now_seconds == nullptr) now_seconds = SteadyNowSeconds;
  return std::unique_ptr<CircuitBreaker>(
      new CircuitBreaker(options, std::move(now_seconds)));
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options,
                               std::function<double()> now_seconds)
    : options_(options), now_seconds_(std::move(now_seconds)) {
  MutexLock lock(&mutex_);
  window_.assign(static_cast<size_t>(options_.window_size), false);
}

Status CircuitBreaker::Admit() {
  MutexLock lock(&mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      ++stats_.admitted;
      return Status::OK();
    case BreakerState::kOpen: {
      const double waited = now_seconds_() - opened_at_seconds_;
      if (waited < options_.open_cooldown_seconds) {
        ++stats_.rejected;
        return Status::ResourceExhausted(
            "circuit breaker open (cooling down)");
      }
      state_ = BreakerState::kHalfOpen;
      ++stats_.half_opened;
      probe_in_flight_ = true;
      ++stats_.admitted;
      return Status::OK();
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++stats_.rejected;
        return Status::ResourceExhausted(
            "circuit breaker half-open (probe in flight)");
      }
      probe_in_flight_ = true;
      ++stats_.admitted;
      return Status::OK();
  }
  return Status::Internal("circuit breaker in impossible state");
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Probe succeeded: the dependency recovered. Close with a clean window
    // so stale failures cannot immediately re-trip.
    state_ = BreakerState::kClosed;
    ++stats_.closed;
    probe_in_flight_ = false;
    window_next_ = 0;
    window_count_ = 0;
    window_failures_ = 0;
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // late result after a trip
  if (window_[static_cast<size_t>(window_next_)] &&
      window_count_ == options_.window_size) {
    --window_failures_;
  }
  window_[static_cast<size_t>(window_next_)] = false;
  window_next_ = (window_next_ + 1) % options_.window_size;
  if (window_count_ < options_.window_size) ++window_count_;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(&mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to OPEN, restart the cooldown.
    probe_in_flight_ = false;
    TransitionToOpen();
    return;
  }
  if (state_ != BreakerState::kClosed) return;  // late result after a trip
  if (window_[static_cast<size_t>(window_next_)] &&
      window_count_ == options_.window_size) {
    --window_failures_;
  }
  window_[static_cast<size_t>(window_next_)] = true;
  ++window_failures_;
  window_next_ = (window_next_ + 1) % options_.window_size;
  if (window_count_ < options_.window_size) ++window_count_;
  if (window_count_ >= options_.min_samples &&
      FailureRate() >= options_.failure_threshold) {
    TransitionToOpen();
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(&mutex_);
  return state_;
}

BreakerStats CircuitBreaker::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void CircuitBreaker::TransitionToOpen() {
  state_ = BreakerState::kOpen;
  ++stats_.opened;
  opened_at_seconds_ = now_seconds_();
  // Drop the window: after the cooldown the half-open probe alone decides.
  window_next_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
}

double CircuitBreaker::FailureRate() const {
  if (window_count_ == 0) return 0.0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_count_);
}

}  // namespace slam
