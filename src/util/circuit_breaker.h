// Circuit breaker: stops hammering a failing dependency by tracking the
// recent failure rate over a sliding window of outcomes and, once it trips,
// rejecting calls outright until a cooldown elapses.
//
// Classic three-state machine:
//
//            failure rate over window >= threshold
//   CLOSED ------------------------------------------> OPEN
//     ^                                                  | cooldown elapsed
//     |   probe succeeds                                 v
//     +--------------------------------------------- HALF-OPEN
//                                                        | probe fails
//                                                        +-----> OPEN
//
// CLOSED admits everything and records outcomes into a fixed-size ring
// buffer; a trip requires both a full-enough window (min_samples) and a
// failure rate at or above failure_threshold. OPEN admits nothing until
// open_cooldown_seconds have passed, then lets exactly one probe through
// (HALF-OPEN). The probe's outcome decides: success closes the breaker and
// clears the window; failure re-opens it and restarts the cooldown.
//
// Thread-safe; all state sits behind an annotated Mutex (util/mutex.h) so
// `clang -Wthread-safety` checks every access. Time is injected through
// a monotonic now() callback so tests can step a fake clock instead of
// sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace slam {

enum class BreakerState {
  kClosed,
  kOpen,
  kHalfOpen,
};

std::string_view BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Ring-buffer capacity: how many recent outcomes the failure rate is
  /// computed over.
  int window_size = 32;
  /// Minimum recorded outcomes before the breaker may trip; prevents one
  /// early failure (rate 1/1) from opening a cold breaker.
  int min_samples = 8;
  /// Trip when failures / recorded >= this rate (with >= min_samples).
  double failure_threshold = 0.5;
  /// How long an open breaker rejects before allowing a half-open probe.
  double open_cooldown_seconds = 1.0;
};

/// Monotonic transition/decision counters, for observability (slam_load
/// reports these).
struct BreakerStats {
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t opened = 0;       // CLOSED/HALF-OPEN -> OPEN transitions
  int64_t half_opened = 0;  // OPEN -> HALF-OPEN transitions
  int64_t closed = 0;       // HALF-OPEN -> CLOSED transitions
};

class CircuitBreaker {
 public:
  /// Validates options; clock defaults to the steady wall clock. The clock
  /// must be monotonic non-decreasing. Returned by pointer because the
  /// breaker owns a Mutex and is therefore immovable.
  static Result<std::unique_ptr<CircuitBreaker>> Create(
      const CircuitBreakerOptions& options,
      std::function<double()> now_seconds = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Gate: OK to proceed, or ResourceExhausted("circuit breaker open")
  /// when the call must not be attempted. An admitted call MUST be
  /// balanced by exactly one RecordSuccess/RecordFailure — in HALF-OPEN
  /// the breaker admits a single probe and waits for its outcome.
  Status Admit();

  /// Reports the outcome of an admitted call.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  BreakerStats stats() const;

 private:
  CircuitBreaker(const CircuitBreakerOptions& options,
                 std::function<double()> now_seconds);

  void TransitionToOpen() SLAM_REQUIRES(mutex_);
  double FailureRate() const SLAM_REQUIRES(mutex_);

  const CircuitBreakerOptions options_;
  const std::function<double()> now_seconds_;

  mutable Mutex mutex_;
  BreakerState state_ SLAM_GUARDED_BY(mutex_) = BreakerState::kClosed;
  /// Ring buffer of recent outcomes (true = failure).
  std::vector<bool> window_ SLAM_GUARDED_BY(mutex_);
  int window_next_ SLAM_GUARDED_BY(mutex_) = 0;
  int window_count_ SLAM_GUARDED_BY(mutex_) = 0;
  int window_failures_ SLAM_GUARDED_BY(mutex_) = 0;
  double opened_at_seconds_ SLAM_GUARDED_BY(mutex_) = 0.0;
  /// True while the single HALF-OPEN probe is outstanding.
  bool probe_in_flight_ SLAM_GUARDED_BY(mutex_) = false;
  BreakerStats stats_ SLAM_GUARDED_BY(mutex_);
};

}  // namespace slam
