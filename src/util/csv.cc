#include "util/csv.h"

#include <istream>
#include <ostream>

#include "util/string_util.h"

namespace slam {

namespace {

/// Prefixes a status message with the record's 1-based line number so a
/// rejected upload points at the offending line, not just "bad CSV".
Status AtLine(int64_t line, const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(),
                StringPrintf("line %lld: ", static_cast<long long>(line)) +
                    status.message());
}

}  // namespace

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                const CsvOptions& options) {
  if (line.size() > options.max_record_bytes) {
    return Status::InvalidArgument(
        StringPrintf("record of %zu bytes exceeds the %zu-byte cap",
                     line.size(), options.max_record_bytes));
  }
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  const auto check_field = [&]() -> Status {
    if (current.size() > options.max_field_bytes) {
      return Status::InvalidArgument(StringPrintf(
          "field %zu of %zu bytes exceeds the %zu-byte cap",
          fields.size() + 1, current.size(), options.max_field_bytes));
    }
    if (fields.size() + 1 > options.max_fields) {
      return Status::InvalidArgument(
          StringPrintf("record exceeds the %zu-field cap",
                       options.max_fields));
    }
    return Status::OK();
  };
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\0') {
      // Never data in a text export; truncates any downstream C-string
      // handling, so reject instead of passing it through.
      return Status::InvalidArgument(
          StringPrintf("embedded NUL byte at offset %zu", i));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // Escaped quote.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted CSV field");
        }
        in_quotes = true;
      } else if (c == options.delimiter) {
        SLAM_RETURN_NOT_OK(check_field());
        fields.push_back(std::move(current));
        current.clear();
      } else if (c == '\r' && i + 1 == line.size()) {
        // Tolerate CRLF endings (getline strips only the '\n').
      } else {
        current.push_back(c);
      }
    }
    if (current.size() > options.max_field_bytes) {
      return Status::InvalidArgument(StringPrintf(
          "field %zu exceeds the %zu-byte cap", fields.size() + 1,
          options.max_field_bytes));
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        "unterminated quoted CSV field (truncated record?)");
  }
  SLAM_RETURN_NOT_OK(check_field());
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                char delimiter) {
  CsvOptions options;
  options.delimiter = delimiter;
  return ParseCsvRecord(line, options);
}

Status ReadCsvStream(
    std::istream& in, const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& header_fn,
    const std::function<Status(int64_t, const std::vector<std::string>&)>&
        row_fn) {
  std::string line;
  int64_t line_number = 0;
  bool first_record = true;
  bool saw_header = !options.has_header;
  while (std::getline(in, line)) {
    ++line_number;
    // A record longer than the cap is rejected before parsing: getline has
    // already buffered it, but refusing here keeps the per-record work (and
    // the field vector) bounded.
    if (line.size() > options.max_record_bytes) {
      return Status::InvalidArgument(StringPrintf(
          "line %lld: record of %zu bytes exceeds the %zu-byte cap",
          static_cast<long long>(line_number), line.size(),
          options.max_record_bytes));
    }
    std::string_view record = line;
    if (first_record) {
      first_record = false;
      // Strip a UTF-8 byte-order mark: spreadsheet exports routinely lead
      // with one, and without stripping it the first header name is
      // "\xEF\xBB\xBFx", which silently fails the x/y column match.
      if (record.size() >= 3 && record.substr(0, 3) == "\xEF\xBB\xBF") {
        record.remove_prefix(3);
      }
    }
    if (record.empty() || record == "\r") continue;
    auto parsed = ParseCsvRecord(record, options);
    if (!parsed.ok()) return AtLine(line_number, parsed.status());
    if (!saw_header) {
      saw_header = true;
      if (header_fn) {
        SLAM_RETURN_NOT_OK(AtLine(line_number, header_fn(*parsed)));
      }
      continue;
    }
    SLAM_RETURN_NOT_OK(row_fn(line_number, *parsed));
  }
  if (in.bad()) {
    return Status::IoError("read error while streaming CSV");
  }
  return Status::OK();
}

void WriteCsvRecord(std::ostream& out, const std::vector<std::string>& fields,
                    char delimiter) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.put(delimiter);
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find(delimiter) != std::string::npos ||
        f.find('"') != std::string::npos || f.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out << f;
      continue;
    }
    out.put('"');
    for (const char c : f) {
      if (c == '"') out.put('"');
      out.put(c);
    }
    out.put('"');
  }
  out.put('\n');
}

}  // namespace slam
