#include "util/csv.h"

#include <istream>
#include <ostream>

namespace slam {

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // Escaped quote.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        if (!current.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted CSV field");
        }
        in_quotes = true;
      } else if (c == delimiter) {
        fields.push_back(std::move(current));
        current.clear();
      } else if (c == '\r' && i + 1 == line.size()) {
        // Tolerate CRLF endings.
      } else {
        current.push_back(c);
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Status ReadCsvStream(
    std::istream& in, const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& header_fn,
    const std::function<Status(int64_t, const std::vector<std::string>&)>&
        row_fn) {
  std::string line;
  int64_t row_index = 0;
  bool saw_header = !options.has_header;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SLAM_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                          ParseCsvRecord(line, options.delimiter));
    if (!saw_header) {
      saw_header = true;
      if (header_fn) SLAM_RETURN_NOT_OK(header_fn(fields));
      continue;
    }
    SLAM_RETURN_NOT_OK(row_fn(row_index, fields));
    ++row_index;
  }
  return Status::OK();
}

void WriteCsvRecord(std::ostream& out, const std::vector<std::string>& fields,
                    char delimiter) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.put(delimiter);
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find(delimiter) != std::string::npos ||
        f.find('"') != std::string::npos || f.find('\n') != std::string::npos;
    if (!needs_quotes) {
      out << f;
      continue;
    }
    out.put('"');
    for (const char c : f) {
      if (c == '"') out.put('"');
      out.put(c);
    }
    out.put('"');
  }
  out.put('\n');
}

}  // namespace slam
