// Minimal streaming CSV reader/writer, hardened for untrusted input.
// Supports quoted fields with embedded delimiters and escaped quotes
// ("" inside a quoted field), which is enough for the municipal open-data
// exports the paper's datasets come from — plus the hostile variants a
// public upload endpoint sees: UTF-8 BOMs, CRLF endings, embedded NUL
// bytes, and overlong fields/records crafted to exhaust memory. Every
// rejection carries the 1-based line number of the offending record.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/validate.h"

namespace slam {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Hard caps on untrusted input; exceeding one is an InvalidArgument
  /// (never a silent truncation). Defaults come from the shared
  /// InputLimits so every CSV surface agrees.
  size_t max_field_bytes = InputLimits::kMaxCsvFieldBytes;
  size_t max_record_bytes = InputLimits::kMaxCsvRecordBytes;
  size_t max_fields = InputLimits::kMaxCsvFieldsPerRecord;
};

/// Parses one CSV record (already split from the stream on record
/// boundaries) into fields, honoring quotes and enforcing the options'
/// field/record caps. Embedded NUL bytes are rejected — they are never
/// data in a text export, and letting them through truncates downstream
/// C-string handling. Exposed for testing and fuzzing.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                const CsvOptions& options);
/// Back-compat overload with default limits.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                char delimiter);

/// Reads `in` record by record, calling `row_fn(line, fields)` for each
/// data row, where `line` is the record's 1-based physical line number in
/// the stream (blank lines are skipped but still counted, so the number
/// matches what an editor shows). If options.has_header, the first
/// non-blank record is delivered through `header_fn` instead (may be
/// nullptr to ignore). A UTF-8 byte-order mark at the start of the stream
/// is stripped. Parse failures are returned with the line number
/// prepended.
Status ReadCsvStream(
    std::istream& in, const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& header_fn,
    const std::function<Status(int64_t, const std::vector<std::string>&)>&
        row_fn);

/// Writes one record, quoting fields that need it.
void WriteCsvRecord(std::ostream& out, const std::vector<std::string>& fields,
                    char delimiter = ',');

}  // namespace slam
