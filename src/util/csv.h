// Minimal streaming CSV reader/writer. Supports quoted fields with embedded
// delimiters and escaped quotes ("" inside a quoted field), which is enough
// for the municipal open-data exports the paper's datasets come from.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/result.h"

namespace slam {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Parses one CSV record (already split from the stream on record
/// boundaries) into fields, honoring quotes. Exposed for testing.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line,
                                                char delimiter);

/// Reads `in` record by record, calling `row_fn(row_index, fields)` for each
/// data row. If options.has_header, the first record is delivered through
/// `header_fn` instead (may be nullptr to ignore).
Status ReadCsvStream(
    std::istream& in, const CsvOptions& options,
    const std::function<Status(const std::vector<std::string>&)>& header_fn,
    const std::function<Status(int64_t, const std::vector<std::string>&)>&
        row_fn);

/// Writes one record, quoting fields that need it.
void WriteCsvRecord(std::ostream& out, const std::vector<std::string>& fields,
                    char delimiter = ',');

}  // namespace slam
