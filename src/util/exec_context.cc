#include "util/exec_context.h"

#include <algorithm>

#include "util/string_util.h"

namespace slam {

bool MemoryBudget::TryCharge(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  do {
    if (used > limit_ || bytes > limit_ - used) return false;
  } while (!used_.compare_exchange_weak(used, used + bytes,
                                        std::memory_order_relaxed));
  const size_t now = used + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::Release(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void FaultInjector::Arm(std::string_view site, int64_t after_hits,
                        Status status) {
  MutexLock lock(&mutex_);
  traps_[std::string(site)] = Trap{after_hits, std::move(status)};
}

Status FaultInjector::ArmProbabilistic(std::string_view site,
                                       double probability, Status status) {
  if (!(probability >= 0.0 && probability <= 1.0)) {  // rejects NaN too
    return Status::InvalidArgument(
        StringPrintf("fault probability for %.*s must be in [0, 1], got %g",
                     static_cast<int>(site.size()), site.data(), probability));
  }
  if (status.ok()) {
    return Status::InvalidArgument(
        "a probabilistic trap must deliver a non-OK status");
  }
  MutexLock lock(&mutex_);
  random_traps_[std::string(site)] =
      RandomTrap{probability, std::move(status)};
  return Status::OK();
}

void FaultInjector::Disarm(std::string_view site) {
  MutexLock lock(&mutex_);
  const auto it = traps_.find(site);
  if (it != traps_.end()) traps_.erase(it);
  const auto rit = random_traps_.find(site);
  if (rit != random_traps_.end()) random_traps_.erase(rit);
}

Status FaultInjector::Hit(std::string_view site) {
  MutexLock lock(&mutex_);
  ++hits_[std::string(site)];
  ++total_hits_;
  for (const auto key : {site, std::string_view("*")}) {
    const auto it = traps_.find(key);
    if (it == traps_.end()) continue;
    Trap& trap = it->second;
    if (trap.remaining > 0) {
      --trap.remaining;
      continue;
    }
    ++injected_;
    return trap.status;
  }
  for (const auto key : {site, std::string_view("*")}) {
    const auto it = random_traps_.find(key);
    if (it == random_traps_.end()) continue;
    const RandomTrap& trap = it->second;
    if (trap.probability > 0.0 && rng_.NextDouble() < trap.probability) {
      ++injected_;
      return trap.status;
    }
  }
  return Status::OK();
}

int64_t FaultInjector::HitCount(std::string_view site) const {
  MutexLock lock(&mutex_);
  if (site == "*") return total_hits_;
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

int64_t FaultInjector::InjectedCount() const {
  MutexLock lock(&mutex_);
  return injected_;
}

Status ExecContext::Check(std::string_view site) const {
  if (injector_ != nullptr) {
    SLAM_RETURN_NOT_OK(injector_->Hit(site));
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Cancelled("computation cancelled at " + std::string(site));
  }
  if (deadline_ != nullptr && deadline_->Expired()) {
    return Status::DeadlineExceeded(
        StringPrintf("deadline of %gs exceeded at %.*s",
                     deadline_->budget_seconds(),
                     static_cast<int>(site.size()), site.data()));
  }
  return Status::OK();
}

Status ExecContext::CheckBudgetFor(size_t bytes, std::string_view what) const {
  if (budget_ == nullptr) return Status::OK();
  if (!budget_->WouldFit(bytes)) {
    return Status::ResourceExhausted(StringPrintf(
        "%.*s needs ~%zu bytes of auxiliary space but only %zu of the "
        "%zu-byte budget remain",
        static_cast<int>(what.size()), what.data(), bytes,
        budget_->limit_bytes() -
            std::min(budget_->limit_bytes(), budget_->used_bytes()),
        budget_->limit_bytes()));
  }
  return Status::OK();
}

Status ExecContext::ChargeMemory(size_t bytes, std::string_view what) const {
  if (injector_ != nullptr) {
    SLAM_RETURN_NOT_OK(injector_->Hit(what));
  }
  if (budget_ == nullptr || bytes == 0) return Status::OK();
  if (!budget_->TryCharge(bytes)) {
    return Status::ResourceExhausted(StringPrintf(
        "allocating %zu bytes for %.*s would exceed the %zu-byte memory "
        "budget (%zu already in use)",
        bytes, static_cast<int>(what.size()), what.data(),
        budget_->limit_bytes(), budget_->used_bytes()));
  }
  return Status::OK();
}

void ExecContext::ReleaseMemory(size_t bytes) const {
  if (budget_ != nullptr && bytes > 0) budget_->Release(bytes);
}

Status ScopedMemoryCharge::Update(size_t total_bytes) {
  if (exec_ == nullptr) return Status::OK();
  if (total_bytes > charged_) {
    SLAM_RETURN_NOT_OK(exec_->ChargeMemory(total_bytes - charged_, what_));
    charged_ = total_bytes;
  } else if (total_bytes < charged_) {
    exec_->ReleaseMemory(charged_ - total_bytes);
    charged_ = total_bytes;
  }
  return Status::OK();
}

}  // namespace slam
