// Hardened execution layer for every compute path. An ExecContext bundles
// the four resource-governance concerns a production KDV service needs:
//
//  * a cooperative CancellationToken (a pan superseding an in-flight
//    render, a client disconnect, ...),
//  * the wall-clock Deadline (the paper's ">14400 sec" censoring rule,
//    Table 7, at serving scale),
//  * a byte-accounted MemoryBudget that refuses work before an allocation
//    would exceed it (pre-flighted with EstimateAuxiliarySpaceBytes, then
//    tracked against actual workspace allocations), and
//  * a FaultInjector hook that tests use to force cancellation / OOM / IO
//    failures at deterministic checkpoints.
//
// Methods poll Check() between pixel rows and at phase boundaries (index
// build, transposition), so a tripped token or expired deadline surfaces
// as Status::Cancelled within one row of work. All members are thread-safe
// so one context can govern every stripe of a parallel computation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace slam {

/// Cooperative cancellation flag. Cancel() is sticky. A token may chain to
/// a parent: the child reads as cancelled when either flag is set, which
/// lets a parallel wrapper cancel its own stripes without being able to
/// cancel the caller's token.
class CancellationToken {
 public:
  CancellationToken() = default;
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancellationToken* parent_ = nullptr;
};

/// A shared byte budget for auxiliary (workspace + index) allocations.
/// Charges are atomic so parallel stripes can draw from one budget.
class MemoryBudget {
 public:
  /// `limit_bytes` is the total auxiliary space the computation may hold
  /// at any instant (the input points and output raster are excluded, as
  /// in Theorem 4's shared O(XY + n)).
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  size_t limit_bytes() const { return limit_; }
  size_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  /// True if `bytes` more could be charged right now without exceeding
  /// the limit (advisory; TryCharge is the authoritative operation).
  bool WouldFit(size_t bytes) const {
    const size_t used = used_bytes();
    return used <= limit_ && bytes <= limit_ - used;
  }

  /// Atomically reserves `bytes`; false if that would exceed the limit.
  bool TryCharge(size_t bytes);
  /// Returns a prior charge. Never release more than was charged.
  void Release(size_t bytes);

 private:
  size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// Deterministic fault injection for tests: arm a checkpoint site to start
/// failing after a number of hits, or to fail each hit independently with
/// a fixed probability. Sites are the string names passed to
/// ExecContext::Check / ChargeMemory (e.g. "slam_bucket/row",
/// "parallel/stripe"); the wildcard site "*" traps every checkpoint.
/// Thread-safe; hit counting is global across threads, which makes
/// "fail stripe k of N" a single Arm("parallel/stripe", k-1, ...) call.
///
/// All randomness flows through one seeded generator, so a chaos run is
/// reproducible from its logged seed() alone (the draw sequence is still
/// subject to thread interleaving, but the fault *rate* and marginal
/// distribution are identical for a given seed).
class FaultInjector {
 public:
  /// The default seed keeps single-threaded tests bit-reproducible; chaos
  /// suites pass their own (logged) seed.
  explicit FaultInjector(uint64_t seed = 0x5eed5eedULL) : rng_(seed),
                                                          seed_(seed) {}

  /// After `after_hits` successful hits, every later Hit() on `site`
  /// returns `status` (sticky). after_hits = 0 trips on the first hit.
  void Arm(std::string_view site, int64_t after_hits, Status status);

  /// Every Hit() on `site` independently returns `status` with the given
  /// probability (non-sticky — the next hit draws afresh). Rejects
  /// probabilities outside [0, 1] (including NaN) and an OK `status` with
  /// InvalidArgument instead of clamping: a chaos config typo must fail
  /// loudly, not silently dilute the fault rate.
  Status ArmProbabilistic(std::string_view site, double probability,
                          Status status);

  /// Removes both the deterministic and the probabilistic trap on `site`.
  void Disarm(std::string_view site);

  /// Called by ExecContext at every checkpoint; OK unless a trap tripped.
  Status Hit(std::string_view site);
  /// Hits recorded for an exact site name; "*" returns the global total.
  int64_t HitCount(std::string_view site) const;
  /// Injected failures delivered so far (deterministic + probabilistic).
  int64_t InjectedCount() const;

  /// The seed this injector draws from — log it so a chaos failure can be
  /// replayed.
  uint64_t seed() const { return seed_; }

 private:
  struct Trap {
    int64_t remaining = 0;  // hits to pass through before tripping
    Status status;
  };
  struct RandomTrap {
    double probability = 0.0;
    Status status;
  };

  mutable Mutex mutex_;
  std::map<std::string, Trap, std::less<>> traps_ SLAM_GUARDED_BY(mutex_);
  std::map<std::string, RandomTrap, std::less<>> random_traps_
      SLAM_GUARDED_BY(mutex_);
  std::map<std::string, int64_t, std::less<>> hits_ SLAM_GUARDED_BY(mutex_);
  int64_t total_hits_ SLAM_GUARDED_BY(mutex_) = 0;
  int64_t injected_ SLAM_GUARDED_BY(mutex_) = 0;
  Rng rng_ SLAM_GUARDED_BY(mutex_);
  uint64_t seed_;
};

/// The per-computation execution context. A value type holding non-owning
/// pointers; any member may be null (= that concern is unlimited). Copying
/// the context and overriding one member is how wrappers derive stripe- or
/// attempt-scoped contexts.
class ExecContext {
 public:
  ExecContext() = default;

  void set_cancellation(const CancellationToken* token) { cancel_ = token; }
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }
  void set_memory_budget(MemoryBudget* budget) { budget_ = budget; }
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  const CancellationToken* cancellation() const { return cancel_; }
  const Deadline* deadline() const { return deadline_; }
  MemoryBudget* memory_budget() const { return budget_; }
  FaultInjector* fault_injector() const { return injector_; }

  /// The cooperative checkpoint, polled between pixel rows. Order: fault
  /// injector, cancellation token, deadline. A tripped token surfaces as
  /// Status::Cancelled (the caller asked to stop); an expired deadline as
  /// Status::DeadlineExceeded (time ran out). The distinction matters to
  /// the serving layer: a deadline miss is degradable/sheddable, a user
  /// cancel is final. The bench harness censors on either code.
  Status Check(std::string_view site) const;

  /// Pre-flight: would a computation needing `bytes` of auxiliary space fit
  /// in the remaining budget? ResourceExhausted if not.
  Status CheckBudgetFor(size_t bytes, std::string_view what) const;

  /// Accounts an actual allocation of `bytes` against the budget;
  /// ResourceExhausted (with nothing charged) if it does not fit. Also a
  /// fault-injection site, so tests can force OOM at a specific allocation.
  Status ChargeMemory(size_t bytes, std::string_view what) const;
  void ReleaseMemory(size_t bytes) const;

 private:
  const CancellationToken* cancel_ = nullptr;
  const Deadline* deadline_ = nullptr;
  MemoryBudget* budget_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

/// Null-safe polling helpers: a null context means unlimited execution.
inline Status ExecCheck(const ExecContext* exec, std::string_view site) {
  return exec == nullptr ? Status::OK() : exec->Check(site);
}
inline Status ExecChargeMemory(const ExecContext* exec, size_t bytes,
                               std::string_view what) {
  return exec == nullptr ? Status::OK() : exec->ChargeMemory(bytes, what);
}

/// Tracks the net bytes charged for a workspace that grows and shrinks over
/// a computation: Update(total) charges or releases the delta against the
/// context's budget, and the destructor returns whatever is still charged.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(const ExecContext* exec, std::string_view what)
      : exec_(exec), what_(what) {}
  ~ScopedMemoryCharge() {
    if (exec_ != nullptr && charged_ > 0) exec_->ReleaseMemory(charged_);
  }

  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Brings the charge to `total_bytes`; ResourceExhausted leaves the
  /// previous charge in place.
  Status Update(size_t total_bytes);
  size_t charged_bytes() const { return charged_; }

 private:
  const ExecContext* exec_;
  std::string what_;
  size_t charged_ = 0;
};

}  // namespace slam
