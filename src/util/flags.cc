#include "util/flags.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace slam {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::Register(const std::string& name, Flag flag) {
  SLAM_CHECK(!name.empty());
  SLAM_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag --" << name;
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddString(const std::string& name, std::string* out,
                           const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = *out;
  flag.set = [out](const std::string& v) {
    *out = v;
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagParser::AddDouble(const std::string& name, double* out,
                           const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = StringPrintf("%g", *out);
  flag.set = [out, name](const std::string& v) -> Status {
    SLAM_ASSIGN_OR_RETURN(*out, ParseDouble(v));
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagParser::AddInt64(const std::string& name, int64_t* out,
                          const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = std::to_string(*out);
  flag.set = [out](const std::string& v) -> Status {
    SLAM_ASSIGN_OR_RETURN(*out, ParseInt64(v));
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagParser::AddInt(const std::string& name, int* out,
                        const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = std::to_string(*out);
  flag.set = [out](const std::string& v) -> Status {
    SLAM_ASSIGN_OR_RETURN(const int64_t parsed, ParseInt64(v));
    if (parsed < INT32_MIN || parsed > INT32_MAX) {
      return Status::OutOfRange("value does not fit in int: " + v);
    }
    *out = static_cast<int>(parsed);
    return Status::OK();
  };
  Register(name, std::move(flag));
}

void FlagParser::AddBool(const std::string& name, bool* out,
                         const std::string& help) {
  Flag flag;
  flag.help = help;
  flag.default_value = *out ? "true" : "false";
  flag.is_bool = true;
  flag.set = [out](const std::string& v) -> Status {
    const std::string lower = ToLower(v);
    if (lower == "true" || lower == "1" || lower.empty()) {
      *out = true;
    } else if (lower == "false" || lower == "0") {
      *out = false;
    } else {
      return Status::InvalidArgument("expected true/false, got '" + v + "'");
    }
    return Status::OK();
  };
  Register(name, std::move(flag));
}

Result<std::vector<std::string>> FlagParser::Parse(
    int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return positional;
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    // Boolean negation: --no-foo.
    bool negated = false;
    auto it = flags_.find(name);
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      it = flags_.find(name.substr(3));
      if (it != flags_.end() && it->second.is_bool) {
        negated = true;
      } else {
        it = flags_.end();
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    const Flag& flag = it->second;
    if (negated) {
      if (has_value) {
        return Status::InvalidArgument("--no-" + it->first +
                                       " does not take a value");
      }
      SLAM_RETURN_NOT_OK(flag.set("false"));
      continue;
    }
    if (!has_value && !flag.is_bool) {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
      has_value = true;
    }
    SLAM_RETURN_NOT_OK(flag.set(has_value ? value : ""));
  }
  return positional;
}

std::string FlagParser::Usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StringPrintf("  --%-18s %s (default: %s)\n", name.c_str(),
                        flag.help.c_str(), flag.default_value.c_str());
  }
  out += "  --help               print this message\n";
  return out;
}

}  // namespace slam
