// Tiny declarative command-line flag parser for the CLI tools and
// examples. Supports --name=value, --name value, boolean --name /
// --no-name, and --help. No global state: each binary builds its own
// FlagParser.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace slam {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  // Registration: `out` must outlive Parse(); its current value is the
  // default shown in --help.
  void AddString(const std::string& name, std::string* out,
                 const std::string& help);
  void AddDouble(const std::string& name, double* out,
                 const std::string& help);
  void AddInt64(const std::string& name, int64_t* out,
                const std::string& help);
  void AddInt(const std::string& name, int* out, const std::string& help);
  void AddBool(const std::string& name, bool* out, const std::string& help);

  /// Parses argv. Returns the positional (non-flag) arguments in order.
  /// Unknown flags, missing values, and parse failures are errors.
  /// If --help is present, help_requested() becomes true and parsing stops
  /// successfully (callers should print Usage() and exit 0).
  Result<std::vector<std::string>> Parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string Usage() const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    std::function<Status(const std::string&)> set;
  };

  void Register(const std::string& name, Flag flag);

  std::string description_;
  std::map<std::string, Flag> flags_;  // ordered help output
  bool help_requested_ = false;
};

}  // namespace slam
