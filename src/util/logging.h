// Minimal leveled logger plus RocksDB/Arrow-style check macros.
#pragma once

#include <sstream>
#include <string>

namespace slam {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace slam

#define SLAM_LOG(level)                                                  \
  ::slam::internal::LogMessage(::slam::LogLevel::k##level, __FILE__, __LINE__)

// CHECK macros abort on violation; they guard internal invariants, not user
// input (user input errors flow through Status).
#define SLAM_CHECK(cond)                                              \
  if (!(cond))                                                        \
  ::slam::internal::LogMessage(::slam::LogLevel::kFatal, __FILE__,    \
                               __LINE__)                              \
      << "Check failed: " #cond " "

#define SLAM_CHECK_OP(lhs, rhs, op) SLAM_CHECK((lhs)op(rhs))
#define SLAM_CHECK_EQ(l, r) SLAM_CHECK_OP(l, r, ==)
#define SLAM_CHECK_NE(l, r) SLAM_CHECK_OP(l, r, !=)
#define SLAM_CHECK_LT(l, r) SLAM_CHECK_OP(l, r, <)
#define SLAM_CHECK_LE(l, r) SLAM_CHECK_OP(l, r, <=)
#define SLAM_CHECK_GT(l, r) SLAM_CHECK_OP(l, r, >)
#define SLAM_CHECK_GE(l, r) SLAM_CHECK_OP(l, r, >=)

#ifndef NDEBUG
#define SLAM_DCHECK(cond) SLAM_CHECK(cond)
#else
#define SLAM_DCHECK(cond) \
  if (false) ::slam::internal::NullStream()
#endif
