// Capability-annotated mutex primitives: std::mutex / std::lock_guard /
// std::condition_variable with the Clang thread-safety attributes attached,
// so shared fields can be declared SLAM_GUARDED_BY(mutex_) and
// `clang -Wthread-safety` verifies every access (see thread_annotations.h).
//
// The std types cannot be annotated retroactively, hence these thin
// wrappers. Zero overhead: every method is an inline forward. Mutex also
// models BasicLockable (lock/unlock), which is what lets CondVar sit on a
// std::condition_variable_any directly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace slam {

/// Annotated std::mutex. Prefer MutexLock over manual Lock/Unlock pairs.
class SLAM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SLAM_ACQUIRE() { mu_.lock(); }
  void Unlock() SLAM_RELEASE() { mu_.unlock(); }
  bool TryLock() SLAM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, required by std::condition_variable_any and
  // std::scoped_lock. Same analysis semantics as Lock/Unlock.
  void lock() SLAM_ACQUIRE() { mu_.lock(); }
  void unlock() SLAM_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a Mutex; the annotated equivalent of std::lock_guard.
class SLAM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SLAM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SLAM_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to slam::Mutex. Wait() must be called with the
/// mutex held; it releases while blocking and reacquires before returning,
/// which the SLAM_REQUIRES annotation expresses (held before and after).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// No predicate overload on purpose: the analysis cannot see that a
  /// predicate lambda runs under `mu`, so guarded reads inside it would
  /// warn. Spell the condition as a `while (!pred) cv.Wait(mu);` loop —
  /// the accesses then sit visibly inside the locked scope.
  void Wait(Mutex& mu) SLAM_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait: returns false on timeout, true when notified (subject to
  /// spurious wakeups — re-check the condition either way). Non-positive
  /// `seconds` returns false immediately without releasing the mutex for
  /// long: it behaves as an instantly-expired wait, which is what a
  /// deadline-aware queue wants for an already-hopeless request.
  bool WaitFor(Mutex& mu, double seconds) SLAM_REQUIRES(mu) {
    if (!(seconds > 0)) return false;
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace slam
