// Checked narrowing conversions for pixel-index and size arithmetic.
//
// The sweep kernels index pixels with `int` (matching the paper's X, Y)
// but size workspaces with `size_t` and aggregate rows with `int64_t`.
// Silent narrowing between those domains is where overflow bugs hide when
// grids approach INT_MAX pixels, so the repo-invariant linter
// (scripts/lint_invariants.py) bans raw `static_cast<int>` / C-style
// casts in pixel-index math outside this header and sweep_state.h — use
// these helpers instead; they assert the value round-trips.
#pragma once

#include <type_traits>
#include <utility>

#include "util/logging.h"

namespace slam {

/// Narrowing cast that DCHECKs the value is representable in `To`.
/// Integral → integral only; the pixel-coordinate float→index conversions
/// stay in LowerBucket/UpperBucket, which clamp explicitly.
template <typename To, typename From>
[[nodiscard]] inline To CheckedNarrow(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "CheckedNarrow is for integral conversions");
  SLAM_DCHECK(std::in_range<To>(value)) << "narrowing lost value";
  return static_cast<To>(value);
}

/// Pixel-index narrowing: int64_t (or size_t) row/column arithmetic back
/// to the `int` the Grid API speaks. Grid::Create bounds counts to
/// positive `int`, so a checked narrow documents (and in debug builds
/// verifies) that invariant at every conversion site.
template <typename From>
[[nodiscard]] inline int PixelIndex(From value) {
  return CheckedNarrow<int>(value);
}

/// `size_t` element count from any non-negative signed count.
template <typename From>
[[nodiscard]] inline size_t CheckedSize(From value) {
  static_assert(std::is_integral_v<From>);
  if constexpr (std::is_signed_v<From>) {
    SLAM_DCHECK(value >= From{0}) << "negative count";
  }
  return static_cast<size_t>(value);
}

}  // namespace slam
