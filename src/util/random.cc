#include "util/random.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace slam {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller. Guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  SLAM_DCHECK(rate > 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SLAM_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + NextBelow(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace slam
