// Deterministic pseudo-random utilities. All stochastic behaviour in the
// library (data generation, sampling, panning rectangles) flows through Rng
// so experiments are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace slam {

/// Thin deterministic wrapper over a fixed-engine PRNG (splitmix-seeded
/// xoshiro-style via std::mt19937_64 for portability of sequences across
/// standard libraries is NOT guaranteed by the standard for distributions,
/// so the uniform/normal helpers below implement their own transforms).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : state_(seed ? seed : 1) {}

  /// Uniform in [0, 2^64).
  uint64_t NextU64() {
    // splitmix64: tiny, fast, well distributed, identical everywhere.
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * n, negligible
    // for the sizes used here.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextU64()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential with the given rate.
  double Exponential(double rate);

  /// Returns k distinct indices drawn uniformly from [0, n) (k <= n),
  /// in random order. Used for sampling without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[NextBelow(i)]);
    }
  }

 private:
  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace slam
