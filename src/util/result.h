// Arrow-style Result<T>: either a value or an error Status.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace slam {

/// Result<T> holds either a T (status is OK) or an error Status. Accessing
/// the value of an error Result is a programming error (asserted in debug).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from value and from error status keeps call sites
  // natural: `return 42;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    status_.AbortIfNotOk();
    return *value_;
  }
  T& ValueOrDie() & {
    status_.AbortIfNotOk();
    return *value_;
  }
  T ValueOrDie() && {
    status_.AbortIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace slam

/// SLAM_ASSIGN_OR_RETURN(auto x, MakeX()): propagates error, else binds value.
#define SLAM_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()

#define SLAM_CONCAT_INNER(x, y) x##y
#define SLAM_CONCAT(x, y) SLAM_CONCAT_INNER(x, y)

#define SLAM_ASSIGN_OR_RETURN(lhs, rexpr) \
  SLAM_ASSIGN_OR_RETURN_IMPL(SLAM_CONCAT(_slam_result_, __LINE__), lhs, rexpr)
