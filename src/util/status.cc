#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace slam {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<const State>(State{code, std::move(message)})) {}

const std::string& Status::message() const noexcept {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace slam
