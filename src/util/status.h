// Arrow-style Status: the return type for all fallible operations in the
// library. No exceptions cross a public API boundary; functions that can
// fail return Status (or Result<T>, see result.h) and callers must check it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace slam {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kNotImplemented = 5,
  kIoError = 6,
  kInternal = 7,
  kCancelled = 8,
  kResourceExhausted = 9,
  kDeadlineExceeded = 10,
};

/// Returns a human-readable name such as "Invalid argument".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. OK status carries no allocation; error status
/// carries a code and message. Cheap to move, cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const noexcept { return state_ == nullptr; }
  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Empty string for OK status.
  const std::string& message() const noexcept;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and tests where failure is a programming error.
  void Abort() const;
  void AbortIfNotOk() const {
    if (!ok()) Abort();
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK; shared so copies of error statuses stay cheap.
  std::shared_ptr<const State> state_;
};

}  // namespace slam

/// Propagates a non-OK Status to the caller: `SLAM_RETURN_NOT_OK(DoThing());`
#define SLAM_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::slam::Status _slam_status = (expr);        \
    if (!_slam_status.ok()) return _slam_status; \
  } while (false)
