#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace slam {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  // std::from_chars, not strtod: strtod reads the process-global locale,
  // so a host with LC_NUMERIC using decimal commas silently mis-parses
  // every CSV (banned by scripts/lint_invariants.py). from_chars is
  // locale-independent and needs no NUL-terminated copy.
  std::string_view trimmed = Trim(s);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  // from_chars rejects an explicit '+', which strtod accepted; keep it.
  if (trimmed.front() == '+') trimmed.remove_prefix(1);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ptr != trimmed.data() + trimmed.size() || ec != std::errc()) {
    return Status::InvalidArgument("cannot parse '" + std::string(Trim(s)) +
                                   "' as double");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string_view trimmed = Trim(s);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  if (trimmed.front() == '+') trimmed.remove_prefix(1);
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ptr != trimmed.data() + trimmed.size() || ec != std::errc()) {
    return Status::InvalidArgument("cannot parse '" + std::string(Trim(s)) +
                                   "' as int64");
  }
  return value;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  const bool negative = value < 0;
  // Build digit groups from the right.
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace slam
