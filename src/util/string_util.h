// Small string helpers shared by CSV parsing, CLI handling, and reporting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace slam {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII.
std::string ToLower(std::string_view s);

/// Strict numeric parses: the whole (trimmed) input must be consumed.
Result<double> ParseDouble(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);

/// "12.3 s" / "456 ms" / "7.8 us" — human-readable duration.
std::string FormatDuration(double seconds);

/// "1234567" -> "1,234,567".
std::string FormatWithCommas(int64_t value);

/// printf-style into std::string.
std::string StringPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace slam
