// Clang thread-safety-analysis attribute macros (no-ops on GCC/MSVC).
// Annotating a field with SLAM_GUARDED_BY(mutex_) and the lock-shaped
// methods with SLAM_ACQUIRE/SLAM_RELEASE lets `clang -Wthread-safety`
// prove, at compile time, that every access to shared state holds the
// right lock. The repo builds with -Werror=thread-safety under Clang
// (see CMakeLists.txt), so a missing lock is a build break, not a TSan
// coin flip. Macro names follow the Clang documentation's reference
// mapping (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a
// SLAM_ prefix.
#pragma once

#if defined(__clang__)
#define SLAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SLAM_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Declares a type to be a lock ("capability" in Clang's vocabulary).
#define SLAM_CAPABILITY(x) SLAM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SLAM_SCOPED_CAPABILITY SLAM_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define SLAM_GUARDED_BY(x) SLAM_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer field's *pointee* may only be accessed holding `x`.
#define SLAM_PT_GUARDED_BY(x) SLAM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities (it neither acquires nor releases them).
#define SLAM_REQUIRES(...) \
  SLAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and holds them
/// on return.
#define SLAM_ACQUIRE(...) \
  SLAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities (they must be
/// held on entry).
#define SLAM_RELEASE(...) \
  SLAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and returns
/// `success` (true/false) when it got it.
#define SLAM_TRY_ACQUIRE(success, ...) \
  SLAM_THREAD_ANNOTATION(try_acquire_capability(success, __VA_ARGS__))

/// The annotated function may only be called while NOT holding the listed
/// capabilities (deadlock prevention for non-reentrant locks).
#define SLAM_EXCLUDES(...) SLAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is held — for functions
/// reached only from contexts the analysis cannot see through.
#define SLAM_ASSERT_CAPABILITY(x) \
  SLAM_THREAD_ANNOTATION(assert_capability(x))

/// The annotated function returns a reference to the named capability.
#define SLAM_RETURN_CAPABILITY(x) SLAM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only with a
/// comment explaining why the analysis cannot follow the code.
#define SLAM_NO_THREAD_SAFETY_ANALYSIS \
  SLAM_THREAD_ANNOTATION(no_thread_safety_analysis)
