#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace slam {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.SignalAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  SLAM_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    SLAM_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.Signal();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) {
    all_done_.Wait(mutex_);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mutex_);
      if (--in_flight_ == 0) {
        all_done_.SignalAll();
      }
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    fn(begin, end);
    return;
  }
  // ~2 chunks per worker balances load without much queue traffic.
  const int64_t range = end - begin;
  const int64_t chunks =
      std::min<int64_t>(range, 2 * pool->num_threads());
  const int64_t chunk_size = (range + chunks - 1) / chunks;
  for (int64_t lo = begin; lo < end; lo += chunk_size) {
    const int64_t hi = std::min(end, lo + chunk_size);
    pool->Submit([fn, lo, hi] { fn(lo, hi); });
  }
  pool->Wait();
}

}  // namespace slam
