// Minimal fixed-size thread pool with a blocking task queue, plus a
// ParallelFor helper. Used by the optional parallel KDV wrappers
// (kdv/parallel.h) — the paper evaluates single-CPU and leaves
// parallelism to future work; this is that extension.
//
// All shared state is GUARDED_BY(mutex_); `clang -Wthread-safety`
// (enforced as an error, see CMakeLists.txt) proves every access locked.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace slam {

class ThreadPool {
 public:
  /// num_threads <= 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;  // written only in ctor, joined in dtor
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> queue_ SLAM_GUARDED_BY(mutex_);
  int64_t in_flight_ SLAM_GUARDED_BY(mutex_) = 0;  // queued + running
  bool shutting_down_ SLAM_GUARDED_BY(mutex_) = false;
};

/// Splits [begin, end) into contiguous chunks and runs
/// `fn(chunk_begin, chunk_end)` across the pool. Blocks until complete.
/// With a null pool, runs inline (serial).
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace slam
