// Minimal fixed-size thread pool with a blocking task queue, plus a
// ParallelFor helper. Used by the optional parallel KDV wrappers
// (kdv/parallel.h) — the paper evaluates single-CPU and leaves
// parallelism to future work; this is that extension.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slam {

class ThreadPool {
 public:
  /// num_threads <= 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;  // queued + running
  bool shutting_down_ = false;
};

/// Splits [begin, end) into contiguous chunks and runs
/// `fn(chunk_begin, chunk_end)` across the pool. Blocks until complete.
/// With a null pool, runs inline (serial).
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace slam
