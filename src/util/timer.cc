// Timer is header-only; this TU exists so the target always has an object
// for the util library and to anchor the vtable-free types' debug symbols.
#include "util/timer.h"

namespace slam {
static_assert(sizeof(Timer) > 0);
}  // namespace slam
