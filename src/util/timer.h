// Wall-clock timing utilities for benchmarks and budgeted runs.
#pragma once

#include <chrono>
#include <cstdint>

namespace slam {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline for budgeted experiment cells (reproduces the paper's
/// ">14400 sec" censoring rule at laptop scale).
class Deadline {
 public:
  /// A deadline `budget_seconds` from now. Non-positive budget = unlimited.
  explicit Deadline(double budget_seconds)
      : budget_seconds_(budget_seconds), timer_() {}

  bool Expired() const {
    return budget_seconds_ > 0 && timer_.ElapsedSeconds() > budget_seconds_;
  }
  double budget_seconds() const { return budget_seconds_; }

 private:
  double budget_seconds_;
  Timer timer_;
};

}  // namespace slam
