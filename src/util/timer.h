// Wall-clock timing utilities for benchmarks and budgeted runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace slam {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline for budgeted experiment cells (reproduces the paper's
/// ">14400 sec" censoring rule at laptop scale) and for per-request
/// serving budgets.
///
/// A zero or negative budget is a deadline that has ALREADY passed: the
/// holder fails fast instead of doing unbounded work, so a client that
/// asks for "0 ms" gets an immediate DeadlineExceeded rather than an
/// unlimited computation. "No deadline" is expressed by not attaching one
/// (a null ExecContext member) or by Deadline::Unlimited().
class Deadline {
 public:
  /// A deadline `budget_seconds` from now. Non-positive budget = already
  /// expired (fail fast).
  explicit Deadline(double budget_seconds)
      : budget_seconds_(budget_seconds), timer_() {}

  /// A deadline that never expires.
  static Deadline Unlimited() {
    return Deadline(std::numeric_limits<double>::infinity());
  }

  bool Expired() const {
    return budget_seconds_ <= 0 || timer_.ElapsedSeconds() > budget_seconds_;
  }
  /// Seconds until expiry: 0 when already expired, +inf when unlimited.
  double RemainingSeconds() const {
    if (budget_seconds_ <= 0) return 0.0;
    const double remaining = budget_seconds_ - timer_.ElapsedSeconds();
    return remaining > 0 ? remaining : 0.0;
  }
  double budget_seconds() const { return budget_seconds_; }

 private:
  double budget_seconds_;
  Timer timer_;
};

}  // namespace slam
