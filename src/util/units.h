// Coordinate-space unit types: zero-cost tagged wrappers that make the
// sweep core's unit discipline a compile-time property (DESIGN.md §13).
//
// SLAM's correctness argument mixes four distinct scalar spaces that were
// all bare `double`/`int` until this header existed:
//
//   world coordinates   the data/projection space (EPSG meters, degrees):
//                       point coordinates, interval bounds LB/UB, row
//                       sweep-line positions k.          -> WorldX, WorldY
//   pixel indices       the lattice the paper calls q_1..q_X per row:
//                       array subscripts into rasters and SoA lanes.
//                                             -> PixelX, PixelY, RowIndex
//   bandwidth-scaled    dimensionless ratios d/b (or d²/b²) the kernel
//   quantities          profiles are polynomials in.   -> BandwidthScaled
//   densities           the output values F_P(q).         -> DensityValue
//
// Swapping an x for a y, a pixel index for a world coordinate, an
// unscaled distance for a bandwidth-scaled one, or a density for a
// coordinate is exactly the bug class the RAO transposition and the SoA
// refactor multiplied call sites for — and none of it compiles now (the
// negative try_compile suite under tests/compile_fail/ proves it).
//
// Design rules:
//  * Construction from the raw representation is explicit; reading it out
//    is an explicit `.value()`. No implicit conversions in either
//    direction, so a typed quantity can never silently cross spaces.
//  * Within one space, offset arithmetic is allowed in the underlying
//    representation (coordinate ± offset -> coordinate, coordinate −
//    coordinate -> offset): the sweep's interval math (p.x ± √(b²−dy²))
//    stays natural. Cross-space operators simply do not exist.
//  * Zero cost: each type is a trivially copyable single-field struct;
//    every operation is constexpr and inlines to the raw arithmetic.
//  * Checked space *conversions* (world -> pixel) return Result and live
//    with the Grid (kdv/grid.h: ToPixel/ToPixelX/ToPixelY), since only
//    the grid knows the lattice. Pixel -> world is total (Grid::XCoord/
//    YCoord).
//  * Inside src/simd/ the SoA lanes stay raw double* — the dispatch
//    tables are the one sanctioned raw-representation domain — but the
//    fill/read shims at its boundary speak TypedLane, so lane contents
//    are typed on entry and exit.
#pragma once

#include <compare>
#include <cstddef>

namespace slam {

/// The tagged-wrapper machinery. `Rep` is the raw representation, `Tag` an
/// otherwise-unused type that makes each space a distinct C++ type.
template <typename Rep, typename Tag>
class StrongUnit {
 public:
  using rep_type = Rep;

  constexpr StrongUnit() = default;
  constexpr explicit StrongUnit(Rep v) : v_(v) {}

  /// The raw representation; the only way out of the type.
  [[nodiscard]] constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(StrongUnit a, StrongUnit b) = default;
  friend constexpr auto operator<=>(StrongUnit a, StrongUnit b) = default;

  // Offset arithmetic within one space: a coordinate plus a plain offset
  // stays in its space, and the difference of two same-space coordinates
  // is a plain offset. There is deliberately no operator taking another
  // StrongUnit specialization — that absence is the type wall.
  friend constexpr StrongUnit operator+(StrongUnit a, Rep d) {
    return StrongUnit(a.v_ + d);
  }
  friend constexpr StrongUnit operator-(StrongUnit a, Rep d) {
    return StrongUnit(a.v_ - d);
  }
  friend constexpr Rep operator-(StrongUnit a, StrongUnit b) {
    return a.v_ - b.v_;
  }
  constexpr StrongUnit& operator+=(Rep d) {
    v_ += d;
    return *this;
  }
  constexpr StrongUnit& operator-=(Rep d) {
    v_ -= d;
    return *this;
  }
  /// Pixel-index loop idiom: `for (RowIndex iy(0); iy < rows; ++iy)`.
  constexpr StrongUnit& operator++() {
    v_ += Rep{1};
    return *this;
  }

 private:
  Rep v_ = Rep{};
};

/// World-space coordinates (projection units). WorldX and WorldY are
/// distinct types: the RAO transposition swaps axes wholesale, never one
/// scalar at a time, so an x/y mix-up is always a bug.
using WorldX = StrongUnit<double, struct WorldXTag>;
using WorldY = StrongUnit<double, struct WorldYTag>;

/// Pixel-lattice indices, 0-based. Valid subscripts are [0, axis count);
/// the endpoint-bucket value `count` (the park bucket, Eqs. 19–20) is
/// plain int on purpose — it is a bucket slot, not a pixel.
using PixelX = StrongUnit<int, struct PixelXTag>;
using PixelY = StrongUnit<int, struct PixelYTag>;

/// The sweep's row counter. A row of the (possibly RAO-transposed) task
/// grid IS its y pixel index — one name, one type, so `mutable_row(iy)`
/// and `YCoord(iy)` cannot take an x index.
using RowIndex = PixelY;

/// Dimensionless bandwidth-scaled quantity: d/b or d²/b² (context-fixed
/// per call site). The kernel profiles (kdv/kernel.h) are polynomials in
/// this space; feeding them an unscaled distance is a unit error the
/// compiler now rejects.
using BandwidthScaled = StrongUnit<double, struct BandwidthScaledTag>;

/// A kernel density value F_P(q) — the raster's cell space. Distinct from
/// every coordinate space so a density can never be used as a position.
using DensityValue = StrongUnit<double, struct DensityValueTag>;

/// A typed pixel position; what Viewport/Grid conversions hand back.
struct PixelCoord {
  PixelX x;
  PixelY y;

  friend constexpr bool operator==(const PixelCoord&, const PixelCoord&) =
      default;
};

/// Typed view of one SoA lane at the SIMD boundary: the lane storage is
/// the unit's raw representation (the backends under src/simd/ consume
/// `raw()`), but filling and reading go through the unit type, so a shim
/// cannot scatter y values into an x lane. Not a container — a view over
/// caller-owned memory, like std::span.
template <typename Unit>
class TypedLane {
 public:
  using rep_type = typename Unit::rep_type;

  constexpr TypedLane() = default;
  constexpr TypedLane(rep_type* data, size_t size)
      : data_(data), size_(size) {}

  constexpr void Store(size_t i, Unit v) { data_[i] = v.value(); }
  [[nodiscard]] constexpr Unit Load(size_t i) const {
    return Unit(data_[i]);
  }

  /// The raw lane for the dispatched backends (src/simd/ only).
  [[nodiscard]] constexpr rep_type* raw() const { return data_; }
  [[nodiscard]] constexpr size_t size() const { return size_; }

 private:
  rep_type* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace slam
