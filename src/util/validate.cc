#include "util/validate.h"

#include <limits>

#include "util/string_util.h"

namespace slam {

Status CheckFinite(double value, std::string_view what) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        StringPrintf("%.*s is non-finite (%g)",
                     static_cast<int>(what.size()), what.data(), value));
  }
  return Status::OK();
}

Status CheckPositiveNormal(double value, std::string_view what) {
  if (!std::isfinite(value) || !(value > 0.0)) {
    return Status::InvalidArgument(
        StringPrintf("%.*s must be positive and finite, got %g",
                     static_cast<int>(what.size()), what.data(), value));
  }
  if (!std::isnormal(value)) {
    return Status::InvalidArgument(StringPrintf(
        "%.*s is subnormal (%g): its reciprocal overflows; the smallest "
        "accepted magnitude is %g",
        static_cast<int>(what.size()), what.data(), value,
        std::numeric_limits<double>::min()));
  }
  return Status::OK();
}

Status CheckCoordinate(double value, std::string_view what) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        StringPrintf("%.*s is non-finite (%g)",
                     static_cast<int>(what.size()), what.data(), value));
  }
  if (std::abs(value) > InputLimits::kMaxCoordinateMagnitude) {
    return Status::InvalidArgument(StringPrintf(
        "%.*s magnitude %g exceeds the %g cap (fourth-power aggregate "
        "moments overflow beyond it)",
        static_cast<int>(what.size()), what.data(), value,
        InputLimits::kMaxCoordinateMagnitude));
  }
  return Status::OK();
}

Status CheckCoordinatePair(double x, double y, std::string_view what) {
  SLAM_RETURN_NOT_OK(CheckCoordinate(x, what));
  return CheckCoordinate(y, what);
}

Status CheckGridDims(int64_t width, int64_t height) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument(
        StringPrintf("grid dimensions must be positive, got %lldx%lld",
                     static_cast<long long>(width),
                     static_cast<long long>(height)));
  }
  if (width > InputLimits::kMaxGridDim || height > InputLimits::kMaxGridDim) {
    return Status::InvalidArgument(StringPrintf(
        "grid dimension %lldx%lld exceeds the per-axis cap of %d",
        static_cast<long long>(width), static_cast<long long>(height),
        InputLimits::kMaxGridDim));
  }
  // Both factors are <= 2^20, so the product fits in int64 exactly.
  if (width * height > InputLimits::kMaxGridCells) {
    return Status::InvalidArgument(StringPrintf(
        "grid of %lldx%lld = %lld cells exceeds the %lld-cell cap",
        static_cast<long long>(width), static_cast<long long>(height),
        static_cast<long long>(width * height),
        static_cast<long long>(InputLimits::kMaxGridCells)));
  }
  return Status::OK();
}

Status CheckBandwidth(double bandwidth) {
  SLAM_RETURN_NOT_OK(CheckPositiveNormal(bandwidth, "bandwidth"));
  if (bandwidth < InputLimits::kMinBandwidth ||
      bandwidth > InputLimits::kMaxBandwidth) {
    return Status::InvalidArgument(StringPrintf(
        "bandwidth %g outside the accepted range [%g, %g]", bandwidth,
        InputLimits::kMinBandwidth, InputLimits::kMaxBandwidth));
  }
  return Status::OK();
}

Status CheckRegion(double min_x, double min_y, double max_x, double max_y) {
  SLAM_RETURN_NOT_OK(CheckCoordinate(min_x, "region min x"));
  SLAM_RETURN_NOT_OK(CheckCoordinate(min_y, "region min y"));
  SLAM_RETURN_NOT_OK(CheckCoordinate(max_x, "region max x"));
  SLAM_RETURN_NOT_OK(CheckCoordinate(max_y, "region max y"));
  if (!(min_x < max_x) || !(min_y < max_y)) {
    return Status::InvalidArgument(StringPrintf(
        "region [%g, %g] x [%g, %g] is empty or inverted", min_x, max_x,
        min_y, max_y));
  }
  return Status::OK();
}

}  // namespace slam
