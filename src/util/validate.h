// Shared validation layer for every untrusted-input surface: CSV datasets,
// SLDM density-map files, CLI flags, and serving request parameters.
//
// Once ServingCore sits behind an HTTP endpoint, every byte it touches is
// attacker-controlled. The failure class this layer closes is *silent*
// arithmetic corruption: a NaN coordinate poisons every aggregate it meets,
// an Inf bandwidth turns the closed-form sweep polynomial into NaN - NaN, a
// subnormal bandwidth survives a `> 0` test but overflows its reciprocal,
// and a 2^31-scale grid dimension overflows the width*height product into
// a small positive allocation. Each surface used to re-derive its own
// subset of these checks; they now all call the helpers below, so the CLI,
// the loaders, and the serving path reject the same hostile input with the
// same typed Status.
//
// Contract: helpers return InvalidArgument with the offending field named,
// never crash, and never mutate. Canonicalization (the only lossy step,
// -0.0 / subnormal flush) is a separate explicit call.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace slam {

/// Central limits for untrusted inputs. One place, so the fuzzers can
/// assert "decoded implies within limits" and every surface agrees on
/// what a plausible input looks like.
struct InputLimits {
  /// Per-axis raster/grid dimension cap (pixels). Matches the SLDM header
  /// cap; far above any tile or screen but small enough that dim*dim
  /// cannot overflow int64.
  static constexpr int kMaxGridDim = 1 << 20;
  /// Total pixel cap: 2^26 doubles is a 512 MiB raster. Guards the
  /// width*height product, which per-axis caps alone leave at 2^40 cells
  /// (an 8 TiB allocation from a 16-byte hostile file header).
  static constexpr int64_t kMaxGridCells = int64_t{1} << 26;
  /// Coordinate magnitude cap. Finite-but-huge coordinates are the subtle
  /// hostile case: 1e300 passes std::isfinite but its fourth-power moment
  /// (the sweep aggregates carry x^4 terms) overflows to Inf and the
  /// closed-form evaluation returns NaN with no error. 1e12 is beyond any
  /// projected CRS (EPSG:3857 spans ~4e7 m) while keeping fourth powers
  /// at 1e48, comfortably inside double range even summed over billions
  /// of points.
  static constexpr double kMaxCoordinateMagnitude = 1e12;
  /// Bandwidth range for the serving path. The engine divides by b^2 and
  /// b^4 (quartic kernel), so b must keep both the powers and their
  /// reciprocals normal.
  static constexpr double kMinBandwidth = 1e-9;
  static constexpr double kMaxBandwidth = 1e12;
  /// CSV hardening caps (see util/csv.h): a single field, a single
  /// record, and the field count per record. Municipal exports sit orders
  /// of magnitude below these; anything above is a resource attack, not
  /// data.
  static constexpr size_t kMaxCsvFieldBytes = 64 * 1024;
  static constexpr size_t kMaxCsvRecordBytes = 1024 * 1024;
  static constexpr size_t kMaxCsvFieldsPerRecord = 1024;
  /// Per-request deadline cap (seconds). A deadline is untrusted input
  /// too: an enormous value pins a slot for the request's whole life.
  static constexpr double kMaxDeadlineSeconds = 3600.0;
};

/// NaN/Inf rejected; `what` names the field in the error message.
[[nodiscard]] Status CheckFinite(double value, std::string_view what);

/// Strictly positive, finite, and not subnormal. The subnormal clause is
/// the point: a denormal like 1e-310 passes `> 0` yet 1/x overflows to
/// Inf, which is exactly how a hostile bandwidth corrupts the sweep.
[[nodiscard]] Status CheckPositiveNormal(double value, std::string_view what);

/// A coordinate: finite and |v| <= InputLimits::kMaxCoordinateMagnitude.
/// Subnormals are fine here (they are just tiny); use
/// CanonicalizeCoordinate to flush them to a single representation.
[[nodiscard]] Status CheckCoordinate(double value, std::string_view what);
[[nodiscard]] Status CheckCoordinatePair(double x, double y, std::string_view what);

/// Raster/grid dimensions: positive, per-axis <= kMaxGridDim, and
/// width*height <= kMaxGridCells. Takes int64 so callers can pass raw
/// header fields before any narrowing.
[[nodiscard]] Status CheckGridDims(int64_t width, int64_t height);

/// Bandwidth on the serving path: CheckPositiveNormal plus the
/// [kMinBandwidth, kMaxBandwidth] range.
[[nodiscard]] Status CheckBandwidth(double bandwidth);

/// A rectangular region: all four corners valid coordinates and
/// min < max on both axes (degenerate or inverted regions rejected).
[[nodiscard]] Status CheckRegion(double min_x, double min_y, double max_x, double max_y);

/// Canonical form of an untrusted coordinate: -0.0 becomes +0.0 and
/// subnormals flush to 0.0, so "zero-ish" has one representation and
/// dedup/bucketing downstream cannot be steered by bit games. Finite
/// normal values pass through unchanged.
[[nodiscard]] inline double CanonicalizeCoordinate(double value) {
  if (value == 0.0 || (std::isfinite(value) && !std::isnormal(value))) {
    return 0.0;
  }
  return value;
}

}  // namespace slam
