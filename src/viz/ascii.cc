#include "viz/ascii.h"

#include <algorithm>
#include <cmath>

#include "viz/colormap.h"

namespace slam {

Result<std::string> RenderAscii(const DensityMap& map,
                                const AsciiOptions& options) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot render an empty density map");
  }
  if (options.max_columns <= 0 || options.max_rows <= 0 ||
      !(options.gamma > 0.0)) {
    return Status::InvalidArgument("invalid ascii render options");
  }
  static constexpr std::string_view kRamp = " .:-=+*#%@";
  const int cols = std::min(options.max_columns, map.width());
  const int rows = std::min(options.max_rows, map.height());
  const Normalizer norm{map.MinValue(), map.MaxValue(), options.gamma};
  std::string out;
  out.reserve(static_cast<size_t>(rows) * (cols + 1));
  for (int r = 0; r < rows; ++r) {
    // Top line = max y: walk raster rows from the top down, averaging the
    // block of pixels each character covers.
    const int y_hi = map.height() - r * map.height() / rows;
    const int y_lo = map.height() - (r + 1) * map.height() / rows;
    for (int c = 0; c < cols; ++c) {
      const int x_lo = c * map.width() / cols;
      const int x_hi = (c + 1) * map.width() / cols;
      double sum = 0.0;
      int count = 0;
      for (int y = y_lo; y < y_hi; ++y) {
        for (int x = x_lo; x < x_hi; ++x) {
          sum += map.at(x, y);
          ++count;
        }
      }
      const double t = norm.Normalize(count > 0 ? sum / count : 0.0);
      const size_t idx = std::min(
          kRamp.size() - 1, static_cast<size_t>(t * (kRamp.size() - 1) + 0.5));
      out.push_back(kRamp[idx]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace slam
