// ASCII heat map renderer for terminal demos and debugging: downsamples the
// raster and maps density to a character ramp.
#pragma once

#include <string>

#include "kdv/density_map.h"
#include "util/result.h"

namespace slam {

struct AsciiOptions {
  int max_columns = 78;
  int max_rows = 24;
  double gamma = 0.5;
};

/// Multiline string; the top line corresponds to the max-y edge.
Result<std::string> RenderAscii(const DensityMap& map,
                                const AsciiOptions& options = {});

}  // namespace slam
