#include "viz/colormap.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace slam {

std::string_view ColorMapName(ColorMapType type) {
  switch (type) {
    case ColorMapType::kHeat:
      return "heat";
    case ColorMapType::kGrayscale:
      return "grayscale";
    case ColorMapType::kViridis:
      return "viridis";
  }
  return "?";
}

Result<ColorMapType> ColorMapFromName(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "heat") return ColorMapType::kHeat;
  if (lower == "grayscale" || lower == "gray") return ColorMapType::kGrayscale;
  if (lower == "viridis") return ColorMapType::kViridis;
  return Status::InvalidArgument("unknown color map '" + std::string(name) +
                                 "'");
}

namespace {

uint8_t ToByte(double v) {
  return static_cast<uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
}

/// Piecewise-linear ramp through the given anchors (equally spaced in t).
template <size_t N>
Rgb Ramp(const Rgb (&anchors)[N], double t) {
  t = std::clamp(t, 0.0, 1.0);
  const double scaled = t * (N - 1);
  const size_t i = std::min(static_cast<size_t>(scaled), N - 2);
  const double f = scaled - static_cast<double>(i);
  const Rgb& a = anchors[i];
  const Rgb& b = anchors[i + 1];
  return {static_cast<uint8_t>(a.r + f * (b.r - a.r) + 0.5),
          static_cast<uint8_t>(a.g + f * (b.g - a.g) + 0.5),
          static_cast<uint8_t>(a.b + f * (b.b - a.b) + 0.5)};
}

}  // namespace

Rgb MapColor(ColorMapType type, double t) {
  switch (type) {
    case ColorMapType::kHeat: {
      // Transparent-ish blue base to deep red hotspot, as in GIS heat maps.
      static constexpr Rgb kAnchors[] = {
          {0, 0, 64},    {0, 64, 255},  {0, 200, 255},
          {120, 255, 80}, {255, 235, 0}, {255, 100, 0}, {200, 0, 0}};
      return Ramp(kAnchors, t);
    }
    case ColorMapType::kGrayscale: {
      const uint8_t v = ToByte(t);
      return {v, v, v};
    }
    case ColorMapType::kViridis: {
      static constexpr Rgb kAnchors[] = {
          {68, 1, 84},   {59, 82, 139}, {33, 145, 140},
          {94, 201, 98}, {253, 231, 37}};
      return Ramp(kAnchors, t);
    }
  }
  return {};
}

double Normalizer::Normalize(double v) const {
  const double range = max_value - min_value;
  if (!(range > 0.0)) return 0.0;
  const double t = std::clamp((v - min_value) / range, 0.0, 1.0);
  return gamma == 1.0 ? t : std::pow(t, gamma);
}

}  // namespace slam
