// Color maps for density rasters. The classic KDV "heat" ramp (blue → cyan
// → yellow → red, as in the paper's Figure 1) plus grayscale and viridis.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/result.h"

namespace slam {

struct Rgb {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
  bool operator==(const Rgb&) const = default;
};

enum class ColorMapType : int { kHeat = 0, kGrayscale = 1, kViridis = 2 };

std::string_view ColorMapName(ColorMapType type);
Result<ColorMapType> ColorMapFromName(std::string_view name);

/// Maps t in [0, 1] (clamped) to a color.
Rgb MapColor(ColorMapType type, double t);

/// Normalization from density to [0, 1]: linear between the raster's min
/// and max, with an optional gamma (< 1 emphasizes hotspots).
struct Normalizer {
  double min_value = 0.0;
  double max_value = 1.0;
  double gamma = 1.0;

  double Normalize(double v) const;
};

}  // namespace slam
