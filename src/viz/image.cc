#include "viz/image.h"

#include <fstream>

#include "util/string_util.h"

namespace slam {

Result<Image> Image::Create(int width, int height) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument(StringPrintf(
        "image dimensions must be positive, got %dx%d", width, height));
  }
  Image img;
  img.width_ = width;
  img.height_ = height;
  img.pixels_.assign(static_cast<size_t>(width) * height, Rgb{});
  return img;
}

Status Image::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels_.data()),
            static_cast<std::streamsize>(pixels_.size() * sizeof(Rgb)));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Status Image::WritePgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "P5\n" << width_ << " " << height_ << "\n255\n";
  std::vector<uint8_t> luma;
  luma.reserve(pixels_.size());
  for (const Rgb& c : pixels_) {
    // ITU-R BT.601 luma.
    luma.push_back(static_cast<uint8_t>(0.299 * c.r + 0.587 * c.g +
                                        0.114 * c.b + 0.5));
  }
  out.write(reinterpret_cast<const char*>(luma.data()),
            static_cast<std::streamsize>(luma.size()));
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace slam
