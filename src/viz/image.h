// Minimal RGB image buffer with binary PPM (P6) / PGM (P5) writers — no
// external image dependencies, viewable everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "viz/colormap.h"

namespace slam {

class Image {
 public:
  static Result<Image> Create(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  const Rgb& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * width_ + x];
  }
  void set(int x, int y, const Rgb& c) {
    pixels_[static_cast<size_t>(y) * width_ + x] = c;
  }

  /// Binary PPM (P6).
  Status WritePpm(const std::string& path) const;
  /// Binary PGM (P5) of the luma.
  Status WritePgm(const std::string& path) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace slam
