#include "viz/render.h"

namespace slam {

Result<Image> RenderDensityMap(const DensityMap& map,
                               const RenderOptions& options) {
  if (map.empty()) {
    return Status::InvalidArgument("cannot render an empty density map");
  }
  if (!(options.gamma > 0.0)) {
    return Status::InvalidArgument("render gamma must be positive");
  }
  SLAM_ASSIGN_OR_RETURN(Image img, Image::Create(map.width(), map.height()));
  const Normalizer norm{map.MinValue(), map.MaxValue(), options.gamma};
  for (int y = 0; y < map.height(); ++y) {
    const int image_y = map.height() - 1 - y;  // flip to top-down
    for (int x = 0; x < map.width(); ++x) {
      img.set(x, image_y,
              MapColor(options.colormap, norm.Normalize(map.at(x, y))));
    }
  }
  return img;
}

Status WriteDensityPpm(const DensityMap& map, const std::string& path,
                       const RenderOptions& options) {
  SLAM_ASSIGN_OR_RETURN(Image img, RenderDensityMap(map, options));
  return img.WritePpm(path);
}

}  // namespace slam
