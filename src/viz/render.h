// Density raster -> image. Row 0 of the DensityMap is the bottom pixel row
// (min y), so rendering flips vertically to image convention (row 0 = top).
#pragma once

#include "kdv/density_map.h"
#include "util/result.h"
#include "viz/colormap.h"
#include "viz/image.h"

namespace slam {

struct RenderOptions {
  ColorMapType colormap = ColorMapType::kHeat;
  /// gamma < 1 stretches hotspot contrast.
  double gamma = 0.5;
};

Result<Image> RenderDensityMap(const DensityMap& map,
                               const RenderOptions& options = {});

/// One-call convenience: render and write a PPM.
Status WriteDensityPpm(const DensityMap& map, const std::string& path,
                       const RenderOptions& options = {});

}  // namespace slam
