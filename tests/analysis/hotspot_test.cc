#include "analysis/hotspot.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "explore/viewport_ops.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"

namespace slam {
namespace {

/// A raster with two square plateaus: a strong 3x3 at (2..4, 2..4) valued
/// 10 and a weak 2x2 at (7..8, 7..8) valued 4, on a zero background.
DensityMap TwoBlobs() {
  auto m = *DensityMap::Create(12, 12);
  for (int y = 2; y <= 4; ++y) {
    for (int x = 2; x <= 4; ++x) m.set(x, y, 10.0);
  }
  m.set(3, 3, 12.0);  // interior peak
  for (int y = 7; y <= 8; ++y) {
    for (int x = 7; x <= 8; ++x) m.set(x, y, 4.0);
  }
  return m;
}

TEST(HotspotTest, FindsBothBlobsRankedByPeak) {
  HotspotOptions options;
  options.threshold = 1.0;
  const auto hotspots = *ExtractHotspots(TwoBlobs(), options);
  ASSERT_EQ(hotspots.size(), 2u);
  EXPECT_EQ(hotspots[0].id, 0);
  EXPECT_DOUBLE_EQ(hotspots[0].peak_density, 12.0);
  EXPECT_EQ(hotspots[0].pixel_count, 9);
  EXPECT_EQ(hotspots[0].peak_x, 3);
  EXPECT_EQ(hotspots[0].peak_y, 3);
  EXPECT_DOUBLE_EQ(hotspots[1].peak_density, 4.0);
  EXPECT_EQ(hotspots[1].pixel_count, 4);
}

TEST(HotspotTest, TotalDensityAndCentroid) {
  HotspotOptions options;
  options.threshold = 1.0;
  const auto hotspots = *ExtractHotspots(TwoBlobs(), options);
  // Strong blob: 9 pixels of 10 with one bumped to 12 -> 92.
  EXPECT_DOUBLE_EQ(hotspots[0].total_density, 92.0);
  // Symmetric layout -> centroid at the blob center (3, 3).
  EXPECT_NEAR(hotspots[0].centroid.x, 3.0, 1e-12);
  EXPECT_NEAR(hotspots[0].centroid.y, 3.0, 1e-12);
  // Weak blob: uniform 2x2 centered at (7.5, 7.5).
  EXPECT_NEAR(hotspots[1].centroid.x, 7.5, 1e-12);
  EXPECT_NEAR(hotspots[1].centroid.y, 7.5, 1e-12);
}

TEST(HotspotTest, ThresholdSeparatesBlobs) {
  HotspotOptions options;
  options.threshold = 5.0;  // weak blob is below
  const auto hotspots = *ExtractHotspots(TwoBlobs(), options);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_DOUBLE_EQ(hotspots[0].peak_density, 12.0);
}

TEST(HotspotTest, RelativeThreshold) {
  HotspotOptions options;
  options.relative_threshold = 0.5;  // 0.5 * 12 = 6 -> only the strong blob
  const auto hotspots = *ExtractHotspots(TwoBlobs(), options);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].pixel_count, 9);
}

TEST(HotspotTest, MinPixelsFiltersSpeckle) {
  auto m = TwoBlobs();
  m.set(11, 0, 50.0);  // single-pixel spike, strongest of all
  HotspotOptions options;
  options.threshold = 1.0;
  options.min_pixels = 2;
  const auto hotspots = *ExtractHotspots(m, options);
  ASSERT_EQ(hotspots.size(), 2u);  // spike removed
  EXPECT_DOUBLE_EQ(hotspots[0].peak_density, 12.0);
}

TEST(HotspotTest, MaxHotspotsKeepsStrongest) {
  HotspotOptions options;
  options.threshold = 1.0;
  options.max_hotspots = 1;
  const auto hotspots = *ExtractHotspots(TwoBlobs(), options);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_DOUBLE_EQ(hotspots[0].peak_density, 12.0);
}

TEST(HotspotTest, ConnectivityMatters) {
  // Two diagonal pixels touch only at a corner: one region under
  // 8-connectivity, two under 4-connectivity.
  auto m = *DensityMap::Create(4, 4);
  m.set(1, 1, 5.0);
  m.set(2, 2, 5.0);
  HotspotOptions options;
  options.threshold = 1.0;
  options.eight_connected = true;
  EXPECT_EQ(ExtractHotspots(m, options)->size(), 1u);
  options.eight_connected = false;
  EXPECT_EQ(ExtractHotspots(m, options)->size(), 2u);
}

TEST(HotspotTest, LabelsMatchHotspotIds) {
  HotspotOptions options;
  options.threshold = 1.0;
  std::vector<Hotspot> hotspots;
  const auto labels = *LabelHotspots(TwoBlobs(), options, &hotspots);
  ASSERT_EQ(hotspots.size(), 2u);
  const auto m = TwoBlobs();
  EXPECT_EQ(labels[3 * 12 + 3], 0);   // strong blob -> rank 0
  EXPECT_EQ(labels[7 * 12 + 7], 1);   // weak blob -> rank 1
  EXPECT_EQ(labels[0], -1);           // background
  // Every labeled pixel is above threshold and vice versa.
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      EXPECT_EQ(labels[static_cast<size_t>(y) * 12 + x] >= 0,
                m.at(x, y) >= 1.0);
    }
  }
}

TEST(HotspotTest, FilteredLabelsBecomeBackground) {
  auto m = TwoBlobs();
  m.set(11, 11, 99.0);  // speckle
  HotspotOptions options;
  options.threshold = 1.0;
  options.min_pixels = 2;
  std::vector<Hotspot> hotspots;
  const auto labels = *LabelHotspots(m, options, &hotspots);
  EXPECT_EQ(labels[11 * 12 + 11], -1);  // dropped region unlabeled
}

TEST(HotspotTest, Validation) {
  EXPECT_FALSE(ExtractHotspots(DensityMap{}, {}).ok());
  HotspotOptions bad;
  bad.relative_threshold = 1.5;
  EXPECT_FALSE(ExtractHotspots(TwoBlobs(), bad).ok());
  bad = HotspotOptions{};
  bad.min_pixels = 0;
  EXPECT_FALSE(ExtractHotspots(TwoBlobs(), bad).ok());
}

TEST(HotspotTest, WholeMapAboveThresholdIsOneRegion) {
  auto m = *DensityMap::Create(5, 5);
  for (auto& v : m.mutable_values()) v = 2.0;
  HotspotOptions options;
  options.threshold = 1.0;
  const auto hotspots = *ExtractHotspots(m, options);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].pixel_count, 25);
}

TEST(HotspotTest, NothingAboveThreshold) {
  HotspotOptions options;
  options.threshold = 1000.0;
  EXPECT_TRUE(ExtractHotspots(TwoBlobs(), options)->empty());
}

TEST(RasterToGeoTest, MapsThroughGridAxes) {
  const Grid grid = *Grid::Create({100.0, 2.0, 50}, {200.0, 3.0, 40});
  const Point geo = RasterToGeo(grid, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(geo.x, 120.0);
  EXPECT_DOUBLE_EQ(geo.y, 260.0);
  // Fractional raster coordinates (centroids) interpolate linearly.
  const Point frac = RasterToGeo(grid, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(frac.x, 101.0);
  EXPECT_DOUBLE_EQ(frac.y, 201.5);
}

TEST(HotspotTest, EndToEndCityHotspotsLandOnClusters) {
  // The strongest hotspot of a KDV raster must sit where the density peaks.
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.002, 91);
  const auto viewport = *DatasetViewport(ds, 40, 40);
  const auto map = *ComputeKdv(
      MakeTask(ds, viewport, KernelType::kEpanechnikov,
               *ScottBandwidth(ds.coords())),
      Method::kSlamBucketRao);
  HotspotOptions options;
  options.relative_threshold = 0.6;
  const auto hotspots = *ExtractHotspots(map, options);
  ASSERT_FALSE(hotspots.empty());
  EXPECT_DOUBLE_EQ(hotspots[0].peak_density, map.MaxValue());
}

}  // namespace
}  // namespace slam
