#include "analysis/kfunction.h"

#include <gtest/gtest.h>

#include <numbers>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::RandomPoints;

const std::vector<double> kRadii{1.0, 2.0, 4.0, 8.0, 16.0};

TEST(KFunctionTest, Validation) {
  const BoundingBox region({0, 0}, {10, 10});
  const std::vector<Point> one{{1, 1}};
  EXPECT_FALSE(ComputeKFunction(one, region, kRadii).ok());
  const auto pts = RandomPoints(10, 10.0, 1);
  EXPECT_FALSE(ComputeKFunction(pts, BoundingBox{}, kRadii).ok());
  EXPECT_FALSE(
      ComputeKFunction(pts, region, std::vector<double>{}).ok());
  EXPECT_FALSE(
      ComputeKFunction(pts, region, std::vector<double>{2.0, 1.0}).ok());
  EXPECT_FALSE(
      ComputeKFunction(pts, region, std::vector<double>{0.0, 1.0}).ok());
}

TEST(KFunctionTest, TwoPointsAnalytic) {
  // Two points 3 apart in a 10x10 region: pair counted in both directions
  // once r >= 3. K(r) = 100/4 * 2 = 50 for r >= 3, else 0.
  const std::vector<Point> pts{{2, 5}, {5, 5}};
  const BoundingBox region({0, 0}, {10, 10});
  const std::vector<double> radii{1.0, 3.0, 5.0};
  const auto result = *ComputeKFunctionNaive(pts, region, radii);
  EXPECT_DOUBLE_EQ(result.k_values[0], 0.0);
  EXPECT_DOUBLE_EQ(result.k_values[1], 50.0);  // boundary inclusive
  EXPECT_DOUBLE_EQ(result.k_values[2], 50.0);
}

TEST(KFunctionTest, FastMatchesNaive) {
  const BoundingBox region({0, 0}, {50, 50});
  for (const uint64_t seed : {811u, 821u, 823u}) {
    const auto pts = ClusteredPoints(400, 50.0, 4, seed);
    const auto naive = *ComputeKFunctionNaive(pts, region, kRadii);
    const auto fast = *ComputeKFunction(pts, region, kRadii);
    for (size_t i = 0; i < kRadii.size(); ++i) {
      EXPECT_DOUBLE_EQ(naive.k_values[i], fast.k_values[i])
          << "seed " << seed << " radius " << kRadii[i];
    }
  }
}

TEST(KFunctionTest, FastMatchesNaiveWithDuplicates) {
  std::vector<Point> pts = RandomPoints(100, 20.0, 827);
  // Inject coincident events (e.g. repeated incidents at one address).
  for (int i = 0; i < 20; ++i) pts.push_back({10.0, 10.0});
  const BoundingBox region({0, 0}, {20, 20});
  const std::vector<double> radii{0.5, 2.0, 5.0};
  const auto naive = *ComputeKFunctionNaive(pts, region, radii);
  const auto fast = *ComputeKFunction(pts, region, radii);
  for (size_t i = 0; i < radii.size(); ++i) {
    EXPECT_DOUBLE_EQ(naive.k_values[i], fast.k_values[i]);
  }
}

TEST(KFunctionTest, CsrProcessTracksPiRSquared) {
  // Uniform points: K(r) ~ pi r^2 for r well inside the region (no edge
  // correction, so stay small relative to the extent).
  const auto pts = RandomPoints(4000, 100.0, 829);
  const BoundingBox region({0, 0}, {100, 100});
  const std::vector<double> radii{2.0, 4.0, 6.0};
  const auto result = *ComputeKFunction(pts, region, radii);
  for (size_t i = 0; i < radii.size(); ++i) {
    const double expected = std::numbers::pi * radii[i] * radii[i];
    EXPECT_NEAR(result.k_values[i] / expected, 1.0, 0.25) << radii[i];
    EXPECT_DOUBLE_EQ(result.csr_values[i], expected);
  }
}

TEST(KFunctionTest, ClusteredProcessExceedsCsr) {
  const auto pts = ClusteredPoints(2000, 100.0, 3, 839);
  const BoundingBox region({0, 0}, {100, 100});
  const std::vector<double> radii{3.0, 6.0};
  const auto result = *ComputeKFunction(pts, region, radii);
  for (size_t i = 0; i < radii.size(); ++i) {
    EXPECT_GT(result.k_values[i], 2.0 * result.csr_values[i]);
  }
}

TEST(KFunctionTest, MonotoneNonDecreasingInRadius) {
  const auto pts = ClusteredPoints(500, 60.0, 5, 853);
  const BoundingBox region({0, 0}, {60, 60});
  const auto result = *ComputeKFunction(pts, region, kRadii);
  for (size_t i = 1; i < result.k_values.size(); ++i) {
    EXPECT_GE(result.k_values[i], result.k_values[i - 1]);
  }
}

}  // namespace
}  // namespace slam
