#include "baselines/akde.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;

KdvTask MakeAkdeTask(const std::vector<Point>& pts, KernelType kernel) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = 9.0;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(20, 16, 70.0);
  return task;
}

TEST(AkdeTest, ZeroEpsilonIsExact) {
  const auto pts = ClusteredPoints(700, 70.0, 4, 419);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeAkdeTask(pts, kernel);
    ComputeOptions opts;
    opts.akde_epsilon = 0.0;
    DensityMap out;
    ASSERT_TRUE(ComputeAkde(task, opts, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(AkdeTest, ErrorBoundedByEpsilon) {
  const auto pts = ClusteredPoints(5000, 70.0, 3, 421);
  const KdvTask task = MakeAkdeTask(pts, KernelType::kEpanechnikov);
  ComputeOptions opts;
  opts.akde_epsilon = 0.01;
  DensityMap out;
  ASSERT_TRUE(ComputeAkde(task, opts, &out).ok());
  const DensityMap exact = BruteForceDensity(task);
  // Per-point midpoint error <= eps/2, n points, weight w = 1/n:
  // per-pixel density error <= w * n * eps/2 = eps/2.
  const auto cmp = *exact.CompareTo(out);
  EXPECT_LE(cmp.max_abs_diff, 0.01 / 2.0 + 1e-12);
}

TEST(AkdeTest, SupportsGaussianKernel) {
  const auto pts = ClusteredPoints(500, 70.0, 2, 431);
  const KdvTask task = MakeAkdeTask(pts, KernelType::kGaussian);
  ComputeOptions opts;
  opts.akde_epsilon = 0.0;
  DensityMap out;
  ASSERT_TRUE(ComputeAkde(task, opts, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(AkdeTest, RejectsNegativeEpsilon) {
  const auto pts = ClusteredPoints(10, 70.0, 1, 433);
  const KdvTask task = MakeAkdeTask(pts, KernelType::kEpanechnikov);
  ComputeOptions opts;
  opts.akde_epsilon = -0.5;
  DensityMap out;
  EXPECT_FALSE(ComputeAkde(task, opts, &out).ok());
}

TEST(AkdeTest, EmptyPoints) {
  const KdvTask task = MakeAkdeTask({}, KernelType::kEpanechnikov);
  DensityMap out;
  ASSERT_TRUE(ComputeAkde(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
}

TEST(AkdeTest, HonorsDeadline) {
  const auto pts = ClusteredPoints(50000, 70.0, 5, 439);
  KdvTask task = MakeAkdeTask(pts, KernelType::kEpanechnikov);
  task.grid = MakeGrid(300, 300, 70.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeAkde(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace slam
