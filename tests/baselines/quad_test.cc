#include "baselines/quad.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;

KdvTask MakeQuadTask(const std::vector<Point>& pts, KernelType kernel,
                     double bandwidth = 9.0) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(20, 16, 70.0);
  return task;
}

TEST(QuadTest, DefaultModeIsExactForBoundedKernels) {
  const auto pts = ClusteredPoints(900, 70.0, 5, 443);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeQuadTask(pts, kernel);
    DensityMap out;
    ASSERT_TRUE(ComputeQuad(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(QuadTest, GaussianFallsBackToBoundTraversal) {
  const auto pts = ClusteredPoints(400, 70.0, 2, 449);
  const KdvTask task = MakeQuadTask(pts, KernelType::kGaussian);
  DensityMap out;
  ASSERT_TRUE(ComputeQuad(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(QuadTest, EpsilonModeBounded) {
  const auto pts = ClusteredPoints(5000, 70.0, 3, 457);
  const KdvTask task = MakeQuadTask(pts, KernelType::kEpanechnikov);
  ComputeOptions opts;
  opts.quad_epsilon = 0.02;
  DensityMap out;
  ASSERT_TRUE(ComputeQuad(task, opts, &out).ok());
  const DensityMap exact = BruteForceDensity(task);
  const auto cmp = *exact.CompareTo(out);
  EXPECT_LE(cmp.max_abs_diff, 0.02 / 2.0 + 1e-12);
}

TEST(QuadTest, RejectsNegativeEpsilon) {
  const auto pts = ClusteredPoints(10, 70.0, 1, 461);
  const KdvTask task = MakeQuadTask(pts, KernelType::kUniform);
  ComputeOptions opts;
  opts.quad_epsilon = -1.0;
  DensityMap out;
  EXPECT_FALSE(ComputeQuad(task, opts, &out).ok());
}

TEST(QuadTest, LargeBandwidthUsesWholeNodeAggregates) {
  // With b covering the whole extent, the root is fully inside every query
  // disk and the density must still be exact.
  const auto pts = ClusteredPoints(600, 70.0, 4, 463);
  const KdvTask task = MakeQuadTask(pts, KernelType::kQuartic, 500.0);
  DensityMap out;
  ASSERT_TRUE(ComputeQuad(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(QuadTest, EmptyPoints) {
  const KdvTask task = MakeQuadTask({}, KernelType::kEpanechnikov);
  DensityMap out;
  ASSERT_TRUE(ComputeQuad(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
}

TEST(QuadTest, HonorsDeadline) {
  const auto pts = ClusteredPoints(50000, 70.0, 5, 467);
  KdvTask task = MakeQuadTask(pts, KernelType::kEpanechnikov);
  task.grid = MakeGrid(400, 400, 70.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeQuad(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace slam
