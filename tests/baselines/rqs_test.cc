#include "baselines/rqs.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

KdvTask MakeRqsTask(const std::vector<Point>& pts, KernelType kernel,
                    double bandwidth) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(20, 15, 60.0);
  return task;
}

TEST(RqsKdTest, ExactForBoundedKernels) {
  const auto pts = ClusteredPoints(800, 60.0, 4, 359);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeRqsTask(pts, kernel, 7.0);
    DensityMap out;
    ASSERT_TRUE(ComputeRqsKd(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(RqsBallTest, ExactForBoundedKernels) {
  const auto pts = ClusteredPoints(800, 60.0, 4, 367);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeRqsTask(pts, kernel, 7.0);
    DensityMap out;
    ASSERT_TRUE(ComputeRqsBall(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(RqsTest, KdAndBallAgree) {
  const auto pts = RandomPoints(500, 60.0, 373);
  const KdvTask task = MakeRqsTask(pts, KernelType::kEpanechnikov, 10.0);
  DensityMap kd, ball;
  ASSERT_TRUE(ComputeRqsKd(task, {}, &kd).ok());
  ASSERT_TRUE(ComputeRqsBall(task, {}, &ball).ok());
  ExpectMapsNear(kd, ball, 1e-10);
}

TEST(RqsTest, TinyBandwidthFindsOnlyCoincidentPoints) {
  const std::vector<Point> pts{{30.05, 30.05}};  // near a pixel center
  const KdvTask task = MakeRqsTask(pts, KernelType::kUniform, 0.05);
  DensityMap out;
  ASSERT_TRUE(ComputeRqsKd(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-12);
}

TEST(RqsTest, EmptyPoints) {
  const KdvTask task = MakeRqsTask({}, KernelType::kQuartic, 5.0);
  DensityMap kd, ball;
  ASSERT_TRUE(ComputeRqsKd(task, {}, &kd).ok());
  ASSERT_TRUE(ComputeRqsBall(task, {}, &ball).ok());
  EXPECT_EQ(kd.MaxValue(), 0.0);
  EXPECT_EQ(ball.MaxValue(), 0.0);
}

TEST(RqsTest, HonorsDeadline) {
  const auto pts = RandomPoints(50000, 60.0, 379);
  KdvTask task = MakeRqsTask(pts, KernelType::kEpanechnikov, 30.0);
  task.grid = MakeGrid(300, 300, 60.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeRqsKd(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ComputeRqsBall(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(RqsTest, RejectsInvalidTask) {
  const std::vector<Point> pts{{0, 0}};
  KdvTask task = MakeRqsTask(pts, KernelType::kUniform, 5.0);
  task.grid = Grid{};
  DensityMap out;
  EXPECT_FALSE(ComputeRqsKd(task, {}, &out).ok());
  EXPECT_FALSE(ComputeRqsBall(task, {}, &out).ok());
}

}  // namespace
}  // namespace slam
