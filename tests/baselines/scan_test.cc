#include "baselines/scan.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

KdvTask MakeScanTask(const std::vector<Point>& pts, KernelType kernel) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = 5.0;
  task.weight = 0.01;
  task.grid = MakeGrid(16, 12, 40.0);
  return task;
}

TEST(ScanTest, MatchesIndependentBruteForce) {
  const auto pts = RandomPoints(300, 40.0, 347);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov, KernelType::kQuartic,
        KernelType::kGaussian}) {
    const KdvTask task = MakeScanTask(pts, kernel);
    DensityMap out;
    ASSERT_TRUE(ComputeScan(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-12,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(ScanTest, SupportsGaussianUnlikeSlam) {
  const auto pts = RandomPoints(50, 40.0, 349);
  const KdvTask task = MakeScanTask(pts, KernelType::kGaussian);
  DensityMap out;
  ASSERT_TRUE(ComputeScan(task, {}, &out).ok());
  // Gaussian has unbounded support: strictly positive everywhere.
  EXPECT_GT(out.MinValue(), 0.0);
}

TEST(ScanTest, EmptyPoints) {
  const KdvTask task = MakeScanTask({}, KernelType::kEpanechnikov);
  DensityMap out;
  ASSERT_TRUE(ComputeScan(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
}

TEST(ScanTest, RejectsInvalidTask) {
  const std::vector<Point> pts{{0, 0}};
  KdvTask task = MakeScanTask(pts, KernelType::kUniform);
  task.weight = -1.0;
  DensityMap out;
  EXPECT_FALSE(ComputeScan(task, {}, &out).ok());
}

TEST(ScanTest, HonorsDeadline) {
  const auto pts = RandomPoints(50000, 40.0, 353);
  KdvTask task = MakeScanTask(pts, KernelType::kEpanechnikov);
  task.grid = MakeGrid(200, 200, 40.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeScan(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace slam
