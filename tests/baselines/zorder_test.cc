#include "baselines/zorder.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::MakeGrid;

KdvTask MakeZTask(const std::vector<Point>& pts) {
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 12.0;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(24, 18, 80.0);
  return task;
}

TEST(ZorderTest, ApproximatesExactDensity) {
  const auto pts = ClusteredPoints(20000, 80.0, 5, 383);
  const KdvTask task = MakeZTask(pts);
  ComputeOptions opts;
  opts.zorder_epsilon = 0.05;
  DensityMap out;
  ASSERT_TRUE(ComputeZorder(task, opts, &out).ok());
  const DensityMap exact = BruteForceDensity(task);
  // Error should be a small fraction of the density scale.
  const auto cmp = *exact.CompareTo(out);
  EXPECT_LT(cmp.max_abs_diff, 0.25 * exact.MaxValue());
  // And the total mass should be close (sampling is unbiased-ish).
  EXPECT_NEAR(out.Sum() / exact.Sum(), 1.0, 0.15);
}

TEST(ZorderTest, SmallerEpsilonIsMoreAccurate) {
  const auto pts = ClusteredPoints(20000, 80.0, 5, 389);
  const KdvTask task = MakeZTask(pts);
  const DensityMap exact = BruteForceDensity(task);
  double prev_err = -1.0;
  for (const double eps : {0.2, 0.05, 0.01}) {
    ComputeOptions opts;
    opts.zorder_epsilon = eps;
    DensityMap out;
    ASSERT_TRUE(ComputeZorder(task, opts, &out).ok());
    double err = 0.0;
    for (size_t i = 0; i < out.values().size(); ++i) {
      err += std::abs(out.values()[i] - exact.values()[i]);
    }
    if (prev_err >= 0.0) {
      EXPECT_LT(err, prev_err * 1.2);  // allow slack; trend must hold
    }
    prev_err = err;
  }
}

TEST(ZorderTest, EpsilonCoveringWholeDatasetIsExact) {
  // Sample size >= n -> the "sample" is the full dataset -> exact result.
  const auto pts = ClusteredPoints(400, 80.0, 3, 397);
  const KdvTask task = MakeZTask(pts);
  ComputeOptions opts;
  opts.zorder_epsilon = 0.01;  // 1/eps^2 = 10000 > 400
  DensityMap out;
  ASSERT_TRUE(ComputeZorder(task, opts, &out).ok());
  testing::ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(ZorderTest, RejectsBadEpsilon) {
  const auto pts = ClusteredPoints(100, 80.0, 2, 401);
  const KdvTask task = MakeZTask(pts);
  DensityMap out;
  ComputeOptions opts;
  opts.zorder_epsilon = 0.0;
  EXPECT_FALSE(ComputeZorder(task, opts, &out).ok());
  opts.zorder_epsilon = 1.5;
  EXPECT_FALSE(ComputeZorder(task, opts, &out).ok());
}

TEST(ZorderTest, EmptyPoints) {
  const KdvTask task = MakeZTask({});
  DensityMap out;
  ASSERT_TRUE(ComputeZorder(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
}

TEST(ZorderTest, PreservesTotalWeightScale) {
  // With m samples of weight n/m each, a pixel far from everything is 0 and
  // the hotspot magnitude stays on the same scale as exact.
  const auto pts = ClusteredPoints(5000, 80.0, 1, 409);
  const KdvTask task = MakeZTask(pts);
  ComputeOptions opts;
  opts.zorder_epsilon = 0.1;
  DensityMap out;
  ASSERT_TRUE(ComputeZorder(task, opts, &out).ok());
  const DensityMap exact = BruteForceDensity(task);
  EXPECT_NEAR(out.MaxValue() / exact.MaxValue(), 1.0, 0.3);
}

}  // namespace
}  // namespace slam
