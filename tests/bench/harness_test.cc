#include "common/harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "testing/oracle.h"

namespace slam::bench {
namespace {

TEST(CellResultTest, ToStringForms) {
  CellResult ok;
  ok.seconds = 1.2345;
  EXPECT_EQ(ok.ToString(), "1.234");  // %.3f truncates by rounding
  CellResult censored;
  censored.censored = true;
  censored.seconds = 10.0;
  EXPECT_EQ(censored.ToString(), ">10");
  CellResult failed;
  failed.status = Status::Internal("boom");
  EXPECT_EQ(failed.ToString(), "ERR");
}

TEST(FormatSpeedupTest, Cases) {
  CellResult baseline;
  baseline.seconds = 10.0;
  CellResult ours;
  ours.seconds = 2.0;
  EXPECT_EQ(FormatSpeedup(baseline, ours), "5.0x");
  baseline.censored = true;
  EXPECT_EQ(FormatSpeedup(baseline, ours), ">=5.0x");
  baseline.censored = false;
  baseline.status = Status::Internal("x");
  EXPECT_EQ(FormatSpeedup(baseline, ours), "-");
  baseline = CellResult{};
  baseline.seconds = 10.0;
  ours.censored = true;
  EXPECT_EQ(FormatSpeedup(baseline, ours), "-");
}

TEST(BenchConfigTest, EnvOverrides) {
  setenv("SLAM_BENCH_SCALE", "0.123", 1);
  setenv("SLAM_BENCH_BUDGET", "3.5", 1);
  setenv("SLAM_BENCH_RES", "64x48", 1);
  const BenchConfig config = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(config.dataset_scale, 0.123);
  EXPECT_DOUBLE_EQ(config.budget_seconds, 3.5);
  EXPECT_EQ(config.width, 64);
  EXPECT_EQ(config.height, 48);
  unsetenv("SLAM_BENCH_SCALE");
  unsetenv("SLAM_BENCH_BUDGET");
  unsetenv("SLAM_BENCH_RES");
}

TEST(BenchConfigTest, CheckAndJsonEnvOverrides) {
  const BenchConfig defaults;
  EXPECT_FALSE(defaults.check_errors);
  EXPECT_TRUE(defaults.json_path.empty());
  setenv("SLAM_BENCH_CHECK", "1", 1);
  setenv("SLAM_BENCH_JSON", "/tmp/bench.jsonl", 1);
  BenchConfig config = BenchConfig::FromEnv();
  EXPECT_TRUE(config.check_errors);
  EXPECT_EQ(config.json_path, "/tmp/bench.jsonl");
  setenv("SLAM_BENCH_CHECK", "0", 1);
  config = BenchConfig::FromEnv();
  EXPECT_FALSE(config.check_errors);
  unsetenv("SLAM_BENCH_CHECK");
  unsetenv("SLAM_BENCH_JSON");
}

TEST(BenchConfigTest, MalformedEnvFallsBackToDefaults) {
  setenv("SLAM_BENCH_SCALE", "banana", 1);
  setenv("SLAM_BENCH_RES", "64by48", 1);
  const BenchConfig config = BenchConfig::FromEnv();
  const BenchConfig defaults;
  EXPECT_DOUBLE_EQ(config.dataset_scale, defaults.dataset_scale);
  EXPECT_EQ(config.width, defaults.width);
  unsetenv("SLAM_BENCH_SCALE");
  unsetenv("SLAM_BENCH_RES");
}

TEST(RunCellTest, MeasuresAndCompletes) {
  BenchConfig config;
  config.dataset_scale = 0.001;
  config.budget_seconds = 30.0;
  config.width = 20;
  config.height = 15;
  const auto ds = LoadBenchDataset(City::kSeattle, config);
  ASSERT_TRUE(ds.ok());
  const auto task = DatasetTask(*ds, config.width, config.height,
                                KernelType::kEpanechnikov);
  ASSERT_TRUE(task.ok());
  const CellResult cell = RunCell(*task, Method::kSlamBucketRao, config);
  EXPECT_TRUE(cell.status.ok());
  EXPECT_FALSE(cell.censored);
  EXPECT_GT(cell.seconds, 0.0);
  // No reference passed: the error column is explicitly unmeasured.
  EXPECT_TRUE(std::isnan(cell.max_rel_error));
}

TEST(RunCellTest, MeasuresMaxRelErrorAgainstReference) {
  BenchConfig config;
  config.dataset_scale = 0.001;
  config.budget_seconds = 30.0;
  config.width = 20;
  config.height = 15;
  config.check_errors = true;
  const auto ds = LoadBenchDataset(City::kSeattle, config);
  ASSERT_TRUE(ds.ok());
  const auto task = DatasetTask(*ds, config.width, config.height,
                                KernelType::kEpanechnikov);
  ASSERT_TRUE(task.ok());
  const auto reference = MaybeReference(*task, config);
  ASSERT_TRUE(reference.has_value());
  for (const Method m : {Method::kScan, Method::kSlamBucketRao}) {
    const CellResult cell =
        RunCell(*task, m, config, {}, &*reference);
    ASSERT_TRUE(cell.status.ok());
    EXPECT_FALSE(std::isnan(cell.max_rel_error));
    EXPECT_LT(cell.max_rel_error, 1e-9);
  }
  // check_errors off: MaybeReference declines to pay for the oracle pass.
  config.check_errors = false;
  EXPECT_FALSE(MaybeReference(*task, config).has_value());
}

TEST(PeakRssTest, WatermarkResetTracksAllocationsAndDropsAgain) {
  if (!ResetPeakRss()) {
    GTEST_SKIP() << "peak-RSS watermark reset unsupported on this platform";
  }
  const size_t baseline = PeakRssBytes();
  ASSERT_GT(baseline, 0u);
  // Allocate and touch well above page-accounting noise; the watermark
  // must climb by at least half of it.
  constexpr size_t kBlockBytes = 16u << 20;
  size_t with_block = 0;
  {
    std::vector<unsigned char> block(kBlockBytes);
    for (size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
    with_block = PeakRssBytes();
  }
  EXPECT_GE(with_block, baseline + kBlockBytes / 2);
  // After the block is freed a fresh reset must re-anchor the watermark
  // below the old peak — this is exactly what lets RunCell attribute a
  // cell's RSS to its own method instead of the process lifetime.
  ASSERT_TRUE(ResetPeakRss());
  EXPECT_LT(PeakRssBytes(), with_block);
}

TEST(CellJsonLineTest, FormatsMeasuredAndUnmeasuredCells) {
  CellResult cell;
  cell.seconds = 0.25;
  EXPECT_EQ(CellJsonLine("table7", "Seattle", Method::kScan, cell),
            "{\"experiment\":\"table7\",\"dataset\":\"Seattle\","
            "\"method\":\"SCAN\",\"seconds\":0.25,\"censored\":false,"
            "\"ok\":true,\"max_rel_error\":null,\"peak_rss_bytes\":0}");
  cell.max_rel_error = 0.5;
  cell.censored = true;
  const std::string line =
      CellJsonLine("table7", "Seattle", Method::kSlamBucket, cell);
  EXPECT_NE(line.find("\"max_rel_error\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"censored\":true"), std::string::npos);
}

TEST(MaybeAppendJsonTest, AppendsOneLinePerCall) {
  BenchConfig config;
  config.json_path = ::testing::TempDir() + "/slam_bench_test.jsonl";
  std::remove(config.json_path.c_str());
  MaybeAppendJson(config, "{\"a\":1}");
  MaybeAppendJson(config, "{\"b\":2}");
  std::ifstream in(config.json_path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "{\"a\":1}\n{\"b\":2}\n");
  std::remove(config.json_path.c_str());
  // Empty path: silently does nothing.
  config.json_path.clear();
  MaybeAppendJson(config, "{\"c\":3}");
}

TEST(RunCellTest, CensorsOverBudget) {
  BenchConfig config;
  config.dataset_scale = 0.02;
  config.budget_seconds = 0.001;  // everything blows this budget
  config.width = 400;
  config.height = 400;
  const auto ds = LoadBenchDataset(City::kSeattle, config);
  ASSERT_TRUE(ds.ok());
  const auto task = DatasetTask(*ds, config.width, config.height,
                                KernelType::kEpanechnikov);
  const CellResult cell = RunCell(*task, Method::kScan, config);
  EXPECT_TRUE(cell.censored);
  EXPECT_DOUBLE_EQ(cell.seconds, 0.001);
}

TEST(LoadBenchDatasetsTest, AllFourCitiesAtTinyScale) {
  BenchConfig config;
  config.dataset_scale = 0.0005;
  const auto datasets = LoadBenchDatasets(config);
  ASSERT_TRUE(datasets.ok());
  ASSERT_EQ(datasets->size(), 4u);
  // Sizes follow Table 5's ordering: Seattle < LA < NY < SF.
  for (size_t i = 1; i < datasets->size(); ++i) {
    EXPECT_GT((*datasets)[i].data.size(), (*datasets)[i - 1].data.size());
  }
  for (const auto& ds : *datasets) {
    EXPECT_GT(ds.scott_bandwidth, 0.0);
  }
}

TEST(DatasetTaskTest, BandwidthScaleApplies) {
  BenchConfig config;
  config.dataset_scale = 0.001;
  const auto ds = LoadBenchDataset(City::kNewYork, config);
  ASSERT_TRUE(ds.ok());
  const auto base =
      DatasetTask(*ds, 10, 10, KernelType::kUniform, 1.0);
  const auto doubled =
      DatasetTask(*ds, 10, 10, KernelType::kUniform, 2.0);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(doubled.ok());
  EXPECT_DOUBLE_EQ(doubled->bandwidth, 2.0 * base->bandwidth);
  EXPECT_EQ(base->grid.width(), 10);
}

}  // namespace
}  // namespace slam::bench
