// Positive control for the unit-type compile-fail suite: the SAME headers
// and APIs the negative cases misuse, used correctly. This file MUST
// build — if it ever stops compiling, the negative cases could be failing
// for an unrelated reason (broken include path, header error) and the
// suite would be vacuously green.
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "util/units.h"

int main() {
  slam::Grid grid;
  const slam::WorldX wx = grid.XCoord(slam::PixelX(0));
  const slam::WorldY wy = grid.YCoord(slam::PixelY(0));
  const slam::Point center = grid.PixelCenter(slam::PixelX(0), slam::PixelY(0));
  const double span = (wx + 1.0) - wx;  // offset arithmetic stays legal
  const double profile =
      slam::EpanechnikovProfile(slam::BandwidthScaled(0.5));
  return (wy.value() + center.x + span + profile) > 1e300 ? 1 : 0;
}
