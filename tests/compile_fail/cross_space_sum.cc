// MUST NOT COMPILE: arithmetic across coordinate spaces. Offset math
// (coordinate ± double) is legal; summing an x with a y has no meaning in
// any space and no operator exists for it.
#include "util/units.h"

int main() {
  const auto bad = slam::WorldX(1.0) + slam::WorldY(2.0);  // x + y
  return bad.value() > 0.0 ? 1 : 0;
}
