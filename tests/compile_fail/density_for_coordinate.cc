// MUST NOT COMPILE: a density value used as a coordinate. F_P(q) lives in
// the raster's cell space; the checked world->pixel conversion only
// accepts the matching world coordinate type.
#include "kdv/grid.h"
#include "util/units.h"

int main() {
  slam::Grid grid;
  const slam::DensityValue density(0.125);
  const auto pixel = grid.ToPixelX(density);  // density is not a position
  return pixel.ok() ? 0 : 1;
}
