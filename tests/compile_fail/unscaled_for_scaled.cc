// MUST NOT COMPILE: raw squared distance fed to a kernel profile. The
// profiles are polynomials in the dimensionless d²/b²; passing an
// unscaled d² (a plain double) skips the bandwidth division and the
// explicit BandwidthScaled constructor refuses the implicit conversion.
#include "kdv/kernel.h"
#include "util/units.h"

int main() {
  const double squared_distance = 0.25;
  const double w = slam::EpanechnikovProfile(squared_distance);  // unscaled
  return w > 0.0 ? 0 : 1;
}
