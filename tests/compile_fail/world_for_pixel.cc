// MUST NOT COMPILE: world coordinate used as a pixel index. XCoord maps
// lattice index -> world; feeding it a world coordinate would silently
// re-interpret meters as subscripts if the parameter were still `int`.
#include "kdv/grid.h"
#include "util/units.h"

int main() {
  slam::Grid grid;
  const slam::WorldX wx = grid.XCoord(slam::WorldX(12.5));  // world != pixel
  return wx.value() > 0.0 ? 1 : 0;
}
