// MUST NOT COMPILE: x/y axis swap. A y pixel index handed to the x-axis
// accessor — the exact single-scalar mix-up the RAO transposition
// (Grid::Transposed) makes easy to write and units.h makes impossible.
#include "kdv/grid.h"
#include "util/units.h"

int main() {
  slam::Grid grid;
  const slam::WorldX wx = grid.XCoord(slam::PixelY(0));  // wrong axis
  return wx.value() > 0.0 ? 1 : 0;
}
