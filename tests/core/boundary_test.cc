// Exact-boundary regression tests (PR 3 satellite): a point at distance
// exactly `b` from a pixel row or pixel center sits on the knife edge of
// every inclusion decision in the pipeline. These tests pin the inclusive
// convention — |k - p.y| <= b for envelopes, LB <= q.x (Eq. 19) and the
// strict < exit of Eq. 20 for buckets — and prove the full methods agree
// bitwise with direct evaluation when every intermediate value is exactly
// representable (bandwidth a power of two, coordinates multiples of 1/2).
#include <gtest/gtest.h>

#include <vector>

#include "core/bounds.h"
#include "core/envelope.h"
#include "core/slam_bucket.h"
#include "kdv/engine.h"
#include "kdv/task.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;

constexpr double kBandwidth = 2.0;  // power of two: 1/b and d²/b² are exact

// 8x8 grid with pixel centers at 0.5, 1.5, ..., 7.5 on both axes.
Grid BoundaryGrid() {
  return Grid::Create(GridAxis{0.5, 1.0, 8}, GridAxis{0.5, 1.0, 8})
      .ValueOrDie();
}

TEST(BoundaryTest, EnvelopeIncludesRowAtDistanceExactlyB) {
  const std::vector<Point> points = {{3.5, 3.5}};
  const EnvelopeScanner scanner(points);
  std::vector<Point> found;
  // Rows exactly b above and below the point: Definition 1 is inclusive.
  for (const double k : {3.5 - kBandwidth, 3.5 + kBandwidth}) {
    FindEnvelope(points, WorldY(k), kBandwidth, &found);
    ASSERT_EQ(found.size(), 1u) << "FindEnvelope at k=" << k;
    EXPECT_EQ(found[0].x, 3.5);
    EXPECT_EQ(found[0].y, 3.5);
    const auto span = scanner.Envelope(WorldY(k), kBandwidth);
    ASSERT_EQ(span.size(), 1u) << "EnvelopeScanner at k=" << k;
    EXPECT_EQ(span[0].x, found[0].x);
    EXPECT_EQ(span[0].y, found[0].y);
  }
  // One ulp past the boundary row: excluded by both. (Computed directly
  // on the row coordinate — adding a perturbed bandwidth to 3.5 would
  // round back to 5.5.)
  const double beyond = std::nextafter(3.5 + kBandwidth, 10.0);
  FindEnvelope(points, WorldY(beyond), kBandwidth, &found);
  EXPECT_TRUE(found.empty());
  EXPECT_TRUE(scanner.Envelope(WorldY(beyond), kBandwidth).empty());
}

TEST(BoundaryTest, BoundIntervalsAtExactRowDistanceCollapseToPoint) {
  // At |k - p.y| == b the sqrt argument is exactly 0 and the interval
  // degenerates to [p.x, p.x] — both endpoints bitwise equal to p.x.
  const std::vector<Point> envelope = {{3.5, 3.5}};
  std::vector<BoundInterval> intervals;
  ComputeBoundIntervals(envelope, /*k=*/WorldY(5.5), kBandwidth, &intervals);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].lb, 3.5);
  EXPECT_EQ(intervals[0].ub, 3.5);
}

TEST(BoundaryTest, BucketClampsAgreeWithSweepConvention) {
  const GridAxis xs{0.5, 1.0, 8};
  // Point at x=3.5, row at the point's own y: LB = 1.5, UB = 5.5 — both
  // landing exactly on pixel centers.
  // LowerBucket: first pixel with LB <= x_i. x_1 = 1.5 qualifies.
  EXPECT_EQ(LowerBucket(WorldX(1.5), xs), 1);
  // UpperBucket: first pixel with UB < x_i (strict, Eq. 20) — the pixel
  // *at* the upper bound still counts, so the exit fires at x_6 = 6.5.
  EXPECT_EQ(UpperBucket(WorldX(5.5), xs), 6);
  // One ulp either side of a pixel center moves exactly one bucket.
  EXPECT_EQ(LowerBucket(WorldX(std::nextafter(1.5, 2.0)), xs), 2);
  EXPECT_EQ(UpperBucket(WorldX(std::nextafter(5.5, 5.0)), xs), 5);
  // Clamps: below the axis -> 0, past the end -> count.
  EXPECT_EQ(LowerBucket(WorldX(-100.0), xs), 0);
  EXPECT_EQ(UpperBucket(WorldX(-100.0), xs), 0);
  EXPECT_EQ(LowerBucket(WorldX(100.0), xs), 8);
  EXPECT_EQ(UpperBucket(WorldX(100.0), xs), 8);
}

TEST(BoundaryTest, ExactDistanceBAgreesBitwiseAcrossMethods) {
  // Single point dead-center; pixels (5, 3), (1, 3), (3, 5), (3, 1) sit at
  // distance exactly b along an axis. Every intermediate quantity — the
  // row-local translation, d², d²/b², the aggregate recombination — is an
  // exact multiple of 1/4 far below 2^53, so all methods must produce the
  // *bitwise* value of direct evaluation, for all three kernels. The
  // uniform kernel is the discriminating one: its boundary value is 1/b,
  // not 0, so an off-by-one-ulp inclusion test shows up as a 0.5 step.
  KdvTask task;
  const std::vector<Point> points = {{3.5, 3.5}};
  task.points = points;
  task.grid = BoundaryGrid();
  task.bandwidth = kBandwidth;
  task.weight = 1.0;
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    task.kernel = kernel;
    const DensityMap direct = BruteForceDensity(task);
    if (kernel == KernelType::kUniform) {
      EXPECT_EQ(direct.at(5, 3), 0.5);  // 1/b at distance exactly b
      EXPECT_EQ(direct.at(1, 3), 0.5);
      EXPECT_EQ(direct.at(3, 5), 0.5);
      EXPECT_EQ(direct.at(3, 1), 0.5);
    }
    for (const Method method :
         {Method::kScan, Method::kSlamSort, Method::kSlamBucket,
          Method::kSlamSortRao, Method::kSlamBucketRao}) {
      const auto map = ComputeKdv(task, method);
      ASSERT_TRUE(map.ok()) << MethodName(method);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          EXPECT_EQ(map->at(x, y), direct.at(x, y))
              << MethodName(method) << " " << KernelTypeName(kernel)
              << " pixel (" << x << ", " << y << ")";
        }
      }
    }
  }
}

TEST(BoundaryTest, CompensationPreservesExactBoundaryValues) {
  // The Neumaier path must not perturb exactly-representable results.
  KdvTask task;
  const std::vector<Point> points = {{3.5, 3.5}, {4.5, 3.5}, {2.5, 2.5}};
  task.points = points;
  task.grid = BoundaryGrid();
  task.bandwidth = kBandwidth;
  task.weight = 1.0;
  task.kernel = KernelType::kEpanechnikov;
  const DensityMap direct = BruteForceDensity(task);
  for (const bool compensated : {true, false}) {
    EngineOptions options;
    options.compute.compensated_aggregates = compensated;
    for (const Method method : {Method::kSlamSort, Method::kSlamBucket}) {
      const auto map = ComputeKdv(task, method, options);
      ASSERT_TRUE(map.ok()) << MethodName(method);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          EXPECT_EQ(map->at(x, y), direct.at(x, y))
              << MethodName(method) << " compensated=" << compensated
              << " pixel (" << x << ", " << y << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace slam
