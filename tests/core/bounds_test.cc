#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/envelope.h"
#include "testing/test_util.h"

namespace slam {
namespace {

TEST(BoundIntervalsTest, MatchPaperFormulas) {
  // Point at (10, 3), row k = 0, b = 5: half-width = sqrt(25 - 9) = 4.
  const std::vector<Point> env{{10, 3}};
  std::vector<BoundInterval> out;
  ComputeBoundIntervals(env, WorldY(0.0), 5.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].lb, 6.0);
  EXPECT_DOUBLE_EQ(out[0].ub, 14.0);
  EXPECT_EQ(out[0].p, (Point{10.0, 3.0}));
}

TEST(BoundIntervalsTest, PointOnRowHasFullWidth) {
  const std::vector<Point> env{{7, 2}};
  std::vector<BoundInterval> out;
  ComputeBoundIntervals(env, WorldY(2.0), 3.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].lb, 4.0);
  EXPECT_DOUBLE_EQ(out[0].ub, 10.0);
}

TEST(BoundIntervalsTest, PointAtBandwidthEdgeHasZeroWidth) {
  const std::vector<Point> env{{7, 5}};
  std::vector<BoundInterval> out;
  ComputeBoundIntervals(env, WorldY(0.0), 5.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].lb, 7.0);
  EXPECT_DOUBLE_EQ(out[0].ub, 7.0);
}

TEST(BoundIntervalsTest, IntervalMembershipEqualsDistanceTest) {
  // Lemma 2: q.x in [LB, UB]  <=>  dist(q, p) <= b, for q on the row.
  Rng rng(199);
  for (int trial = 0; trial < 200; ++trial) {
    const double b = rng.Uniform(0.5, 10.0);
    const double k = rng.Uniform(-5, 5);
    const Point p{rng.Uniform(-20, 20), k + rng.Uniform(-b, b)};
    std::vector<BoundInterval> out;
    const std::vector<Point> env{p};
    ComputeBoundIntervals(env, WorldY(k), b, &out);
    ASSERT_EQ(out.size(), 1u);
    for (int i = 0; i < 20; ++i) {
      const Point q{rng.Uniform(-25, 25), k};
      const bool in_interval = out[0].lb <= q.x && q.x <= out[0].ub;
      const bool in_range = SquaredDistance(q, p) <= b * b;
      // FP at the boundary: allow disagreement only within 1e-9 of the edge.
      if (std::abs(q.x - out[0].lb) > 1e-9 &&
          std::abs(q.x - out[0].ub) > 1e-9) {
        EXPECT_EQ(in_interval, in_range)
            << "q.x=" << q.x << " lb=" << out[0].lb << " ub=" << out[0].ub;
      }
    }
  }
}

TEST(BoundIntervalsTest, EnvelopePipelineProducesOneIntervalPerPoint) {
  const auto pts = testing::RandomPoints(300, 50.0, 211);
  std::vector<Point> env;
  FindEnvelope(pts, WorldY(25.0), 8.0, &env);
  std::vector<BoundInterval> out;
  ComputeBoundIntervals(env, WorldY(25.0), 8.0, &out);
  EXPECT_EQ(out.size(), env.size());
  for (const BoundInterval& iv : out) {
    EXPECT_LE(iv.lb, iv.ub);
    // Interval is centered on the point's x.
    EXPECT_NEAR((iv.lb + iv.ub) / 2.0, iv.p.x, 1e-9);
    // Half-width never exceeds the bandwidth.
    EXPECT_LE(iv.ub - iv.lb, 16.0 + 1e-9);
  }
}

TEST(BoundIntervalsTest, ClearsPreviousContents) {
  std::vector<BoundInterval> out(5);
  ComputeBoundIntervals({}, WorldY(0.0), 1.0, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace slam
