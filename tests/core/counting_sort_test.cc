// The pixel-binned counting sort (SimdOps::histogram_scatter, DESIGN.md
// §12) vs a std::stable_sort reference. The counting sort replaced the
// per-row comparison sort of SLAM_SORT; its contract is that every pixel
// receives the identical run *set* the sort-then-merge produced — and,
// because the scatter is stable, the identical run *sequence* a stable
// comparison sort by bucket produces. Each case runs on every SIMD
// backend compiled into this binary and available on this CPU, and the
// backends are additionally held bit-identical to the scalar reference
// (the pass is integer control flow plus an exact translation, so "close"
// would already be a bug).
//
// Grids here are exactly representable (origins and gaps that are powers
// of two or exact halves), so the strict/non-strict boundary cases below
// are decided by the bucket formulas, not by rounding of the test inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/slam_bucket.h"
#include "core/sweep_state.h"
#include "kdv/grid.h"
#include "simd/dispatch.h"
#include "simd/sweep_ops.h"
#include "util/random.h"

namespace slam {
namespace {

/// Every backend this binary can actually run, scalar first.
std::vector<const SimdOps*> AvailableBackends() {
  std::vector<const SimdOps*> out{GetScalarOps()};
  for (const SimdOps* ops : {GetAvx2Ops(), GetNeonOps()}) {
    if (ops != nullptr && SimdLevelAvailable(ops->level)) out.push_back(ops);
  }
  return out;
}

/// One side's scattered output: run offsets plus row-local SoA lanes.
struct Runs {
  std::vector<int32_t> offsets;
  std::vector<double> px, py;
};

struct ScatterOutput {
  Runs lower, upper;
};

/// A complete histogram_scatter input: bucket indices per endpoint plus
/// the (global) coordinates to scatter.
struct Workload {
  int num_pixels = 0;
  double origin_x = 0.0;
  double origin_y = 0.0;
  std::vector<int32_t> lower_idx, upper_idx;
  std::vector<double> ex, ey;

  size_t n() const { return ex.size(); }
};

ScatterOutput RunScatter(const SimdOps* ops, const Workload& w) {
  const size_t pixels = static_cast<size_t>(w.num_pixels);
  ScatterOutput out;
  out.lower.offsets.assign(pixels + 2, -1);
  out.upper.offsets.assign(pixels + 2, -1);
  out.lower.px.assign(w.n(), 0.0);
  out.lower.py.assign(w.n(), 0.0);
  out.upper.px.assign(w.n(), 0.0);
  out.upper.py.assign(w.n(), 0.0);
  std::vector<int32_t> lower_cursor(pixels + 1), upper_cursor(pixels + 1);

  HistogramScatterArgs args;
  args.n = w.n();
  args.num_pixels = w.num_pixels;
  args.lower_idx = w.lower_idx.data();
  args.upper_idx = w.upper_idx.data();
  args.ex = w.ex.data();
  args.ey = w.ey.data();
  args.origin_x = w.origin_x;
  args.origin_y = w.origin_y;
  args.lower_offsets = out.lower.offsets.data();
  args.upper_offsets = out.upper.offsets.data();
  args.lower_cursor = lower_cursor.data();
  args.upper_cursor = upper_cursor.data();
  args.lower_px = out.lower.px.data();
  args.lower_py = out.lower.py.data();
  args.upper_px = out.upper.px.data();
  args.upper_py = out.upper.py.data();
  ops->histogram_scatter(args);
  return out;
}

/// The reference: a stable comparison sort by bucket, then runs cut at
/// bucket changes — exactly the order the retired sort-then-merge loop
/// fed the accumulators in.
Runs StableSortReference(const std::vector<int32_t>& idx,
                         const std::vector<double>& ex,
                         const std::vector<double>& ey, int num_pixels,
                         double origin_x, double origin_y) {
  std::vector<size_t> order(idx.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&idx](size_t a, size_t b) { return idx[a] < idx[b]; });
  Runs runs;
  runs.offsets.assign(static_cast<size_t>(num_pixels) + 2, 0);
  for (const int32_t b : idx) {
    runs.offsets[static_cast<size_t>(b) + 1] += 1;
  }
  for (size_t i = 1; i < runs.offsets.size(); ++i) {
    runs.offsets[i] += runs.offsets[i - 1];
  }
  for (const size_t i : order) {
    runs.px.push_back(ex[i] - origin_x);
    runs.py.push_back(ey[i] - origin_y);
  }
  return runs;
}

void ExpectRunsValid(const Runs& runs, size_t n, int num_pixels,
                     const char* side) {
  SCOPED_TRACE(side);
  ASSERT_EQ(runs.offsets.size(), static_cast<size_t>(num_pixels) + 2);
  EXPECT_EQ(runs.offsets.front(), 0);
  for (size_t i = 1; i < runs.offsets.size(); ++i) {
    EXPECT_LE(runs.offsets[i - 1], runs.offsets[i]) << "offset " << i;
  }
  // Coverage: the park run's end is the total endpoint count — every
  // endpoint landed in exactly one run.
  EXPECT_EQ(runs.offsets.back(), static_cast<int32_t>(n));
}

void ExpectRunsEqual(const Runs& actual, const Runs& expected,
                     const char* side) {
  SCOPED_TRACE(side);
  EXPECT_EQ(actual.offsets, expected.offsets);
  // Bit-equality is intentional: the scatter is an exact translation of
  // exact inputs, in the stable order.
  EXPECT_EQ(actual.px, expected.px);
  EXPECT_EQ(actual.py, expected.py);
}

struct SortCase {
  const char* name;
  size_t n;
  int num_pixels;
  int distinct_buckets;  // <= 0: unconstrained in [0, num_pixels]
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SortCase>& info) {
  return info.param.name;
}

class CountingSortEquivalenceTest
    : public ::testing::TestWithParam<SortCase> {};

TEST_P(CountingSortEquivalenceTest, MatchesStableSortOnEveryBackend) {
  const SortCase& c = GetParam();
  Rng rng(c.seed);
  Workload w;
  w.num_pixels = c.num_pixels;
  w.origin_x = 16.0;  // exact, so global - origin is exact for our inputs
  w.origin_y = -8.0;
  // Buckets drawn directly over the full clamped range [0, num_pixels] —
  // including the park bucket — optionally restricted to a few distinct
  // values so every run carries heavy ties and duplicates.
  std::vector<int32_t> palette;
  if (c.distinct_buckets > 0) {
    for (int i = 0; i < c.distinct_buckets; ++i) {
      palette.push_back(static_cast<int32_t>(
          rng.NextBelow(static_cast<uint64_t>(c.num_pixels) + 1)));
    }
  }
  for (size_t i = 0; i < c.n; ++i) {
    const auto draw = [&]() -> int32_t {
      if (!palette.empty()) {
        return palette[rng.NextBelow(palette.size())];
      }
      return static_cast<int32_t>(
          rng.NextBelow(static_cast<uint64_t>(c.num_pixels) + 1));
    };
    w.lower_idx.push_back(draw());
    w.upper_idx.push_back(draw());
    // Distinct per-endpoint coordinates so a mis-scattered lane cannot
    // masquerade as a tie.
    w.ex.push_back(static_cast<double>(i) + 0.25);
    w.ey.push_back(static_cast<double>(i) - 0.75);
  }

  const Runs lower_ref = StableSortReference(
      w.lower_idx, w.ex, w.ey, w.num_pixels, w.origin_x, w.origin_y);
  const Runs upper_ref = StableSortReference(
      w.upper_idx, w.ex, w.ey, w.num_pixels, w.origin_x, w.origin_y);

  const ScatterOutput scalar = RunScatter(GetScalarOps(), w);
  for (const SimdOps* ops : AvailableBackends()) {
    SCOPED_TRACE(SimdLevelName(ops->level));
    const ScatterOutput got = RunScatter(ops, w);
    ExpectRunsValid(got.lower, w.n(), w.num_pixels, "lower");
    ExpectRunsValid(got.upper, w.n(), w.num_pixels, "upper");
    ExpectRunsEqual(got.lower, lower_ref, "lower vs stable_sort");
    ExpectRunsEqual(got.upper, upper_ref, "upper vs stable_sort");
    // Backends are bit-identical to scalar, not merely equivalent.
    ExpectRunsEqual(got.lower, scalar.lower, "lower vs scalar");
    ExpectRunsEqual(got.upper, scalar.upper, "upper vs scalar");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CountingSortEquivalenceTest,
    ::testing::Values(
        // Odd sizes leave remainder tails in the vectorized prefix sum.
        SortCase{"Random", 257, 33, 0, 0xC0DE},
        SortCase{"HeavyTies", 300, 7, 3, 0x7135},
        SortCase{"AllOneBucket", 64, 9, 1, 0xD0D0},
        SortCase{"Empty", 0, 9, 0, 0x1},
        SortCase{"SinglePixel", 50, 1, 0, 0x51},
        // X a multiple of every vector width, and X straddling one.
        SortCase{"WideAxisAligned", 100, 1024, 0, 0xA11},
        SortCase{"WideAxisTail", 100, 1027, 0, 0x7A1}),
    CaseName);

TEST(CountingSortSemanticsTest, StrictVsNonStrictBoundaryBuckets) {
  // Pixel centers at 0.5, 1.5, ..., 7.5 — all exact. A lower bound
  // exactly ON a pixel coordinate belongs to that pixel's run (the sweep
  // applies lower bounds non-strictly: LB <= x_i), while an upper bound
  // exactly ON it belongs to the NEXT run (strict: UB < x_i keeps a point
  // contributing at the pixel its interval ends on — sweep_state.h).
  const GridAxis xs{0.5, 1.0, 8};
  Workload w;
  w.num_pixels = xs.count;
  const Point origin = RowLocalOrigin(xs, WorldY(0.0));
  w.origin_x = origin.x;
  w.origin_y = origin.y;
  for (int i = 0; i < xs.count; ++i) {
    const double v = xs.Coord(i);
    w.lower_idx.push_back(LowerBucket(WorldX(v), xs));
    w.upper_idx.push_back(UpperBucket(WorldX(v), xs));
    w.ex.push_back(v);
    w.ey.push_back(0.0);
    EXPECT_EQ(w.lower_idx.back(), i) << "lower bound on pixel " << i;
    EXPECT_EQ(w.upper_idx.back(), i + 1) << "upper bound on pixel " << i;
  }
  for (const SimdOps* ops : AvailableBackends()) {
    SCOPED_TRACE(SimdLevelName(ops->level));
    const ScatterOutput got = RunScatter(ops, w);
    for (int i = 0; i < xs.count; ++i) {
      const size_t b = static_cast<size_t>(i);
      // Run i holds exactly the one lower endpoint that sits on pixel i.
      ASSERT_EQ(got.lower.offsets[b + 1] - got.lower.offsets[b], 1);
      EXPECT_DOUBLE_EQ(
          got.lower.px[static_cast<size_t>(got.lower.offsets[b])],
          xs.Coord(i) - w.origin_x);
      // The matching upper endpoint shifted one run right; the endpoint
      // on the last pixel landed in the park run (i + 1 == count).
      ASSERT_EQ(got.upper.offsets[b + 2] - got.upper.offsets[b + 1], 1);
      EXPECT_DOUBLE_EQ(
          got.upper.px[static_cast<size_t>(got.upper.offsets[b + 1])],
          xs.Coord(i) - w.origin_x);
    }
  }
}

TEST(CountingSortSemanticsTest, OutOfRangeBucketsClampToEdgeAndParkRuns) {
  const GridAxis xs{0.0, 0.25, 16};  // exact quarter gaps
  Workload w;
  w.num_pixels = xs.count;
  // Values far left of the axis clamp to bucket 0; far right to the park
  // bucket X, whose run the row sweep never applies.
  const double below = xs.origin - 100.0;
  const double above = xs.last() + 100.0;
  EXPECT_EQ(LowerBucket(WorldX(below), xs), 0);
  EXPECT_EQ(UpperBucket(WorldX(below), xs), 0);
  EXPECT_EQ(LowerBucket(WorldX(above), xs), xs.count);
  EXPECT_EQ(UpperBucket(WorldX(above), xs), xs.count);
  for (int i = 0; i < 6; ++i) {
    const double v = (i % 2 == 0) ? below : above;
    w.lower_idx.push_back(LowerBucket(WorldX(v), xs));
    w.upper_idx.push_back(UpperBucket(WorldX(v), xs));
    w.ex.push_back(v);
    w.ey.push_back(static_cast<double>(i));
  }
  for (const SimdOps* ops : AvailableBackends()) {
    SCOPED_TRACE(SimdLevelName(ops->level));
    const ScatterOutput got = RunScatter(ops, w);
    const size_t x = static_cast<size_t>(xs.count);
    // Three endpoints each at the clamped edges, nothing in between.
    EXPECT_EQ(got.lower.offsets[1], 3);   // run 0
    EXPECT_EQ(got.lower.offsets[x], 3);   // runs 1..X-1 empty
    EXPECT_EQ(got.lower.offsets[x + 1], 6);  // park run
    EXPECT_EQ(got.upper.offsets[1], 3);
    EXPECT_EQ(got.upper.offsets[x], 3);
    EXPECT_EQ(got.upper.offsets[x + 1], 6);
    // Stability: the below-axis endpoints kept input order (ey 0, 2, 4).
    EXPECT_DOUBLE_EQ(got.lower.py[0], 0.0 - w.origin_y);
    EXPECT_DOUBLE_EQ(got.lower.py[1], 2.0);
    EXPECT_DOUBLE_EQ(got.lower.py[2], 4.0);
  }
}

}  // namespace
}  // namespace slam
