#include "core/envelope.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::RandomPoints;

TEST(FindEnvelopeTest, FiltersByYDistance) {
  const std::vector<Point> pts{{0, 0}, {5, 1}, {9, -2}, {3, 2.01}, {7, -2.01}};
  std::vector<Point> env;
  FindEnvelope(pts, WorldY(0.0), 2.0, &env);
  ASSERT_EQ(env.size(), 3u);  // y in [-2, 2]
  for (const Point& p : env) EXPECT_LE(std::abs(p.y), 2.0);
}

TEST(FindEnvelopeTest, BoundaryIsInclusive) {
  const std::vector<Point> pts{{1, 2.0}, {1, -2.0}};
  std::vector<Point> env;
  FindEnvelope(pts, WorldY(0.0), 2.0, &env);
  EXPECT_EQ(env.size(), 2u);  // |k - p.y| == b counts (Definition 1)
}

TEST(FindEnvelopeTest, ClearsPreviousContents) {
  const std::vector<Point> pts{{0, 0}};
  std::vector<Point> env{{9, 9}, {8, 8}};
  FindEnvelope(pts, WorldY(0.0), 1.0, &env);
  EXPECT_EQ(env.size(), 1u);
}

TEST(FindEnvelopeTest, EmptyInputs) {
  std::vector<Point> env;
  FindEnvelope({}, WorldY(0.0), 1.0, &env);
  EXPECT_TRUE(env.empty());
  const std::vector<Point> pts{{0, 100}};
  FindEnvelope(pts, WorldY(0.0), 1.0, &env);
  EXPECT_TRUE(env.empty());
}

TEST(EnvelopeScannerTest, MatchesLinearScan) {
  const auto pts = RandomPoints(2000, 100.0, 181);
  const EnvelopeScanner scanner(pts);
  EXPECT_EQ(scanner.size(), pts.size());
  Rng rng(191);
  std::vector<Point> expected;
  for (int trial = 0; trial < 50; ++trial) {
    const double k = rng.Uniform(-10, 110);
    const double b = rng.Uniform(0.1, 20.0);
    FindEnvelope(pts, WorldY(k), b, &expected);
    const auto got = scanner.Envelope(WorldY(k), b);
    ASSERT_EQ(got.size(), expected.size()) << "k=" << k << " b=" << b;
    // Same multiset of points (scanner returns y-sorted order).
    double sum_exp = 0.0, sum_got = 0.0;
    for (const Point& p : expected) sum_exp += p.x + 1000.0 * p.y;
    for (const Point& p : got) sum_got += p.x + 1000.0 * p.y;
    EXPECT_NEAR(sum_exp, sum_got, 1e-6);
  }
}

TEST(EnvelopeScannerTest, EnvelopeIsContiguousAndSorted) {
  const auto pts = RandomPoints(500, 50.0, 193);
  const EnvelopeScanner scanner(pts);
  const auto env = scanner.Envelope(WorldY(25.0), 5.0);
  for (size_t i = 1; i < env.size(); ++i) {
    EXPECT_LE(env[i - 1].y, env[i].y);
  }
  for (const Point& p : env) {
    EXPECT_GE(p.y, 20.0);
    EXPECT_LE(p.y, 30.0);
  }
}

TEST(EnvelopeScannerTest, EmptyScanner) {
  const EnvelopeScanner scanner({});
  EXPECT_TRUE(scanner.Envelope(WorldY(0.0), 10.0).empty());
}

TEST(EnvelopeScannerTest, RowOutsideDataIsEmpty) {
  const auto pts = RandomPoints(100, 10.0, 197);
  const EnvelopeScanner scanner(pts);
  EXPECT_TRUE(scanner.Envelope(WorldY(1000.0), 5.0).empty());
  EXPECT_TRUE(scanner.Envelope(WorldY(-1000.0), 5.0).empty());
}

}  // namespace
}  // namespace slam
