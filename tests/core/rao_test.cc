#include "core/rao.h"

#include <gtest/gtest.h>

#include "core/slam_bucket.h"
#include "core/slam_sort.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

KdvTask MakeRaoTask(const std::vector<Point>& pts, int width, int height,
                    double extent, KernelType kernel = KernelType::kEpanechnikov) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = extent / 8.0;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  const double gx = extent / width;
  const double gy = extent / height;
  task.grid = Grid::Create(GridAxis{0.5 * gx, gx, width},
                           GridAxis{0.5 * gy, gy, height})
                  .ValueOrDie();
  return task;
}

TEST(RaoTest, TransposePredicate) {
  const std::vector<Point> pts{{1, 1}};
  EXPECT_FALSE(RaoWouldTranspose(MakeRaoTask(pts, 20, 10, 10.0)));  // X > Y
  EXPECT_FALSE(RaoWouldTranspose(MakeRaoTask(pts, 10, 10, 10.0)));  // X == Y
  EXPECT_TRUE(RaoWouldTranspose(MakeRaoTask(pts, 10, 20, 10.0)));   // Y > X
}

TEST(RaoTest, TallGridMatchesBruteForce) {
  const auto pts = ClusteredPoints(400, 40.0, 3, 307);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeRaoTask(pts, 12, 48, 40.0, kernel);
    DensityMap sort_rao, bucket_rao;
    ASSERT_TRUE(ComputeSlamSortRao(task, {}, &sort_rao).ok());
    ASSERT_TRUE(ComputeSlamBucketRao(task, {}, &bucket_rao).ok());
    const DensityMap expected = BruteForceDensity(task);
    ExpectMapsNear(expected, sort_rao, 1e-9);
    ExpectMapsNear(expected, bucket_rao, 1e-9);
  }
}

TEST(RaoTest, WideGridDelegatesToBase) {
  const auto pts = RandomPoints(300, 30.0, 311);
  const KdvTask task = MakeRaoTask(pts, 40, 10, 30.0);
  DensityMap base, rao;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &base).ok());
  ASSERT_TRUE(ComputeSlamBucketRao(task, {}, &rao).ok());
  // X >= Y: RAO must be bit-identical to the base algorithm.
  const auto cmp = *base.CompareTo(rao);
  EXPECT_EQ(cmp.max_abs_diff, 0.0);
}

TEST(RaoTest, TransposedResultHasOriginalOrientation) {
  const auto pts = RandomPoints(100, 20.0, 313);
  const KdvTask task = MakeRaoTask(pts, 8, 32, 20.0);
  DensityMap rao;
  ASSERT_TRUE(ComputeSlamBucketRao(task, {}, &rao).ok());
  EXPECT_EQ(rao.width(), 8);
  EXPECT_EQ(rao.height(), 32);
}

TEST(RaoTest, SortAndBucketRaoAgree) {
  const auto pts = ClusteredPoints(800, 50.0, 5, 317);
  const KdvTask task = MakeRaoTask(pts, 9, 63, 50.0);
  DensityMap a, b;
  ASSERT_TRUE(ComputeSlamSortRao(task, {}, &a).ok());
  ASSERT_TRUE(ComputeSlamBucketRao(task, {}, &b).ok());
  ExpectMapsNear(a, b, 1e-12);
}

TEST(RaoTest, RejectsGaussianKernel) {
  const std::vector<Point> pts{{1, 1}};
  const KdvTask task = MakeRaoTask(pts, 4, 8, 10.0, KernelType::kGaussian);
  DensityMap out;
  EXPECT_TRUE(ComputeSlamSortRao(task, {}, &out).IsInvalidArgument());
  EXPECT_TRUE(ComputeSlamBucketRao(task, {}, &out).IsInvalidArgument());
}

TEST(RaoTest, PropagatesDeadline) {
  const auto pts = RandomPoints(20000, 100.0, 331);
  const KdvTask task = MakeRaoTask(pts, 100, 500, 100.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeSlamBucketRao(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(RaoTest, ExtremeAspectRatio) {
  const auto pts = RandomPoints(200, 20.0, 337);
  const KdvTask task = MakeRaoTask(pts, 2, 128, 20.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucketRao(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

}  // namespace
}  // namespace slam
