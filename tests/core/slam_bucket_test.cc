#include "core/slam_bucket.h"

#include <gtest/gtest.h>

#include "core/slam_sort.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

KdvTask MakeBucketTask(const std::vector<Point>& pts, KernelType kernel,
                       double bandwidth, int width, int height,
                       double extent) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(width, height, extent);
  return task;
}

TEST(SlamBucketTest, MatchesBruteForceAllKernels) {
  const auto pts = RandomPoints(400, 50.0, 263);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeBucketTask(pts, kernel, 6.0, 25, 20, 50.0);
    DensityMap out;
    ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(SlamBucketTest, AgreesWithSlamSortExactly) {
  // Both are exact; on the same input they should agree to near-bitwise
  // precision (same aggregates, same order of pixel evaluation).
  const auto pts = ClusteredPoints(1500, 100.0, 6, 269);
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kEpanechnikov, 12.0, 40, 30, 100.0);
  DensityMap sorted, bucketed;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &sorted).ok());
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  ExpectMapsNear(sorted, bucketed, 1e-12);
}

TEST(SlamBucketTest, IncrementalEnvelopeGivesSameResult) {
  const auto pts = ClusteredPoints(500, 60.0, 3, 271);
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kUniform, 8.0, 20, 20, 60.0);
  DensityMap default_env, incremental_env;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &default_env).ok());
  ComputeOptions opts;
  opts.incremental_envelope = true;
  ASSERT_TRUE(ComputeSlamBucket(task, opts, &incremental_env).ok());
  ExpectMapsNear(default_env, incremental_env, 1e-12);
}

TEST(SlamBucketTest, EmptyPointsGiveZeroRaster) {
  const KdvTask task =
      MakeBucketTask({}, KernelType::kQuartic, 2.0, 6, 7, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
}

TEST(SlamBucketTest, RejectsGaussianKernel) {
  const std::vector<Point> pts{{1, 1}};
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kGaussian, 2.0, 4, 4, 10.0);
  DensityMap out;
  EXPECT_TRUE(ComputeSlamBucket(task, {}, &out).IsInvalidArgument());
}

TEST(SlamBucketTest, HonorsDeadline) {
  const auto pts = RandomPoints(20000, 100.0, 277);
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kEpanechnikov, 30.0, 400, 400, 100.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeSlamBucket(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(SlamBucketTest, EndpointsBeyondGridEdgesAreSafe) {
  // Points whose intervals extend left of pixel 0 and right of the last
  // pixel exercise the bucket clamping (Eqs. 19-20 clamps).
  const std::vector<Point> pts{{-8.0, 5.0}, {18.0, 5.0}, {5.0, 5.0}};
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kEpanechnikov, 9.5, 10, 10, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-12);
}

TEST(SlamBucketTest, EndpointExactlyOnPixelCoordinate) {
  // lb/ub that land exactly on pixel centers stress the ceil/floor bucket
  // boundary logic. Pixel centers at 0.5, 1.5, ..., 9.5; a point at
  // (5.5, 5.5) with b = 2 has lb = 3.5, ub = 7.5, both exact centers.
  const std::vector<Point> pts{{5.5, 5.5}};
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kUniform, 2.0, 10, 10, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-12);
  // Row 5 (center y = 5.5): uniform kernel contributes 1/b = 0.5 for
  // pixels with |qx - 5.5| <= 2, i.e. centers 3.5 .. 7.5 inclusive.
  EXPECT_DOUBLE_EQ(out.at(3, 5), 0.5);
  EXPECT_DOUBLE_EQ(out.at(7, 5), 0.5);
  EXPECT_DOUBLE_EQ(out.at(2, 5), 0.0);
  EXPECT_DOUBLE_EQ(out.at(8, 5), 0.0);
}

TEST(SlamBucketTest, ManyDuplicatePoints) {
  std::vector<Point> pts(500, Point{25.0, 25.0});
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kQuartic, 10.0, 20, 20, 50.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(SlamBucketTest, SinglePixelGrid) {
  const auto pts = RandomPoints(50, 10.0, 281);
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kEpanechnikov, 4.0, 1, 1, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(SlamBucketTest, SingleRowAndSingleColumnGrids) {
  const auto pts = RandomPoints(200, 30.0, 283);
  for (const auto& [w, h] : {std::pair{64, 1}, std::pair{1, 64}}) {
    const KdvTask task =
        MakeBucketTask(pts, KernelType::kEpanechnikov, 5.0, w, h, 30.0);
    DensityMap out;
    ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
  }
}

TEST(SlamBucketTest, VeryLargeBandwidthCoversEverything) {
  const auto pts = RandomPoints(100, 10.0, 293);
  const KdvTask task =
      MakeBucketTask(pts, KernelType::kUniform, 1000.0, 8, 8, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &out).ok());
  // Uniform kernel: every pixel sees all n points -> w * n / b everywhere.
  const double expected = (1.0 / 100.0) * 100.0 / 1000.0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_NEAR(out.at(x, y), expected, 1e-12);
    }
  }
}

}  // namespace
}  // namespace slam
