#include "core/slam_sort.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

KdvTask MakeSortTask(const std::vector<Point>& pts, KernelType kernel,
                     double bandwidth, int width, int height, double extent) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = bandwidth;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(width, height, extent);
  return task;
}

TEST(SlamSortTest, MatchesBruteForceUniformData) {
  const auto pts = RandomPoints(400, 50.0, 229);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    const KdvTask task = MakeSortTask(pts, kernel, 6.0, 25, 20, 50.0);
    DensityMap out;
    ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
    ExpectMapsNear(BruteForceDensity(task), out, 1e-9,
                   std::string(KernelTypeName(kernel)).c_str());
  }
}

TEST(SlamSortTest, MatchesBruteForceClusteredData) {
  const auto pts = ClusteredPoints(600, 80.0, 4, 233);
  const KdvTask task =
      MakeSortTask(pts, KernelType::kEpanechnikov, 10.0, 32, 24, 80.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

TEST(SlamSortTest, IncrementalEnvelopeGivesSameResult) {
  const auto pts = ClusteredPoints(500, 60.0, 3, 239);
  const KdvTask task =
      MakeSortTask(pts, KernelType::kQuartic, 8.0, 20, 20, 60.0);
  DensityMap default_env, incremental_env;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &default_env).ok());
  ComputeOptions opts;
  opts.incremental_envelope = true;
  ASSERT_TRUE(ComputeSlamSort(task, opts, &incremental_env).ok());
  ExpectMapsNear(default_env, incremental_env, 1e-12);
}

TEST(SlamSortTest, EmptyPointsGiveZeroRaster) {
  const KdvTask task =
      MakeSortTask({}, KernelType::kEpanechnikov, 2.0, 8, 8, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  EXPECT_EQ(out.MaxValue(), 0.0);
  EXPECT_EQ(out.width(), 8);
}

TEST(SlamSortTest, SinglePointPeaksAtItsPixel) {
  const std::vector<Point> pts{{5.0, 5.0}};
  const KdvTask task =
      MakeSortTask(pts, KernelType::kEpanechnikov, 3.0, 10, 10, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  // Max must be at the pixel containing the point (pixel 5,5 has center
  // exactly on the point).
  double max_v = -1;
  int max_x = -1, max_y = -1;
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      if (out.at(x, y) > max_v) {
        max_v = out.at(x, y);
        max_x = x;
        max_y = y;
      }
    }
  }
  EXPECT_EQ(max_x, 4);  // centers at 0.5, 1.5, ..., point at 5.0 -> pixel 4 or 5
  EXPECT_TRUE(max_y == 4 || max_y == 5);
  EXPECT_GE(max_v, 0.9);
}

TEST(SlamSortTest, RejectsGaussianKernel) {
  const std::vector<Point> pts{{1, 1}};
  const KdvTask task =
      MakeSortTask(pts, KernelType::kGaussian, 2.0, 4, 4, 10.0);
  DensityMap out;
  EXPECT_TRUE(ComputeSlamSort(task, {}, &out).IsInvalidArgument());
}

TEST(SlamSortTest, RejectsInvalidTask) {
  const std::vector<Point> pts{{1, 1}};
  KdvTask task = MakeSortTask(pts, KernelType::kUniform, 2.0, 4, 4, 10.0);
  task.bandwidth = -1.0;
  DensityMap out;
  EXPECT_FALSE(ComputeSlamSort(task, {}, &out).ok());
}

TEST(SlamSortTest, HonorsDeadline) {
  const auto pts = RandomPoints(20000, 100.0, 241);
  const KdvTask task =
      MakeSortTask(pts, KernelType::kEpanechnikov, 30.0, 400, 400, 100.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ComputeOptions opts;
  opts.exec = &exec;
  DensityMap out;
  EXPECT_EQ(ComputeSlamSort(task, opts, &out).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(SlamSortTest, BandwidthSmallerThanPixelGap) {
  // Intervals narrower than one pixel: most pixels see no points.
  const std::vector<Point> pts{{5.05, 5.05}};
  const KdvTask task =
      MakeSortTask(pts, KernelType::kEpanechnikov, 0.2, 10, 10, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-12);
}

TEST(SlamSortTest, BandwidthLargerThanWholeGrid) {
  const auto pts = RandomPoints(100, 10.0, 251);
  const KdvTask task =
      MakeSortTask(pts, KernelType::kQuartic, 100.0, 12, 9, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
  // Every pixel sees every point.
  EXPECT_GT(out.MinValue(), 0.0);
}

TEST(SlamSortTest, PointsOutsideGridStillContribute) {
  const std::vector<Point> pts{{-3.0, 5.0}, {13.0, 5.0}};
  const KdvTask task =
      MakeSortTask(pts, KernelType::kEpanechnikov, 5.0, 10, 10, 10.0);
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-12);
  EXPECT_GT(out.at(0, 4), 0.0);  // left edge feels the off-grid point
}

TEST(SlamSortTest, NonSquareGridsAndAnisotropicGaps) {
  const auto pts = RandomPoints(300, 60.0, 257);
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 7.0;
  task.weight = 1.0 / 300.0;
  task.grid = *Grid::Create(GridAxis{0.4, 0.8, 64}, GridAxis{1.0, 3.0, 17});
  DensityMap out;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &out).ok());
  ExpectMapsNear(BruteForceDensity(task), out, 1e-9);
}

}  // namespace
}  // namespace slam
