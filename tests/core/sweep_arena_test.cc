// The per-thread sweep arena (core/sweep_arena.h, DESIGN.md §12): the
// borrow discipline (one borrower per thread, nested borrows fall back to
// a private heap), the qx cache key, Release() after a failed budget
// charge, and — the property the whole refactor rests on — that reusing
// grown lanes across computes never bleeds one task's stale endpoints
// into the next task's density.
#include "core/sweep_arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/slam_sort.h"
#include "core/sweep_state.h"
#include "kdv/engine.h"
#include "kdv/grid.h"
#include "kdv/task.h"
#include "testing/test_util.h"
#include "util/exec_context.h"

namespace slam {
namespace {

using ::slam::testing::MakeGrid;
using ::slam::testing::RandomPoints;

TEST(ScopedArenaTest, BorrowsThreadArenaAndNestsOntoHeap) {
  ScopedArena outer;
  EXPECT_TRUE(outer.owns_thread_arena());
  EXPECT_EQ(&*outer, &ThreadSweepArenaForTest());
  {
    // A compute issued from inside another compute on the same thread
    // must not clobber the outer borrow's lanes.
    ScopedArena nested;
    EXPECT_FALSE(nested.owns_thread_arena());
    EXPECT_NE(&*nested, &*outer);
  }
  // The thread arena is free again once the borrow ends.
  ScopedArena after;
  // `outer` still holds it; only a fresh scope after outer dies gets it.
  EXPECT_FALSE(after.owns_thread_arena());
}

TEST(ScopedArenaTest, ThreadArenaFreeAfterBorrowEnds) {
  { ScopedArena borrow; }
  ScopedArena next;
  EXPECT_TRUE(next.owns_thread_arena());
}

TEST(SweepArenaTest, PrepareComputeSizesLanesAndCachesQx) {
  SweepArena arena;
  const GridAxis xs{0.5, 1.0, 8};  // exact half-integer pixel centers
  arena.PrepareCompute(100, xs);
  EXPECT_EQ(arena.ex.size(), 100u);
  EXPECT_EQ(arena.ey.size(), 100u);
  EXPECT_EQ(arena.lower_offsets.size(), 10u);  // X + 2
  EXPECT_EQ(arena.upper_offsets.size(), 10u);
  EXPECT_EQ(arena.lower_cursor.size(), 9u);  // X + 1
  ASSERT_EQ(arena.qx.size(), 8u);
  // qx is row-local: pixel center minus the row frame's x-origin.
  const double origin_x = RowLocalOrigin(xs, WorldY(0.0)).x;
  for (int i = 0; i < xs.count; ++i) {
    EXPECT_DOUBLE_EQ(arena.qx[static_cast<size_t>(i)],
                     xs.Coord(i) - origin_x);
  }

  // Same axis again: the cached fill survives (same buffer, same values).
  const double* data = arena.qx.data();
  arena.PrepareCompute(50, xs);
  EXPECT_EQ(arena.qx.data(), data);
  EXPECT_DOUBLE_EQ(arena.qx[0], xs.Coord(0) - origin_x);

  // A different axis invalidates the cache and refills.
  const GridAxis other{0.25, 0.5, 8};
  arena.PrepareCompute(50, other);
  const double other_origin = RowLocalOrigin(other, WorldY(0.0)).x;
  for (int i = 0; i < other.count; ++i) {
    EXPECT_DOUBLE_EQ(arena.qx[static_cast<size_t>(i)],
                     other.Coord(i) - other_origin);
  }
}

TEST(SweepArenaTest, HeapBytesGrowsWithLanesAndReleaseDropsToZero) {
  SweepArena arena;
  EXPECT_EQ(arena.HeapBytes(), 0u);
  const GridAxis xs{0.0, 1.0, 64};
  arena.PrepareCompute(1000, xs);
  arena.PrepareRow(500);
  const size_t grown = arena.HeapBytes();
  // At minimum the two envelope lanes and qx are live doubles.
  EXPECT_GE(grown, (1000 + 1000 + 64) * sizeof(double));
  // Release is the budget-failure escape hatch: nothing may stay cached,
  // or a tightened budget would keep failing against old capacity.
  arena.Release();
  EXPECT_EQ(arena.HeapBytes(), 0u);
  EXPECT_TRUE(arena.qx.empty());
  // And the qx cache key was invalidated with it: a fresh PrepareCompute
  // on the same axis refills correctly.
  arena.PrepareCompute(10, xs);
  ASSERT_EQ(arena.qx.size(), 64u);
  EXPECT_DOUBLE_EQ(arena.qx[1] - arena.qx[0], xs.gap);
}

TEST(SweepArenaTest, ReuseAcrossComputesDoesNotBleedStaleLanes) {
  // Render a small task, then a much larger one (growing every arena lane
  // and leaving it full of the big task's endpoints), then the small one
  // again on the same thread. The runs of the second small compute are
  // built inside lanes still holding stale data beyond the live prefix;
  // any reader of a stale slot shows up as a differing density.
  const double extent = 256.0;
  const std::vector<Point> small_points =
      RandomPoints(40, extent, /*seed=*/0xA5);
  const std::vector<Point> big_points =
      RandomPoints(3000, extent, /*seed=*/0xB6);
  KdvTask small;
  small.points = small_points;
  small.grid = MakeGrid(9, 7, extent);
  small.kernel = KernelType::kEpanechnikov;
  small.bandwidth = 70.0;
  small.weight = 1.0 / 40.0;

  KdvTask big;
  big.points = big_points;
  big.grid = MakeGrid(65, 5, extent);
  big.kernel = KernelType::kQuartic;
  big.bandwidth = 90.0;
  big.weight = 1.0 / 3000.0;

  for (const Method method : {Method::kSlamSort, Method::kSlamBucket}) {
    SCOPED_TRACE(MethodName(method));
    const auto first = ComputeKdv(small, method, {});
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    const auto grow = ComputeKdv(big, method, {});
    ASSERT_TRUE(grow.ok()) << grow.status().ToString();
    // The thread arena kept the big task's capacity (that is the point of
    // the cache)...
    EXPECT_GE(ThreadSweepArenaForTest().ex.capacity(), 3000u);
    const auto second = ComputeKdv(small, method, {});
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    // ...and the rerun is bit-identical to the pre-growth run: same code
    // path, same backend, so any difference is stale-lane bleed.
    for (int iy = 0; iy < small.grid.height(); ++iy) {
      for (int ix = 0; ix < small.grid.width(); ++ix) {
        ASSERT_EQ(first->at(ix, iy), second->at(ix, iy))
            << "pixel (" << ix << ", " << iy << ")";
      }
    }
  }
}

TEST(SweepArenaTest, BudgetFailureReleasesCachedCapacity) {
  const double extent = 128.0;
  const std::vector<Point> points = RandomPoints(2000, extent, /*seed=*/0xFE);
  KdvTask task;
  task.points = points;
  task.grid = MakeGrid(33, 5, extent);
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 50.0;
  task.weight = 1.0 / 2000.0;

  // Grow the thread arena, then rerun under a budget far below its held
  // capacity: the compute must fail AND drop the cached lanes, so the
  // refusal is not sticky for the thread's next task. ComputeSlamSort is
  // called directly — the engine's analytic pre-flight would refuse
  // before the arena's own charge ever ran.
  DensityMap grown;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &grown).ok());
  EXPECT_GT(ThreadSweepArenaForTest().HeapBytes(), 0u);

  MemoryBudget budget(1024);  // far below the arena's footprint
  ExecContext exec;
  exec.set_memory_budget(&budget);
  ComputeOptions options;
  options.exec = &exec;
  DensityMap refused_out;
  const Status refused = ComputeSlamSort(task, options, &refused_out);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  EXPECT_EQ(ThreadSweepArenaForTest().HeapBytes(), 0u);

  // And the thread recovers: without the budget the same task runs again.
  DensityMap retry;
  EXPECT_TRUE(ComputeSlamSort(task, {}, &retry).ok());
}

}  // namespace
}  // namespace slam
