// Sweep-algorithm edge cases beyond the main per-algorithm suites: grids
// positioned away from the data, pathological endpoint placements, and
// row-level invariants.
#include <gtest/gtest.h>

#include "core/slam_bucket.h"
#include "core/slam_sort.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ExpectMapsNear;
using testing::RandomPoints;

KdvTask TaskWithGrid(const std::vector<Point>& pts, const Grid& grid,
                     double bandwidth) {
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = bandwidth;
  task.weight = 1.0;
  task.grid = grid;
  return task;
}

TEST(SweepEdgeTest, GridEntirelyLeftOfData) {
  // Every lower/upper bound clamps past the last pixel bucket.
  const auto pts = RandomPoints(100, 10.0, 941);
  std::vector<Point> shifted;
  for (const Point& p : pts) shifted.push_back({p.x + 1000.0, p.y});
  const Grid grid = *Grid::Create({0.0, 1.0, 8}, {0.0, 1.0, 8});
  const KdvTask task = TaskWithGrid(shifted, grid, 3.0);
  DensityMap sorted, bucketed;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &sorted).ok());
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  EXPECT_EQ(sorted.MaxValue(), 0.0);
  EXPECT_EQ(bucketed.MaxValue(), 0.0);
}

TEST(SweepEdgeTest, GridEntirelyRightOfData) {
  // Every bound clamps to bucket 0; L and U both absorb all envelope
  // points before the first pixel, cancelling exactly.
  const auto pts = RandomPoints(100, 10.0, 947);
  const Grid grid = *Grid::Create({1000.0, 1.0, 8}, {0.0, 1.0, 8});
  const KdvTask task = TaskWithGrid(pts, grid, 3.0);
  DensityMap bucketed;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  ExpectMapsNear(BruteForceDensity(task), bucketed, 1e-12);
  EXPECT_EQ(bucketed.MaxValue(), 0.0);
}

TEST(SweepEdgeTest, AllPointsOnOnePixelColumn) {
  // Every interval is centered on the same x: heavy bucket collisions.
  std::vector<Point> pts;
  Rng rng(953);
  for (int i = 0; i < 300; ++i) {
    pts.push_back({4.5, rng.Uniform(0.0, 10.0)});
  }
  const Grid grid = *Grid::Create({0.5, 1.0, 10}, {0.5, 1.0, 10});
  const KdvTask task = TaskWithGrid(pts, grid, 2.5);
  DensityMap sorted, bucketed;
  ASSERT_TRUE(ComputeSlamSort(task, {}, &sorted).ok());
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  const DensityMap expected = BruteForceDensity(task);
  ExpectMapsNear(expected, sorted, 1e-9);
  ExpectMapsNear(expected, bucketed, 1e-9);
}

TEST(SweepEdgeTest, MicroscopicPixelGap) {
  // Pixel gaps of 1e-9 with bandwidth 1: thousands of pixels per
  // interval; bucket arithmetic must not overflow or misplace.
  const std::vector<Point> pts{{0.0, 0.0}};
  const Grid grid = *Grid::Create({-1e-6, 1e-9, 64}, {0.0, 1.0, 1});
  const KdvTask task = TaskWithGrid(pts, grid, 1.0);
  DensityMap bucketed;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  // All pixels are within ~1e-6 of the point: density ~ K(0) = 1.
  for (int ix = 0; ix < 64; ++ix) {
    EXPECT_NEAR(bucketed.at(ix, 0), 1.0, 1e-9);
  }
}

TEST(SweepEdgeTest, HugeCoordinatesStillAgree) {
  // UTM-northing-scale values exercise the conditioning limits; both
  // sweeps agree with brute force at a loose-but-meaningful tolerance.
  Rng rng(967);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({4.0e6 + rng.Uniform(0, 1000), 5.0e6 + rng.Uniform(0, 1000)});
  }
  const Grid grid =
      *Grid::Create({4.0e6 + 25.0, 50.0, 20}, {5.0e6 + 25.0, 50.0, 20});
  const KdvTask task = TaskWithGrid(pts, grid, 120.0);
  DensityMap bucketed;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &bucketed).ok());
  // Even raw (no engine recentering) the row-local sweep frame keeps the
  // aggregates bandwidth-scaled: the ~1e9 coordinate-to-bandwidth ratio
  // used to cost ~1e-5 of the density scale here.
  ExpectMapsNear(BruteForceDensity(task), bucketed, 1e-10);
  // Recentered (the engine treatment): same tight agreement.
  const TranslatedTask recentered(task, 4.0e6, 5.0e6);
  DensityMap tight;
  ASSERT_TRUE(ComputeSlamBucket(recentered.task(), {}, &tight).ok());
  ExpectMapsNear(BruteForceDensity(recentered.task()), tight, 1e-10);
}

TEST(SweepEdgeTest, RowsOutsideBandwidthAreZero) {
  // A single point: rows farther than b in y have empty envelopes.
  const std::vector<Point> pts{{5.0, 5.0}};
  const Grid grid = *Grid::Create({0.5, 1.0, 10}, {0.5, 1.0, 10});
  const KdvTask task = TaskWithGrid(pts, grid, 1.5);
  DensityMap map;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &map).ok());
  for (int iy = 0; iy < 10; ++iy) {
    const double row_y = 0.5 + iy;
    // Strictly inside the bandwidth: the Epanechnikov kernel is exactly
    // zero at dist == b, so the boundary rows are legitimately all-zero.
    const bool in_reach = std::abs(row_y - 5.0) < 1.5;
    double row_sum = 0.0;
    for (int ix = 0; ix < 10; ++ix) row_sum += map.at(ix, iy);
    EXPECT_EQ(row_sum > 0.0, in_reach) << "row " << iy;
  }
}

TEST(SweepEdgeTest, WeightPassesThroughLinearly) {
  const auto pts = RandomPoints(150, 20.0, 971);
  const Grid grid = *Grid::Create({0.5, 1.0, 20}, {0.5, 1.0, 20});
  KdvTask task = TaskWithGrid(pts, grid, 4.0);
  DensityMap w1;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &w1).ok());
  task.weight = 2.5;
  DensityMap w25;
  ASSERT_TRUE(ComputeSlamBucket(task, {}, &w25).ok());
  for (size_t i = 0; i < w1.values().size(); ++i) {
    EXPECT_NEAR(w25.values()[i], 2.5 * w1.values()[i],
                1e-12 * std::max(1.0, w25.values()[i]));
  }
}

}  // namespace
}  // namespace slam
