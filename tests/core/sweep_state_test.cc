#include "core/sweep_state.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace slam {
namespace {

TEST(SweepStateTest, StartsEmpty) {
  const SweepState state;
  EXPECT_EQ(state.lower.count, 0.0);
  EXPECT_EQ(state.upper.count, 0.0);
  EXPECT_DOUBLE_EQ(
      state.Density(KernelType::kEpanechnikov, {0, 0}, 1.0, 1.0), 0.0);
}

TEST(SweepStateTest, LowerMinusUpperIsActiveSet) {
  SweepState state;
  // Three intervals opened, one closed: active set = {p1, p3}.
  const Point p1{1, 0}, p2{2, 0}, p3{3, 0};
  state.PassLowerBound(p1);
  state.PassLowerBound(p2);
  state.PassLowerBound(p3);
  state.PassUpperBound(p2);
  const RangeAggregates active = state.lower.Minus(state.upper);
  EXPECT_DOUBLE_EQ(active.count, 2.0);
  EXPECT_DOUBLE_EQ(active.sum.x, 4.0);
  EXPECT_DOUBLE_EQ(active.sum_sq, 10.0);  // 1 + 9
}

TEST(SweepStateTest, DensityMatchesDirectOverActiveSet) {
  Rng rng(223);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    SweepState state;
    const double b = 4.0;
    const Point q{0.0, 0.0};
    double direct = 0.0;
    for (int i = 0; i < 40; ++i) {
      // Points within b of q, all "opened".
      Point p;
      do {
        p = {rng.Uniform(-b, b), rng.Uniform(-b, b)};
      } while (p.SquaredNorm() > b * b);
      state.PassLowerBound(p);
      if (i % 3 == 0) {
        // Some also "closed": they leave the active set.
        state.PassUpperBound(p);
      } else {
        direct += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      }
    }
    EXPECT_NEAR(state.Density(kernel, q, b, 2.0), 2.0 * direct,
                1e-9 * std::max(1.0, direct));
  }
}

TEST(SweepStateTest, ResetClears) {
  SweepState state;
  state.PassLowerBound({1, 1});
  state.PassUpperBound({1, 1});
  state.Reset();
  EXPECT_EQ(state.lower.count, 0.0);
  EXPECT_EQ(state.upper.count, 0.0);
}

TEST(SweepStateTest, UpperSubsetOfLowerKeepsDensityNonNegative) {
  // Whenever U ⊆ L (the sweep invariant), densities are non-negative.
  Rng rng(227);
  SweepState state;
  std::vector<Point> opened;
  for (int i = 0; i < 100; ++i) {
    const Point p{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    state.PassLowerBound(p);
    opened.push_back(p);
    if (i % 2 == 1) {
      state.PassUpperBound(opened[i / 2]);
    }
    EXPECT_GE(
        state.Density(KernelType::kUniform, {0, 0}, 3.0, 1.0), -1e-12);
  }
}

}  // namespace
}  // namespace slam
