#include "data/csv_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace slam {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvIoTest, RoundTrip) {
  PointDataset ds("rt");
  ds.Add({1.5, 2.5}, 1000, 3);
  ds.Add({-4.25, 0.0}, 2000, 0);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());
  const auto loaded = *LoadDatasetCsv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.coord(0).x, 1.5);
  EXPECT_DOUBLE_EQ(loaded.coord(1).x, -4.25);
  EXPECT_EQ(loaded.event_time(0), 1000);
  EXPECT_EQ(loaded.category(0), 3);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MinimalColumns) {
  const std::string path = TempPath("minimal.csv");
  WriteFile(path, "x,y\n1,2\n3,4\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.coord(1), (Point{3.0, 4.0}));
  EXPECT_EQ(ds.event_time(0), 0);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, LonLatAliases) {
  const std::string path = TempPath("lonlat.csv");
  WriteFile(path, "lon,lat\n-122.3,47.6\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds.coord(0).x, -122.3);
  EXPECT_DOUBLE_EQ(ds.coord(0).y, 47.6);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, ExtraColumnsIgnored) {
  const std::string path = TempPath("extra.csv");
  WriteFile(path, "id,x,notes,y\n7,1,hello,2\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.coord(0), (Point{1.0, 2.0}));
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MissingCoordinateColumnsFail) {
  const std::string path = TempPath("nocoords.csv");
  WriteFile(path, "a,b\n1,2\n");
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MalformedNumberFails) {
  const std::string path = TempPath("badnum.csv");
  WriteFile(path, "x,y\n1,abc\n");
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, ParseErrorsNameTheOffendingLine) {
  const std::string path = TempPath("badline.csv");
  WriteFile(path, "x,y\n1,2\n3,4\n5,oops\n");
  const auto result = LoadDatasetCsv(path);
  ASSERT_FALSE(result.ok());
  // The bad record is the third data row, i.e. file line 4.
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, NonFiniteCoordinatesRejectedWithLine) {
  const std::string path = TempPath("nonfinite.csv");
  WriteFile(path, "x,y\n1,2\nnan,5\n");
  const auto result = LoadDatasetCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("non-finite"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, SanitizeDropsNonFiniteRowsAndCountsThem) {
  const std::string path = TempPath("sanitize.csv");
  WriteFile(path, "x,y\n1,2\nnan,5\n3,4\ninf,-inf\n");
  CsvLoadOptions options;
  options.sanitize = true;
  size_t dropped = 0;
  const auto ds = LoadDatasetCsv(path, options, &dropped);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(ds->coord(1), (Point{3.0, 4.0}));
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, SanitizeStillRejectsUnparsableRows) {
  const std::string path = TempPath("sanitize_bad.csv");
  WriteFile(path, "x,y\n1,2\nabc,5\n");
  CsvLoadOptions options;
  options.sanitize = true;
  // Sanitize drops non-finite values, not syntax errors.
  EXPECT_FALSE(LoadDatasetCsv(path, options).ok());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, FiniteButHugeCoordinateRejected) {
  // 1e300 passes std::isfinite but overflows fourth-power aggregate
  // moments; the shared magnitude cap rejects it with the line number.
  const std::string path = TempPath("huge.csv");
  WriteFile(path, "x,y\n1,2\n1e300,0\n");
  const auto result = LoadDatasetCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MaxRowsCapReturnsResourceExhausted) {
  const std::string path = TempPath("rows.csv");
  WriteFile(path, "x,y\n1,1\n2,2\n3,3\n");
  CsvLoadOptions options;
  options.max_rows = 2;
  const auto result = LoadDatasetCsv(path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, StreamLoaderMatchesFileLoader) {
  std::istringstream in("x,y,time,category\n1.5,2.5,7,3\n");
  const auto ds = LoadDatasetCsvStream(in, "inline", CsvLoadOptions{});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->size(), 1u);
  EXPECT_EQ(ds->coord(0), (Point{1.5, 2.5}));
  EXPECT_EQ(ds->event_time(0), 7);
  EXPECT_EQ(ds->category(0), 3);
  EXPECT_EQ(ds->name(), "inline");
}

TEST_F(CsvIoTest, NegativeZeroCanonicalizedOnLoad) {
  std::istringstream in("x,y\n-0.0,1\n");
  const auto ds = LoadDatasetCsvStream(in, "negzero", CsvLoadOptions{});
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(std::signbit(ds->coord(0).x));
}

TEST_F(CsvIoTest, CategoryOutsideInt32Rejected) {
  const std::string path = TempPath("cat.csv");
  WriteFile(path, "x,y,category\n1,2,99999999999\n");
  const auto result = LoadDatasetCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MissingFileFails) {
  EXPECT_TRUE(LoadDatasetCsv("/nonexistent/nope.csv").status().IsIoError());
}

TEST_F(CsvIoTest, SaveToBadPathFails) {
  PointDataset ds("x");
  ds.Add({0, 0});
  EXPECT_TRUE(SaveDatasetCsv(ds, "/nonexistent/dir/out.csv").IsIoError());
}

TEST_F(CsvIoTest, EmptyDatasetRoundTrips) {
  const PointDataset ds("empty");
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());
  EXPECT_TRUE(LoadDatasetCsv(path)->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slam
