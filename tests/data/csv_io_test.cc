#include "data/csv_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace slam {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvIoTest, RoundTrip) {
  PointDataset ds("rt");
  ds.Add({1.5, 2.5}, 1000, 3);
  ds.Add({-4.25, 0.0}, 2000, 0);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());
  const auto loaded = *LoadDatasetCsv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.coord(0).x, 1.5);
  EXPECT_DOUBLE_EQ(loaded.coord(1).x, -4.25);
  EXPECT_EQ(loaded.event_time(0), 1000);
  EXPECT_EQ(loaded.category(0), 3);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MinimalColumns) {
  const std::string path = TempPath("minimal.csv");
  WriteFile(path, "x,y\n1,2\n3,4\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.coord(1), (Point{3.0, 4.0}));
  EXPECT_EQ(ds.event_time(0), 0);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, LonLatAliases) {
  const std::string path = TempPath("lonlat.csv");
  WriteFile(path, "lon,lat\n-122.3,47.6\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds.coord(0).x, -122.3);
  EXPECT_DOUBLE_EQ(ds.coord(0).y, 47.6);
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, ExtraColumnsIgnored) {
  const std::string path = TempPath("extra.csv");
  WriteFile(path, "id,x,notes,y\n7,1,hello,2\n");
  const auto ds = *LoadDatasetCsv(path);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.coord(0), (Point{1.0, 2.0}));
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MissingCoordinateColumnsFail) {
  const std::string path = TempPath("nocoords.csv");
  WriteFile(path, "a,b\n1,2\n");
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MalformedNumberFails) {
  const std::string path = TempPath("badnum.csv");
  WriteFile(path, "x,y\n1,abc\n");
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvIoTest, MissingFileFails) {
  EXPECT_TRUE(LoadDatasetCsv("/nonexistent/nope.csv").status().IsIoError());
}

TEST_F(CsvIoTest, SaveToBadPathFails) {
  PointDataset ds("x");
  ds.Add({0, 0});
  EXPECT_TRUE(SaveDatasetCsv(ds, "/nonexistent/dir/out.csv").IsIoError());
}

TEST_F(CsvIoTest, EmptyDatasetRoundTrips) {
  const PointDataset ds("empty");
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());
  EXPECT_TRUE(LoadDatasetCsv(path)->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slam
