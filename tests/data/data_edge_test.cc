// Generator and dataset edge cases.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/sampling.h"

namespace slam {
namespace {

TEST(DataEdgeTest, PureClusterCity) {
  CityConfig cfg;
  cfg.n = 2000;
  cfg.cluster_fraction = 1.0;
  cfg.street_fraction = 0.0;
  const auto ds = *GenerateCity(cfg);
  EXPECT_EQ(ds.size(), 2000u);
}

TEST(DataEdgeTest, PureBackgroundCity) {
  CityConfig cfg;
  cfg.n = 2000;
  cfg.cluster_fraction = 0.0;
  cfg.street_fraction = 0.0;
  const auto ds = *GenerateCity(cfg);
  EXPECT_EQ(ds.size(), 2000u);
  // Pure uniform background: no pixel-scale clumping — the extent is
  // covered broadly.
  const BoundingBox extent = ds.Extent();
  EXPECT_GT(extent.width(), cfg.width_m * 0.9);
  EXPECT_GT(extent.height(), cfg.height_m * 0.9);
}

TEST(DataEdgeTest, SingleEventCity) {
  CityConfig cfg;
  cfg.n = 1;
  const auto ds = *GenerateCity(cfg);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(DataEdgeTest, SingleCategoryCity) {
  CityConfig cfg;
  cfg.n = 500;
  cfg.num_categories = 1;
  const auto ds = *GenerateCity(cfg);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.category(i), 0);
  }
}

TEST(DataEdgeTest, CustomTimeWindowRespected) {
  CityConfig cfg;
  cfg.n = 500;
  cfg.time_begin_unix = 1600000000;
  cfg.time_end_unix = 1600086400;
  const auto ds = *GenerateCity(cfg);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.event_time(i), 1600000000);
    EXPECT_LE(ds.event_time(i), 1600086400);
  }
}

TEST(DataEdgeTest, SampleOneRow) {
  PointDataset ds("d");
  for (int i = 0; i < 10; ++i) ds.Add({static_cast<double>(i), 0.0});
  const auto one = *SampleCount(ds, 1, 3);
  EXPECT_EQ(one.size(), 1u);
}

TEST(DataEdgeTest, SamplingEmptyDataset) {
  const PointDataset empty("e");
  EXPECT_TRUE(SampleCount(empty, 0, 1)->empty());
  EXPECT_FALSE(SampleCount(empty, 1, 1).ok());
}

TEST(DataEdgeTest, ScaleAboveOneGrowsBeyondPaperSize) {
  // The harness supports running larger-than-paper experiments.
  const auto ds = *GenerateCityDataset(City::kSeattle, 1.0000001 / 863.0, 1);
  EXPECT_GE(ds.size(), 1000u);
}

}  // namespace
}  // namespace slam
