#include "data/dataset.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(PointDatasetTest, EmptyByDefault) {
  const PointDataset ds("empty");
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_EQ(ds.name(), "empty");
}

TEST(PointDatasetTest, AddAndAccess) {
  PointDataset ds("d");
  ds.Add({1.0, 2.0}, 100, 3);
  ds.Add({4.0, 5.0});
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.coord(0), (Point{1.0, 2.0}));
  EXPECT_EQ(ds.event_time(0), 100);
  EXPECT_EQ(ds.category(0), 3);
  EXPECT_EQ(ds.event_time(1), 0);  // defaults
  EXPECT_EQ(ds.category(1), 0);
}

TEST(PointDatasetTest, FromPointsFillsDefaults) {
  const auto ds =
      PointDataset::FromPoints("p", {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.event_times().size(), 3u);
  EXPECT_EQ(ds.categories().size(), 3u);
  EXPECT_EQ(ds.event_time(2), 0);
}

TEST(PointDatasetTest, FromColumnsValidatesLengths) {
  EXPECT_TRUE(PointDataset::FromColumns("ok", {{0, 0}}, {1}, {2}).ok());
  EXPECT_FALSE(PointDataset::FromColumns("bad", {{0, 0}}, {1, 2}, {3}).ok());
  EXPECT_FALSE(PointDataset::FromColumns("bad", {{0, 0}}, {1}, {}).ok());
}

TEST(PointDatasetTest, ExtentComputedAndCached) {
  PointDataset ds("e");
  ds.Add({1, 5});
  ds.Add({-2, 3});
  ds.Add({4, -1});
  const BoundingBox& extent = ds.Extent();
  EXPECT_EQ(extent.min(), (Point{-2.0, -1.0}));
  EXPECT_EQ(extent.max(), (Point{4.0, 5.0}));
  // Adding invalidates the cache.
  ds.Add({100, 100});
  EXPECT_EQ(ds.Extent().max(), (Point{100.0, 100.0}));
}

TEST(PointDatasetTest, SelectPicksRowsInOrder) {
  PointDataset ds("s");
  for (int i = 0; i < 5; ++i) {
    ds.Add({static_cast<double>(i), 0.0}, i * 10, i);
  }
  const std::vector<size_t> indices{4, 0, 2};
  const auto sel = *ds.Select(indices);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel.coord(0).x, 4.0);
  EXPECT_EQ(sel.event_time(1), 0);
  EXPECT_EQ(sel.category(2), 2);
  EXPECT_EQ(sel.name(), "s");
}

TEST(PointDatasetTest, SelectRejectsOutOfRange) {
  PointDataset ds("s");
  ds.Add({0, 0});
  const std::vector<size_t> bad{0, 5};
  EXPECT_TRUE(ds.Select(bad).status().IsOutOfRange());
}

TEST(PointDatasetTest, SelectEmptyIndices) {
  PointDataset ds("s");
  ds.Add({0, 0});
  EXPECT_TRUE(ds.Select(std::vector<size_t>{})->empty());
}

TEST(PointDatasetTest, SpansViewSameData) {
  PointDataset ds("v");
  ds.Add({7, 8}, 9, 1);
  EXPECT_EQ(ds.coords()[0], (Point{7.0, 8.0}));
  EXPECT_EQ(ds.event_times()[0], 9);
  EXPECT_EQ(ds.categories()[0], 1);
}

}  // namespace
}  // namespace slam
