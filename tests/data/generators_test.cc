#include "data/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "explore/filter.h"

namespace slam {
namespace {

TEST(GenerateUniformTest, CountAndExtent) {
  const BoundingBox extent({0, 0}, {10, 20});
  const auto ds = GenerateUniform(1000, extent, 1);
  EXPECT_EQ(ds.size(), 1000u);
  for (const Point& p : ds.coords()) {
    EXPECT_TRUE(extent.Contains(p));
  }
}

TEST(GenerateUniformTest, DeterministicInSeed) {
  const BoundingBox extent({0, 0}, {1, 1});
  const auto a = GenerateUniform(50, extent, 7);
  const auto b = GenerateUniform(50, extent, 7);
  const auto c = GenerateUniform(50, extent, 8);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.coord(i), b.coord(i));
  }
  bool any_diff = false;
  for (size_t i = 0; i < 50; ++i) {
    if (!(a.coord(i) == c.coord(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenerateGaussianClustersTest, PointsConcentrateNearCenters) {
  const BoundingBox extent({0, 0}, {1000, 1000});
  const std::vector<Point> centers{{200, 200}, {800, 800}};
  const auto ds = GenerateGaussianClusters(2000, extent, centers, 30.0, 3);
  ASSERT_EQ(ds.size(), 2000u);
  int near_any = 0;
  for (const Point& p : ds.coords()) {
    for (const Point& c : centers) {
      if (Distance(p, c) < 120.0) {  // 4 sigma
        ++near_any;
        break;
      }
    }
  }
  EXPECT_GT(near_any, 1900);  // almost all within 4 sigma of some center
}

TEST(GenerateGaussianClustersTest, EmptyCentersYieldsEmpty) {
  const auto ds =
      GenerateGaussianClusters(100, BoundingBox({0, 0}, {1, 1}), {}, 1.0, 1);
  EXPECT_TRUE(ds.empty());
}

TEST(GenerateCityTest, ValidatesConfig) {
  CityConfig cfg;
  cfg.n = 0;
  EXPECT_FALSE(GenerateCity(cfg).ok());
  cfg = CityConfig{};
  cfg.width_m = -1;
  EXPECT_FALSE(GenerateCity(cfg).ok());
  cfg = CityConfig{};
  cfg.cluster_fraction = 0.8;
  cfg.street_fraction = 0.5;  // sums over 1
  EXPECT_FALSE(GenerateCity(cfg).ok());
  cfg = CityConfig{};
  cfg.num_clusters = 0;
  EXPECT_FALSE(GenerateCity(cfg).ok());
  cfg = CityConfig{};
  cfg.time_begin_unix = 100;
  cfg.time_end_unix = 50;
  EXPECT_FALSE(GenerateCity(cfg).ok());
}

TEST(GenerateCityTest, ProducesRequestedSizeWithinExtent) {
  CityConfig cfg;
  cfg.n = 5000;
  cfg.seed = 99;
  const auto ds = *GenerateCity(cfg);
  EXPECT_EQ(ds.size(), 5000u);
  const BoundingBox extent({0, 0}, {cfg.width_m, cfg.height_m});
  for (const Point& p : ds.coords()) {
    EXPECT_TRUE(extent.Contains(p));
  }
}

TEST(GenerateCityTest, AttributesArePopulated) {
  CityConfig cfg;
  cfg.n = 3000;
  cfg.num_categories = 5;
  const auto ds = *GenerateCity(cfg);
  std::set<int32_t> cats;
  int64_t t_min = ds.event_time(0), t_max = ds.event_time(0);
  for (size_t i = 0; i < ds.size(); ++i) {
    cats.insert(ds.category(i));
    t_min = std::min(t_min, ds.event_time(i));
    t_max = std::max(t_max, ds.event_time(i));
  }
  EXPECT_GE(cats.size(), 3u);  // Zipf still covers several categories
  for (const int32_t c : cats) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 5);
  }
  // Default window is 2018-2020, so timestamps straddle 2019.
  EXPECT_LT(t_min, *Year2019Filter().time_begin);
  EXPECT_GT(t_max, *Year2019Filter().time_end);
}

TEST(GenerateCityTest, CategoriesAreZipfSkewed) {
  CityConfig cfg;
  cfg.n = 10000;
  cfg.num_categories = 8;
  const auto ds = *GenerateCity(cfg);
  std::vector<int> counts(8, 0);
  for (size_t i = 0; i < ds.size(); ++i) ++counts[ds.category(i)];
  EXPECT_GT(counts[0], counts[7] * 2);  // head much heavier than tail
}

TEST(CityPresetTest, NamesAndPaperConstants) {
  EXPECT_EQ(CityName(City::kSeattle), "Seattle");
  EXPECT_EQ(CityName(City::kSanFrancisco), "San Francisco");
  EXPECT_EQ(CityPaperSize(City::kSeattle), 862873u);
  EXPECT_EQ(CityPaperSize(City::kLosAngeles), 1255668u);
  EXPECT_EQ(CityPaperSize(City::kNewYork), 1499928u);
  EXPECT_EQ(CityPaperSize(City::kSanFrancisco), 4333098u);
  EXPECT_NEAR(CityPaperBandwidth(City::kSeattle), 671.39, 1e-9);
  EXPECT_NEAR(CityPaperBandwidth(City::kSanFrancisco), 279.27, 1e-9);
}

TEST(CityPresetTest, ScaleControlsSize) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.01, 42);
  EXPECT_NEAR(static_cast<double>(ds.size()), 8628.73, 1.0);
  EXPECT_EQ(ds.name(), "Seattle");
}

TEST(CityPresetTest, RejectsNonPositiveScale) {
  EXPECT_FALSE(GenerateCityDataset(City::kSeattle, 0.0).ok());
  EXPECT_FALSE(GenerateCityDataset(City::kSeattle, -0.5).ok());
}

TEST(CityPresetTest, CitiesDiffer) {
  const auto seattle = *GenerateCityDataset(City::kSeattle, 0.005, 42);
  const auto sf = *GenerateCityDataset(City::kSanFrancisco, 0.001, 42);
  // Different extents by construction.
  EXPECT_GT(seattle.Extent().height(), sf.Extent().height() * 1.5);
}

TEST(CityPresetTest, DeterministicAcrossCalls) {
  const auto a = *GenerateCityDataset(City::kNewYork, 0.002, 5);
  const auto b = *GenerateCityDataset(City::kNewYork, 0.002, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.coord(i), b.coord(i));
    EXPECT_EQ(a.event_time(i), b.event_time(i));
  }
}

}  // namespace
}  // namespace slam
