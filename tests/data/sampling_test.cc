#include "data/sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace slam {
namespace {

PointDataset MakeDataset(size_t n) {
  PointDataset ds("sampleme");
  for (size_t i = 0; i < n; ++i) {
    ds.Add({static_cast<double>(i), static_cast<double>(i % 7)},
           static_cast<int64_t>(i), static_cast<int32_t>(i % 3));
  }
  return ds;
}

TEST(SampleFractionTest, FullFractionIsIdentity) {
  const auto ds = MakeDataset(100);
  const auto out = *SampleFraction(ds, 1.0, 42);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out.coord(i).x, static_cast<double>(i));  // original order
  }
}

TEST(SampleFractionTest, HalfFraction) {
  const auto ds = MakeDataset(1000);
  const auto out = *SampleFraction(ds, 0.5, 42);
  EXPECT_EQ(out.size(), 500u);
}

TEST(SampleFractionTest, QuarterRounds) {
  const auto ds = MakeDataset(10);
  EXPECT_EQ(SampleFraction(ds, 0.25, 1)->size(), 3u);  // round(2.5) = 3
}

TEST(SampleFractionTest, RejectsBadFractions) {
  const auto ds = MakeDataset(10);
  EXPECT_FALSE(SampleFraction(ds, 0.0, 1).ok());
  EXPECT_FALSE(SampleFraction(ds, -0.5, 1).ok());
  EXPECT_FALSE(SampleFraction(ds, 1.5, 1).ok());
}

TEST(SampleCountTest, RowsAreDistinctAndCarryAttributes) {
  const auto ds = MakeDataset(50);
  const auto out = *SampleCount(ds, 20, 7);
  ASSERT_EQ(out.size(), 20u);
  std::set<double> xs;
  for (size_t i = 0; i < out.size(); ++i) {
    xs.insert(out.coord(i).x);
    // Attributes must travel with their row.
    const auto original_index = static_cast<size_t>(out.coord(i).x);
    EXPECT_EQ(out.event_time(i), static_cast<int64_t>(original_index));
    EXPECT_EQ(out.category(i), static_cast<int32_t>(original_index % 3));
  }
  EXPECT_EQ(xs.size(), 20u);  // no replacement
}

TEST(SampleCountTest, DeterministicInSeed) {
  const auto ds = MakeDataset(100);
  const auto a = *SampleCount(ds, 30, 5);
  const auto b = *SampleCount(ds, 30, 5);
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(a.coord(i), b.coord(i));
  const auto c = *SampleCount(ds, 30, 6);
  bool differs = false;
  for (size_t i = 0; i < 30; ++i) {
    if (!(a.coord(i) == c.coord(i))) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SampleCountTest, RejectsOversample) {
  const auto ds = MakeDataset(5);
  EXPECT_FALSE(SampleCount(ds, 6, 1).ok());
}

TEST(SampleCountTest, ZeroIsEmpty) {
  const auto ds = MakeDataset(5);
  EXPECT_TRUE(SampleCount(ds, 0, 1)->empty());
}

}  // namespace
}  // namespace slam
