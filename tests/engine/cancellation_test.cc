// Cancellation / deadline / memory-budget completeness: every method in
// AllMethods() must honour the ExecContext within one pixel row of work.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "kdv/engine.h"
#include "testing/test_util.h"
#include "util/exec_context.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::MakeGrid;

class CancellationTest : public ::testing::TestWithParam<Method> {
 protected:
  // 36 x 48 raster (height > width) so the RAO variants transpose; enough
  // points that every method passes through its row loop many times.
  // The points live in the fixture: KdvTask only holds a span over them.
  KdvTask MakeCancellableTask() {
    points_ = ClusteredPoints(3000, 50.0, 3, 617);
    KdvTask task;
    task.points = points_;
    task.kernel = KernelType::kEpanechnikov;
    task.bandwidth = 8.0;
    task.weight = 1.0 / 3000.0;
    task.grid = MakeGrid(36, 48, 50.0);
    return task;
  }

 private:
  std::vector<Point> points_;
};

TEST_P(CancellationTest, PreCancelledTokenStopsBeforeAnyWork) {
  const KdvTask task = MakeCancellableTask();
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, GetParam(), opts);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << MethodName(GetParam());
}

TEST_P(CancellationTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  const KdvTask task = MakeCancellableTask();
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, GetParam(), opts);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << MethodName(GetParam());
}

TEST_P(CancellationTest, NonPositiveDeadlineFailsFastBeforeAnyWork) {
  // Zero and negative budgets are deadlines that have ALREADY passed.
  // Every method must reject them at its entry checkpoint: the fault
  // injector's global hit count proves no per-row checkpoint was ever
  // reached, i.e. no sweep work started.
  const KdvTask task = MakeCancellableTask();
  for (const double budget : {0.0, -1.0, -1e9}) {
    const Deadline expired(budget);
    FaultInjector injector;  // armed with nothing: pure hit counter
    ExecContext exec;
    exec.set_deadline(&expired);
    exec.set_fault_injector(&injector);
    EngineOptions opts;
    opts.compute.exec = &exec;
    const auto result = ComputeKdv(task, GetParam(), opts);
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << MethodName(GetParam()) << " budget=" << budget;
    EXPECT_LE(injector.HitCount("*"), 1)
        << MethodName(GetParam()) << " budget=" << budget
        << " did work past the entry checkpoint";
  }
}

TEST_P(CancellationTest, MidRunCancellationStopsWithinOneRow) {
  const KdvTask task = MakeCancellableTask();
  // Let 10 checkpoints pass, then trip every later one. If the method kept
  // sweeping after the trip, the global hit count would keep growing: a
  // small post-trip count proves the error propagated within one row.
  constexpr int64_t kPassedHits = 10;
  FaultInjector injector;
  injector.Arm("*", kPassedHits, Status::Cancelled("injected mid-run"));
  ExecContext exec;
  exec.set_fault_injector(&injector);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, GetParam(), opts);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << MethodName(GetParam());
  EXPECT_LE(injector.HitCount("*"), kPassedHits + 3)
      << MethodName(GetParam())
      << " kept hitting checkpoints after the trip";
}

TEST_P(CancellationTest, BudgetBelowEstimateIsResourceExhausted) {
  const KdvTask task = MakeCancellableTask();
  const Method method = GetParam();
  const size_t estimate = EstimateAuxiliarySpaceBytes(
      method, task.points.size(), task.grid.width(), task.grid.height());
  if (estimate == 0) {
    // SCAN needs no auxiliary space; any budget is enough.
    MemoryBudget budget(0);
    ExecContext exec;
    exec.set_memory_budget(&budget);
    EngineOptions opts;
    opts.compute.exec = &exec;
    EXPECT_TRUE(ComputeKdv(task, method, opts).ok()) << MethodName(method);
    return;
  }
  MemoryBudget budget(estimate / 2);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, method, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << MethodName(method);
  EXPECT_EQ(budget.used_bytes(), 0u)
      << MethodName(method) << " leaked a budget charge on failure";
}

TEST_P(CancellationTest, AmpleBudgetSucceedsAndReleasesEverything) {
  const KdvTask task = MakeCancellableTask();
  const Method method = GetParam();
  MemoryBudget budget(size_t{64} << 20);  // 64 MiB: plenty for 3000 points
  ExecContext exec;
  exec.set_memory_budget(&budget);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, method, opts);
  ASSERT_TRUE(result.ok()) << MethodName(method) << ": "
                           << result.status().ToString();
  EXPECT_EQ(budget.used_bytes(), 0u)
      << MethodName(method) << " did not release its workspace charges";
  if (EstimateAuxiliarySpaceBytes(method, task.points.size(),
                                  task.grid.width(),
                                  task.grid.height()) > 0) {
    EXPECT_GT(budget.peak_bytes(), 0u)
        << MethodName(method) << " never accounted any workspace";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, CancellationTest, ::testing::ValuesIn(AllMethods()),
    [](const ::testing::TestParamInfo<Method>& param_info) {
      std::string name;
      for (const char c : MethodName(param_info.param)) {
        if (std::isalnum(static_cast<unsigned char>(c))) name += c;
      }
      return name;
    });

}  // namespace
}  // namespace slam
