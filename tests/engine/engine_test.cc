#include "kdv/engine.h"

#include <gtest/gtest.h>

#include <limits>

#include "testing/test_util.h"
#include "util/exec_context.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;

KdvTask MakeEngineTask(const std::vector<Point>& pts,
                       KernelType kernel = KernelType::kEpanechnikov) {
  KdvTask task;
  task.points = pts;
  task.kernel = kernel;
  task.bandwidth = 8.0;
  task.weight = pts.empty() ? 1.0 : 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(16, 12, 50.0);
  return task;
}

TEST(MethodNameTest, RoundTripsAllMethods) {
  for (const Method m : AllMethods()) {
    EXPECT_EQ(*MethodFromName(MethodName(m)), m);
  }
  EXPECT_EQ(*MethodFromName("slam_bucket(rao)"), Method::kSlamBucketRao);
  EXPECT_EQ(*MethodFromName("ZORDER"), Method::kZorder);
  EXPECT_FALSE(MethodFromName("fft").ok());
}

TEST(MethodListsTest, SizesAndMembership) {
  EXPECT_EQ(AllMethods().size(), 10u);  // paper Table 6
  EXPECT_EQ(ExactMethods().size(), 8u);
  for (const Method m : ExactMethods()) {
    EXPECT_TRUE(MethodIsExact(m)) << MethodName(m);
  }
  EXPECT_FALSE(MethodIsExact(Method::kZorder));
  EXPECT_FALSE(MethodIsExact(Method::kAkde));
}

TEST(MethodPredicateTest, SlamDetection) {
  EXPECT_TRUE(MethodIsSlam(Method::kSlamSort));
  EXPECT_TRUE(MethodIsSlam(Method::kSlamBucketRao));
  EXPECT_FALSE(MethodIsSlam(Method::kQuad));
  EXPECT_FALSE(MethodIsSlam(Method::kScan));
}

TEST(EngineTest, ComputesWithEveryMethod) {
  const auto pts = ClusteredPoints(400, 50.0, 3, 479);
  const KdvTask task = MakeEngineTask(pts);
  for (const Method m : AllMethods()) {
    const auto result = ComputeKdv(task, m);
    ASSERT_TRUE(result.ok()) << MethodName(m) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->width(), 16);
    EXPECT_GT(result->MaxValue(), 0.0) << MethodName(m);
  }
}

TEST(EngineTest, SlamRejectsGaussianWithClearError) {
  const auto pts = ClusteredPoints(50, 50.0, 2, 487);
  const KdvTask task = MakeEngineTask(pts, KernelType::kGaussian);
  for (const Method m :
       {Method::kSlamSort, Method::kSlamBucket, Method::kSlamSortRao,
        Method::kSlamBucketRao}) {
    const auto result = ComputeKdv(task, m);
    ASSERT_FALSE(result.ok()) << MethodName(m);
    EXPECT_TRUE(result.status().IsInvalidArgument());
    EXPECT_NE(result.status().message().find("gaussian"), std::string::npos);
  }
}

TEST(EngineTest, NonSlamMethodsAcceptGaussian) {
  const auto pts = ClusteredPoints(100, 50.0, 2, 491);
  const KdvTask task = MakeEngineTask(pts, KernelType::kGaussian);
  for (const Method m : {Method::kScan, Method::kRqsKd, Method::kRqsBall,
                         Method::kZorder, Method::kAkde, Method::kQuad}) {
    EXPECT_TRUE(ComputeKdv(task, m).ok()) << MethodName(m);
  }
}

TEST(EngineTest, InvalidTaskRejectedBeforeDispatch) {
  KdvTask task = MakeEngineTask({});
  task.bandwidth = 0.0;
  EXPECT_FALSE(ComputeKdv(task, Method::kScan).ok());
}

TEST(EngineTest, RecenteringDoesNotChangeResult) {
  // Same dataset shifted to large coordinates: recentered result must match
  // the locally-computed one to high precision.
  const auto pts = ClusteredPoints(300, 50.0, 3, 499);
  const KdvTask local = MakeEngineTask(pts);
  const DensityMap expected = *ComputeKdv(local, Method::kSlamBucket);

  std::vector<Point> far;
  far.reserve(pts.size());
  const double kOffset = 5.0e6;  // ~ UTM-scale coordinates
  for (const Point& p : pts) far.push_back({p.x + kOffset, p.y + kOffset});
  KdvTask far_task = local;
  far_task.points = far;
  far_task.grid = local.grid.Translated(-kOffset, -kOffset);

  EngineOptions opts;
  opts.recenter_coordinates = true;
  const DensityMap recentered =
      *ComputeKdv(far_task, Method::kSlamBucket, opts);
  ExpectMapsNear(expected, recentered, 1e-7);
}

TEST(EngineTest, DeadlinePropagatesThroughDispatch) {
  const auto pts = ClusteredPoints(50000, 50.0, 4, 503);
  KdvTask task = MakeEngineTask(pts);
  task.grid = MakeGrid(400, 400, 50.0);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  EngineOptions opts;
  opts.compute.exec = &exec;
  const auto result = ComputeKdv(task, Method::kScan, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EngineTest, SanitizeDropsNonFinitePoints) {
  auto pts = ClusteredPoints(200, 50.0, 2, 509);
  const KdvTask clean = MakeEngineTask(pts);
  const DensityMap expected = *ComputeKdv(clean, Method::kScan);

  auto dirty = pts;
  dirty.push_back({std::numeric_limits<double>::quiet_NaN(), 10.0});
  dirty.push_back({10.0, std::numeric_limits<double>::infinity()});
  KdvTask dirty_task = clean;
  dirty_task.points = dirty;

  // Without sanitize: hard validation error naming the point.
  const auto rejected = ComputeKdv(dirty_task, Method::kScan);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_NE(rejected.status().message().find("non-finite"), std::string::npos);

  // With sanitize: the bad rows vanish and the raster matches the clean run.
  EngineOptions opts;
  opts.sanitize = true;
  const auto cleaned = ComputeKdv(dirty_task, Method::kScan, opts);
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  ExpectMapsNear(expected, *cleaned, 1e-12);
}

}  // namespace
}  // namespace slam
