// The paper's central claim is that SLAM is *exact*: every SLAM variant
// must produce the same raster as the O(XYn) SCAN oracle on any input.
// This file sweeps that property across methods, kernels, data shapes,
// bandwidths, resolutions and aspect ratios with parameterized tests.
#include <gtest/gtest.h>

#include <tuple>

#include "kdv/engine.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;
using testing::RandomPoints;

struct EquivalenceCase {
  Method method;
  KernelType kernel;
  int width;
  int height;
  double bandwidth;
  bool clustered;
};

std::string CaseName(
    const ::testing::TestParamInfo<EquivalenceCase>& info) {
  const EquivalenceCase& c = info.param;
  std::string name(MethodName(c.method));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_";
  name += KernelTypeName(c.kernel);
  name += "_" + std::to_string(c.width) + "x" + std::to_string(c.height);
  name += "_b" + std::to_string(static_cast<int>(c.bandwidth * 10));
  name += c.clustered ? "_clustered" : "_uniform";
  return name;
}

class ExactEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ExactEquivalenceTest, MatchesScanOracle) {
  const EquivalenceCase& c = GetParam();
  const double extent = 60.0;
  const std::vector<Point> pts =
      c.clustered ? ClusteredPoints(500, extent, 4, 509)
                  : RandomPoints(500, extent, 521);
  KdvTask task;
  task.points = pts;
  task.kernel = c.kernel;
  task.bandwidth = c.bandwidth;
  task.weight = 1.0 / 500.0;
  task.grid = MakeGrid(c.width, c.height, extent);

  const auto result = ComputeKdv(task, c.method);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectMapsNear(BruteForceDensity(task), *result, 1e-9);
}

std::vector<EquivalenceCase> AllExactCases() {
  std::vector<EquivalenceCase> cases;
  const KernelType kernels[] = {KernelType::kUniform,
                                KernelType::kEpanechnikov,
                                KernelType::kQuartic};
  const std::pair<int, int> shapes[] = {{24, 18}, {18, 24}, {30, 8}};
  const double bandwidths[] = {2.0, 7.5, 25.0};
  for (const Method m : ExactMethods()) {
    for (const KernelType k : kernels) {
      for (const auto& [w, h] : shapes) {
        for (const double b : bandwidths) {
          // Trim the grid: vary data shape only on one representative
          // setting to keep the suite fast, but cover every
          // (method, kernel) and every (method, shape, bandwidth) pair.
          if (b == 7.5) {
            cases.push_back({m, k, w, h, b, true});
          } else if (k == KernelType::kEpanechnikov) {
            cases.push_back({m, k, w, h, b, false});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllExactMethods, ExactEquivalenceTest,
                         ::testing::ValuesIn(AllExactCases()), CaseName);

// Approximate methods: bounded error rather than equality.
class ApproximateMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(ApproximateMethodTest, StaysCloseToOracle) {
  const Method method = GetParam();
  const double extent = 60.0;
  const auto pts = ClusteredPoints(8000, extent, 4, 523);
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 9.0;
  task.weight = 1.0 / 8000.0;
  task.grid = MakeGrid(20, 16, extent);

  const auto result = ComputeKdv(task, method);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DensityMap exact = BruteForceDensity(task);
  const auto cmp = *exact.CompareTo(*result);
  EXPECT_LT(cmp.max_abs_diff, 0.2 * exact.MaxValue()) << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(Approximate, ApproximateMethodTest,
                         ::testing::Values(Method::kZorder, Method::kAkde),
                         [](const ::testing::TestParamInfo<Method>& param_info) {
                           std::string n(MethodName(param_info.param));
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// Cross-method agreement on a shared task: all exact methods must agree
// with each other (not just with SCAN), pairwise, to tight tolerance.
TEST(CrossMethodAgreementTest, AllExactMethodsAgreePairwise) {
  const auto pts = ClusteredPoints(700, 45.0, 5, 541);
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kQuartic;
  task.bandwidth = 6.0;
  task.weight = 1.0 / 700.0;
  task.grid = MakeGrid(22, 14, 45.0);

  std::vector<DensityMap> maps;
  for (const Method m : ExactMethods()) {
    maps.push_back(*ComputeKdv(task, m));
  }
  for (size_t i = 1; i < maps.size(); ++i) {
    ExpectMapsNear(maps[0], maps[i], 1e-9,
                   std::string(MethodName(ExactMethods()[i])).c_str());
  }
}

// Determinism: two runs of the same method on the same task are identical.
TEST(DeterminismTest, RepeatedRunsAreBitwiseEqual) {
  const auto pts = ClusteredPoints(300, 45.0, 3, 547);
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 5.0;
  task.weight = 1.0 / 300.0;
  task.grid = MakeGrid(16, 16, 45.0);
  for (const Method m : AllMethods()) {
    const DensityMap a = *ComputeKdv(task, m);
    const DensityMap b = *ComputeKdv(task, m);
    const auto cmp = *a.CompareTo(b);
    EXPECT_EQ(cmp.max_abs_diff, 0.0) << MethodName(m);
  }
}

}  // namespace
}  // namespace slam
