// Randomized equivalence sweep: many random task configurations per seed,
// each checking SLAM_BUCKET_RAO (and one rotating exact competitor)
// against the SCAN oracle. Complements the structured parameter grid in
// equivalence_test.cc with irregular grids, off-origin viewports,
// anisotropic gaps and degenerate data shapes.
#include <gtest/gtest.h>

#include "kdv/engine.h"
#include "testing/test_util.h"
#include "util/random.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ExpectMapsNear;

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, RandomTasksMatchOracle) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    // Random data: mixture of uniform, clustered, collinear and duplicated
    // points over a random extent with a random offset.
    const double extent = rng.Uniform(1.0, 500.0);
    const Point offset{rng.Uniform(-1000.0, 1000.0),
                       rng.Uniform(-1000.0, 1000.0)};
    const size_t n = 1 + rng.NextBelow(400);
    std::vector<Point> pts;
    pts.reserve(n);
    const int flavor = static_cast<int>(rng.NextBelow(4));
    for (size_t i = 0; i < n; ++i) {
      Point p;
      switch (flavor) {
        case 0:  // uniform
          p = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
          break;
        case 1:  // one tight cluster
          p = {rng.Gaussian(extent / 2, extent / 30),
               rng.Gaussian(extent / 2, extent / 30)};
          break;
        case 2:  // horizontal line (degenerate y-spread)
          p = {rng.Uniform(0, extent), extent / 2};
          break;
        default:  // duplicates
          p = {extent / 3, extent / 4};
          break;
      }
      pts.push_back(p + offset);
    }

    KdvTask task;
    task.points = pts;
    task.kernel = static_cast<KernelType>(rng.NextBelow(3));  // SLAM kernels
    task.bandwidth = rng.Uniform(extent / 50.0, extent);
    task.weight = rng.Uniform(0.001, 2.0);
    const int width = 1 + static_cast<int>(rng.NextBelow(40));
    const int height = 1 + static_cast<int>(rng.NextBelow(40));
    task.grid = Grid::Create(
                    GridAxis{offset.x + rng.Uniform(0, extent / 4),
                             rng.Uniform(extent / 200.0, extent / 4.0), width},
                    GridAxis{offset.y + rng.Uniform(0, extent / 4),
                             rng.Uniform(extent / 200.0, extent / 4.0), height})
                    .ValueOrDie();

    // Random offsets up to ~1000x the bandwidth make the subtractive
    // aggregate forms ill-conditioned by design; recentering (the engine
    // option built for exactly this) restores precision, and the looser
    // tolerance absorbs the remaining rounding.
    EngineOptions options;
    options.recenter_coordinates = true;

    const DensityMap oracle = BruteForceDensity(task);
    const auto slam = ComputeKdv(task, Method::kSlamBucketRao, options);
    ASSERT_TRUE(slam.ok()) << slam.status().ToString();
    ExpectMapsNear(oracle, *slam, 1e-6, "SLAM_BUCKET_RAO");

    // Rotate a second exact method through the trials.
    const Method second = ExactMethods()[trial % ExactMethods().size()];
    const auto other = ComputeKdv(task, second, options);
    ASSERT_TRUE(other.ok()) << MethodName(second);
    ExpectMapsNear(oracle, *other, 1e-6,
                   std::string(MethodName(second)).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006, 7007, 8008));

}  // namespace
}  // namespace slam
