// TSan-targeted stress tests for the parallel layer: these exist to give
// ThreadSanitizer (scripts/check_sanitize.sh tsan) maximal interleaving
// coverage of the two concurrency protocols the stripe scheduler relies
// on — first-error-wins cancellation and thread-pool lifecycle — not to
// assert new functional behavior. They run in every configuration, but
// their teeth are the TSan lane in CI.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kdv/parallel.h"
#include "testing/test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;

KdvTask MakeStressTask(const std::vector<Point>& pts, int width, int height) {
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 8.0;
  task.weight = 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(width, height, 60.0);
  return task;
}

TEST(ParallelStressTest, FirstErrorWinsHammer) {
  // 100 rounds of: N worker threads, a fault injected on a random stripe
  // checkpoint, every sibling expected to stop via the chained token. Any
  // unlocked access in the collector / token / pool shows up as a TSan
  // race report; functionally, the injected error (never a secondary
  // Cancelled) must win every round.
  const auto pts = ClusteredPoints(500, 60.0, 3, 701);
  // 120 rows: divisible by 2*threads for threads in 2..5, so ParallelFor
  // cuts exactly 2*threads stripes and every armed checkpoint below is
  // guaranteed to be reached.
  const KdvTask task = MakeStressTask(pts, 16, 120);
  Rng rng(702);
  for (int round = 0; round < 100; ++round) {
    FaultInjector injector;
    const int num_threads = 2 + static_cast<int>(rng.NextBelow(4));  // 2..5
    // Trip a random one of the 2*threads stripe entry checkpoints.
    const auto fault_after = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(2 * num_threads)));
    injector.Arm("parallel/stripe", fault_after,
                 Status::IoError("hammer fault"));
    ExecContext exec;
    exec.set_fault_injector(&injector);
    ParallelOptions options;
    options.num_threads = num_threads;
    options.engine.compute.exec = &exec;
    const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
    ASSERT_FALSE(map.ok()) << "round " << round;
    EXPECT_EQ(map.status().code(), StatusCode::kIoError)
        << "round " << round << ": " << map.status().ToString();
  }
}

TEST(ParallelStressTest, CancelRaceWithCompletion) {
  // Race the caller's token against natural completion: on a tiny task the
  // stripes may win, so either outcome is legal — what TSan checks is that
  // the token reads/writes and the raster writes never race.
  const auto pts = ClusteredPoints(200, 60.0, 2, 703);
  const KdvTask task = MakeStressTask(pts, 16, 16);
  for (int round = 0; round < 100; ++round) {
    CancellationToken token;
    ExecContext exec;
    exec.set_cancellation(&token);
    ParallelOptions options;
    options.num_threads = 4;
    options.engine.compute.exec = &exec;
    std::thread canceller([&token] { token.Cancel(); });
    const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
    canceller.join();
    if (!map.ok()) {
      EXPECT_EQ(map.status().code(), StatusCode::kCancelled)
          << "round " << round;
    }
  }
}

TEST(ParallelStressTest, ThreadPoolChurn) {
  // Construct/submit/destroy churn: a fresh pool per round, a burst of
  // tasks, destruction immediately after Wait (and sometimes with no Wait
  // at all — the destructor must drain safely on its own).
  std::atomic<int64_t> executed{0};
  int64_t expected = 0;
  Rng rng(704);
  for (int round = 0; round < 100; ++round) {
    const int num_threads = 1 + static_cast<int>(rng.NextBelow(4));  // 1..4
    const int num_tasks = static_cast<int>(rng.NextBelow(32));       // 0..31
    ThreadPool pool(num_threads);
    for (int t = 0; t < num_tasks; ++t) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    expected += num_tasks;
    if (round % 2 == 0) {
      pool.Wait();  // odd rounds: destructor alone must drain the queue
    }
  }
  EXPECT_EQ(executed.load(), expected);
}

TEST(ParallelStressTest, ParallelForNestedWaves) {
  // Repeated ParallelFor waves over one pool: Wait() must be a reliable
  // barrier between waves (in_flight_ bookkeeping), and disjoint-index
  // writes must not race.
  ThreadPool pool(4);
  std::vector<int64_t> cells(256, 0);
  for (int wave = 0; wave < 50; ++wave) {
    ParallelFor(&pool, 0, static_cast<int64_t>(cells.size()),
                [&cells](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) ++cells[
                      static_cast<size_t>(i)];
                });
  }
  for (const int64_t c : cells) EXPECT_EQ(c, 50);
}

TEST(ParallelStressTest, StressedResultStaysExact) {
  // After all the hammering above, a plain parallel run in the same
  // process still matches brute force — the stress machinery leaks no
  // state between runs.
  const auto pts = ClusteredPoints(400, 60.0, 3, 705);
  const KdvTask task = MakeStressTask(pts, 20, 15);
  ParallelOptions options;
  options.num_threads = 4;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
  ASSERT_TRUE(map.ok());
  ExpectMapsNear(BruteForceDensity(task), *map, 1e-9);
}

}  // namespace
}  // namespace slam
