#include "kdv/parallel.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::BruteForceDensity;
using testing::ClusteredPoints;
using testing::ExpectMapsNear;
using testing::MakeGrid;

KdvTask MakeParallelTask(const std::vector<Point>& pts, int width,
                         int height) {
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 8.0;
  task.weight = 1.0 / static_cast<double>(pts.size());
  task.grid = MakeGrid(width, height, 60.0);
  return task;
}

TEST(ParallelKdvTest, MatchesSerialToUlpsForSlam) {
  const auto pts = ClusteredPoints(2000, 60.0, 5, 601);
  const KdvTask task = MakeParallelTask(pts, 40, 37);  // odd height
  const DensityMap serial = *ComputeKdv(task, Method::kSlamBucket);
  for (const int threads : {1, 2, 3, 8}) {
    ParallelOptions options;
    options.num_threads = threads;
    const auto parallel =
        ComputeKdvParallel(task, Method::kSlamBucket, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    // A stripe evaluates row iy at (stripe_origin + iy*gap), which can
    // differ from the serial (origin + (row_begin+iy)*gap) by one ulp of
    // the row coordinate, so agreement is to rounding, not bitwise.
    const auto cmp = *serial.CompareTo(*parallel);
    EXPECT_LE(cmp.max_abs_diff, 1e-12) << threads << " threads";
  }
}

TEST(ParallelKdvTest, AllExactMethodsStayExact) {
  const auto pts = ClusteredPoints(400, 60.0, 3, 607);
  const KdvTask task = MakeParallelTask(pts, 20, 15);
  const DensityMap expected = BruteForceDensity(task);
  ParallelOptions options;
  options.num_threads = 3;
  for (const Method m : ExactMethods()) {
    const auto map = ComputeKdvParallel(task, m, options);
    ASSERT_TRUE(map.ok()) << MethodName(m);
    ExpectMapsNear(expected, *map, 1e-9,
                   std::string(MethodName(m)).c_str());
  }
}

TEST(ParallelKdvTest, RaoMethodsInsideStripes) {
  // Tall grid: RAO would transpose the full problem, but stripes are short
  // and wide; the result must be exact either way.
  const auto pts = ClusteredPoints(600, 60.0, 4, 613);
  const KdvTask task = MakeParallelTask(pts, 10, 60);
  ParallelOptions options;
  options.num_threads = 4;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucketRao, options);
  ASSERT_TRUE(map.ok());
  ExpectMapsNear(BruteForceDensity(task), *map, 1e-9);
}

TEST(ParallelKdvTest, MoreThreadsThanRows) {
  const auto pts = ClusteredPoints(200, 60.0, 2, 617);
  const KdvTask task = MakeParallelTask(pts, 30, 3);
  ParallelOptions options;
  options.num_threads = 16;
  const auto map = ComputeKdvParallel(task, Method::kSlamSort, options);
  ASSERT_TRUE(map.ok());
  ExpectMapsNear(BruteForceDensity(task), *map, 1e-9);
}

TEST(ParallelKdvTest, RejectsGaussianForSlam) {
  const auto pts = ClusteredPoints(50, 60.0, 1, 619);
  KdvTask task = MakeParallelTask(pts, 8, 8);
  task.kernel = KernelType::kGaussian;
  EXPECT_FALSE(ComputeKdvParallel(task, Method::kSlamBucket).ok());
}

TEST(ParallelKdvTest, RejectsInvalidTask) {
  const auto pts = ClusteredPoints(50, 60.0, 1, 631);
  KdvTask task = MakeParallelTask(pts, 8, 8);
  task.bandwidth = -1;
  EXPECT_FALSE(ComputeKdvParallel(task, Method::kSlamBucket).ok());
}

TEST(ParallelKdvTest, PropagatesStripeErrors) {
  const auto pts = ClusteredPoints(20000, 60.0, 4, 641);
  const KdvTask task = MakeParallelTask(pts, 200, 200);
  const Deadline expired(1e-9);
  ExecContext exec;
  exec.set_deadline(&expired);
  ParallelOptions options;
  options.num_threads = 2;
  options.engine.compute.exec = &exec;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
  EXPECT_EQ(map.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ParallelKdvTest, FailingStripeCancelsSiblingsAndPropagates) {
  const auto pts = ClusteredPoints(20000, 60.0, 4, 647);
  const KdvTask task = MakeParallelTask(pts, 64, 64);
  // Fail stripe 3 of the N stripe entry checkpoints: the first two stripes
  // pass their entry check, the third trips with IoError. That error (not a
  // secondary Cancelled from a sibling) must be what the caller sees.
  FaultInjector injector;
  injector.Arm("parallel/stripe", 2, Status::IoError("injected stripe fault"));
  ExecContext exec;
  exec.set_fault_injector(&injector);
  ParallelOptions options;
  options.num_threads = 4;
  options.engine.compute.exec = &exec;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kIoError);
  EXPECT_NE(map.status().message().find("injected stripe fault"),
            std::string::npos);
}

TEST(ParallelKdvTest, CancelledCallerTokenStopsAllStripes) {
  const auto pts = ClusteredPoints(5000, 60.0, 3, 653);
  const KdvTask task = MakeParallelTask(pts, 64, 64);
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  ParallelOptions options;
  options.num_threads = 2;
  options.engine.compute.exec = &exec;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
  EXPECT_EQ(map.status().code(), StatusCode::kCancelled);
}

TEST(ParallelKdvTest, StripesShareOneMemoryBudget) {
  const auto pts = ClusteredPoints(2000, 60.0, 3, 659);
  const KdvTask task = MakeParallelTask(pts, 32, 32);
  MemoryBudget budget(size_t{64} << 20);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  ParallelOptions options;
  options.num_threads = 4;
  options.engine.compute.exec = &exec;
  const auto map = ComputeKdvParallel(task, Method::kSlamBucket, options);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(budget.used_bytes(), 0u);  // every stripe released its charges
  EXPECT_GT(budget.peak_bytes(), 0u);
  ExpectMapsNear(BruteForceDensity(task), *map, 1e-9);
}

TEST(ParallelKdvTest, DefaultThreadCountWorks) {
  const auto pts = ClusteredPoints(300, 60.0, 3, 643);
  const KdvTask task = MakeParallelTask(pts, 16, 16);
  const auto map = ComputeKdvParallel(task, Method::kSlamBucketRao);
  ASSERT_TRUE(map.ok());
  ExpectMapsNear(BruteForceDensity(task), *map, 1e-9);
}

}  // namespace
}  // namespace slam
