#include <gtest/gtest.h>

#include "kdv/engine.h"

namespace slam {
namespace {

TEST(SpaceModelTest, ScanNeedsNoAuxiliarySpace) {
  EXPECT_EQ(EstimateAuxiliarySpaceBytes(Method::kScan, 1000000, 1280, 960),
            0u);
}

TEST(SpaceModelTest, GrowsLinearlyInN) {
  for (const Method m : AllMethods()) {
    if (m == Method::kScan) continue;
    const size_t small = EstimateAuxiliarySpaceBytes(m, 100000, 1280, 960);
    const size_t large = EstimateAuxiliarySpaceBytes(m, 400000, 1280, 960);
    EXPECT_GT(large, small) << MethodName(m);
    // Theorem 4: O(n) auxiliary — quadrupling n at most ~quadruples bytes.
    EXPECT_LE(large, small * 4 + (1 << 20)) << MethodName(m);
  }
}

TEST(SpaceModelTest, AllMethodsWithinSmallFactorOfEachOther) {
  // Figure 17's observation: space consumption of all methods is similar.
  size_t min_bytes = SIZE_MAX, max_bytes = 0;
  for (const Method m : AllMethods()) {
    if (m == Method::kScan) continue;
    const size_t bytes = EstimateAuxiliarySpaceBytes(m, 1000000, 1280, 960);
    min_bytes = std::min(min_bytes, bytes);
    max_bytes = std::max(max_bytes, bytes);
  }
  EXPECT_LT(static_cast<double>(max_bytes) / static_cast<double>(min_bytes),
            10.0);
}

TEST(SpaceModelTest, RaoBucketUsesLongerAxis) {
  // Tall viewport: RAO's buckets span the (longer) y axis.
  const size_t tall =
      EstimateAuxiliarySpaceBytes(Method::kSlamBucketRao, 1000, 100, 100000);
  const size_t base =
      EstimateAuxiliarySpaceBytes(Method::kSlamBucket, 1000, 100, 100000);
  EXPECT_GT(tall, base);
}

}  // namespace
}  // namespace slam
