// Edge cases across the exploration layer: empty filter results, extreme
// zooms, and temporal slicing of instantaneous datasets.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "explore/session.h"
#include "explore/temporal.h"
#include "explore/viewport_ops.h"

namespace slam {
namespace {

SessionConfig SmallSession() {
  SessionConfig config;
  config.width_px = 16;
  config.height_px = 12;
  return config;
}

TEST(ExploreEdgeTest, ResetViewFailsWhenFilterMatchesNothing) {
  auto session = *ExplorerSession::Create(
      *GenerateCityDataset(City::kSeattle, 0.001, 11),
      SmallSession());
  EventFilter nothing;
  nothing.categories = {424242};
  ASSERT_TRUE(session.SetFilter(nothing).ok());
  EXPECT_TRUE(session.active_data().empty());
  EXPECT_FALSE(session.ResetView().ok());
  // Rendering an empty active set is legal: zero raster.
  const auto map = *session.Render();
  EXPECT_EQ(map.MaxValue(), 0.0);
  // Clearing the filter restores renderable state.
  ASSERT_TRUE(session.SetFilter(EventFilter{}).ok());
  ASSERT_TRUE(session.ResetView().ok());
  EXPECT_GT(session.Render()->MaxValue(), 0.0);
}

TEST(ExploreEdgeTest, DeepZoomStaysFiniteAndExact) {
  auto session = *ExplorerSession::Create(
      *GenerateCityDataset(City::kSeattle, 0.001, 13),
      SmallSession());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(session.Zoom(0.5).ok());  // 4096x zoom-in
  }
  const auto fast = *session.Render();
  ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
  const auto slow = *session.Render();
  const auto cmp = *slow.CompareTo(fast);
  EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, slow.MaxValue()));
}

TEST(ExploreEdgeTest, PanFarOffTheDataRendersZeros) {
  auto session = *ExplorerSession::Create(
      *GenerateCityDataset(City::kSeattle, 0.001, 17),
      SmallSession());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Pan(1.0, 0.0).ok());  // 20 screens east
  }
  EXPECT_EQ(session.Render()->MaxValue(), 0.0);
}

TEST(ExploreEdgeTest, TemporalSingleInstantDataset) {
  // All events share one timestamp: the range degenerates to a point and
  // exactly one slice must cover it.
  PointDataset ds("instant");
  for (int i = 0; i < 50; ++i) {
    ds.Add({static_cast<double>(i % 10), static_cast<double>(i / 10)},
           1546300800);
  }
  const auto viewport =
      *Viewport::Create(BoundingBox({-1, -1}, {11, 6}), 12, 7);
  TimeSliceConfig config;
  config.window_seconds = 86400;
  config.step_seconds = 86400;
  config.bandwidth = 2.0;
  const auto slices = *ComputeTimeSlicedKdv(ds, viewport, config);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].event_count, 50u);
  EXPECT_GT(slices[0].map.MaxValue(), 0.0);
}

TEST(ExploreEdgeTest, TemporalWindowLargerThanRange) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 19);
  const auto viewport = *DatasetViewport(ds, 10, 10);
  TimeSliceConfig config;
  config.window_seconds = 100LL * 365 * 86400;  // a century
  config.step_seconds = config.window_seconds;
  config.bandwidth = 500.0;
  const auto slices = *ComputeTimeSlicedKdv(ds, viewport, config);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].event_count, ds.size());
}

TEST(ExploreEdgeTest, ZoomSequenceSinglePointDatasetFails) {
  // One point has a degenerate MBR (zero area): viewport creation must
  // reject it with a clear error rather than dividing by zero.
  PointDataset ds("dot");
  ds.Add({5, 5});
  EXPECT_FALSE(DatasetViewport(ds, 10, 10).ok());
}

}  // namespace
}  // namespace slam
