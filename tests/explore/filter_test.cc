#include "explore/filter.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

PointDataset MakeEvents() {
  PointDataset ds("events");
  // (time, category): mixture across 2018-2020 and categories 0-2.
  ds.Add({0, 0}, *UnixFromDate(2018, 6, 1), 0);
  ds.Add({1, 1}, *UnixFromDate(2019, 1, 1), 1);
  ds.Add({2, 2}, *UnixFromDate(2019, 7, 15), 2);
  ds.Add({3, 3}, *UnixFromDate(2019, 12, 31), 0);
  ds.Add({4, 4}, *UnixFromDate(2020, 1, 1), 1);
  return ds;
}

TEST(UnixFromDateTest, KnownEpochs) {
  EXPECT_EQ(*UnixFromDate(1970, 1, 1), 0);
  EXPECT_EQ(*UnixFromDate(2019, 1, 1), 1546300800);
  EXPECT_EQ(*UnixFromDate(2020, 1, 1), 1577836800);
  EXPECT_EQ(*UnixFromDate(2020, 3, 1), 1583020800);  // leap year Feb
}

TEST(UnixFromDateTest, RejectsInvalid) {
  EXPECT_FALSE(UnixFromDate(1960, 1, 1).ok());
  EXPECT_FALSE(UnixFromDate(2020, 0, 1).ok());
  EXPECT_FALSE(UnixFromDate(2020, 13, 1).ok());
  EXPECT_FALSE(UnixFromDate(2020, 5, 0).ok());
  EXPECT_FALSE(UnixFromDate(2020, 5, 32).ok());
}

TEST(EventFilterTest, NoopFilterMatchesEverything) {
  const EventFilter f;
  EXPECT_TRUE(f.IsNoop());
  EXPECT_TRUE(f.Matches(12345, 7));
  const auto out = *ApplyFilter(MakeEvents(), f);
  EXPECT_EQ(out.size(), 5u);
}

TEST(EventFilterTest, TimeWindowInclusive) {
  EventFilter f;
  f.time_begin = *UnixFromDate(2019, 1, 1);
  f.time_end = *UnixFromDate(2019, 12, 31);
  const auto out = *ApplyFilter(MakeEvents(), f);
  ASSERT_EQ(out.size(), 3u);  // the three 2019 events
  EXPECT_EQ(out.coord(0).x, 1.0);
  EXPECT_EQ(out.coord(2).x, 3.0);
}

TEST(EventFilterTest, OpenEndedWindows) {
  EventFilter begin_only;
  begin_only.time_begin = *UnixFromDate(2019, 7, 1);
  EXPECT_EQ(ApplyFilter(MakeEvents(), begin_only)->size(), 3u);
  EventFilter end_only;
  end_only.time_end = *UnixFromDate(2018, 12, 31);
  EXPECT_EQ(ApplyFilter(MakeEvents(), end_only)->size(), 1u);
}

TEST(EventFilterTest, CategoryFilter) {
  EventFilter f;
  f.categories = {1};
  const auto out = *ApplyFilter(MakeEvents(), f);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.category(0), 1);
  EXPECT_EQ(out.category(1), 1);
}

TEST(EventFilterTest, MultipleCategories) {
  EventFilter f;
  f.categories = {0, 2};
  EXPECT_EQ(ApplyFilter(MakeEvents(), f)->size(), 3u);
}

TEST(EventFilterTest, CombinedTimeAndCategory) {
  EventFilter f = Year2019Filter();
  f.categories = {0};
  const auto out = *ApplyFilter(MakeEvents(), f);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.coord(0).x, 3.0);
}

TEST(EventFilterTest, Year2019FilterBoundaries) {
  const EventFilter f = Year2019Filter();
  EXPECT_TRUE(f.Matches(*UnixFromDate(2019, 1, 1), 0));
  EXPECT_TRUE(f.Matches(*UnixFromDate(2020, 1, 1) - 1, 0));
  EXPECT_FALSE(f.Matches(*UnixFromDate(2020, 1, 1), 0));
  EXPECT_FALSE(f.Matches(*UnixFromDate(2018, 12, 31), 0));
}

TEST(EventFilterTest, RejectsInvertedWindow) {
  EventFilter f;
  f.time_begin = 100;
  f.time_end = 50;
  EXPECT_FALSE(ApplyFilter(MakeEvents(), f).ok());
}

TEST(EventFilterTest, EmptyResultIsOk) {
  EventFilter f;
  f.categories = {99};
  EXPECT_TRUE(ApplyFilter(MakeEvents(), f)->empty());
}

}  // namespace
}  // namespace slam
