#include "explore/session.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace slam {
namespace {

PointDataset SessionData() {
  return *GenerateCityDataset(City::kSeattle, 0.003, 11);  // ~2.6k points
}

SessionConfig SmallConfig() {
  SessionConfig cfg;
  cfg.width_px = 40;
  cfg.height_px = 30;
  return cfg;
}

TEST(SessionTest, CreateDerivesScottBandwidth) {
  const auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EXPECT_GT(session.bandwidth(), 0.0);
  EXPECT_EQ(session.method(), Method::kSlamBucketRao);
  EXPECT_EQ(session.total_points(), SessionData().size());
  EXPECT_TRUE(session.viewport().region() == SessionData().Extent());
}

TEST(SessionTest, CreateHonorsExplicitBandwidth) {
  SessionConfig cfg = SmallConfig();
  cfg.bandwidth = 777.0;
  const auto session = *ExplorerSession::Create(SessionData(), cfg);
  EXPECT_DOUBLE_EQ(session.bandwidth(), 777.0);
}

TEST(SessionTest, CreateValidation) {
  EXPECT_FALSE(ExplorerSession::Create(PointDataset("e"), SmallConfig()).ok());
  SessionConfig bad = SmallConfig();
  bad.width_px = 0;
  EXPECT_FALSE(ExplorerSession::Create(SessionData(), bad).ok());
  bad = SmallConfig();
  bad.bandwidth = -5.0;
  EXPECT_FALSE(ExplorerSession::Create(SessionData(), bad).ok());
}

TEST(SessionTest, RenderProducesHotspots) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const auto map = *session.Render();
  EXPECT_EQ(map.width(), 40);
  EXPECT_EQ(map.height(), 30);
  EXPECT_GT(map.MaxValue(), 0.0);
}

TEST(SessionTest, ZoomShrinksRegionKeepsResolution) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const double w0 = session.viewport().region().width();
  ASSERT_TRUE(session.Zoom(0.5).ok());
  EXPECT_NEAR(session.viewport().region().width(), w0 * 0.5, 1e-9);
  EXPECT_EQ(session.viewport().width_px(), 40);
  const auto map = *session.Render();
  EXPECT_GT(map.MaxValue(), 0.0);
}

TEST(SessionTest, PanMovesByFractionOfView) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const BoundingBox before = session.viewport().region();
  ASSERT_TRUE(session.Pan(0.5, -0.25).ok());
  const BoundingBox after = session.viewport().region();
  EXPECT_NEAR(after.min().x - before.min().x, before.width() * 0.5, 1e-9);
  EXPECT_NEAR(after.min().y - before.min().y, -before.height() * 0.25, 1e-9);
}

TEST(SessionTest, ResetViewRestoresFilteredMbr) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  ASSERT_TRUE(session.Zoom(0.25).ok());
  ASSERT_TRUE(session.ResetView().ok());
  EXPECT_TRUE(session.viewport().region() ==
              session.active_data().Extent());
}

TEST(SessionTest, TimeFilterShrinksActiveData) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const size_t all = session.active_data().size();
  ASSERT_TRUE(session.SetFilter(Year2019Filter()).ok());
  const size_t filtered = session.active_data().size();
  EXPECT_LT(filtered, all);
  EXPECT_GT(filtered, 0u);
  // Clearing restores everything.
  ASSERT_TRUE(session.SetFilter(EventFilter{}).ok());
  EXPECT_EQ(session.active_data().size(), all);
}

TEST(SessionTest, CategoryFilterSelectsSubset) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EventFilter f;
  f.categories = {0};
  ASSERT_TRUE(session.SetFilter(f).ok());
  for (size_t i = 0; i < session.active_data().size(); ++i) {
    EXPECT_EQ(session.active_data().category(i), 0);
  }
}

TEST(SessionTest, BandwidthControls) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const double b0 = session.bandwidth();
  ASSERT_TRUE(session.ScaleBandwidth(2.0).ok());
  EXPECT_DOUBLE_EQ(session.bandwidth(), 2.0 * b0);
  ASSERT_TRUE(session.SetBandwidth(123.0).ok());
  EXPECT_DOUBLE_EQ(session.bandwidth(), 123.0);
  EXPECT_FALSE(session.ScaleBandwidth(0.0).ok());
  EXPECT_FALSE(session.SetBandwidth(-1.0).ok());
}

TEST(SessionTest, KernelMethodCompatibilityGuard) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  // SLAM method active: Gaussian kernel must be rejected.
  EXPECT_FALSE(session.SetKernel(KernelType::kGaussian).ok());
  // Switch to SCAN, then Gaussian is fine, but switching back to SLAM isn't.
  ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
  ASSERT_TRUE(session.SetKernel(KernelType::kGaussian).ok());
  EXPECT_FALSE(session.SetMethod(Method::kSlamBucket).ok());
  // Back to a supported kernel unlocks SLAM again.
  ASSERT_TRUE(session.SetKernel(KernelType::kQuartic).ok());
  ASSERT_TRUE(session.SetMethod(Method::kSlamBucket).ok());
}

TEST(SessionTest, RendersAgreeAcrossMethodsAfterExploration) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  ASSERT_TRUE(session.SetFilter(Year2019Filter()).ok());
  ASSERT_TRUE(session.Zoom(0.5).ok());
  ASSERT_TRUE(session.Pan(0.1, 0.1).ok());
  ASSERT_TRUE(session.SetMethod(Method::kSlamBucketRao).ok());
  const auto slam_map = *session.Render();
  ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
  const auto scan_map = *session.Render();
  const auto cmp = *scan_map.CompareTo(slam_map);
  EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, scan_map.MaxValue()));
}

TEST(SessionTest, ZoomRejectsBadRatio) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EXPECT_FALSE(session.Zoom(-2.0).ok());
}

}  // namespace
}  // namespace slam
