#include "explore/session.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/generators.h"
#include "util/exec_context.h"

namespace slam {
namespace {

PointDataset SessionData() {
  return *GenerateCityDataset(City::kSeattle, 0.003, 11);  // ~2.6k points
}

SessionConfig SmallConfig() {
  SessionConfig cfg;
  cfg.width_px = 40;
  cfg.height_px = 30;
  return cfg;
}

TEST(SessionTest, CreateDerivesScottBandwidth) {
  const auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EXPECT_GT(session.bandwidth(), 0.0);
  EXPECT_EQ(session.method(), Method::kSlamBucketRao);
  EXPECT_EQ(session.total_points(), SessionData().size());
  EXPECT_TRUE(session.viewport().region() == SessionData().Extent());
}

TEST(SessionTest, CreateHonorsExplicitBandwidth) {
  SessionConfig cfg = SmallConfig();
  cfg.bandwidth = 777.0;
  const auto session = *ExplorerSession::Create(SessionData(), cfg);
  EXPECT_DOUBLE_EQ(session.bandwidth(), 777.0);
}

TEST(SessionTest, CreateValidation) {
  EXPECT_FALSE(ExplorerSession::Create(PointDataset("e"), SmallConfig()).ok());
  SessionConfig bad = SmallConfig();
  bad.width_px = 0;
  EXPECT_FALSE(ExplorerSession::Create(SessionData(), bad).ok());
  bad = SmallConfig();
  bad.bandwidth = -5.0;
  EXPECT_FALSE(ExplorerSession::Create(SessionData(), bad).ok());
}

TEST(SessionTest, RenderProducesHotspots) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const auto map = *session.Render();
  EXPECT_EQ(map.width(), 40);
  EXPECT_EQ(map.height(), 30);
  EXPECT_GT(map.MaxValue(), 0.0);
}

TEST(SessionTest, ZoomShrinksRegionKeepsResolution) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const double w0 = session.viewport().region().width();
  ASSERT_TRUE(session.Zoom(0.5).ok());
  EXPECT_NEAR(session.viewport().region().width(), w0 * 0.5, 1e-9);
  EXPECT_EQ(session.viewport().width_px(), 40);
  const auto map = *session.Render();
  EXPECT_GT(map.MaxValue(), 0.0);
}

TEST(SessionTest, PanMovesByFractionOfView) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const BoundingBox before = session.viewport().region();
  ASSERT_TRUE(session.Pan(0.5, -0.25).ok());
  const BoundingBox after = session.viewport().region();
  EXPECT_NEAR(after.min().x - before.min().x, before.width() * 0.5, 1e-9);
  EXPECT_NEAR(after.min().y - before.min().y, -before.height() * 0.25, 1e-9);
}

TEST(SessionTest, ResetViewRestoresFilteredMbr) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  ASSERT_TRUE(session.Zoom(0.25).ok());
  ASSERT_TRUE(session.ResetView().ok());
  EXPECT_TRUE(session.viewport().region() ==
              session.active_data().Extent());
}

TEST(SessionTest, TimeFilterShrinksActiveData) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const size_t all = session.active_data().size();
  ASSERT_TRUE(session.SetFilter(Year2019Filter()).ok());
  const size_t filtered = session.active_data().size();
  EXPECT_LT(filtered, all);
  EXPECT_GT(filtered, 0u);
  // Clearing restores everything.
  ASSERT_TRUE(session.SetFilter(EventFilter{}).ok());
  EXPECT_EQ(session.active_data().size(), all);
}

TEST(SessionTest, CategoryFilterSelectsSubset) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EventFilter f;
  f.categories = {0};
  ASSERT_TRUE(session.SetFilter(f).ok());
  for (size_t i = 0; i < session.active_data().size(); ++i) {
    EXPECT_EQ(session.active_data().category(i), 0);
  }
}

TEST(SessionTest, BandwidthControls) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const double b0 = session.bandwidth();
  ASSERT_TRUE(session.ScaleBandwidth(2.0).ok());
  EXPECT_DOUBLE_EQ(session.bandwidth(), 2.0 * b0);
  ASSERT_TRUE(session.SetBandwidth(123.0).ok());
  EXPECT_DOUBLE_EQ(session.bandwidth(), 123.0);
  EXPECT_FALSE(session.ScaleBandwidth(0.0).ok());
  EXPECT_FALSE(session.SetBandwidth(-1.0).ok());
}

TEST(SessionTest, KernelMethodCompatibilityGuard) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  // SLAM method active: Gaussian kernel must be rejected.
  EXPECT_FALSE(session.SetKernel(KernelType::kGaussian).ok());
  // Switch to SCAN, then Gaussian is fine, but switching back to SLAM isn't.
  ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
  ASSERT_TRUE(session.SetKernel(KernelType::kGaussian).ok());
  EXPECT_FALSE(session.SetMethod(Method::kSlamBucket).ok());
  // Back to a supported kernel unlocks SLAM again.
  ASSERT_TRUE(session.SetKernel(KernelType::kQuartic).ok());
  ASSERT_TRUE(session.SetMethod(Method::kSlamBucket).ok());
}

TEST(SessionTest, RendersAgreeAcrossMethodsAfterExploration) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  ASSERT_TRUE(session.SetFilter(Year2019Filter()).ok());
  ASSERT_TRUE(session.Zoom(0.5).ok());
  ASSERT_TRUE(session.Pan(0.1, 0.1).ok());
  ASSERT_TRUE(session.SetMethod(Method::kSlamBucketRao).ok());
  const auto slam_map = *session.Render();
  ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
  const auto scan_map = *session.Render();
  const auto cmp = *scan_map.CompareTo(slam_map);
  EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, scan_map.MaxValue()));
}

TEST(SessionTest, ZoomRejectsBadRatio) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  EXPECT_FALSE(session.Zoom(-2.0).ok());
  EXPECT_TRUE(session.Zoom(0.0).IsInvalidArgument());
  EXPECT_TRUE(session.Zoom(std::numeric_limits<double>::quiet_NaN())
                  .IsInvalidArgument());
  EXPECT_TRUE(session.Zoom(std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
  // A failed zoom leaves the viewport untouched.
  const BoundingBox before = session.viewport().region();
  ASSERT_FALSE(session.Zoom(0.0).ok());
  EXPECT_TRUE(session.viewport().region() == before);
}

TEST(SessionTest, BandwidthRejectsNonFinite) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const double b0 = session.bandwidth();
  EXPECT_TRUE(session.SetBandwidth(std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
  EXPECT_TRUE(session.SetBandwidth(std::numeric_limits<double>::quiet_NaN())
                  .IsInvalidArgument());
  EXPECT_TRUE(session.ScaleBandwidth(std::numeric_limits<double>::infinity())
                  .IsInvalidArgument());
  EXPECT_DOUBLE_EQ(session.bandwidth(), b0);
}

TEST(SessionTest, RenderAdaptiveFullResolutionByDefault) {
  auto session = *ExplorerSession::Create(SessionData(), SmallConfig());
  const auto outcome = session.RenderAdaptive();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->degrade_level, 0);
  EXPECT_TRUE(outcome->full_res_status.ok());
  EXPECT_EQ(outcome->map.width(), 40);
  EXPECT_EQ(outcome->map.height(), 30);
}

TEST(SessionTest, RenderAdaptiveDegradesUnderMemoryPressure) {
  // SLAM_BUCKET's auxiliary estimate grows with raster width, so a budget
  // between the half-resolution and full-resolution estimates forces
  // exactly one degradation step.
  SessionConfig cfg = SmallConfig();
  cfg.width_px = 400;
  cfg.height_px = 300;
  cfg.method = Method::kSlamBucket;
  auto session = *ExplorerSession::Create(SessionData(), cfg);
  const size_t n = session.active_data().size();
  const size_t full = EstimateAuxiliarySpaceBytes(Method::kSlamBucket, n,
                                                  cfg.width_px, cfg.height_px);
  const size_t half = EstimateAuxiliarySpaceBytes(
      Method::kSlamBucket, n, cfg.width_px / 2, cfg.height_px / 2);
  ASSERT_LT(half, full);
  MemoryBudget budget((half + full) / 2);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  cfg.engine.compute.exec = &exec;
  session = *ExplorerSession::Create(SessionData(), cfg);

  // Plain Render fails outright under the same budget...
  EXPECT_EQ(session.Render().status().code(), StatusCode::kResourceExhausted);
  // ...while RenderAdaptive falls back to half resolution and reports why.
  const auto outcome = session.RenderAdaptive();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->degrade_level, 1);
  EXPECT_EQ(outcome->full_res_status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(outcome->map.width(), 200);
  EXPECT_EQ(outcome->map.height(), 150);
}

TEST(SessionTest, RenderAdaptiveHonorsExplicitCancellation) {
  SessionConfig cfg = SmallConfig();
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  cfg.engine.compute.exec = &exec;
  auto session = *ExplorerSession::Create(SessionData(), cfg);
  // The user's own token is tripped: no degraded retry, just Cancelled.
  const auto outcome = session.RenderAdaptive();
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(SessionTest, RenderAdaptiveGivesUpAfterBoundedRetries) {
  SessionConfig cfg = SmallConfig();
  cfg.max_degrade_retries = 1;
  MemoryBudget budget(1);  // nothing fits, ever
  ExecContext exec;
  exec.set_memory_budget(&budget);
  cfg.engine.compute.exec = &exec;
  auto session = *ExplorerSession::Create(SessionData(), cfg);
  const auto outcome = session.RenderAdaptive();
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace slam
