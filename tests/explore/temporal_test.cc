#include "explore/temporal.h"

#include <gtest/gtest.h>

#include "explore/filter.h"
#include "explore/viewport_ops.h"
#include "testing/test_util.h"

namespace slam {
namespace {

/// Events at three known month-long bursts in 2019, each in a different
/// corner of a 100x100 region.
PointDataset BurstyEvents() {
  PointDataset ds("bursts");
  Rng rng(701);
  const struct {
    int month;
    Point center;
  } bursts[] = {{1, {20, 20}}, {6, {80, 20}}, {11, {50, 80}}};
  for (const auto& burst : bursts) {
    const int64_t t0 = *UnixFromDate(2019, burst.month, 1);
    for (int i = 0; i < 300; ++i) {
      ds.Add({burst.center.x + rng.Gaussian(0, 4),
              burst.center.y + rng.Gaussian(0, 4)},
             t0 + static_cast<int64_t>(rng.NextBelow(20 * 86400)));
    }
  }
  return ds;
}

Viewport FixedViewport() {
  return *Viewport::Create(BoundingBox({0, 0}, {100, 100}), 25, 25);
}

TEST(TemporalTest, SlicesCoverTheRange) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  config.bandwidth = 8.0;
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  ASSERT_GE(slices.size(), 10u);  // Jan..Nov span, ~30-day windows
  // Windows tile the range without gaps.
  for (size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].begin, slices[i - 1].begin + config.step_seconds);
  }
  // Total events across disjoint windows = dataset size.
  size_t total = 0;
  for (const auto& s : slices) total += s.event_count;
  EXPECT_EQ(total, ds.size());
}

TEST(TemporalTest, ActivityFollowsTheBursts) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  config.bandwidth = 8.0;
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  // The first slice (January) peaks near raster (5, 5) = geo (20, 20);
  // quiet slices are ~zero everywhere.
  int busy = 0, quiet = 0;
  for (const auto& s : slices) {
    if (s.event_count > 100) {
      ++busy;
      EXPECT_GT(s.map.MaxValue(), 0.0);
    } else if (s.event_count == 0) {
      ++quiet;
      EXPECT_EQ(s.map.MaxValue(), 0.0);
    }
  }
  EXPECT_GE(busy, 3);
  EXPECT_GE(quiet, 3);
}

TEST(TemporalTest, OverlappingWindowsSmooth) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 60 * 86400;
  config.step_seconds = 15 * 86400;  // 4x overlap
  config.bandwidth = 8.0;
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  size_t total = 0;
  for (const auto& s : slices) total += s.event_count;
  EXPECT_GT(total, ds.size());  // events counted by multiple windows
}

TEST(TemporalTest, WeightPolicyChangesScaleNotShape) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  config.bandwidth = 8.0;
  config.weight_by_total = true;
  const auto total_weighted = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  config.weight_by_total = false;
  const auto self_weighted = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  ASSERT_EQ(total_weighted.size(), self_weighted.size());
  for (size_t i = 0; i < total_weighted.size(); ++i) {
    if (total_weighted[i].event_count == 0) continue;
    const double ratio = static_cast<double>(ds.size()) /
                         static_cast<double>(total_weighted[i].event_count);
    EXPECT_NEAR(self_weighted[i].map.MaxValue(),
                total_weighted[i].map.MaxValue() * ratio,
                1e-9 * self_weighted[i].map.MaxValue());
  }
}

TEST(TemporalTest, SlicesMatchManualFilterPlusKdv) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  config.bandwidth = 8.0;
  config.weight_by_total = false;
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  // Reproduce slice 0 by hand.
  EventFilter filter;
  filter.time_begin = slices[0].begin;
  filter.time_end = slices[0].end;
  const auto manual_data = *ApplyFilter(ds, filter);
  ASSERT_EQ(manual_data.size(), slices[0].event_count);
  if (!manual_data.empty()) {
    const auto manual_map = *ComputeKdv(
        MakeTask(manual_data, FixedViewport(), config.kernel, 8.0),
        config.method);
    const auto cmp = *manual_map.CompareTo(slices[0].map);
    EXPECT_EQ(cmp.max_abs_diff, 0.0);
  }
}

TEST(TemporalTest, ExplicitRangeRespected) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  config.bandwidth = 8.0;
  config.begin = *UnixFromDate(2019, 6, 1);
  config.end = *UnixFromDate(2019, 8, 1);
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  ASSERT_GE(slices.size(), 2u);
  EXPECT_EQ(slices.front().begin, *config.begin);
  EXPECT_LE(slices.back().end, *config.end);
}

TEST(TemporalTest, Validation) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.bandwidth = 8.0;
  config.window_seconds = 0;
  EXPECT_FALSE(ComputeTimeSlicedKdv(ds, FixedViewport(), config).ok());
  config = TimeSliceConfig{};
  config.step_seconds = -5;
  EXPECT_FALSE(ComputeTimeSlicedKdv(ds, FixedViewport(), config).ok());
  config = TimeSliceConfig{};
  config.begin = 100;
  config.end = 50;
  EXPECT_FALSE(ComputeTimeSlicedKdv(ds, FixedViewport(), config).ok());
  config = TimeSliceConfig{};
  config.bandwidth = -1.0;
  EXPECT_FALSE(ComputeTimeSlicedKdv(ds, FixedViewport(), config).ok());
  config = TimeSliceConfig{};
  config.kernel = KernelType::kGaussian;  // SLAM method default
  EXPECT_FALSE(ComputeTimeSlicedKdv(ds, FixedViewport(), config).ok());
  EXPECT_FALSE(
      ComputeTimeSlicedKdv(PointDataset("e"), FixedViewport(), {}).ok());
}

TEST(TemporalTest, ScottBandwidthDefaultIsShared) {
  const auto ds = BurstyEvents();
  TimeSliceConfig config;
  config.window_seconds = 30 * 86400;
  config.step_seconds = 30 * 86400;
  // No explicit bandwidth: must still succeed via Scott on the full data.
  const auto slices = *ComputeTimeSlicedKdv(ds, FixedViewport(), config);
  EXPECT_FALSE(slices.empty());
}

}  // namespace
}  // namespace slam
