#include "explore/viewport_ops.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace slam {
namespace {

PointDataset MakeSpread() {
  PointDataset ds("spread");
  ds.Add({0, 0});
  ds.Add({100, 50});
  ds.Add({40, 20});
  return ds;
}

TEST(DatasetViewportTest, CoversMbr) {
  const auto v = *DatasetViewport(MakeSpread(), 128, 96);
  EXPECT_EQ(v.region().min(), (Point{0.0, 0.0}));
  EXPECT_EQ(v.region().max(), (Point{100.0, 50.0}));
  EXPECT_EQ(v.width_px(), 128);
}

TEST(DatasetViewportTest, RejectsEmptyDataset) {
  EXPECT_FALSE(DatasetViewport(PointDataset("e"), 10, 10).ok());
}

TEST(ZoomSequenceTest, PaperRatios) {
  const auto seq =
      *ZoomSequence(MakeSpread(), {0.25, 0.5, 0.75, 1.0}, 64, 48);
  ASSERT_EQ(seq.size(), 4u);
  const Point center = MakeSpread().Extent().center();
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].region().center(), center);
    EXPECT_EQ(seq[i].width_px(), 64);
  }
  EXPECT_DOUBLE_EQ(seq[0].region().width(), 25.0);
  EXPECT_DOUBLE_EQ(seq[3].region().width(), 100.0);
  // Ratios ascending -> strictly growing regions.
  for (size_t i = 1; i < seq.size(); ++i) {
    EXPECT_GT(seq[i].region().Area(), seq[i - 1].region().Area());
  }
}

TEST(ZoomSequenceTest, RejectsBadRatios) {
  EXPECT_FALSE(ZoomSequence(MakeSpread(), {0.5, 0.0}, 64, 48).ok());
}

TEST(RandomPanViewportsTest, CountSizeContainment) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.002, 7);
  const auto pans = *RandomPanViewports(ds, 5, 0.5, 64, 48, 99);
  ASSERT_EQ(pans.size(), 5u);
  const BoundingBox mbr = ds.Extent();
  for (const Viewport& v : pans) {
    EXPECT_NEAR(v.region().width(), mbr.width() * 0.5, 1e-9);
    EXPECT_NEAR(v.region().height(), mbr.height() * 0.5, 1e-9);
    EXPECT_TRUE(mbr.Contains(v.region()));
    EXPECT_EQ(v.width_px(), 64);
  }
}

TEST(RandomPanViewportsTest, DeterministicInSeed) {
  const auto ds = MakeSpread();
  const auto a = *RandomPanViewports(ds, 3, 0.5, 10, 10, 1);
  const auto b = *RandomPanViewports(ds, 3, 0.5, 10, 10, 1);
  const auto c = *RandomPanViewports(ds, 3, 0.5, 10, 10, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(a[i] == b[i]);
  }
  bool any_diff = false;
  for (int i = 0; i < 3; ++i) {
    if (!(a[i] == c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomPanViewportsTest, PansActuallyMove) {
  const auto ds = *GenerateCityDataset(City::kLosAngeles, 0.001, 3);
  const auto pans = *RandomPanViewports(ds, 5, 0.5, 10, 10, 17);
  bool any_pair_differs = false;
  for (size_t i = 1; i < pans.size(); ++i) {
    if (!(pans[i] == pans[0])) any_pair_differs = true;
  }
  EXPECT_TRUE(any_pair_differs);
}

TEST(RandomPanViewportsTest, FullRatioDegeneratesToMbr) {
  const auto ds = MakeSpread();
  const auto pans = *RandomPanViewports(ds, 2, 1.0, 10, 10, 5);
  for (const Viewport& v : pans) {
    EXPECT_TRUE(v.region() == ds.Extent());
  }
}

TEST(RandomPanViewportsTest, Validation) {
  const auto ds = MakeSpread();
  EXPECT_FALSE(RandomPanViewports(ds, 0, 0.5, 10, 10, 1).ok());
  EXPECT_FALSE(RandomPanViewports(ds, 3, 0.0, 10, 10, 1).ok());
  EXPECT_FALSE(RandomPanViewports(ds, 3, 1.5, 10, 10, 1).ok());
  EXPECT_FALSE(RandomPanViewports(PointDataset("e"), 3, 0.5, 10, 10, 1).ok());
}

}  // namespace
}  // namespace slam
