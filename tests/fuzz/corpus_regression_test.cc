// Replays the seed corpus and every checked-in crasher through the fuzz
// target entry points as ordinary ctests. This is the "fixed crashes stay
// fixed" gate: it needs no fuzzing toolchain, runs on every build, and a
// target that aborts (postcondition violation) or crashes fails the test
// run the normal way.
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/targets.h"

namespace slam::fuzz {
namespace {

namespace fs = std::filesystem;

using FuzzEntry = int (*)(const uint8_t*, size_t);

struct TargetCase {
  const char* name;  // corpus/<name> and crashers/<name>
  FuzzEntry entry;
};

std::vector<uint8_t> ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// SLAM_FUZZ_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree fuzz/ directory.
const fs::path kFuzzDir = SLAM_FUZZ_DIR;

class CorpusRegressionTest : public ::testing::TestWithParam<TargetCase> {};

TEST_P(CorpusRegressionTest, ReplaysCorpusAndCrashersWithoutCrashing) {
  const TargetCase& target = GetParam();
  size_t replayed = 0;
  for (const char* tree : {"corpus", "crashers"}) {
    const fs::path dir = kFuzzDir / tree / target.name;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;  // no crashers yet is fine
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::vector<uint8_t> bytes = ReadFileBytes(entry.path());
      SCOPED_TRACE(entry.path().string());
      EXPECT_EQ(target.entry(bytes.data(), bytes.size()), 0);
      ++replayed;
    }
  }
  // The seed corpus is checked in; replaying zero files means the path
  // wiring broke, which must fail loudly rather than vacuously pass.
  EXPECT_GT(replayed, 0u) << "no corpus files found under " << kFuzzDir;
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, CorpusRegressionTest,
    ::testing::Values(TargetCase{"csv", &FuzzCsvLoader},
                      TargetCase{"density", &FuzzDensityLoader},
                      TargetCase{"params", &FuzzRenderParams},
                      TargetCase{"differential", &FuzzDifferential}),
    [](const ::testing::TestParamInfo<TargetCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace slam::fuzz
