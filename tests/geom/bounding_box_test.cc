#include "geom/bounding_box.h"

#include <gtest/gtest.h>

#include <vector>

namespace slam {
namespace {

TEST(BoundingBoxTest, DefaultIsEmpty) {
  const BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.Area(), 0.0);
}

TEST(BoundingBoxTest, ExtendMakesNonEmpty) {
  BoundingBox box;
  box.Extend({1.0, 2.0});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.min(), (Point{1.0, 2.0}));
  EXPECT_EQ(box.max(), (Point{1.0, 2.0}));
  EXPECT_EQ(box.Area(), 0.0);  // degenerate but non-empty
}

TEST(BoundingBoxTest, FromPoints) {
  const std::vector<Point> pts{{0, 0}, {4, 1}, {2, 5}, {-1, 3}};
  const BoundingBox box = BoundingBox::FromPoints(pts);
  EXPECT_EQ(box.min(), (Point{-1.0, 0.0}));
  EXPECT_EQ(box.max(), (Point{4.0, 5.0}));
  EXPECT_DOUBLE_EQ(box.width(), 5.0);
  EXPECT_DOUBLE_EQ(box.height(), 5.0);
  EXPECT_DOUBLE_EQ(box.Area(), 25.0);
}

TEST(BoundingBoxTest, CenterAndContains) {
  const BoundingBox box({0, 0}, {10, 4});
  EXPECT_EQ(box.center(), (Point{5.0, 2.0}));
  EXPECT_TRUE(box.Contains({5.0, 2.0}));
  EXPECT_TRUE(box.Contains({0.0, 0.0}));    // boundary inclusive
  EXPECT_TRUE(box.Contains({10.0, 4.0}));
  EXPECT_FALSE(box.Contains({10.001, 2.0}));
  EXPECT_FALSE(box.Contains({5.0, -0.001}));
}

TEST(BoundingBoxTest, ContainsBox) {
  const BoundingBox outer({0, 0}, {10, 10});
  EXPECT_TRUE(outer.Contains(BoundingBox({2, 2}, {8, 8})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(BoundingBox({2, 2}, {11, 8})));
  EXPECT_FALSE(outer.Contains(BoundingBox{}));  // empty not contained
}

TEST(BoundingBoxTest, Intersects) {
  const BoundingBox a({0, 0}, {5, 5});
  EXPECT_TRUE(a.Intersects(BoundingBox({4, 4}, {9, 9})));
  EXPECT_TRUE(a.Intersects(BoundingBox({5, 0}, {7, 2})));  // edge touch
  EXPECT_FALSE(a.Intersects(BoundingBox({6, 6}, {9, 9})));
  EXPECT_FALSE(a.Intersects(BoundingBox({0, 5.1}, {5, 9})));
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a({0, 0}, {1, 1});
  a.Extend(BoundingBox({3, -2}, {4, 0.5}));
  EXPECT_EQ(a.min(), (Point{0.0, -2.0}));
  EXPECT_EQ(a.max(), (Point{4.0, 1.0}));
  // Extending with an empty box is a no-op.
  const BoundingBox before = a;
  a.Extend(BoundingBox{});
  EXPECT_EQ(a, before);
}

TEST(BoundingBoxTest, MinSquaredDistance) {
  const BoundingBox box({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance({5, 5}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance({10, 10}), 0.0);  // corner
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance({13, 5}), 9.0);   // right side
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance({5, -2}), 4.0);   // below
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance({13, 14}), 25.0); // corner diag
}

TEST(BoundingBoxTest, MaxSquaredDistance) {
  const BoundingBox box({0, 0}, {10, 10});
  // Farthest corner from the center is any corner: 50.
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistance({5, 5}), 50.0);
  // From the origin corner, farthest is (10, 10): 200.
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistance({0, 0}), 200.0);
  // From outside left, farthest is the far right corner.
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistance({-2, 5}), 144.0 + 25.0);
}

TEST(BoundingBoxTest, MinMaxDistanceBracketPointDistances) {
  const BoundingBox box({2, 3}, {7, 9});
  const std::vector<Point> corners{{2, 3}, {7, 3}, {2, 9}, {7, 9}};
  const Point q{-1, 4};
  const double min_d2 = box.MinSquaredDistance(q);
  const double max_d2 = box.MaxSquaredDistance(q);
  for (const Point& c : corners) {
    const double d2 = SquaredDistance(q, c);
    EXPECT_GE(d2, min_d2 - 1e-12);
    EXPECT_LE(d2, max_d2 + 1e-12);
  }
}

TEST(BoundingBoxTest, ScaledAboutCenter) {
  const BoundingBox box({0, 0}, {10, 20});
  const BoundingBox half = box.ScaledAboutCenter(0.5);
  EXPECT_EQ(half.center(), box.center());
  EXPECT_DOUBLE_EQ(half.width(), 5.0);
  EXPECT_DOUBLE_EQ(half.height(), 10.0);
  const BoundingBox twice = box.ScaledAboutCenter(2.0);
  EXPECT_DOUBLE_EQ(twice.width(), 20.0);
}

TEST(BoundingBoxTest, Expanded) {
  const BoundingBox box({1, 1}, {2, 2});
  const BoundingBox bigger = box.Expanded(0.5);
  EXPECT_EQ(bigger.min(), (Point{0.5, 0.5}));
  EXPECT_EQ(bigger.max(), (Point{2.5, 2.5}));
}

TEST(BoundingBoxTest, ToStringMentionsCoordinates) {
  const BoundingBox box({1, 2}, {3, 4});
  const std::string s = box.ToString();
  EXPECT_NE(s.find("1.000"), std::string::npos);
  EXPECT_NE(s.find("4.000"), std::string::npos);
}

}  // namespace
}  // namespace slam
