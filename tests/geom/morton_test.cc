#include "geom/morton.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace slam {
namespace {

TEST(MortonTest, InterleaveRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.NextU64());
    EXPECT_EQ(DeinterleaveBits32(InterleaveBits32(v)), v);
  }
}

TEST(MortonTest, InterleaveSpreadsBits) {
  EXPECT_EQ(InterleaveBits32(0b1), 0b1ull);
  EXPECT_EQ(InterleaveBits32(0b10), 0b100ull);
  EXPECT_EQ(InterleaveBits32(0b11), 0b101ull);
  EXPECT_EQ(InterleaveBits32(0xffffffffu), 0x5555555555555555ull);
}

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextU64());
    const uint32_t y = static_cast<uint32_t>(rng.NextU64());
    uint32_t dx, dy;
    MortonDecode(MortonEncode(x, y), &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(MortonTest, KnownCodes) {
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  EXPECT_EQ(MortonEncode(2, 2), 12u);
}

TEST(MortonTest, CodeForPointRespectsQuadrants) {
  const BoundingBox extent({0, 0}, {100, 100});
  // Z-order visits SW, SE, NW, NE quadrants in that order.
  const uint64_t sw = MortonCodeForPoint({10, 10}, extent);
  const uint64_t se = MortonCodeForPoint({90, 10}, extent);
  const uint64_t nw = MortonCodeForPoint({10, 90}, extent);
  const uint64_t ne = MortonCodeForPoint({90, 90}, extent);
  EXPECT_LT(sw, se);
  EXPECT_LT(se, nw);
  EXPECT_LT(nw, ne);
}

TEST(MortonTest, CodeClampsOutOfExtent) {
  const BoundingBox extent({0, 0}, {10, 10});
  EXPECT_EQ(MortonCodeForPoint({-5, -5}, extent), 0u);
  const uint64_t max_code = MortonCodeForPoint({10, 10}, extent);
  EXPECT_EQ(MortonCodeForPoint({99, 99}, extent), max_code);
}

TEST(MortonTest, EmptyExtentMapsToZero) {
  EXPECT_EQ(MortonCodeForPoint({3, 4}, BoundingBox{}), 0u);
}

TEST(MortonSortOrderTest, IsAPermutation) {
  const std::vector<Point> pts{{5, 5}, {1, 1}, {9, 9}, {1, 9}, {9, 1}};
  const auto order = MortonSortOrder(pts);
  ASSERT_EQ(order.size(), pts.size());
  std::vector<bool> seen(pts.size(), false);
  for (const uint32_t idx : order) {
    ASSERT_LT(idx, pts.size());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(MortonSortOrderTest, CodesAreNonDecreasing) {
  Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  const auto order = MortonSortOrder(pts);
  const BoundingBox extent = BoundingBox::FromPoints(pts);
  uint64_t prev = 0;
  for (const uint32_t idx : order) {
    const uint64_t code = MortonCodeForPoint(pts[idx], extent);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(MortonSortOrderTest, PreservesNeighborhoods) {
  // Points in the same small cell should land near each other in the order.
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({1.0 + i * 0.001, 1.0});
  for (int i = 0; i < 50; ++i) pts.push_back({99.0 + i * 0.001, 99.0});
  const auto order = MortonSortOrder(pts);
  // The first 50 positions must all come from one of the two clusters.
  const bool first_cluster_low = order[0] < 50;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[i] < 50, first_cluster_low);
  }
}

TEST(MortonSortOrderTest, EmptyInput) {
  EXPECT_TRUE(MortonSortOrder({}).empty());
}

}  // namespace
}  // namespace slam
