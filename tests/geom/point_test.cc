#include "geom/point.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(PointTest, DefaultIsOrigin) {
  const Point p;
  EXPECT_EQ(p.x, 0.0);
  EXPECT_EQ(p.y, 0.0);
}

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
}

TEST(PointTest, CompoundAssignment) {
  Point p{1.0, 1.0};
  p += {2.0, 3.0};
  EXPECT_EQ(p, (Point{3.0, 4.0}));
  p -= {1.0, 1.0};
  EXPECT_EQ(p, (Point{2.0, 3.0}));
}

TEST(PointTest, DotAndNorms) {
  const Point a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot({1.0, 2.0}), 11.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(PointTest, Distances) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(b, a), 5.0);  // symmetric
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(PointTest, TriangleInequalityHolds) {
  const Point a{0, 0}, b{5, 1}, c{2, 7};
  EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
}

TEST(PointTest, IsTriviallyCopyableAndCompact) {
  static_assert(std::is_trivially_copyable_v<Point>);
  static_assert(sizeof(Point) == 16);
}

}  // namespace
}  // namespace slam
