#include "geom/projection.h"

#include <gtest/gtest.h>

#include <cmath>

namespace slam {
namespace {

TEST(ProjectionTest, ReferenceMapsToOrigin) {
  const auto proj = *LocalProjection::Create(-122.33, 47.61);  // Seattle
  const Point xy = proj.Forward({-122.33, 47.61});
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
  EXPECT_NEAR(xy.y, 0.0, 1e-9);
}

TEST(ProjectionTest, ForwardInverseRoundTrip) {
  const auto proj = *LocalProjection::Create(-74.0, 40.7);  // NYC
  const Point lonlat{-73.95, 40.78};
  const Point back = proj.Inverse(proj.Forward(lonlat));
  EXPECT_NEAR(back.x, lonlat.x, 1e-12);
  EXPECT_NEAR(back.y, lonlat.y, 1e-12);
}

TEST(ProjectionTest, OneDegreeLatitudeIsAbout111Km) {
  const auto proj = *LocalProjection::Create(0.0, 45.0);
  const Point xy = proj.Forward({0.0, 46.0});
  EXPECT_NEAR(xy.y, 111195.0, 100.0);  // mean-radius value
}

TEST(ProjectionTest, LongitudeShrinksWithLatitude) {
  const auto equator = *LocalProjection::Create(0.0, 0.0);
  const auto mid = *LocalProjection::Create(0.0, 60.0);
  const double dx_equator = equator.Forward({1.0, 0.0}).x;
  const double dx_mid = mid.Forward({1.0, 60.0}).x;
  // cos(60 deg) = 0.5
  EXPECT_NEAR(dx_mid / dx_equator, 0.5, 1e-6);
}

TEST(ProjectionTest, DistancesApproximateGreatCircleAtCityScale) {
  // Two points ~5 km apart in San Francisco.
  const auto proj = *LocalProjection::Create(-122.42, 37.77);
  const Point a = proj.Forward({-122.42, 37.77});
  const Point b = proj.Forward({-122.42, 37.815});  // 0.045 deg north
  const double d = Distance(a, b);
  EXPECT_NEAR(d, 0.045 * 111195.0, 50.0);
}

TEST(ProjectionTest, ForDataCentersOnCentroid) {
  const std::vector<Point> lonlat{{-122.0, 47.0}, {-122.4, 47.8}};
  const auto proj = *LocalProjection::ForData(lonlat);
  EXPECT_NEAR(proj.lon0_deg(), -122.2, 1e-9);
  EXPECT_NEAR(proj.lat0_deg(), 47.4, 1e-9);
}

TEST(ProjectionTest, ForwardAllMatchesForward) {
  const auto proj = *LocalProjection::Create(10.0, 50.0);
  const std::vector<Point> lonlat{{10.1, 50.1}, {9.9, 49.9}};
  const auto all = proj.ForwardAll(lonlat);
  ASSERT_EQ(all.size(), 2u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].x, proj.Forward(lonlat[i]).x);
    EXPECT_EQ(all[i].y, proj.Forward(lonlat[i]).y);
  }
}

TEST(ProjectionTest, RejectsPolarReference) {
  EXPECT_FALSE(LocalProjection::Create(0.0, 90.0).ok());
  EXPECT_FALSE(LocalProjection::Create(0.0, -89.95).ok());
}

TEST(ProjectionTest, RejectsBadLongitude) {
  EXPECT_FALSE(LocalProjection::Create(181.0, 0.0).ok());
  EXPECT_FALSE(LocalProjection::Create(-200.0, 0.0).ok());
}

TEST(ProjectionTest, ForDataRejectsEmpty) {
  EXPECT_FALSE(LocalProjection::ForData({}).ok());
}

}  // namespace
}  // namespace slam
