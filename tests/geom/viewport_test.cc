#include "geom/viewport.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

Viewport MakeViewport() {
  return Viewport::Create(BoundingBox({0, 0}, {100, 50}), 200, 100)
      .ValueOrDie();
}

TEST(ViewportTest, CreateValidatesInputs) {
  EXPECT_TRUE(Viewport::Create(BoundingBox({0, 0}, {1, 1}), 10, 10).ok());
  EXPECT_FALSE(Viewport::Create(BoundingBox{}, 10, 10).ok());
  EXPECT_FALSE(Viewport::Create(BoundingBox({0, 0}, {0, 1}), 10, 10).ok());
  EXPECT_FALSE(Viewport::Create(BoundingBox({0, 0}, {1, 1}), 0, 10).ok());
  EXPECT_FALSE(Viewport::Create(BoundingBox({0, 0}, {1, 1}), 10, -1).ok());
}

TEST(ViewportTest, PixelGaps) {
  const Viewport v = MakeViewport();
  EXPECT_DOUBLE_EQ(v.pixel_gap_x(), 0.5);
  EXPECT_DOUBLE_EQ(v.pixel_gap_y(), 0.5);
  EXPECT_EQ(v.pixel_count(), 20000);
}

TEST(ViewportTest, PixelCentersAreOffsetByHalfGap) {
  const Viewport v = MakeViewport();
  EXPECT_EQ(v.PixelCenter(0, 0), (Point{0.25, 0.25}));
  EXPECT_EQ(v.PixelCenter(199, 99), (Point{99.75, 49.75}));
  // Consecutive centers differ by exactly one gap.
  const Point a = v.PixelCenter(10, 20);
  const Point b = v.PixelCenter(11, 20);
  EXPECT_DOUBLE_EQ(b.x - a.x, v.pixel_gap_x());
}

TEST(ViewportTest, GeoToPixelInverse) {
  const Viewport v = MakeViewport();
  for (int ix : {0, 7, 100, 199}) {
    for (int iy : {0, 13, 99}) {
      int rx, ry;
      ASSERT_TRUE(v.GeoToPixel(v.PixelCenter(ix, iy), &rx, &ry));
      EXPECT_EQ(rx, ix);
      EXPECT_EQ(ry, iy);
    }
  }
}

TEST(ViewportTest, GeoToPixelEdges) {
  const Viewport v = MakeViewport();
  int ix, iy;
  ASSERT_TRUE(v.GeoToPixel({0.0, 0.0}, &ix, &iy));
  EXPECT_EQ(ix, 0);
  EXPECT_EQ(iy, 0);
  // Max edge maps to the last pixel, not one past it.
  ASSERT_TRUE(v.GeoToPixel({100.0, 50.0}, &ix, &iy));
  EXPECT_EQ(ix, 199);
  EXPECT_EQ(iy, 99);
  EXPECT_FALSE(v.GeoToPixel({100.1, 25.0}, &ix, &iy));
  EXPECT_FALSE(v.GeoToPixel({-0.1, 25.0}, &ix, &iy));
}

TEST(ViewportTest, ZoomKeepsCenterAndResolution) {
  const Viewport v = MakeViewport();
  const Viewport z = *v.Zoomed(0.5);
  EXPECT_EQ(z.width_px(), v.width_px());
  EXPECT_EQ(z.height_px(), v.height_px());
  EXPECT_EQ(z.region().center(), v.region().center());
  EXPECT_DOUBLE_EQ(z.region().width(), 50.0);
  EXPECT_DOUBLE_EQ(z.region().height(), 25.0);
  // Zooming in halves the pixel gap.
  EXPECT_DOUBLE_EQ(z.pixel_gap_x(), v.pixel_gap_x() * 0.5);
}

TEST(ViewportTest, ZoomRejectsBadRatio) {
  const Viewport v = MakeViewport();
  EXPECT_FALSE(v.Zoomed(0.0).ok());
  EXPECT_FALSE(v.Zoomed(-1.0).ok());
}

TEST(ViewportTest, PanTranslatesRegion) {
  const Viewport v = MakeViewport();
  const Viewport p = *v.Panned(10.0, -5.0);
  EXPECT_EQ(p.region().min(), (Point{10.0, -5.0}));
  EXPECT_EQ(p.region().max(), (Point{110.0, 45.0}));
  EXPECT_DOUBLE_EQ(p.pixel_gap_x(), v.pixel_gap_x());
}

TEST(ViewportTest, WithRegionKeepsResolution) {
  const Viewport v = MakeViewport();
  const Viewport w = *v.WithRegion(BoundingBox({5, 5}, {6, 6}));
  EXPECT_EQ(w.width_px(), 200);
  EXPECT_DOUBLE_EQ(w.pixel_gap_x(), 1.0 / 200);
}

TEST(ViewportTest, EqualityAndToString) {
  const Viewport a = MakeViewport();
  const Viewport b = MakeViewport();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == *a.Zoomed(0.5));
  EXPECT_NE(a.ToString().find("200x100"), std::string::npos);
}

}  // namespace
}  // namespace slam
