#include "index/balltree.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::RandomPoints;

int64_t BruteCount(const std::vector<Point>& pts, const Point& q, double r) {
  int64_t count = 0;
  for (const Point& p : pts) {
    if (SquaredDistance(q, p) <= r * r) ++count;
  }
  return count;
}

TEST(BallTreeTest, BuildValidatesOptions) {
  const std::vector<Point> pts{{0, 0}};
  EXPECT_FALSE(BallTree::Build(pts, {.leaf_size = -1}).ok());
  EXPECT_TRUE(BallTree::Build(pts).ok());
}

TEST(BallTreeTest, EmptyTree) {
  const auto tree = *BallTree::Build({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.RangeCount({1, 1}, 5.0), 0);
  EXPECT_EQ(tree.RangeAggregateQuery({1, 1}, 5.0).count, 0.0);
}

TEST(BallTreeTest, RangeQueryMatchesBruteForce) {
  const auto pts = RandomPoints(2000, 100.0, 71);
  const auto tree = *BallTree::Build(pts);
  Rng rng(73);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    const double r = rng.Uniform(0.0, 25.0);
    EXPECT_EQ(tree.RangeCount(q, r), BruteCount(pts, q, r));
  }
}

TEST(BallTreeTest, ClusteredDataAndBoundaryRadii) {
  const auto pts = ClusteredPoints(3000, 100.0, 6, 79);
  const auto tree = *BallTree::Build(pts);
  // Radius exactly the distance to some point: inclusive.
  const Point q = pts[42];
  EXPECT_GE(tree.RangeCount(q, 0.0), 1);
}

TEST(BallTreeTest, ReportedPointsAreWithinRadius) {
  const auto pts = RandomPoints(500, 50.0, 83);
  const auto tree = *BallTree::Build(pts);
  const Point q{25, 25};
  const double r = 10.0;
  tree.RangeQuery(q, r, [&](const Point& p) {
    EXPECT_LE(SquaredDistance(q, p), r * r * (1 + 1e-12));
  });
}

TEST(BallTreeTest, AggregateMatchesPerPoint) {
  const auto pts = ClusteredPoints(1500, 60.0, 3, 89);
  const auto tree = *BallTree::Build(pts);
  Rng rng(97);
  for (int trial = 0; trial < 30; ++trial) {
    const Point q{rng.Uniform(0, 60), rng.Uniform(0, 60)};
    const double r = rng.Uniform(0.5, 20.0);
    const RangeAggregates agg = tree.RangeAggregateQuery(q, r);
    // The tree reports aggregates in the query-centered frame.
    RangeAggregates expected;
    for (const Point& p : pts) {
      if (SquaredDistance(q, p) <= r * r) expected.Add(p - q);
    }
    EXPECT_DOUBLE_EQ(agg.count, expected.count);
    EXPECT_NEAR(agg.sum.y, expected.sum.y, 1e-7);
    EXPECT_NEAR(agg.sum_sq, expected.sum_sq, 1e-5);
  }
}

TEST(BallTreeTest, AgreesWithKdTree) {
  const auto pts = RandomPoints(1000, 40.0, 101);
  const auto ball = *BallTree::Build(pts);
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(0, 40), rng.Uniform(0, 40)};
    const double r = rng.Uniform(1.0, 12.0);
    EXPECT_EQ(ball.RangeCount(q, r), BruteCount(pts, q, r));
  }
}

TEST(BallTreeTest, NodeAndMemoryAccounting) {
  const auto pts = RandomPoints(1000, 10.0, 107);
  const auto tree = *BallTree::Build(pts);
  EXPECT_GT(tree.node_count(), 0u);
  EXPECT_GT(tree.MemoryUsageBytes(), 1000 * sizeof(Point));
}

}  // namespace
}  // namespace slam
