// Degenerate-geometry edge cases shared by all three tree indexes.
#include <gtest/gtest.h>

#include "index/balltree.h"
#include "index/kdtree.h"
#include "index/quadtree.h"
#include "testing/test_util.h"

namespace slam {
namespace {

std::vector<Point> VerticalLine(int n) {
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) pts.push_back({5.0, static_cast<double>(i)});
  return pts;
}

TEST(IndexEdgeTest, KdTreeVerticalLine) {
  // Zero x-spread forces every split onto the y axis.
  const auto pts = VerticalLine(500);
  const auto tree = *KdTree::Build(pts, {.leaf_size = 8});
  EXPECT_EQ(tree.RangeCount({5.0, 250.0}, 10.0), 21);
  EXPECT_EQ(tree.RangeCount({6.0, 250.0}, 0.5), 0);
  const RangeAggregates agg = tree.RangeAggregateQuery({5.0, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(agg.count, 3.0);  // y = 0, 1, 2
}

TEST(IndexEdgeTest, BallTreeVerticalLine) {
  const auto pts = VerticalLine(500);
  const auto tree = *BallTree::Build(pts, {.leaf_size = 8});
  EXPECT_EQ(tree.RangeCount({5.0, 250.0}, 10.0), 21);
}

TEST(IndexEdgeTest, SinglePointTrees) {
  const std::vector<Point> pts{{3.0, 4.0}};
  const auto kd = *KdTree::Build(pts);
  const auto ball = *BallTree::Build(pts);
  const auto quad = *QuadTree::Build(pts);
  EXPECT_EQ(kd.RangeCount({0, 0}, 5.0), 1);       // dist exactly 5
  EXPECT_EQ(ball.RangeCount({0, 0}, 5.0), 1);
  EXPECT_DOUBLE_EQ(quad.RangeAggregateQuery({0, 0}, 5.0).count, 1.0);
  EXPECT_EQ(kd.RangeCount({0, 0}, 4.999), 0);
}

TEST(IndexEdgeTest, TinyLeafSizeDeepTrees) {
  const auto pts = testing::RandomPoints(300, 10.0, 907);
  const auto kd = *KdTree::Build(pts, {.leaf_size = 1});
  const auto ball = *BallTree::Build(pts, {.leaf_size = 1});
  Rng rng(911);
  for (int i = 0; i < 10; ++i) {
    const Point q{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const double r = rng.Uniform(0.5, 3.0);
    int64_t brute = 0;
    for (const Point& p : pts) {
      if (SquaredDistance(q, p) <= r * r) ++brute;
    }
    EXPECT_EQ(kd.RangeCount(q, r), brute);
    EXPECT_EQ(ball.RangeCount(q, r), brute);
  }
}

TEST(IndexEdgeTest, QueryFarOutsideData) {
  const auto pts = testing::RandomPoints(200, 10.0, 919);
  const auto kd = *KdTree::Build(pts);
  EXPECT_EQ(kd.RangeCount({1e6, 1e6}, 100.0), 0);
  EXPECT_EQ(kd.RangeAggregateQuery({1e6, 1e6}, 100.0).count, 0.0);
  EXPECT_EQ(kd.AccumulateKernelBounded({1e6, 1e6},
                                       KernelType::kEpanechnikov, 5.0, 0.0),
            0.0);
}

TEST(IndexEdgeTest, RadiusCoveringEverything) {
  const auto pts = testing::RandomPoints(200, 10.0, 929);
  const auto kd = *KdTree::Build(pts);
  const auto ball = *BallTree::Build(pts);
  const auto quad = *QuadTree::Build(pts);
  EXPECT_EQ(kd.RangeCount({5, 5}, 1e5), 200);
  EXPECT_EQ(ball.RangeCount({5, 5}, 1e5), 200);
  // Whole-tree containment: the root contributes via its aggregates.
  EXPECT_DOUBLE_EQ(quad.RangeAggregateQuery({5, 5}, 1e5).count, 200.0);
}

TEST(IndexEdgeTest, AggregatesAreOrderIndependent) {
  // Same point multiset in two different input orders must give the same
  // range aggregates (the tree reorders internally anyway).
  auto pts = testing::ClusteredPoints(400, 30.0, 3, 937);
  auto reversed = pts;
  std::reverse(reversed.begin(), reversed.end());
  const auto a = *KdTree::Build(pts);
  const auto b = *KdTree::Build(reversed);
  const Point q{15, 15};
  const RangeAggregates aa = a.RangeAggregateQuery(q, 8.0);
  const RangeAggregates bb = b.RangeAggregateQuery(q, 8.0);
  EXPECT_DOUBLE_EQ(aa.count, bb.count);
  EXPECT_NEAR(aa.sum.x, bb.sum.x, 1e-9);
  EXPECT_NEAR(aa.sum_sq, bb.sum_sq, 1e-7);
}

}  // namespace
}  // namespace slam
