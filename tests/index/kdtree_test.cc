#include "index/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::RandomPoints;

std::vector<Point> BruteRange(const std::vector<Point>& pts, const Point& q,
                              double r) {
  std::vector<Point> out;
  for (const Point& p : pts) {
    if (SquaredDistance(q, p) <= r * r) out.push_back(p);
  }
  return out;
}

TEST(KdTreeTest, BuildValidatesOptions) {
  const std::vector<Point> pts{{0, 0}};
  EXPECT_FALSE(KdTree::Build(pts, {.leaf_size = 0}).ok());
  EXPECT_TRUE(KdTree::Build(pts, {.leaf_size = 1}).ok());
}

TEST(KdTreeTest, EmptyTree) {
  const auto tree = *KdTree::Build({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.RangeCount({0, 0}, 10.0), 0);
  EXPECT_EQ(tree.RangeAggregateQuery({0, 0}, 10.0).count, 0.0);
  EXPECT_EQ(tree.AccumulateKernelBounded({0, 0}, KernelType::kEpanechnikov,
                                         1.0, 0.0),
            0.0);
}

TEST(KdTreeTest, SinglePoint) {
  const std::vector<Point> pts{{5, 5}};
  const auto tree = *KdTree::Build(pts);
  EXPECT_EQ(tree.RangeCount({5, 5}, 0.0), 1);  // dist == radius inclusive
  EXPECT_EQ(tree.RangeCount({6, 5}, 1.0), 1);
  EXPECT_EQ(tree.RangeCount({6, 5}, 0.99), 0);
}

TEST(KdTreeTest, RangeQueryMatchesBruteForce) {
  const auto pts = RandomPoints(2000, 100.0, 17);
  const auto tree = *KdTree::Build(pts);
  Rng rng(18);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    const double r = rng.Uniform(0.0, 30.0);
    const auto expected = BruteRange(pts, q, r);
    int64_t found = 0;
    double sum_x = 0.0;
    tree.RangeQuery(q, r, [&](const Point& p) {
      ++found;
      sum_x += p.x;
      EXPECT_LE(SquaredDistance(q, p), r * r * (1 + 1e-12));
    });
    EXPECT_EQ(found, static_cast<int64_t>(expected.size()));
    double expected_sum_x = 0.0;
    for (const Point& p : expected) expected_sum_x += p.x;
    EXPECT_NEAR(sum_x, expected_sum_x, 1e-6);
  }
}

TEST(KdTreeTest, RangeQueryOnClusteredData) {
  const auto pts = ClusteredPoints(3000, 100.0, 5, 23);
  const auto tree = *KdTree::Build(pts);
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const double r = rng.Uniform(1.0, 20.0);
    EXPECT_EQ(tree.RangeCount(q, r),
              static_cast<int64_t>(BruteRange(pts, q, r).size()));
  }
}

TEST(KdTreeTest, DuplicatePointsAllFound) {
  std::vector<Point> pts(100, Point{3.0, 3.0});
  const auto tree = *KdTree::Build(pts);
  EXPECT_EQ(tree.RangeCount({3, 3}, 0.5), 100);
}

TEST(KdTreeTest, RangeAggregateMatchesPerPoint) {
  const auto pts = ClusteredPoints(2000, 50.0, 4, 31);
  const auto tree = *KdTree::Build(pts);
  Rng rng(37);
  for (int trial = 0; trial < 30; ++trial) {
    const Point q{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    const double r = rng.Uniform(0.5, 15.0);
    const RangeAggregates agg = tree.RangeAggregateQuery(q, r);
    // The tree reports aggregates in the query-centered frame, which also
    // keeps every channel radius-scaled — note the tight sum_quad
    // tolerance that global-frame moments could never hold.
    RangeAggregates expected;
    for (const Point& p : BruteRange(pts, q, r)) expected.Add(p - q);
    EXPECT_DOUBLE_EQ(agg.count, expected.count);
    EXPECT_NEAR(agg.sum.x, expected.sum.x, 1e-7);
    EXPECT_NEAR(agg.sum_sq, expected.sum_sq, 1e-5);
    EXPECT_NEAR(agg.sum_quad, expected.sum_quad, 1e-4);
    EXPECT_NEAR(agg.m_xy, expected.m_xy, 1e-5);
  }
}

TEST(KdTreeTest, BoundedKernelExactWhenEpsilonZero) {
  const auto pts = RandomPoints(1000, 20.0, 41);
  const auto tree = *KdTree::Build(pts);
  Rng rng(43);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Point q{rng.Uniform(0, 20), rng.Uniform(0, 20)};
      const double b = rng.Uniform(0.5, 5.0);
      double expected = 0.0;
      for (const Point& p : pts) {
        expected += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      }
      EXPECT_NEAR(tree.AccumulateKernelBounded(q, kernel, b, 0.0), expected,
                  1e-9 * std::max(1.0, expected));
    }
  }
}

TEST(KdTreeTest, BoundedKernelRespectsEpsilon) {
  const auto pts = RandomPoints(5000, 20.0, 47);
  const auto tree = *KdTree::Build(pts);
  const Point q{10, 10};
  const double b = 6.0;
  double exact = 0.0;
  for (const Point& p : pts) {
    exact += EvaluateKernel(KernelType::kEpanechnikov, SquaredDistance(q, p),
                            b);
  }
  const double eps = 0.01;
  const double approx =
      tree.AccumulateKernelBounded(q, KernelType::kEpanechnikov, b, eps);
  // Midpoint error is at most eps/2 per point in range; in-range count is
  // bounded by n, so this is a loose but sound bound.
  EXPECT_NEAR(approx, exact, eps * 0.5 * static_cast<double>(pts.size()));
}

TEST(KdTreeTest, GaussianKernelAccumulates) {
  const auto pts = RandomPoints(500, 10.0, 53);
  const auto tree = *KdTree::Build(pts);
  const Point q{5, 5};
  double exact = 0.0;
  for (const Point& p : pts) {
    exact += EvaluateKernel(KernelType::kGaussian, SquaredDistance(q, p), 2.0);
  }
  EXPECT_NEAR(tree.AccumulateKernelBounded(q, KernelType::kGaussian, 2.0, 0.0),
              exact, 1e-9 * std::max(1.0, exact));
}

TEST(KdTreeTest, NegativeRadiusFindsNothing) {
  const auto pts = RandomPoints(10, 5.0, 59);
  const auto tree = *KdTree::Build(pts);
  EXPECT_EQ(tree.RangeCount({2, 2}, -1.0), 0);
}

TEST(KdTreeTest, NodeCountScalesWithLeafSize) {
  const auto pts = RandomPoints(1000, 10.0, 61);
  const auto coarse = *KdTree::Build(pts, {.leaf_size = 256});
  const auto fine = *KdTree::Build(pts, {.leaf_size = 4});
  EXPECT_LT(coarse.node_count(), fine.node_count());
  EXPECT_GT(fine.MemoryUsageBytes(), coarse.MemoryUsageBytes());
}

TEST(KdTreeTest, SizeReported) {
  const auto pts = RandomPoints(123, 10.0, 67);
  EXPECT_EQ(KdTree::Build(pts)->size(), 123u);
}

}  // namespace
}  // namespace slam
