#include "index/quadtree.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::ClusteredPoints;
using testing::RandomPoints;

TEST(QuadTreeTest, BuildValidatesOptions) {
  const std::vector<Point> pts{{0, 0}};
  EXPECT_FALSE(QuadTree::Build(pts, {.leaf_size = 0, .max_depth = 8}).ok());
  EXPECT_FALSE(QuadTree::Build(pts, {.leaf_size = 8, .max_depth = 0}).ok());
  EXPECT_TRUE(QuadTree::Build(pts).ok());
}

TEST(QuadTreeTest, EmptyTree) {
  const auto tree = *QuadTree::Build({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.RangeAggregateQuery({0, 0}, 5.0).count, 0.0);
}

TEST(QuadTreeTest, AggregateMatchesBruteForce) {
  const auto pts = ClusteredPoints(2500, 80.0, 5, 109);
  const auto tree = *QuadTree::Build(pts);
  Rng rng(113);
  for (int trial = 0; trial < 40; ++trial) {
    const Point q{rng.Uniform(-5, 85), rng.Uniform(-5, 85)};
    const double r = rng.Uniform(0.5, 25.0);
    const RangeAggregates agg = tree.RangeAggregateQuery(q, r);
    // The tree reports aggregates in the query-centered frame.
    RangeAggregates expected;
    for (const Point& p : pts) {
      if (SquaredDistance(q, p) <= r * r) expected.Add(p - q);
    }
    EXPECT_DOUBLE_EQ(agg.count, expected.count) << "trial " << trial;
    EXPECT_NEAR(agg.sum.x, expected.sum.x, 1e-6);
    EXPECT_NEAR(agg.sum_sq, expected.sum_sq, 1e-4);
    EXPECT_NEAR(agg.m_xx, expected.m_xx, 1e-4);
  }
}

TEST(QuadTreeTest, DegenerateCollinearPoints) {
  // All points on one horizontal line: the root cell is degenerate in y and
  // must be expanded internally rather than recursing forever.
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) pts.push_back({static_cast<double>(i), 7.0});
  const auto tree = *QuadTree::Build(pts, {.leaf_size = 8, .max_depth = 16});
  EXPECT_EQ(tree.RangeAggregateQuery({250.0, 7.0}, 10.5).count, 21.0);
}

TEST(QuadTreeTest, AllIdenticalPoints) {
  std::vector<Point> pts(200, Point{1.0, 1.0});
  // max_depth stops the infinite split of inseparable points.
  const auto tree = *QuadTree::Build(pts, {.leaf_size = 4, .max_depth = 10});
  EXPECT_EQ(tree.RangeAggregateQuery({1, 1}, 0.1).count, 200.0);
  EXPECT_EQ(tree.RangeAggregateQuery({5, 5}, 0.1).count, 0.0);
}

TEST(QuadTreeTest, BoundedKernelExactWhenEpsilonZero) {
  const auto pts = RandomPoints(1500, 30.0, 127);
  const auto tree = *QuadTree::Build(pts);
  Rng rng(131);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    for (int trial = 0; trial < 8; ++trial) {
      const Point q{rng.Uniform(0, 30), rng.Uniform(0, 30)};
      const double b = rng.Uniform(0.5, 8.0);
      double expected = 0.0;
      for (const Point& p : pts) {
        expected += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      }
      EXPECT_NEAR(tree.AccumulateKernelBounded(q, kernel, b, 0.0), expected,
                  1e-9 * std::max(1.0, expected));
    }
  }
}

TEST(QuadTreeTest, EpsilonModeStaysWithinBound) {
  const auto pts = ClusteredPoints(4000, 40.0, 4, 137);
  const auto tree = *QuadTree::Build(pts);
  const Point q{20, 20};
  const double b = 10.0;
  double exact = 0.0;
  for (const Point& p : pts) {
    exact += EvaluateKernel(KernelType::kQuartic, SquaredDistance(q, p), b);
  }
  const double eps = 0.02;
  const double approx =
      tree.AccumulateKernelBounded(q, KernelType::kQuartic, b, eps);
  EXPECT_NEAR(approx, exact, eps * 0.5 * static_cast<double>(pts.size()));
}

TEST(QuadTreeTest, NodeCountAndMemory) {
  const auto pts = RandomPoints(2000, 50.0, 139);
  const auto tree = *QuadTree::Build(pts);
  EXPECT_GT(tree.node_count(), 4u);
  EXPECT_GE(tree.MemoryUsageBytes(), 2000 * sizeof(Point));
  EXPECT_EQ(tree.size(), 2000u);
}

}  // namespace
}  // namespace slam
