#include "index/zorder_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/morton.h"
#include "testing/test_util.h"

namespace slam {
namespace {

using testing::RandomPoints;

TEST(ZOrderIndexTest, EmptyInput) {
  const auto idx = *ZOrderIndex::Build({});
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.StridedSample(10).empty());
  EXPECT_EQ(idx.SampleSizeForEpsilon(0.1), 0u);
}

TEST(ZOrderIndexTest, SortedPointsArePermutationOfInput) {
  const auto pts = RandomPoints(500, 100.0, 149);
  const auto idx = *ZOrderIndex::Build(pts);
  ASSERT_EQ(idx.size(), pts.size());
  auto a = pts;
  std::vector<Point> b(idx.sorted_points().begin(),
                       idx.sorted_points().end());
  const auto cmp = [](const Point& l, const Point& r) {
    return l.x != r.x ? l.x < r.x : l.y < r.y;
  };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ZOrderIndexTest, PointsAreInMortonOrder) {
  const auto pts = RandomPoints(500, 100.0, 151);
  const auto idx = *ZOrderIndex::Build(pts);
  const BoundingBox extent =
      BoundingBox::FromPoints(idx.sorted_points());
  uint64_t prev = 0;
  for (const Point& p : idx.sorted_points()) {
    const uint64_t code = MortonCodeForPoint(p, extent);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(ZOrderIndexTest, StridedSampleSizes) {
  const auto pts = RandomPoints(1000, 50.0, 157);
  const auto idx = *ZOrderIndex::Build(pts);
  EXPECT_EQ(idx.StridedSample(0).size(), 0u);
  EXPECT_EQ(idx.StridedSample(1).size(), 1u);
  EXPECT_EQ(idx.StridedSample(100).size(), 100u);
  EXPECT_EQ(idx.StridedSample(1000).size(), 1000u);
  EXPECT_EQ(idx.StridedSample(5000).size(), 1000u);  // clamped to n
}

TEST(ZOrderIndexTest, FullSampleIsWholeDataset) {
  const auto pts = RandomPoints(64, 10.0, 163);
  const auto idx = *ZOrderIndex::Build(pts);
  const auto sample = idx.StridedSample(64);
  ASSERT_EQ(sample.size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(sample[i], idx.sorted_points()[i]);
  }
}

TEST(ZOrderIndexTest, SampleIsSpatiallyStratified) {
  // Half the points in each of two distant clusters: an m=10 strided sample
  // must draw from both (that is the point of sorting by Morton code).
  std::vector<Point> pts;
  Rng rng(167);
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(90, 100), rng.Uniform(90, 100)});
  }
  const auto idx = *ZOrderIndex::Build(pts);
  const auto sample = idx.StridedSample(10);
  int low = 0, high = 0;
  for (const Point& p : sample) {
    (p.x < 50 ? low : high)++;
  }
  EXPECT_EQ(low, 5);
  EXPECT_EQ(high, 5);
}

TEST(ZOrderIndexTest, SampleSizeForEpsilon) {
  const auto pts = RandomPoints(100000, 10.0, 173);
  const auto idx = *ZOrderIndex::Build(pts);
  EXPECT_EQ(idx.SampleSizeForEpsilon(0.1), 100u);    // 1/0.01
  EXPECT_EQ(idx.SampleSizeForEpsilon(0.01), 10000u); // 1/0.0001
  EXPECT_EQ(idx.SampleSizeForEpsilon(0.001), 100000u);  // clamped to n
  EXPECT_EQ(idx.SampleSizeForEpsilon(0.0), 100000u);    // degenerate -> all
}

TEST(ZOrderIndexTest, MemoryUsage) {
  const auto pts = RandomPoints(1000, 10.0, 179);
  const auto idx = *ZOrderIndex::Build(pts);
  EXPECT_GE(idx.MemoryUsageBytes(), 1000 * sizeof(Point));
}

}  // namespace
}  // namespace slam
