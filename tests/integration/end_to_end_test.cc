// End-to-end flows across the whole stack: generate a city -> project ->
// pick a bandwidth -> explore -> compute with every method -> render.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/csv_io.h"
#include "data/generators.h"
#include "data/sampling.h"
#include "explore/session.h"
#include "explore/viewport_ops.h"
#include "geom/projection.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "util/random.h"
#include "viz/ascii.h"
#include "viz/render.h"

namespace slam {
namespace {

TEST(EndToEndTest, CityToRasterAgreementAcrossAllMethods) {
  const auto ds = *GenerateCityDataset(City::kSanFrancisco, 0.0008, 21);
  const auto viewport = *DatasetViewport(ds, 48, 36);
  const double bandwidth = *ScottBandwidth(ds.coords());
  const KdvTask task =
      MakeTask(ds, viewport, KernelType::kEpanechnikov, bandwidth);

  const DensityMap reference = *ComputeKdv(task, Method::kScan);
  ASSERT_GT(reference.MaxValue(), 0.0);
  for (const Method m : ExactMethods()) {
    const DensityMap out = *ComputeKdv(task, m);
    const auto cmp = *reference.CompareTo(out);
    EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, reference.MaxValue()))
        << MethodName(m);
  }
  for (const Method m : {Method::kZorder, Method::kAkde}) {
    const DensityMap out = *ComputeKdv(task, m);
    const auto cmp = *reference.CompareTo(out);
    EXPECT_LT(cmp.max_abs_diff, 0.25 * reference.MaxValue()) << MethodName(m);
  }
}

TEST(EndToEndTest, LonLatPipelineThroughProjection) {
  // Events in lon/lat around Seattle; project, then KDV in meters.
  Rng rng(77);
  std::vector<Point> lonlat;
  for (int i = 0; i < 400; ++i) {
    lonlat.push_back({-122.33 + rng.Gaussian(0.0, 0.01),
                      47.61 + rng.Gaussian(0.0, 0.01)});
  }
  const auto proj = *LocalProjection::ForData(lonlat);
  const auto ds =
      PointDataset::FromPoints("seattle-lonlat", proj.ForwardAll(lonlat));
  const double bandwidth = *ScottBandwidth(ds.coords());
  EXPECT_GT(bandwidth, 10.0);    // hundreds of meters expected
  EXPECT_LT(bandwidth, 10000.0);
  const auto viewport = *DatasetViewport(ds, 32, 32);
  const auto map = *ComputeKdv(
      MakeTask(ds, viewport, KernelType::kQuartic, bandwidth),
      Method::kSlamBucketRao);
  EXPECT_GT(map.MaxValue(), 0.0);
}

TEST(EndToEndTest, CsvRoundTripThenKdv) {
  const auto ds = *GenerateCityDataset(City::kNewYork, 0.0005, 31);
  const std::string path = ::testing::TempDir() + "/e2e_city.csv";
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());
  const auto loaded = *LoadDatasetCsv(path);
  ASSERT_EQ(loaded.size(), ds.size());
  const auto viewport = *DatasetViewport(loaded, 24, 24);
  const double b = *ScottBandwidth(loaded.coords());
  const auto from_disk = *ComputeKdv(
      MakeTask(loaded, viewport, KernelType::kEpanechnikov, b),
      Method::kSlamBucket);
  const auto from_memory = *ComputeKdv(
      MakeTask(ds, *DatasetViewport(ds, 24, 24), KernelType::kEpanechnikov,
               *ScottBandwidth(ds.coords())),
      Method::kSlamBucket);
  const auto cmp = *from_memory.CompareTo(from_disk);
  EXPECT_LT(cmp.max_rel_diff, 1e-6);  // CSV stores %.9g
  std::remove(path.c_str());
}

TEST(EndToEndTest, ExploratoryWorkflowStaysExact) {
  // The Figure 2 workflow: filter to 2019, zoom twice, pan, re-bandwidth —
  // SLAM_BUCKET_RAO against SCAN after every step.
  SessionConfig cfg;
  cfg.width_px = 32;
  cfg.height_px = 24;
  auto session = *ExplorerSession::Create(
      *GenerateCityDataset(City::kLosAngeles, 0.0008, 41), cfg);
  ASSERT_TRUE(session.SetFilter(Year2019Filter()).ok());
  const auto check = [&session]() {
    ASSERT_TRUE(session.SetMethod(Method::kSlamBucketRao).ok());
    const auto fast = *session.Render();
    ASSERT_TRUE(session.SetMethod(Method::kScan).ok());
    const auto slow = *session.Render();
    const auto cmp = *slow.CompareTo(fast);
    EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, slow.MaxValue()));
  };
  check();
  ASSERT_TRUE(session.Zoom(0.5).ok());
  check();
  ASSERT_TRUE(session.Zoom(0.5).ok());
  ASSERT_TRUE(session.Pan(0.3, -0.2).ok());
  check();
  ASSERT_TRUE(session.ScaleBandwidth(2.0).ok());
  check();
}

TEST(EndToEndTest, DatasetSizeSweepKeepsExactness) {
  // The Figure 14 mechanism: sampled subsets stay exact for SLAM.
  const auto full = *GenerateCityDataset(City::kSeattle, 0.002, 51);
  for (const double fraction : {0.25, 0.5, 0.75}) {
    const auto subset = *SampleFraction(full, fraction, 61);
    const auto viewport = *DatasetViewport(subset, 20, 20);
    const double b = *ScottBandwidth(subset.coords());
    const KdvTask task =
        MakeTask(subset, viewport, KernelType::kEpanechnikov, b);
    const auto fast = *ComputeKdv(task, Method::kSlamBucketRao);
    const auto slow = *ComputeKdv(task, Method::kScan);
    const auto cmp = *slow.CompareTo(fast);
    EXPECT_LT(cmp.max_abs_diff, 1e-9 * std::max(1.0, slow.MaxValue()))
        << "fraction " << fraction;
  }
}

TEST(EndToEndTest, RasterRendersToImageAndAscii) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 71);
  const auto viewport = *DatasetViewport(ds, 64, 48);
  const auto map = *ComputeKdv(
      MakeTask(ds, viewport, KernelType::kEpanechnikov,
               *ScottBandwidth(ds.coords())),
      Method::kSlamBucketRao);
  const std::string ppm = ::testing::TempDir() + "/e2e_hotspots.ppm";
  ASSERT_TRUE(WriteDensityPpm(map, ppm).ok());
  std::remove(ppm.c_str());
  const std::string art = *RenderAscii(map);
  EXPECT_FALSE(art.empty());
  // A hotspot map should have both empty space and dense marks.
  EXPECT_NE(art.find(' '), std::string::npos);
  EXPECT_NE(art.find_first_not_of(" \n"), std::string::npos);
}

}  // namespace
}  // namespace slam
