// Golden regression pins: fixed-seed generator output, Scott bandwidth,
// and a full KDV raster are pinned to stored constants. These protect the
// reproducibility chain EXPERIMENTS.md depends on — if a change to the
// PRNG, the generators, the bandwidth rule, or any exact method shifts
// these values, the recorded experiment results are stale and must be
// regenerated (and this file updated deliberately).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "explore/viewport_ops.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"

namespace slam {
namespace {

constexpr double kTolerance = 1e-12;  // relative

TEST(GoldenTest, SeattleGeneratorPins) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 42);
  ASSERT_EQ(ds.size(), 863u);
  EXPECT_NEAR(ds.coord(0).x, 6226.0991621234689, 1e-9);
  EXPECT_NEAR(ds.coord(0).y, 8833.0417624567508, 1e-9);
  EXPECT_EQ(ds.event_time(0), 1542316221);
  EXPECT_EQ(ds.category(0), 3);
  EXPECT_NEAR(ds.coord(1).x, 4765.7884344406575, 1e-9);
  EXPECT_NEAR(ds.coord(862).y, 16447.801167488382, 1e-9);
  EXPECT_EQ(ds.event_time(862), 1551227303);
}

TEST(GoldenTest, ScottBandwidthPin) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 42);
  const double b = *ScottBandwidth(ds.coords());
  EXPECT_NEAR(b, 1455.0169385421937, kTolerance * 1455.0);
}

TEST(GoldenTest, KdvRasterPins) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 42);
  const double b = *ScottBandwidth(ds.coords());
  const auto viewport = *DatasetViewport(ds, 16, 12);
  const auto map = *ComputeKdv(
      MakeTask(ds, viewport, KernelType::kEpanechnikov, b),
      Method::kSlamBucketRao);
  EXPECT_NEAR(map.Sum(), 1.5786574296786566, kTolerance * 1.58);
  EXPECT_NEAR(map.MaxValue(), 0.07155869499990733, kTolerance * 0.072);
  EXPECT_NEAR(map.at(7, 7), 0.011733891223112495, kTolerance * 0.012);
}

TEST(GoldenTest, EveryExactMethodReproducesThePinnedRaster) {
  const auto ds = *GenerateCityDataset(City::kSeattle, 0.001, 42);
  const double b = *ScottBandwidth(ds.coords());
  const auto viewport = *DatasetViewport(ds, 16, 12);
  const KdvTask task = MakeTask(ds, viewport, KernelType::kEpanechnikov, b);
  for (const Method m : ExactMethods()) {
    const auto map = *ComputeKdv(task, m);
    EXPECT_NEAR(map.Sum(), 1.5786574296786566, 1e-9) << MethodName(m);
    EXPECT_NEAR(map.MaxValue(), 0.07155869499990733, 1e-9) << MethodName(m);
  }
}

}  // namespace
}  // namespace slam
