#include "kdv/bandwidth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace slam {
namespace {

TEST(SampleStddevTest, KnownValues) {
  const std::vector<Point> pts{{0, 0}, {2, 4}};
  const Point sd = *SampleStddev(pts);
  EXPECT_NEAR(sd.x, std::sqrt(2.0), 1e-12);   // var = (1+1)/(2-1) = 2
  EXPECT_NEAR(sd.y, std::sqrt(8.0), 1e-12);
}

TEST(SampleStddevTest, RejectsTooFewPoints) {
  EXPECT_FALSE(SampleStddev({}).ok());
  const std::vector<Point> one{{1, 1}};
  EXPECT_FALSE(SampleStddev(one).ok());
}

TEST(ScottBandwidthTest, MatchesFormula) {
  // 4 points with per-axis stddevs sx, sy: b = mean(sx, sy) * 4^(-1/6).
  const std::vector<Point> pts{{0, 0}, {4, 2}, {0, 2}, {4, 0}};
  const Point sd = *SampleStddev(pts);
  const double expected =
      (sd.x + sd.y) / 2.0 * std::pow(4.0, -1.0 / 6.0);
  EXPECT_NEAR(*ScottBandwidth(pts), expected, 1e-12);
}

TEST(ScottBandwidthTest, ShrinksWithSampleSize) {
  Rng rng(3);
  std::vector<Point> small, large;
  for (int i = 0; i < 5000; ++i) {
    const Point p{rng.Gaussian(0, 10), rng.Gaussian(0, 10)};
    if (i < 500) small.push_back(p);
    large.push_back(p);
  }
  EXPECT_GT(*ScottBandwidth(small), *ScottBandwidth(large));
}

TEST(ScottBandwidthTest, ScalesWithSpread) {
  Rng rng(5);
  std::vector<Point> narrow, wide;
  for (int i = 0; i < 1000; ++i) {
    const double gx = rng.NextGaussian();
    const double gy = rng.NextGaussian();
    narrow.push_back({gx, gy});
    wide.push_back({10 * gx, 10 * gy});
  }
  EXPECT_NEAR(*ScottBandwidth(wide) / *ScottBandwidth(narrow), 10.0, 1e-9);
}

TEST(ScottBandwidthTest, RejectsDegenerateData) {
  const std::vector<Point> same{{1, 1}, {1, 1}, {1, 1}};
  EXPECT_FALSE(ScottBandwidth(same).ok());
}

TEST(SilvermanBandwidthTest, CoincidesWithScottIn2D) {
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0, 50), rng.Uniform(0, 30)});
  }
  EXPECT_DOUBLE_EQ(*SilvermanBandwidth(pts), *ScottBandwidth(pts));
}

TEST(ScottBandwidthTest, PositiveOnRealisticData) {
  Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.Uniform(0, 30000), rng.Uniform(0, 25000)});
  }
  const double b = *ScottBandwidth(pts);
  EXPECT_GT(b, 0.0);
  // City-scale meters with a few thousand points should give a bandwidth in
  // the hundreds-to-thousands range, like the paper's Table 5.
  EXPECT_GT(b, 100.0);
  EXPECT_LT(b, 10000.0);
}

}  // namespace
}  // namespace slam
