#include "kdv/density_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace slam {
namespace {

DensityMap SampleMap() {
  auto m = *DensityMap::Create(7, 5);
  double v = 0.001;
  for (auto& cell : m.mutable_values()) {
    cell = v;
    v = v * 1.7 + 0.013;  // irregular doubles
  }
  return m;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DensityIoTest, BinaryRoundTripIsExact) {
  const DensityMap original = SampleMap();
  const std::string path = TempPath("map.sldm");
  ASSERT_TRUE(SaveDensityMap(original, path).ok());
  const auto loaded = *LoadDensityMap(path);
  ASSERT_EQ(loaded.width(), 7);
  ASSERT_EQ(loaded.height(), 5);
  const auto cmp = *original.CompareTo(loaded);
  EXPECT_EQ(cmp.max_abs_diff, 0.0);  // bit-exact
  std::remove(path.c_str());
}

TEST(DensityIoTest, RejectsEmptyMap) {
  EXPECT_FALSE(SaveDensityMap(DensityMap{}, TempPath("x.sldm")).ok());
  EXPECT_FALSE(ExportDensityCsv(DensityMap{}, TempPath("x.csv")).ok());
}

TEST(DensityIoTest, RejectsMissingFile) {
  EXPECT_TRUE(LoadDensityMap("/nonexistent/m.sldm").status().IsIoError());
}

TEST(DensityIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad.sldm");
  std::ofstream(path) << "definitely not a density map";
  EXPECT_FALSE(LoadDensityMap(path).ok());
  std::remove(path.c_str());
}

TEST(DensityIoTest, RejectsTruncatedPayload) {
  const DensityMap original = SampleMap();
  const std::string path = TempPath("trunc.sldm");
  ASSERT_TRUE(SaveDensityMap(original, path).ok());
  // Chop off the last 16 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 16);
  std::ofstream(path, std::ios::binary) << data;
  EXPECT_FALSE(LoadDensityMap(path).ok());
  std::remove(path.c_str());
}

TEST(DensityIoTest, CsvExportHasHeaderAndAllPixels) {
  const DensityMap map = SampleMap();
  const std::string path = TempPath("map.csv");
  ASSERT_TRUE(ExportDensityCsv(map, path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y,density");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 35);
  std::remove(path.c_str());
}

TEST(DensityIoTest, SaveToBadPathFails) {
  EXPECT_TRUE(SaveDensityMap(SampleMap(), "/nonexistent/d/m.sldm").IsIoError());
  EXPECT_TRUE(ExportDensityCsv(SampleMap(), "/nonexistent/d/m.csv").IsIoError());
}

}  // namespace
}  // namespace slam
