#include "kdv/density_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace slam {
namespace {

DensityMap SampleMap() {
  auto m = *DensityMap::Create(7, 5);
  double v = 0.001;
  for (auto& cell : m.mutable_values()) {
    cell = v;
    v = v * 1.7 + 0.013;  // irregular doubles
  }
  return m;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DensityIoTest, BinaryRoundTripIsExact) {
  const DensityMap original = SampleMap();
  const std::string path = TempPath("map.sldm");
  ASSERT_TRUE(SaveDensityMap(original, path).ok());
  const auto loaded = *LoadDensityMap(path);
  ASSERT_EQ(loaded.width(), 7);
  ASSERT_EQ(loaded.height(), 5);
  const auto cmp = *original.CompareTo(loaded);
  EXPECT_EQ(cmp.max_abs_diff, 0.0);  // bit-exact
  std::remove(path.c_str());
}

TEST(DensityIoTest, RejectsEmptyMap) {
  EXPECT_FALSE(SaveDensityMap(DensityMap{}, TempPath("x.sldm")).ok());
  EXPECT_FALSE(ExportDensityCsv(DensityMap{}, TempPath("x.csv")).ok());
}

TEST(DensityIoTest, RejectsMissingFile) {
  EXPECT_TRUE(LoadDensityMap("/nonexistent/m.sldm").status().IsIoError());
}

TEST(DensityIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad.sldm");
  std::ofstream(path) << "definitely not a density map";
  EXPECT_FALSE(LoadDensityMap(path).ok());
  std::remove(path.c_str());
}

TEST(DensityIoTest, RejectsTruncatedPayload) {
  const DensityMap original = SampleMap();
  const std::string path = TempPath("trunc.sldm");
  ASSERT_TRUE(SaveDensityMap(original, path).ok());
  // Chop off the last 16 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  data.resize(data.size() - 16);
  std::ofstream(path, std::ios::binary) << data;
  EXPECT_FALSE(LoadDensityMap(path).ok());
  std::remove(path.c_str());
}

// Builds an SLDM byte image with an arbitrary (possibly hostile) header.
std::string SldmBytes(int32_t width, int32_t height,
                      const std::vector<double>& values) {
  std::string bytes = "SLDM";
  const uint32_t version = 1;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  bytes.append(reinterpret_cast<const char*>(&width), sizeof(width));
  bytes.append(reinterpret_cast<const char*>(&height), sizeof(height));
  bytes.append(reinterpret_cast<const char*>(values.data()),
               values.size() * sizeof(double));
  return bytes;
}

TEST(DensityIoTest, HostileHugeDimsRejectedBeforeAllocation) {
  // 2^20 x 2^20 passes both per-axis caps but would be an 8 TiB raster;
  // the product cap must fire before any allocation happens.
  std::istringstream in(SldmBytes(1 << 20, 1 << 20, {}));
  const auto result = LoadDensityMapStream(in, "hostile");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("cell"), std::string::npos)
      << result.status().ToString();
}

TEST(DensityIoTest, NegativeDimsRejected) {
  std::istringstream in(SldmBytes(-3, 5, {}));
  const auto result = LoadDensityMapStream(in, "neg");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DensityIoTest, TruncationErrorNamesTheRow) {
  // Header says 4x4 but only one full row follows.
  std::istringstream in(SldmBytes(4, 4, {1.0, 2.0, 3.0, 4.0, 5.0}));
  const auto result = LoadDensityMapStream(in, "trunc");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos)
      << result.status().ToString();
}

TEST(DensityIoTest, TrailingBytesRejected) {
  std::istringstream in(SldmBytes(2, 1, {1.0, 2.0}) + "XX");
  const auto result = LoadDensityMapStream(in, "trailing");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos)
      << result.status().ToString();
}

TEST(DensityIoTest, NanCellRejectedByDefaultButLoadableIfAsked) {
  const std::string bytes =
      SldmBytes(2, 2, {1.0, std::nan(""), 2.0, 3.0});
  {
    std::istringstream in(bytes);
    const auto result = LoadDensityMapStream(in, "nan");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("non-finite"),
              std::string::npos);
  }
  {
    std::istringstream in(bytes);
    DensityIoLimits limits;
    limits.require_finite = false;
    EXPECT_TRUE(LoadDensityMapStream(in, "nan", limits).ok());
  }
}

TEST(DensityIoTest, CallerCapsTighterThanGlobalApply) {
  std::istringstream in(SldmBytes(64, 1, std::vector<double>(64, 1.0)));
  DensityIoLimits limits;
  limits.max_dim = 32;
  const auto result = LoadDensityMapStream(in, "capped", limits);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DensityIoTest, CsvExportHasHeaderAndAllPixels) {
  const DensityMap map = SampleMap();
  const std::string path = TempPath("map.csv");
  ASSERT_TRUE(ExportDensityCsv(map, path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y,density");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 35);
  std::remove(path.c_str());
}

TEST(DensityIoTest, SaveToBadPathFails) {
  EXPECT_TRUE(SaveDensityMap(SampleMap(), "/nonexistent/d/m.sldm").IsIoError());
  EXPECT_TRUE(ExportDensityCsv(SampleMap(), "/nonexistent/d/m.csv").IsIoError());
}

}  // namespace
}  // namespace slam
