#include "kdv/density_map.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(DensityMapTest, CreateValidates) {
  EXPECT_TRUE(DensityMap::Create(3, 4).ok());
  EXPECT_FALSE(DensityMap::Create(0, 4).ok());
  EXPECT_FALSE(DensityMap::Create(3, -1).ok());
}

TEST(DensityMapTest, ZeroInitialized) {
  const auto m = *DensityMap::Create(4, 3);
  EXPECT_EQ(m.width(), 4);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.pixel_count(), 12);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(m.at(x, y), 0.0);
    }
  }
}

TEST(DensityMapTest, SetGetRowMajor) {
  auto m = *DensityMap::Create(3, 2);
  m.set(2, 1, 7.5);
  EXPECT_EQ(m.at(2, 1), 7.5);
  // Row-major layout: (2, 1) is index 1*3+2 = 5.
  EXPECT_EQ(m.values()[5], 7.5);
}

TEST(DensityMapTest, RowSpansAliasStorage) {
  auto m = *DensityMap::Create(4, 3);
  auto row = m.mutable_row(1);
  ASSERT_EQ(row.size(), 4u);
  row[2] = 9.0;
  EXPECT_EQ(m.at(2, 1), 9.0);
  EXPECT_EQ(m.row(1)[2], 9.0);
}

TEST(DensityMapTest, Stats) {
  auto m = *DensityMap::Create(2, 2);
  m.set(0, 0, 1.0);
  m.set(1, 0, -2.0);
  m.set(0, 1, 4.0);
  m.set(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.MinValue(), -2.0);
  EXPECT_DOUBLE_EQ(m.MaxValue(), 4.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
}

TEST(DensityMapTest, EmptyDefaultStats) {
  const DensityMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.MinValue(), 0.0);
  EXPECT_EQ(m.MaxValue(), 0.0);
  EXPECT_EQ(m.Sum(), 0.0);
}

TEST(DensityMapTest, Transposed) {
  auto m = *DensityMap::Create(3, 2);
  int v = 0;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) {
      m.set(x, y, v++);
    }
  }
  const DensityMap t = m.Transposed();
  EXPECT_EQ(t.width(), 2);
  EXPECT_EQ(t.height(), 3);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_EQ(t.at(y, x), m.at(x, y));
    }
  }
}

TEST(DensityMapTest, CompareIdentical) {
  auto a = *DensityMap::Create(2, 2);
  a.set(0, 0, 1.5);
  const auto cmp = *a.CompareTo(a);
  EXPECT_EQ(cmp.max_abs_diff, 0.0);
  EXPECT_EQ(cmp.max_rel_diff, 0.0);
  EXPECT_EQ(cmp.mismatched_pixels, 0);
}

TEST(DensityMapTest, CompareFindsDifferences) {
  auto a = *DensityMap::Create(2, 1);
  auto b = *DensityMap::Create(2, 1);
  a.set(0, 0, 10.0);
  b.set(0, 0, 10.5);
  a.set(1, 0, 1.0);
  b.set(1, 0, 1.0);
  const auto cmp = *a.CompareTo(b, 0.1);
  EXPECT_DOUBLE_EQ(cmp.max_abs_diff, 0.5);
  EXPECT_NEAR(cmp.max_rel_diff, 0.5 / 10.5, 1e-12);
  EXPECT_EQ(cmp.mismatched_pixels, 1);
}

TEST(DensityMapTest, CompareRejectsShapeMismatch) {
  const auto a = *DensityMap::Create(2, 2);
  const auto b = *DensityMap::Create(3, 2);
  EXPECT_FALSE(a.CompareTo(b).ok());
}

TEST(DensityMapTest, ToStringHasShapeAndRange) {
  auto m = *DensityMap::Create(5, 6);
  m.set(0, 0, 2.0);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("5x6"), std::string::npos);
  EXPECT_NE(s.find("max=2"), std::string::npos);
}

}  // namespace
}  // namespace slam
