// Overflow regressions for grids near INT_MAX pixels per axis. None of
// these allocate a raster — they pin down the *arithmetic*: pixel counts
// must widen to int64/size_t before multiplication or +1/+2 shifts, and
// the bucket clamps must stay exact at the extreme counts where
// `count + 1` in `int` is undefined behavior.
#include <climits>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "core/slam_bucket.h"
#include "kdv/engine.h"
#include "kdv/grid.h"

namespace slam {
namespace {

TEST(GridOverflowTest, CreateAcceptsIntMaxCounts) {
  const auto grid = Grid::Create({0.0, 1.0, INT_MAX}, {0.0, 1.0, INT_MAX});
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_EQ(grid->width(), INT_MAX);
  EXPECT_EQ(grid->height(), INT_MAX);
}

TEST(GridOverflowTest, PixelCountWidensToInt64) {
  // INT_MAX * INT_MAX overflows int32 ~2e9-fold; the widened product is
  // (2^31 - 1)^2 and must come back exactly.
  const Grid g = *Grid::Create({0.0, 1.0, INT_MAX}, {0.0, 1.0, INT_MAX});
  const int64_t expected =
      static_cast<int64_t>(INT_MAX) * static_cast<int64_t>(INT_MAX);
  EXPECT_EQ(g.pixel_count(), expected);
  EXPECT_GT(g.pixel_count(), 0);  // the classic overflow symptom is < 0
}

TEST(GridOverflowTest, PixelCountJustBelowIntMaxPerAxis) {
  const Grid g =
      *Grid::Create({0.0, 1.0, INT_MAX - 1}, {0.0, 1.0, 2});
  EXPECT_EQ(g.pixel_count(), 2 * (static_cast<int64_t>(INT_MAX) - 1));
}

TEST(GridOverflowTest, BucketClampsAtIntMaxAxis) {
  // LowerBucket/UpperBucket return values in [0, X]; at X = INT_MAX the
  // +1 shift downstream (BucketEndpoints) must happen in size_t. Here we
  // pin the clamp values themselves at the extreme axis.
  const GridAxis xs{0.0, 1.0, INT_MAX};
  EXPECT_EQ(LowerBucket(WorldX(-1e30), xs), 0);
  EXPECT_EQ(UpperBucket(WorldX(-1e30), xs), 0);
  EXPECT_EQ(LowerBucket(WorldX(1e30), xs), INT_MAX);
  EXPECT_EQ(UpperBucket(WorldX(1e30), xs), INT_MAX);
  // A value inside the axis still buckets normally.
  EXPECT_EQ(LowerBucket(WorldX(41.5), xs), 42);
  EXPECT_EQ(UpperBucket(WorldX(41.5), xs), 42);
}

TEST(GridOverflowTest, BucketClampsNearIntMaxBoundary) {
  // Values landing beyond pixel INT_MAX - 1 clamp to X, never wrap.
  const GridAxis xs{0.0, 1.0, INT_MAX};
  const double near_end = static_cast<double>(INT_MAX) - 0.5;
  EXPECT_EQ(LowerBucket(WorldX(near_end * 4.0), xs), INT_MAX);
  EXPECT_EQ(UpperBucket(WorldX(near_end * 4.0), xs), INT_MAX);
  EXPECT_GE(LowerBucket(WorldX(near_end), xs), 0);
  EXPECT_LE(LowerBucket(WorldX(near_end), xs), INT_MAX);
  EXPECT_GE(UpperBucket(WorldX(near_end), xs), 0);
  EXPECT_LE(UpperBucket(WorldX(near_end), xs), INT_MAX);
}

TEST(GridOverflowTest, SpaceModelDoesNotWrapAtIntMaxAxes) {
  // The analytic space model multiplies axis counts by element sizes; at
  // INT_MAX-wide grids every product must be size_t math. A wrapped
  // estimate would come back tiny (or zero) and defeat the memory budget
  // pre-flight.
  const size_t n = 1'000'000;
  for (const Method method :
       {Method::kSlamBucket, Method::kSlamSort, Method::kScan}) {
    const size_t bytes =
        EstimateAuxiliarySpaceBytes(method, n, INT_MAX, INT_MAX);
    EXPECT_GE(bytes, EstimateAuxiliarySpaceBytes(method, n, 64, 64))
        << "method " << static_cast<int>(method);
  }
  // SLAM_BUCKET's offset arrays scale with X: at X = INT_MAX they alone
  // are >= (2^31 + 1) * 2 * 4 bytes ~ 16 GiB. The estimate must reflect
  // that, not a wrapped 32-bit remainder.
  const size_t bucket_bytes =
      EstimateAuxiliarySpaceBytes(Method::kSlamBucket, n, INT_MAX, 64);
  EXPECT_GT(bucket_bytes,
            static_cast<size_t>(std::numeric_limits<int32_t>::max()));
}

}  // namespace
}  // namespace slam
