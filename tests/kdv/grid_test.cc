#include "kdv/grid.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(GridAxisTest, CoordArithmetic) {
  const GridAxis axis{10.0, 2.5, 5};
  EXPECT_DOUBLE_EQ(axis.Coord(0), 10.0);
  EXPECT_DOUBLE_EQ(axis.Coord(4), 20.0);
  EXPECT_DOUBLE_EQ(axis.last(), 20.0);
}

TEST(GridTest, CreateValidates) {
  EXPECT_TRUE(Grid::Create({0, 1, 4}, {0, 1, 4}).ok());
  EXPECT_FALSE(Grid::Create({0, 1, 0}, {0, 1, 4}).ok());
  EXPECT_FALSE(Grid::Create({0, 1, 4}, {0, 1, -2}).ok());
  EXPECT_FALSE(Grid::Create({0, 0.0, 4}, {0, 1, 4}).ok());
  EXPECT_FALSE(Grid::Create({0, -1.0, 4}, {0, 1, 4}).ok());
}

TEST(GridTest, PixelCenterAndCounts) {
  const Grid g = *Grid::Create({1.0, 2.0, 3}, {10.0, 5.0, 2});
  EXPECT_EQ(g.width(), 3);
  EXPECT_EQ(g.height(), 2);
  EXPECT_EQ(g.pixel_count(), 6);
  EXPECT_EQ(g.PixelCenter(2, 1), (Point{5.0, 15.0}));
}

TEST(GridTest, FromViewportCentersPixels) {
  const Viewport v =
      *Viewport::Create(BoundingBox({0, 0}, {10, 10}), 10, 5);
  const Grid g = Grid::FromViewport(v);
  EXPECT_EQ(g.width(), 10);
  EXPECT_EQ(g.height(), 5);
  EXPECT_DOUBLE_EQ(g.x_axis().origin, 0.5);
  EXPECT_DOUBLE_EQ(g.x_axis().gap, 1.0);
  EXPECT_DOUBLE_EQ(g.y_axis().origin, 1.0);
  EXPECT_DOUBLE_EQ(g.y_axis().gap, 2.0);
  EXPECT_EQ(g.PixelCenter(0, 0), v.PixelCenter(0, 0));
  EXPECT_EQ(g.PixelCenter(9, 4), v.PixelCenter(9, 4));
}

TEST(GridTest, TransposedSwapsAxes) {
  const Grid g = *Grid::Create({1.0, 2.0, 3}, {10.0, 5.0, 7});
  const Grid t = g.Transposed();
  EXPECT_EQ(t.width(), 7);
  EXPECT_EQ(t.height(), 3);
  EXPECT_DOUBLE_EQ(t.x_axis().origin, 10.0);
  EXPECT_DOUBLE_EQ(t.y_axis().gap, 2.0);
  // Transposing twice is the identity.
  const Grid tt = t.Transposed();
  EXPECT_EQ(tt.width(), g.width());
  EXPECT_DOUBLE_EQ(tt.x_axis().origin, g.x_axis().origin);
  // Pixel (i, j) of g is pixel (j, i) of t.
  const Point a = g.PixelCenter(2, 5);
  const Point b = t.PixelCenter(5, 2);
  EXPECT_DOUBLE_EQ(a.x, b.y);
  EXPECT_DOUBLE_EQ(a.y, b.x);
}

TEST(GridTest, TranslatedShiftsOrigins) {
  const Grid g = *Grid::Create({100.0, 1.0, 4}, {200.0, 1.0, 4});
  const Grid t = g.Translated(100.0, 200.0);
  EXPECT_DOUBLE_EQ(t.x_axis().origin, 0.0);
  EXPECT_DOUBLE_EQ(t.y_axis().origin, 0.0);
  EXPECT_DOUBLE_EQ(t.x_axis().gap, 1.0);
  EXPECT_EQ(t.width(), 4);
}

TEST(GridTest, ToStringIncludesShape) {
  const Grid g = *Grid::Create({0, 1, 12}, {0, 1, 34});
  EXPECT_NE(g.ToString().find("12x34"), std::string::npos);
}

}  // namespace
}  // namespace slam
