#include "kdv/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/random.h"

namespace slam {
namespace {

TEST(KernelNameTest, RoundTrips) {
  for (const KernelType k :
       {KernelType::kUniform, KernelType::kEpanechnikov, KernelType::kQuartic,
        KernelType::kGaussian}) {
    EXPECT_EQ(*KernelTypeFromName(KernelTypeName(k)), k);
  }
  EXPECT_EQ(*KernelTypeFromName("EPAN"), KernelType::kEpanechnikov);
  EXPECT_EQ(*KernelTypeFromName("biweight"), KernelType::kQuartic);
  EXPECT_FALSE(KernelTypeFromName("triangular").ok());
}

TEST(KernelSupportTest, SlamCoversBoundedKernelsOnly) {
  EXPECT_TRUE(KernelSupportedBySlam(KernelType::kUniform));
  EXPECT_TRUE(KernelSupportedBySlam(KernelType::kEpanechnikov));
  EXPECT_TRUE(KernelSupportedBySlam(KernelType::kQuartic));
  EXPECT_FALSE(KernelSupportedBySlam(KernelType::kGaussian));
}

TEST(EvaluateKernelTest, UniformValues) {
  const double b = 2.0;
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kUniform, 0.0, b), 0.5);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kUniform, 3.9, b), 0.5);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kUniform, 4.0, b), 0.5);  // d=b
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kUniform, 4.1, b), 0.0);
}

TEST(EvaluateKernelTest, EpanechnikovValues) {
  const double b = 2.0;
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kEpanechnikov, 0.0, b), 1.0);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kEpanechnikov, 1.0, b), 0.75);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kEpanechnikov, 4.0, b), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kEpanechnikov, 5.0, b), 0.0);
}

TEST(EvaluateKernelTest, QuarticValues) {
  const double b = 2.0;
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kQuartic, 0.0, b), 1.0);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kQuartic, 1.0, b), 0.5625);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kQuartic, 4.0, b), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kQuartic, 9.0, b), 0.0);
}

TEST(EvaluateKernelTest, GaussianValues) {
  const double b = 1.0;
  EXPECT_DOUBLE_EQ(EvaluateKernel(KernelType::kGaussian, 0.0, b), 1.0);
  EXPECT_NEAR(EvaluateKernel(KernelType::kGaussian, 2.0, b),
              std::exp(-1.0), 1e-15);
  // No bounded support: still positive far away.
  EXPECT_GT(EvaluateKernel(KernelType::kGaussian, 100.0, b), 0.0);
}

TEST(EvaluateKernelTest, MonotoneNonIncreasingInDistance) {
  for (const KernelType k :
       {KernelType::kUniform, KernelType::kEpanechnikov, KernelType::kQuartic,
        KernelType::kGaussian}) {
    double prev = EvaluateKernel(k, 0.0, 3.0);
    for (double d2 = 0.5; d2 < 15.0; d2 += 0.5) {
      const double v = EvaluateKernel(k, d2, 3.0);
      EXPECT_LE(v, prev + 1e-15) << KernelTypeName(k);
      prev = v;
    }
  }
}

TEST(RangeAggregatesTest, AddAccumulates) {
  RangeAggregates agg;
  agg.Add({3.0, 4.0});
  agg.Add({1.0, 0.0});
  EXPECT_DOUBLE_EQ(agg.count, 2.0);
  EXPECT_DOUBLE_EQ(agg.sum.x, 4.0);
  EXPECT_DOUBLE_EQ(agg.sum.y, 4.0);
  EXPECT_DOUBLE_EQ(agg.sum_sq, 26.0);       // 25 + 1
  EXPECT_DOUBLE_EQ(agg.sum_quad, 626.0);    // 625 + 1
  EXPECT_DOUBLE_EQ(agg.sum_sq_p.x, 76.0);   // 25*3 + 1*1
  EXPECT_DOUBLE_EQ(agg.m_xx, 10.0);         // 9 + 1
  EXPECT_DOUBLE_EQ(agg.m_xy, 12.0);
  EXPECT_DOUBLE_EQ(agg.m_yy, 16.0);
}

TEST(RangeAggregatesTest, MergeEqualsSequentialAdds) {
  RangeAggregates a, b, all;
  const std::vector<Point> pts{{1, 2}, {3, -1}, {0.5, 0.5}, {-2, 4}};
  for (size_t i = 0; i < pts.size(); ++i) {
    (i < 2 ? a : b).Add(pts[i]);
    all.Add(pts[i]);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.sum_sq, all.sum_sq);
  EXPECT_DOUBLE_EQ(a.sum_quad, all.sum_quad);
  EXPECT_DOUBLE_EQ(a.m_xy, all.m_xy);
}

TEST(RangeAggregatesTest, MinusInvertsMerge) {
  RangeAggregates a, b;
  a.Add({1, 1});
  a.Add({2, 2});
  b.Add({2, 2});
  const RangeAggregates diff = a.Minus(b);
  EXPECT_DOUBLE_EQ(diff.count, 1.0);
  EXPECT_DOUBLE_EQ(diff.sum.x, 1.0);
  EXPECT_DOUBLE_EQ(diff.sum_sq, 2.0);
}

/// The load-bearing identity: for every bounded kernel, the aggregate
/// decomposition must equal direct per-point evaluation for any point set
/// within the bandwidth.
TEST(DensityFromAggregatesTest, MatchesDirectEvaluation) {
  Rng rng(13);
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    for (int trial = 0; trial < 50; ++trial) {
      const double b = rng.Uniform(0.5, 5.0);
      const Point q{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
      RangeAggregates agg;
      double direct = 0.0;
      const int n = 1 + static_cast<int>(rng.NextBelow(30));
      for (int i = 0; i < n; ++i) {
        // Draw points inside the disk of radius b around q (rejection).
        Point p;
        do {
          p = {q.x + rng.Uniform(-b, b), q.y + rng.Uniform(-b, b)};
        } while (SquaredDistance(q, p) > b * b);
        agg.Add(p);
        direct += EvaluateKernel(kernel, SquaredDistance(q, p), b);
      }
      const double w = 0.37;
      const double from_agg = DensityFromAggregates(kernel, q, agg, b, w);
      EXPECT_NEAR(from_agg, w * direct, 1e-9 * std::max(1.0, w * direct))
          << KernelTypeName(kernel) << " trial " << trial;
    }
  }
}

TEST(DensityFromAggregatesTest, EmptyAggregatesGiveZero) {
  const RangeAggregates empty;
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    EXPECT_DOUBLE_EQ(
        DensityFromAggregates(kernel, {3, 4}, empty, 2.0, 1.0), 0.0);
  }
}

TEST(DensityFromAggregatesTest, WeightScalesLinearly) {
  RangeAggregates agg;
  agg.Add({1.0, 1.0});
  const Point q{1.2, 0.8};
  const double one =
      DensityFromAggregates(KernelType::kQuartic, q, agg, 2.0, 1.0);
  const double three =
      DensityFromAggregates(KernelType::kQuartic, q, agg, 2.0, 3.0);
  EXPECT_NEAR(three, 3.0 * one, 1e-12);
}

TEST(AggregateArityTest, MatchesPaperTable4) {
  EXPECT_EQ(AggregateArity(KernelType::kUniform), 1);
  EXPECT_EQ(AggregateArity(KernelType::kEpanechnikov), 4);
  EXPECT_EQ(AggregateArity(KernelType::kQuartic), 9);
  EXPECT_EQ(AggregateArity(KernelType::kGaussian), 0);
}

// ---- MakeKernelEvalProfile (the shared division guard) --------------

TEST(KernelEvalProfileTest, ValidBandwidthPassesThroughBitExact) {
  for (const double b : {1e-9, 0.5, 1.0, 1261.0, 1e30}) {
    const KernelEvalProfile prof = MakeKernelEvalProfile(b);
    EXPECT_EQ(prof.bandwidth, b);
    EXPECT_EQ(prof.b2, b * b);
  }
}

TEST(KernelEvalProfileTest, DegenerateBandwidthsClampToPositiveNormal) {
  const double min_normal = std::numeric_limits<double>::min();
  for (const double b :
       {0.0, -0.0, -1.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::quiet_NaN(),
        -std::numeric_limits<double>::infinity()}) {
    const KernelEvalProfile prof = MakeKernelEvalProfile(b);
    EXPECT_GE(prof.bandwidth, min_normal) << b;
    EXPECT_GE(prof.b2, min_normal) << b;
    EXPECT_TRUE(std::isfinite(prof.bandwidth)) << b;
    EXPECT_TRUE(std::isfinite(prof.b2)) << b;
  }
}

TEST(KernelEvalProfileTest, SquareUnderflowIsAlsoClamped) {
  // b ~ 1e-170 is a perfectly normal double whose square is subnormal
  // (underflows below DBL_MIN); the b² lane must still be a positive
  // normal or the 1/b² factors in the polynomials blow up.
  const KernelEvalProfile prof = MakeKernelEvalProfile(1e-170);
  EXPECT_EQ(prof.bandwidth, 1e-170);
  EXPECT_GE(prof.b2, std::numeric_limits<double>::min());
}

TEST(KernelEvalProfileTest, EvaluateKernelNeverProducesNonFinite) {
  // Division-by-zero audit: no bandwidth, however degenerate, may turn a
  // kernel evaluation into Inf/NaN (ValidateTask rejects these upstream;
  // the guard is defense in depth for direct callers).
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov, KernelType::kQuartic,
        KernelType::kGaussian}) {
    for (const double b : {0.0, -1.0, 5e-324, 1e-170}) {
      const double v = EvaluateKernel(kernel, 0.5, b);
      EXPECT_TRUE(std::isfinite(v))
          << KernelTypeName(kernel) << " b=" << b << " -> " << v;
    }
  }
}

TEST(KernelEvalProfileTest, DensityFromAggregatesGuardedToo) {
  RangeAggregates agg;
  agg.Add({1.0, 1.0});
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    for (const double b : {0.0, 5e-324}) {
      const double v = DensityFromAggregates(kernel, {1.0, 1.0}, agg, b, 1.0);
      EXPECT_TRUE(std::isfinite(v)) << KernelTypeName(kernel) << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace slam
