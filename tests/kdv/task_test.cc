#include "kdv/task.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace slam {
namespace {

using testing::MakeGrid;

KdvTask ValidTask(const std::vector<Point>& pts, const Grid& grid) {
  KdvTask task;
  task.points = pts;
  task.kernel = KernelType::kEpanechnikov;
  task.bandwidth = 2.0;
  task.weight = 0.5;
  task.grid = grid;
  return task;
}

TEST(ValidateTaskTest, AcceptsValid) {
  const std::vector<Point> pts{{1, 1}};
  EXPECT_TRUE(ValidateTask(ValidTask(pts, MakeGrid(4, 4, 10.0))).ok());
}

TEST(ValidateTaskTest, RejectsEmptyGrid) {
  const std::vector<Point> pts{{1, 1}};
  KdvTask task = ValidTask(pts, MakeGrid(4, 4, 10.0));
  task.grid = Grid{};
  EXPECT_FALSE(ValidateTask(task).ok());
}

TEST(ValidateTaskTest, RejectsBadBandwidth) {
  const std::vector<Point> pts{{1, 1}};
  KdvTask task = ValidTask(pts, MakeGrid(4, 4, 10.0));
  task.bandwidth = 0.0;
  EXPECT_FALSE(ValidateTask(task).ok());
  task.bandwidth = -3.0;
  EXPECT_FALSE(ValidateTask(task).ok());
  task.bandwidth = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateTask(task).ok());
}

TEST(ValidateTaskTest, RejectsBadWeight) {
  const std::vector<Point> pts{{1, 1}};
  KdvTask task = ValidTask(pts, MakeGrid(4, 4, 10.0));
  task.weight = 0.0;
  EXPECT_FALSE(ValidateTask(task).ok());
  task.weight = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateTask(task).ok());
}

TEST(ValidateTaskTest, EmptyPointsAreLegal) {
  KdvTask task = ValidTask({}, MakeGrid(4, 4, 10.0));
  EXPECT_TRUE(ValidateTask(task).ok());  // zero density everywhere
}

TEST(MakeTaskTest, DerivesWeightAndGrid) {
  PointDataset ds("d");
  ds.Add({0, 0});
  ds.Add({10, 10});
  ds.Add({5, 5});
  ds.Add({2, 8});
  const Viewport v =
      *Viewport::Create(BoundingBox({0, 0}, {10, 10}), 20, 10);
  const KdvTask task = MakeTask(ds, v, KernelType::kQuartic, 1.5);
  EXPECT_EQ(task.points.size(), 4u);
  EXPECT_EQ(task.kernel, KernelType::kQuartic);
  EXPECT_DOUBLE_EQ(task.bandwidth, 1.5);
  EXPECT_DOUBLE_EQ(task.weight, 0.25);
  EXPECT_EQ(task.grid.width(), 20);
  EXPECT_EQ(task.grid.height(), 10);
}

TEST(MakeTaskTest, EmptyDatasetGetsUnitWeight) {
  const PointDataset ds("empty");
  const Viewport v = *Viewport::Create(BoundingBox({0, 0}, {1, 1}), 2, 2);
  EXPECT_DOUBLE_EQ(
      MakeTask(ds, v, KernelType::kUniform, 1.0).weight, 1.0);
}

TEST(TranslatedTaskTest, ShiftsPointsAndGridConsistently) {
  const std::vector<Point> pts{{10, 20}, {12, 22}};
  const KdvTask task = ValidTask(pts, MakeGrid(4, 4, 10.0));
  const TranslatedTask translated(task, 10.0, 20.0);
  const KdvTask& t = translated.task();
  EXPECT_EQ(t.points[0], (Point{0.0, 0.0}));
  EXPECT_EQ(t.points[1], (Point{2.0, 2.0}));
  // Pixel center (i, j) shifts by the same offset, so relative geometry —
  // and hence the density — is unchanged.
  const Point before = task.grid.PixelCenter(1, 2);
  const Point after = t.grid.PixelCenter(1, 2);
  EXPECT_DOUBLE_EQ(before.x - after.x, 10.0);
  EXPECT_DOUBLE_EQ(before.y - after.y, 20.0);
  EXPECT_EQ(t.bandwidth, task.bandwidth);
  EXPECT_EQ(t.weight, task.weight);
}

TEST(TransposedTaskTest, SwapsEverything) {
  const std::vector<Point> pts{{1, 2}};
  KdvTask task = ValidTask(pts, MakeGrid(6, 3, 12.0));
  const TransposedTask transposed(task);
  const KdvTask& t = transposed.task();
  EXPECT_EQ(t.points[0], (Point{2.0, 1.0}));
  EXPECT_EQ(t.grid.width(), 3);
  EXPECT_EQ(t.grid.height(), 6);
  // Distances are preserved under the swap, pairing pixel (i,j) with (j,i).
  const Point q = task.grid.PixelCenter(4, 1);
  const Point qt = t.grid.PixelCenter(1, 4);
  EXPECT_DOUBLE_EQ(SquaredDistance(q, pts[0]),
                   SquaredDistance(qt, t.points[0]));
}

TEST(ComputeOptionsTest, Defaults) {
  const ComputeOptions opts;
  EXPECT_EQ(opts.exec, nullptr);
  EXPECT_GT(opts.zorder_epsilon, 0.0);
  EXPECT_GE(opts.akde_epsilon, 0.0);
  EXPECT_EQ(opts.quad_epsilon, 0.0);
  EXPECT_FALSE(opts.incremental_envelope);
}

}  // namespace
}  // namespace slam
