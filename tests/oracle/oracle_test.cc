// Differential correctness oracle (PR 3): every method against the
// long-double reference SCAN, including on adversarially translated
// datasets where the old global-frame aggregates lost all their mantissa
// bits. These are the property tests that enforce the ISSUE acceptance
// criterion: at EPSG:3857 magnitudes every method stays within 1e-9
// max relative error of the reference for all three SLAM kernels.
#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "kdv/engine.h"
#include "kdv/task.h"
#include "testing/test_util.h"

namespace slam::testing {
namespace {

constexpr double kMaxRelError = 1e-9;

// ---- UlpDistance ---------------------------------------------------

TEST(UlpDistanceTest, IdenticalValuesAreZeroApart) {
  EXPECT_EQ(UlpDistance(1.0, 1.0), 0);
  EXPECT_EQ(UlpDistance(0.0, 0.0), 0);
  EXPECT_EQ(UlpDistance(-3.5e100, -3.5e100), 0);
}

TEST(UlpDistanceTest, SignedZerosCoincide) {
  EXPECT_EQ(UlpDistance(0.0, -0.0), 0);
  EXPECT_EQ(UlpDistance(-0.0, 0.0), 0);
}

TEST(UlpDistanceTest, AdjacentDoublesAreOneApart) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  EXPECT_EQ(UlpDistance(x, up), 1);
  EXPECT_EQ(UlpDistance(up, x), 1);
  const double neg = -1.0;
  EXPECT_EQ(UlpDistance(neg, std::nextafter(neg, -2.0)), 1);
}

TEST(UlpDistanceTest, CrossesZeroContinuously) {
  // Smallest positive subnormal is one ulp from +0.0, two from the
  // smallest negative subnormal.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(UlpDistance(tiny, 0.0), 1);
  EXPECT_EQ(UlpDistance(tiny, -tiny), 2);
}

TEST(UlpDistanceTest, NanSaturates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(UlpDistance(nan, 1.0), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(UlpDistance(1.0, nan), std::numeric_limits<int64_t>::max());
}

TEST(UlpDistanceTest, OppositeInfinitiesSaturate) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(UlpDistance(inf, -inf), std::numeric_limits<int64_t>::max());
}

// ---- CompareToReference --------------------------------------------

TEST(CompareToReferenceTest, ShapeMismatchIsAnError) {
  const DensityMap a = DensityMap::Create(4, 4).ValueOrDie();
  const DensityMap b = DensityMap::Create(4, 5).ValueOrDie();
  EXPECT_FALSE(CompareToReference(a, b).ok());
}

TEST(CompareToReferenceTest, IdenticalMapsReportZeroError) {
  DensityMap a = DensityMap::Create(3, 2).ValueOrDie();
  a.set(1, 1, 7.25);
  const auto report = CompareToReference(a, a);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->max_rel_error, 0.0);
  EXPECT_EQ(report->max_abs_error, 0.0);
  EXPECT_EQ(report->max_ulps, 0);
}

TEST(CompareToReferenceTest, ReportsWorstPixel) {
  DensityMap ref = DensityMap::Create(3, 3).ValueOrDie();
  DensityMap got = DensityMap::Create(3, 3).ValueOrDie();
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      ref.set(x, y, 10.0);
      got.set(x, y, 10.0);
    }
  }
  got.set(2, 1, 10.5);  // 5% off
  const auto report = CompareToReference(got, ref);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->worst_ix, 2);
  EXPECT_EQ(report->worst_iy, 1);
  EXPECT_NEAR(report->max_rel_error, 0.05, 1e-12);
  EXPECT_NEAR(report->max_abs_error, 0.5, 1e-12);
}

TEST(CompareToReferenceTest, RelativeFloorMutesEmptyPixels) {
  // A stray 1e-30 in a pixel whose reference is exactly 0 must not blow
  // the relative error to infinity: it is judged against the floor, a
  // fraction of the reference peak.
  DensityMap ref = DensityMap::Create(2, 1).ValueOrDie();
  DensityMap got = DensityMap::Create(2, 1).ValueOrDie();
  ref.set(0, 0, 1.0);
  got.set(0, 0, 1.0);
  got.set(1, 0, 1e-30);
  const auto report = CompareToReference(got, ref, /*rel_floor_fraction=*/1e-6);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->max_rel_error, 1e-20);
}

// ---- ReferenceScan -------------------------------------------------

TEST(ReferenceScanTest, MatchesBruteForceOnWellConditionedTask) {
  KdvTask task;
  const std::vector<Point> points = RandomPoints(200, 100.0, /*seed=*/7);
  task.points = points;
  task.grid = MakeGrid(16, 12, 100.0);
  task.bandwidth = 18.0;
  task.weight = 1.0 / 200.0;
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov, KernelType::kQuartic,
        KernelType::kGaussian}) {
    task.kernel = kernel;
    const auto reference = ReferenceScan(task);
    ASSERT_TRUE(reference.ok()) << KernelTypeName(kernel);
    const DensityMap brute = BruteForceDensity(task);
    const auto report = CompareToReference(brute, *reference);
    ASSERT_TRUE(report.ok());
    // Double brute force vs long double reference: only rounding noise.
    EXPECT_LT(report->max_rel_error, 1e-12) << KernelTypeName(kernel);
  }
}

TEST(ReferenceScanTest, HonorsCancellation) {
  KdvTask task;
  const std::vector<Point> points = RandomPoints(50, 100.0, /*seed=*/3);
  task.points = points;
  task.grid = MakeGrid(8, 8, 100.0);
  task.bandwidth = 10.0;
  task.kernel = KernelType::kEpanechnikov;
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  const auto result = ReferenceScan(task, &exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---- The property tests --------------------------------------------

struct OracleCase {
  KernelType kernel;
  double offset_x;
  double offset_y;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  const OracleCase& c = info.param;
  std::string name(KernelTypeName(c.kernel));
  auto tag = [](double v) -> std::string {
    if (v == 0.0) return "0";
    return std::string(v < 0 ? "Minus" : "Plus") +
           std::to_string(static_cast<long long>(std::abs(v)));
  };
  return name + "_Ox" + tag(c.offset_x) + "_Oy" + tag(c.offset_y);
}

/// A clustered task covering [0, extent]^2, then adversarially translated
/// so every coordinate carries a huge common offset. The reference and
/// the methods see the *identical* translated task, so input quantization
/// (coordinates rounding at ulp(1e7)) is common-mode and the diff
/// isolates each method's own arithmetic.
KdvTask MakeOffsetTask(KernelType kernel, double offset_x, double offset_y,
                       std::vector<Point>& storage, Grid& grid_storage,
                       uint64_t seed) {
  const double extent = 512.0;
  KdvTask task;
  storage = ClusteredPoints(300, extent, /*clusters=*/4, seed);
  for (Point& p : storage) {
    p.x += offset_x;
    p.y += offset_y;
  }
  // Grid::Translated(dx, dy) shifts by (-dx, -dy); negate to follow the
  // points, which moved by +offset.
  grid_storage = MakeGrid(40, 30, extent).Translated(-offset_x, -offset_y);
  task.points = storage;
  task.grid = grid_storage;
  task.kernel = kernel;
  task.bandwidth = 60.0;
  task.weight = 1.0 / 300.0;
  return task;
}

class OraclePropertyTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OraclePropertyTest, AllMethodsWithinThresholdOfReference) {
  const OracleCase& c = GetParam();
  std::vector<Point> storage;
  Grid grid;
  const KdvTask task =
      MakeOffsetTask(c.kernel, c.offset_x, c.offset_y, storage, grid,
                     /*seed=*/0xC0FFEE);
  const auto reference = ReferenceScan(task);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->MaxValue(), 0.0);
  const EngineOptions options = ExactEngineOptions();
  for (const Method method : AllMethods()) {
    const auto report = DiffAgainstReference(task, method, options, *reference);
    ASSERT_TRUE(report.ok()) << MethodName(method) << ": "
                             << report.status().ToString();
    EXPECT_LE(report->max_rel_error, kMaxRelError)
        << MethodName(method) << " drifted from the reference: rel "
        << report->max_rel_error << " at pixel (" << report->worst_ix << ", "
        << report->worst_iy << "), got " << report->worst_value
        << " expected " << report->worst_reference;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsKernelsOffsets, OraclePropertyTest,
    ::testing::Values(
        OracleCase{KernelType::kUniform, 0.0, 0.0},
        OracleCase{KernelType::kEpanechnikov, 0.0, 0.0},
        OracleCase{KernelType::kQuartic, 0.0, 0.0},
        // EPSG:3857-scale adversarial offsets (the ISSUE's headline case:
        // web-mercator meters put Seattle at roughly (-1.36e7, 6.0e6)).
        OracleCase{KernelType::kUniform, 1e7, 1e7},
        OracleCase{KernelType::kEpanechnikov, 1e7, 1e7},
        OracleCase{KernelType::kQuartic, 1e7, 1e7},
        OracleCase{KernelType::kUniform, -1e7, 1e7},
        OracleCase{KernelType::kEpanechnikov, -1e7, -1e7},
        OracleCase{KernelType::kQuartic, -1e7, 1e7}),
    CaseName);

/// Random small tasks: vary grid shape, bandwidth, and seed together.
TEST(OraclePropertyTest, RandomTasksAllMethodsAgree) {
  const struct {
    int width, height;
    double bandwidth;
    uint64_t seed;
  } cases[] = {
      {17, 23, 35.0, 11},
      {64, 9, 90.0, 22},
      {25, 25, 140.0, 33},
  };
  for (const auto& c : cases) {
    std::vector<Point> points = RandomPoints(250, 512.0, c.seed);
    const Grid grid = MakeGrid(c.width, c.height, 512.0);
    for (const KernelType kernel :
         {KernelType::kUniform, KernelType::kEpanechnikov,
          KernelType::kQuartic}) {
      KdvTask task;
      task.points = points;
      task.grid = grid;
      task.kernel = kernel;
      task.bandwidth = c.bandwidth;
      task.weight = 1.0 / 250.0;
      const auto reference = ReferenceScan(task);
      ASSERT_TRUE(reference.ok());
      const EngineOptions options = ExactEngineOptions();
      for (const Method method : AllMethods()) {
        const auto report =
            DiffAgainstReference(task, method, options, *reference);
        ASSERT_TRUE(report.ok()) << MethodName(method);
        EXPECT_LE(report->max_rel_error, kMaxRelError)
            << MethodName(method) << " on " << c.width << "x" << c.height
            << " b=" << c.bandwidth << " " << KernelTypeName(kernel);
      }
    }
  }
}

/// The sweep methods must hold the threshold even with engine-level
/// recentering off: the row-local frame inside the sweep is what carries
/// them. The yardstick here is SCAN under the *same* no-recenter options
/// — both then evaluate at the identical double-rounded global pixel
/// centers (quantized at ulp(1e7), a common-mode input effect the
/// long-double oracle's ideal lattice would charge to every method
/// equally), so the diff isolates the sweep's aggregate accumulation.
/// (Continuous kernels only — with the uniform kernel, a boundary point
/// misclassified by one ulp in the bound endpoints changes the density by
/// a full 1/b step; the engine's recentering handles that case.)
TEST(OraclePropertyTest, SweepMethodsStableWithoutEngineRecentering) {
  for (const KernelType kernel :
       {KernelType::kEpanechnikov, KernelType::kQuartic}) {
    std::vector<Point> storage;
    Grid grid;
    const KdvTask task = MakeOffsetTask(kernel, 1e7, -1e7, storage, grid,
                                        /*seed=*/0xBEEF);
    EngineOptions options = ExactEngineOptions();
    options.recenter_coordinates = false;
    const auto scan = ComputeKdv(task, Method::kScan, options);
    ASSERT_TRUE(scan.ok());
    ASSERT_GT(scan->MaxValue(), 0.0);
    for (const Method method :
         {Method::kSlamSort, Method::kSlamBucket, Method::kSlamSortRao,
          Method::kSlamBucketRao}) {
      const auto report = DiffAgainstReference(task, method, options, *scan);
      ASSERT_TRUE(report.ok()) << MethodName(method);
      EXPECT_LE(report->max_rel_error, kMaxRelError)
          << MethodName(method) << " (" << KernelTypeName(kernel)
          << ", no recentering): rel " << report->max_rel_error;
    }
  }
}

/// The compensated-aggregates knob is live: both settings produce valid
/// results on a well-conditioned task, and the knob defaults to on.
TEST(OraclePropertyTest, CompensationKnobBothSettingsCorrect) {
  ComputeOptions defaults;
  EXPECT_TRUE(defaults.compensated_aggregates);
  std::vector<Point> storage;
  Grid grid;
  const KdvTask task = MakeOffsetTask(KernelType::kEpanechnikov, 0.0, 0.0,
                                      storage, grid, /*seed=*/0xFACE);
  const auto reference = ReferenceScan(task);
  ASSERT_TRUE(reference.ok());
  for (const bool compensated : {true, false}) {
    EngineOptions options = ExactEngineOptions();
    options.compute.compensated_aggregates = compensated;
    for (const Method method : {Method::kSlamSort, Method::kSlamBucket}) {
      const auto report =
          DiffAgainstReference(task, method, options, *reference);
      ASSERT_TRUE(report.ok()) << MethodName(method);
      EXPECT_LE(report->max_rel_error, kMaxRelError)
          << MethodName(method) << " compensated=" << compensated;
    }
  }
}

}  // namespace
}  // namespace slam::testing
