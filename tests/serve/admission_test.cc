#include "util/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace slam {
namespace {

AdmissionOptions Unlimited() {
  AdmissionOptions options;
  options.max_concurrent = 1000;
  options.max_queue_depth = 1000;
  return options;
}

TEST(AdmissionTest, ValidatesOptions) {
  AdmissionOptions bad;
  bad.max_concurrent = 0;
  EXPECT_TRUE(AdmissionController::Create(bad).status().IsInvalidArgument());
  bad = AdmissionOptions();
  bad.max_queue_depth = -1;
  EXPECT_TRUE(AdmissionController::Create(bad).status().IsInvalidArgument());
  bad = AdmissionOptions();
  bad.tokens_per_second = 10.0;
  bad.burst = 0.5;
  EXPECT_TRUE(AdmissionController::Create(bad).status().IsInvalidArgument());
  bad = AdmissionOptions();
  bad.latency_ewma_alpha = 0.0;
  EXPECT_TRUE(AdmissionController::Create(bad).status().IsInvalidArgument());
  bad = AdmissionOptions();
  bad.initial_latency_seconds = -1.0;
  EXPECT_TRUE(AdmissionController::Create(bad).status().IsInvalidArgument());
}

TEST(AdmissionTest, FastPathAdmitsAndBalancesRelease) {
  auto admission = *AdmissionController::Create(Unlimited());
  EXPECT_TRUE(admission->Admit(nullptr).ok());
  EXPECT_EQ(admission->Executing(), 1);
  admission->Release(0.005);
  EXPECT_EQ(admission->Executing(), 0);
  EXPECT_EQ(admission->stats().admitted, 1);
}

TEST(AdmissionTest, ExpiredDeadlineRejectedOnArrival) {
  auto admission = *AdmissionController::Create(Unlimited());
  const Deadline expired(0.0);
  EXPECT_TRUE(admission->Admit(&expired).IsDeadlineExceeded());
  const Deadline negative(-2.0);
  EXPECT_TRUE(admission->Admit(&negative).IsDeadlineExceeded());
  EXPECT_EQ(admission->stats().admitted, 0);
}

TEST(AdmissionTest, ShedsInfeasibleDeadlines) {
  AdmissionOptions options = Unlimited();
  options.initial_latency_seconds = 0.2;  // service takes ~200ms
  auto admission = *AdmissionController::Create(options);
  const Deadline hopeless(0.05);  // client asks for 50ms
  const Status shed = admission->Admit(&hopeless);
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_EQ(admission->stats().shed_infeasible, 1);
  // A feasible deadline sails through.
  const Deadline feasible(5.0);
  EXPECT_TRUE(admission->Admit(&feasible).ok());
  admission->Release(0.2);
}

TEST(AdmissionTest, LatencyEwmaLearnsFromReleases) {
  AdmissionOptions options = Unlimited();
  options.latency_ewma_alpha = 0.5;
  auto admission = *AdmissionController::Create(options);
  EXPECT_EQ(admission->LatencyEstimateSeconds(), 0.0);
  ASSERT_TRUE(admission->Admit(nullptr).ok());
  admission->Release(0.1);
  EXPECT_DOUBLE_EQ(admission->LatencyEstimateSeconds(), 0.1);
  ASSERT_TRUE(admission->Admit(nullptr).ok());
  admission->Release(0.3);
  EXPECT_DOUBLE_EQ(admission->LatencyEstimateSeconds(), 0.2);
  // Negative latency = "not representative": no update.
  ASSERT_TRUE(admission->Admit(nullptr).ok());
  admission->Release(-1.0);
  EXPECT_DOUBLE_EQ(admission->LatencyEstimateSeconds(), 0.2);
}

TEST(AdmissionTest, ShedsWhenQueueIsFull) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 0;  // no waiting room at all
  auto admission = *AdmissionController::Create(options);
  ASSERT_TRUE(admission->Admit(nullptr).ok());  // occupies the only slot
  const Deadline deadline(5.0);
  EXPECT_TRUE(admission->Admit(&deadline).IsResourceExhausted());
  EXPECT_EQ(admission->stats().shed_queue_full, 1);
  admission->Release(0.001);
}

TEST(AdmissionTest, QueuedRequestTimesOutWithDeadlineExceeded) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 4;
  auto admission = *AdmissionController::Create(options);
  ASSERT_TRUE(admission->Admit(nullptr).ok());  // blocks the slot, never
                                                // released during the wait
  const Deadline deadline(0.05);
  const Status st = admission->Admit(&deadline);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_EQ(admission->stats().expired_in_queue, 1);
  EXPECT_EQ(admission->Queued(), 0);  // cleaned up after itself
  admission->Release(0.001);
}

TEST(AdmissionTest, QueuedRequestProceedsWhenSlotFrees) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 4;
  auto admission = *AdmissionController::Create(options);
  ASSERT_TRUE(admission->Admit(nullptr).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    const Deadline deadline(5.0);
    const Status st = admission->Admit(&deadline);
    EXPECT_TRUE(st.ok()) << st.ToString();
    admitted.store(true);
    admission->Release(0.001);
  });
  // Give the waiter time to enqueue, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load());
  admission->Release(0.001);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission->stats().admitted, 2);
}

TEST(AdmissionTest, EdfOrderPrefersTighterDeadline) {
  // One executing request, two waiters: the later-arriving but
  // tighter-deadline waiter must win the freed slot.
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 4;
  auto admission = *AdmissionController::Create(options);
  ASSERT_TRUE(admission->Admit(nullptr).ok());

  std::atomic<int> winner{0};
  std::thread loose([&] {
    const Deadline deadline(10.0);
    ASSERT_TRUE(admission->Admit(&deadline).ok());
    int expected = 0;
    winner.compare_exchange_strong(expected, 1);
    admission->Release(0.001);
  });
  // Wait until `loose` is actually queued (fixed sleeps flake when the
  // machine is loaded, e.g. a parallel sanitizer ctest run).
  while (admission->Queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread tight([&] {
    const Deadline deadline(2.0);  // arrives later, expires sooner
    ASSERT_TRUE(admission->Admit(&deadline).ok());
    int expected = 0;
    winner.compare_exchange_strong(expected, 2);
    admission->Release(0.001);
  });
  while (admission->Queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission->Release(0.001);  // free the slot: EDF picks `tight`
  tight.join();
  loose.join();
  EXPECT_EQ(winner.load(), 2);
}

TEST(AdmissionTest, TokenBucketLimitsBurst) {
  AdmissionOptions options = Unlimited();
  options.tokens_per_second = 1.0;  // refills far too slowly to matter here
  options.burst = 3.0;
  auto admission = *AdmissionController::Create(options);
  // The burst admits 3 back-to-back...
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(admission->Admit(nullptr).ok()) << i;
    admission->Release(0.001);
  }
  // ...and the 4th, with a deadline shorter than the ~1s token refill,
  // times out waiting for a token.
  const Deadline deadline(0.05);
  EXPECT_TRUE(admission->Admit(&deadline).IsDeadlineExceeded());
}

TEST(AdmissionTest, TokenBucketRefillsOverTime) {
  AdmissionOptions options = Unlimited();
  options.tokens_per_second = 100.0;  // 10ms per token
  options.burst = 1.0;
  auto admission = *AdmissionController::Create(options);
  ASSERT_TRUE(admission->Admit(nullptr).ok());
  admission->Release(0.001);
  // Bucket is now empty; a 500ms deadline easily covers the 10ms refill.
  const Deadline deadline(0.5);
  const Status st = admission->Admit(&deadline);
  EXPECT_TRUE(st.ok()) << st.ToString();
  admission->Release(0.001);
}

TEST(AdmissionTest, ConcurrentClientsNeverExceedMaxConcurrent) {
  AdmissionOptions options;
  options.max_concurrent = 3;
  options.max_queue_depth = 64;
  auto admission = *AdmissionController::Create(options);
  std::atomic<int> inside{0}, peak{0}, served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 12; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const Deadline deadline(10.0);
        if (!admission->Admit(&deadline).ok()) continue;
        const int now = inside.fetch_add(1) + 1;
        int seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        inside.fetch_sub(1);
        served.fetch_add(1);
        admission->Release(0.0002);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(peak.load(), 3);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(admission->Executing(), 0);
  EXPECT_EQ(admission->Queued(), 0);
}

}  // namespace
}  // namespace slam
