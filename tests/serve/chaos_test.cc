// Chaos suite: concurrent clients hammer a ServingCore while a seeded
// FaultInjector randomly kills engine attempts, under randomized
// per-request deadlines. Invariants, regardless of fault rate:
//
//   * availability — at least 99% of requests are answered (possibly
//     degraded); the retry loop and the degradation ladder absorb the
//     injected faults;
//   * no deadline overshoot — a request with deadline D never takes
//     dramatically longer than D end-to-end (polling bounds the overshoot
//     to well under the per-row compute + one backoff slice);
//   * honest fidelity tags — a degraded response is never tagged kFull,
//     and the raster dimensions always match the rung that produced it;
//   * coherent accounting — core stats add up to the request count.
//
// The run is reproducible: set SLAM_CHAOS_SEED to replay a failure (the
// seed is printed at the start of every run). Runs under ASan/TSan in CI
// (chaos lane) with three different seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "serve/serving_core.h"
#include "util/exec_context.h"
#include "util/random.h"

namespace slam {
namespace {

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("SLAM_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eed5eedULL;
}

struct ChaosResult {
  int total = 0;
  int answered = 0;
  int degraded = 0;
  int overshoots = 0;
  int tag_violations = 0;
};

ChaosResult RunChaos(double fault_rate, int num_clients,
                     int requests_per_client, double deadline_min_seconds = 0.1,
                     double deadline_max_seconds = 0.5) {
  const uint64_t seed = ChaosSeed();
  std::cout << "[chaos] seed=" << seed << " fault_rate=" << fault_rate
            << " (set SLAM_CHAOS_SEED to replay)\n";

  ServingOptions options;
  options.width_px = 64;
  options.height_px = 48;
  options.degrade_mode = DegradeMode::kSample;
  options.max_halvings = 2;
  options.retry.max_attempts = 3;
  options.retry.backoff.initial_seconds = 0.001;
  options.retry.backoff.max_seconds = 0.005;
  options.admission.max_concurrent = num_clients;  // no artificial queuing
  options.admission.max_queue_depth = num_clients * 4;
  // Keep the breaker from starving the run: faults here are per-attempt
  // and absorbed by retries, so request-level failures stay rare.
  options.breaker.window_size = 32;
  options.breaker.min_samples = 16;
  options.breaker.failure_threshold = 0.9;
  options.breaker.open_cooldown_seconds = 0.05;
  options.seed = seed;

  PointDataset data = *GenerateCityDataset(City::kSeattle, 0.003, 11);
  auto core = *ServingCore::Create(std::move(data), options);

  // Calibrate the deadline range to the machine: one fault-free warm-up
  // request measures what a full render costs here (sanitizer builds are
  // an order of magnitude slower), and the randomized deadlines are kept
  // a comfortable multiple of that. The run then probes fault absorption
  // under deadline pressure — not raw machine speed — so the >= 99%
  // availability bar is meaningful on every builder.
  const auto warmup = core->Handle({});
  EXPECT_TRUE(warmup.ok()) << warmup.status().ToString();
  const double calibration =
      warmup.ok() ? warmup->latency_seconds : deadline_min_seconds;
  const double deadline_min =
      std::max(deadline_min_seconds, 30.0 * calibration);
  const double deadline_max =
      std::max(deadline_max_seconds, 100.0 * calibration);

  // One injector shared by every client, seeded for reproducibility.
  FaultInjector injector(seed);
  EXPECT_TRUE(injector
                  .ArmProbabilistic("engine/start", fault_rate,
                                    Status::IoError("chaos"))
                  .ok());

  ChaosResult result;
  result.total = num_clients * requests_per_client;
  std::atomic<int> answered{0}, degraded{0}, overshoots{0}, tag_violations{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed + 1000 + uint64_t(c));
      for (int i = 0; i < requests_per_client; ++i) {
        ExecContext exec;
        exec.set_fault_injector(&injector);
        RenderRequest request;
        request.deadline_seconds = rng.Uniform(deadline_min, deadline_max);
        request.exec = &exec;
        const Timer timer;
        const auto response = core->Handle(request);
        const double elapsed = timer.ElapsedSeconds();
        // Overshoot bound: generous 250ms of slack on top of the deadline
        // absorbs scheduler noise and sanitizer slowdown; anything beyond
        // that means a render ran unbounded past its deadline.
        if (elapsed > request.deadline_seconds + 0.25) {
          overshoots.fetch_add(1);
        }
        if (!response.ok()) continue;
        answered.fetch_add(1);
        if (response->fidelity != Fidelity::kFull) degraded.fetch_add(1);
        // Honest tags: level > 0 must never claim full fidelity, and the
        // raster must match the rung geometry.
        const auto step = DegradeLadderStep(
            options.degrade_mode, response->degrade_level,
            options.max_halvings, options.width_px, options.height_px,
            options.method);
        if (!step || step->fidelity != response->fidelity ||
            response->map.width() != step->width ||
            response->map.height() != step->height ||
            (response->degrade_level > 0 &&
             response->fidelity == Fidelity::kFull)) {
          tag_violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  result.answered = answered.load();
  result.degraded = degraded.load();
  result.overshoots = overshoots.load();
  result.tag_violations = tag_violations.load();

  // Coherent accounting (+1 everywhere for the warm-up request).
  const ServingStats stats = core->stats();
  EXPECT_EQ(stats.requests, result.total + 1);
  EXPECT_EQ(stats.ok_full + stats.ok_degraded, result.answered + 1);
  EXPECT_EQ(stats.ok_full + stats.ok_degraded + stats.shed +
                stats.deadline_exceeded + stats.cancelled + stats.failed,
            result.total + 1);
  std::cout << "[chaos] answered " << result.answered << "/" << result.total
            << " (degraded " << result.degraded << "), shed " << stats.shed
            << ", deadline " << stats.deadline_exceeded << ", failed "
            << stats.failed << ", injected faults "
            << injector.InjectedCount() << ", breaker opened "
            << core->breaker_stats().opened << " times\n";
  return result;
}

TEST(ChaosTest, LowFaultRateEightClients) {
  const ChaosResult result = RunChaos(0.1, 8, 25);
  EXPECT_GE(result.answered, (result.total * 99 + 99) / 100)
      << "availability fell below 99%";
  EXPECT_EQ(result.overshoots, 0);
  EXPECT_EQ(result.tag_violations, 0);
}

TEST(ChaosTest, HighFaultRateEightClients) {
  const ChaosResult result = RunChaos(0.3, 8, 25);
  EXPECT_GE(result.answered, (result.total * 99 + 99) / 100)
      << "availability fell below 99%";
  EXPECT_EQ(result.overshoots, 0);
  EXPECT_EQ(result.tag_violations, 0);
}

TEST(ChaosTest, FaultFreeRunServesEverythingAtFullFidelity) {
  // Generous deadlines: this test pins "no faults -> no degradation and
  // nothing lost", not deadline pressure, so it must not flake when the
  // machine is loaded (e.g. ctest -j running every suite at once).
  const ChaosResult result = RunChaos(0.0, 8, 10, 10.0, 20.0);
  EXPECT_EQ(result.answered, result.total);
  EXPECT_EQ(result.degraded, 0);
  EXPECT_EQ(result.overshoots, 0);
  EXPECT_EQ(result.tag_violations, 0);
}

}  // namespace
}  // namespace slam
