// Circuit breaker state machine, driven by a fake clock so the cooldown
// transitions are deterministic and instant.
#include "util/circuit_breaker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace slam {
namespace {

CircuitBreakerOptions SmallOptions() {
  CircuitBreakerOptions options;
  options.window_size = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_cooldown_seconds = 10.0;
  return options;
}

struct FakeClock {
  double now = 0.0;
  std::function<double()> fn() {
    return [this] { return now; };
  }
};

TEST(CircuitBreakerTest, ValidatesOptions) {
  CircuitBreakerOptions bad = SmallOptions();
  bad.window_size = 0;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.min_samples = 0;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.min_samples = bad.window_size + 1;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.failure_threshold = 0.0;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.failure_threshold = 1.5;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.open_cooldown_seconds = -1.0;
  EXPECT_TRUE(CircuitBreaker::Create(bad).status().IsInvalidArgument());
}

TEST(CircuitBreakerTest, StaysClosedUnderSuccesses) {
  FakeClock clock;
  auto breaker = *CircuitBreaker::Create(SmallOptions(), clock.fn());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordSuccess();
  }
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
  EXPECT_EQ(breaker->stats().admitted, 100);
  EXPECT_EQ(breaker->stats().rejected, 0);
  EXPECT_EQ(breaker->stats().opened, 0);
}

TEST(CircuitBreakerTest, OneEarlyFailureCannotTripColdBreaker) {
  // min_samples guards against rate = 1/1 on the first recorded outcome.
  FakeClock clock;
  auto breaker = *CircuitBreaker::Create(SmallOptions(), clock.fn());
  ASSERT_TRUE(breaker->Admit().ok());
  breaker->RecordFailure();
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, TripsAtThresholdAndRejectsWhileOpen) {
  FakeClock clock;
  auto breaker = *CircuitBreaker::Create(SmallOptions(), clock.fn());
  // 4 failures in a row: rate 4/4 = 1.0 >= 0.5 with min_samples met.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordFailure();
  }
  EXPECT_EQ(breaker->state(), BreakerState::kOpen);
  EXPECT_EQ(breaker->stats().opened, 1);

  // While open and inside the cooldown, everything is rejected.
  const Status rejected = breaker->Admit();
  EXPECT_TRUE(rejected.IsResourceExhausted());
  EXPECT_EQ(breaker->stats().rejected, 1);
}

TEST(CircuitBreakerTest, MixedOutcomesBelowThresholdStayClosed) {
  FakeClock clock;
  CircuitBreakerOptions options = SmallOptions();
  options.failure_threshold = 0.7;
  auto breaker = *CircuitBreaker::Create(options, clock.fn());
  // Alternate failure/success: the windowed rate peaks at 3/5 = 0.6 < 0.7.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    if (i % 2 == 0) {
      breaker->RecordFailure();
    } else {
      breaker->RecordSuccess();
    }
    ASSERT_EQ(breaker->state(), BreakerState::kClosed) << "iteration " << i;
  }
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses) {
  FakeClock clock;
  auto breaker = *CircuitBreaker::Create(SmallOptions(), clock.fn());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordFailure();
  }
  ASSERT_EQ(breaker->state(), BreakerState::kOpen);

  clock.now += 10.0;  // cooldown elapses
  ASSERT_TRUE(breaker->Admit().ok());  // the half-open probe
  EXPECT_EQ(breaker->state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker->stats().half_opened, 1);
  // Only one probe at a time.
  EXPECT_TRUE(breaker->Admit().IsResourceExhausted());

  breaker->RecordSuccess();
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
  EXPECT_EQ(breaker->stats().closed, 1);
  // Closed with a clean window: the old failures are gone.
  ASSERT_TRUE(breaker->Admit().ok());
  breaker->RecordFailure();
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  FakeClock clock;
  auto breaker = *CircuitBreaker::Create(SmallOptions(), clock.fn());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordFailure();
  }
  clock.now += 10.0;
  ASSERT_TRUE(breaker->Admit().ok());
  breaker->RecordFailure();
  EXPECT_EQ(breaker->state(), BreakerState::kOpen);
  EXPECT_EQ(breaker->stats().opened, 2);
  // The cooldown restarted at the re-open: still rejecting 5s later...
  clock.now += 5.0;
  EXPECT_TRUE(breaker->Admit().IsResourceExhausted());
  // ...but a full cooldown later the next probe goes through.
  clock.now += 5.0;
  EXPECT_TRUE(breaker->Admit().ok());
  EXPECT_EQ(breaker->state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, WindowSlidesOldFailuresOut) {
  FakeClock clock;
  CircuitBreakerOptions options = SmallOptions();
  options.window_size = 4;
  options.min_samples = 4;
  options.failure_threshold = 0.75;
  auto breaker = *CircuitBreaker::Create(options, clock.fn());
  // Two failures, then a steady stream of successes: the failures age out
  // of the 4-slot window, so the rate can never reach 0.75 afterwards.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordFailure();
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker->Admit().ok());
    breaker->RecordSuccess();
  }
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
  // A fresh failure now sits in a window of successes: 1/4 < 0.75.
  ASSERT_TRUE(breaker->Admit().ok());
  breaker->RecordFailure();
  EXPECT_EQ(breaker->state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_EQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_EQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_EQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

TEST(CircuitBreakerTest, ConcurrentHammeringKeepsCountersCoherent) {
  // 8 threads x 200 calls against the real clock; no crash, no TSan
  // report, and every admitted call is balanced so admitted equals the
  // number of recorded outcomes.
  CircuitBreakerOptions options = SmallOptions();
  options.open_cooldown_seconds = 0.001;
  auto breaker = *CircuitBreaker::Create(options);
  std::atomic<int64_t> outcomes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&breaker, &outcomes, t] {
      for (int i = 0; i < 200; ++i) {
        if (!breaker->Admit().ok()) continue;
        if ((t + i) % 3 == 0) {
          breaker->RecordFailure();
        } else {
          breaker->RecordSuccess();
        }
        outcomes.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(breaker->stats().admitted, outcomes.load());
  EXPECT_EQ(breaker->stats().admitted + breaker->stats().rejected, 8 * 200);
}

}  // namespace
}  // namespace slam
