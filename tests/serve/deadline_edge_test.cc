// Edge cases at the deadline/admission boundary: exactly-expired deadlines
// on arrival, Deadline::Unlimited flowing through feasibility shedding,
// zero-capacity token buckets, and hostile deadlines through the full
// ServingCore pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serve/serving_core.h"
#include "util/admission.h"
#include "util/timer.h"

namespace slam {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(DeadlineEdgeTest, ZeroBudgetExpiresOnArrival) {
  auto admission = *AdmissionController::Create(AdmissionOptions{});
  const Deadline expired(0.0);
  const Status st = admission->Admit(&expired);
  ASSERT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("on arrival"), std::string::npos);
  EXPECT_EQ(admission->stats().expired_in_queue, 1);
  EXPECT_EQ(admission->Executing(), 0);  // no slot leaked
}

TEST(DeadlineEdgeTest, NegativeBudgetExpiresOnArrival) {
  auto admission = *AdmissionController::Create(AdmissionOptions{});
  const Deadline expired(-3.0);
  EXPECT_TRUE(admission->Admit(&expired).IsDeadlineExceeded());
}

TEST(DeadlineEdgeTest, UnlimitedDeadlineIsNeverInfeasiblyShed) {
  // Seed the latency EWMA sky-high: any finite deadline shorter than an
  // hour would be shed as infeasible...
  AdmissionOptions options;
  options.initial_latency_seconds = 3600.0;
  auto admission = *AdmissionController::Create(options);
  const Deadline tight(1.0);
  EXPECT_TRUE(admission->Admit(&tight).IsResourceExhausted());
  // ...but Unlimited (infinite budget) means "no deadline", and a request
  // without a deadline is always feasible.
  const Deadline unlimited = Deadline::Unlimited();
  const Status st = admission->Admit(&unlimited);
  ASSERT_TRUE(st.ok()) << st.ToString();
  admission->Release(-1.0);
  // A null deadline behaves identically.
  ASSERT_TRUE(admission->Admit(nullptr).ok());
  admission->Release(-1.0);
  EXPECT_EQ(admission->stats().shed_infeasible, 1);
}

TEST(DeadlineEdgeTest, ZeroBurstTokenBucketRejectedAtCreate) {
  // burst = 0 with rate limiting on would deadlock every request: the
  // bucket can never hold the 1 token an admit spends. Must be a Create
  // error, not a hang.
  AdmissionOptions options;
  options.tokens_per_second = 10.0;
  options.burst = 0.0;
  const auto result = AdmissionController::Create(options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // burst = 0 with the bucket DISABLED is fine (the field is unused).
  options.tokens_per_second = 0.0;
  EXPECT_TRUE(AdmissionController::Create(options).ok());
}

class ServingDeadlineEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PointDataset dataset("edge");
    for (int i = 0; i < 32; ++i) {
      dataset.Add({static_cast<double>(i % 8), static_cast<double>(i / 8)});
    }
    ServingOptions options;
    options.width_px = 16;
    options.height_px = 16;
    core_ = *ServingCore::Create(std::move(dataset), options);
  }

  std::unique_ptr<ServingCore> core_;
};

TEST_F(ServingDeadlineEdgeTest, NanDeadlineRejectedBeforeAdmission) {
  RenderRequest request;
  request.deadline_seconds = kNan;
  const auto result = core_->Handle(request);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // The request was never admitted: no slot leaked, nothing shed.
  EXPECT_EQ(core_->admission_stats().admitted, 0);
  const ServingStats stats = core_->stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.shed, 0);
}

TEST_F(ServingDeadlineEdgeTest, ZeroDeadlineMeansNoDeadlineInServing) {
  // Per the RenderRequest contract <= 0 means "no deadline" at the serving
  // layer (unlike a raw Deadline object, where 0 = already expired).
  RenderRequest request;
  request.deadline_seconds = 0.0;
  const auto result = core_->Handle(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->fidelity, Fidelity::kFull);
}

TEST_F(ServingDeadlineEdgeTest, ExpiredDeadlineCountedAsDeadlineExceeded) {
  RenderRequest request;
  request.deadline_seconds = 1e-9;  // expires before admission can win
  const auto result = core_->Handle(request);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << result.status().ToString();
    EXPECT_EQ(core_->stats().deadline_exceeded, 1);
  }
}

}  // namespace
}  // namespace slam
