#include "serve/request_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/validate.h"

namespace slam {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- DecodeRenderParams: the strict query decoder ----

TEST(DecodeRenderParamsTest, EmptyQueryYieldsDefaults) {
  const auto params = DecodeRenderParams("");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->width, 512);
  EXPECT_EQ(params->height, 512);
  EXPECT_FALSE(params->bandwidth.has_value());
  EXPECT_EQ(params->deadline_seconds, 0.0);
  EXPECT_FALSE(params->has_region());
}

TEST(DecodeRenderParamsTest, FullQueryDecodes) {
  const auto params = DecodeRenderParams(
      "width=640&height=480&bandwidth=2.5&kernel=epanechnikov"
      "&method=SLAM_BUCKET_RAO&deadline_ms=250"
      "&xmin=-10&xmax=10&ymin=0&ymax=5");
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_EQ(params->width, 640);
  EXPECT_EQ(params->height, 480);
  ASSERT_TRUE(params->bandwidth.has_value());
  EXPECT_EQ(*params->bandwidth, 2.5);
  EXPECT_EQ(params->kernel, KernelType::kEpanechnikov);
  EXPECT_EQ(params->method, Method::kSlamBucketRao);
  EXPECT_DOUBLE_EQ(params->deadline_seconds, 0.25);
  ASSERT_TRUE(params->has_region());
  EXPECT_EQ(*params->min_x, -10.0);
  EXPECT_EQ(*params->max_y, 5.0);
}

TEST(DecodeRenderParamsTest, UnknownKeyRejected) {
  const auto result = DecodeRenderParams("bandwith=0.5");  // typo
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("bandwith"), std::string::npos);
}

TEST(DecodeRenderParamsTest, DuplicateKeyRejected) {
  EXPECT_FALSE(DecodeRenderParams("width=10&width=20").ok());
}

TEST(DecodeRenderParamsTest, MalformedPairsRejected) {
  EXPECT_FALSE(DecodeRenderParams("width").ok());       // no '='
  EXPECT_FALSE(DecodeRenderParams("=5").ok());          // empty key
  EXPECT_FALSE(DecodeRenderParams("width=").ok());      // empty value
  EXPECT_FALSE(DecodeRenderParams("width=abc").ok());   // not a number
}

TEST(DecodeRenderParamsTest, OverflowDimensionsRejected) {
  EXPECT_FALSE(DecodeRenderParams("width=99999999999").ok());
  EXPECT_FALSE(DecodeRenderParams("width=2147483647").ok());  // 2^31-1
  EXPECT_FALSE(DecodeRenderParams("width=0").ok());
  EXPECT_FALSE(DecodeRenderParams("width=-64").ok());
}

TEST(DecodeRenderParamsTest, ProductOverflowRejected) {
  // Each axis under the per-axis cap; the product exceeds kMaxGridCells.
  EXPECT_FALSE(DecodeRenderParams("width=1048576&height=1048576").ok());
}

TEST(DecodeRenderParamsTest, HostileBandwidthRejected) {
  EXPECT_FALSE(DecodeRenderParams("bandwidth=0").ok());
  EXPECT_FALSE(DecodeRenderParams("bandwidth=-1").ok());
  EXPECT_FALSE(DecodeRenderParams("bandwidth=nan").ok());
  EXPECT_FALSE(DecodeRenderParams("bandwidth=inf").ok());
  EXPECT_FALSE(DecodeRenderParams("bandwidth=1e-310").ok());  // subnormal
  EXPECT_FALSE(DecodeRenderParams("bandwidth=1e30").ok());    // above cap
}

TEST(DecodeRenderParamsTest, HostileDeadlineRejected) {
  EXPECT_FALSE(DecodeRenderParams("deadline_ms=nan").ok());
  EXPECT_FALSE(DecodeRenderParams("deadline_ms=inf").ok());
  EXPECT_FALSE(DecodeRenderParams("deadline_ms=-5").ok());
  // Above the 3600 s shared cap.
  EXPECT_FALSE(DecodeRenderParams("deadline_ms=99999999").ok());
  EXPECT_TRUE(DecodeRenderParams("deadline_ms=1000").ok());
}

TEST(DecodeRenderParamsTest, PartialRegionRejected) {
  EXPECT_FALSE(DecodeRenderParams("xmin=0").ok());
  EXPECT_FALSE(DecodeRenderParams("xmin=0&xmax=1&ymin=0").ok());
}

TEST(DecodeRenderParamsTest, InvertedRegionRejected) {
  EXPECT_FALSE(
      DecodeRenderParams("xmin=10&xmax=0&ymin=0&ymax=5").ok());
  EXPECT_FALSE(
      DecodeRenderParams("xmin=0&xmax=0&ymin=0&ymax=5").ok());  // empty
}

TEST(DecodeRenderParamsTest, GaussianWithSlamMethodRejected) {
  const auto result =
      DecodeRenderParams("kernel=gaussian&method=SLAM_SORT");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // Gaussian with a non-SLAM method is fine.
  EXPECT_TRUE(DecodeRenderParams("kernel=gaussian&method=SCAN").ok());
}

// ---- ValidateServingOptions: operator-side configuration ----

TEST(ValidateServingOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateServingOptions(ServingOptions{}).ok());
}

TEST(ValidateServingOptionsTest, RejectsHostileConfigurations) {
  {
    ServingOptions o;
    o.width_px = 0;
    EXPECT_TRUE(ValidateServingOptions(o).IsInvalidArgument());
  }
  {
    // Per-axis legal, product is an 8 TiB raster.
    ServingOptions o;
    o.width_px = 1 << 20;
    o.height_px = 1 << 20;
    EXPECT_TRUE(ValidateServingOptions(o).IsInvalidArgument());
  }
  {
    ServingOptions o;
    o.bandwidth = 1e-310;  // subnormal
    EXPECT_TRUE(ValidateServingOptions(o).IsInvalidArgument());
  }
  {
    ServingOptions o;
    o.max_halvings = -1;
    EXPECT_TRUE(ValidateServingOptions(o).IsInvalidArgument());
  }
  {
    ServingOptions o;
    o.kernel = KernelType::kGaussian;
    o.method = Method::kSlamBucketRao;
    EXPECT_TRUE(ValidateServingOptions(o).IsInvalidArgument());
  }
}

// ---- ValidateRenderRequest: per-request gate ----

TEST(ValidateRenderRequestTest, OrdinaryDeadlinesAccepted) {
  RenderRequest r;
  r.deadline_seconds = 0.0;  // no deadline
  EXPECT_TRUE(ValidateRenderRequest(r).ok());
  r.deadline_seconds = -1.0;  // also "no deadline" per the contract
  EXPECT_TRUE(ValidateRenderRequest(r).ok());
  r.deadline_seconds = 1.5;
  EXPECT_TRUE(ValidateRenderRequest(r).ok());
  r.deadline_seconds = InputLimits::kMaxDeadlineSeconds;
  EXPECT_TRUE(ValidateRenderRequest(r).ok());
}

TEST(ValidateRenderRequestTest, NanDeadlineRejected) {
  // The load-bearing case: NaN fails `> 0`, so without validation it
  // silently means "no deadline" — an unbounded request the client
  // believed was budgeted.
  RenderRequest r;
  r.deadline_seconds = kNan;
  const Status st = ValidateRenderRequest(r);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("deadline"), std::string::npos);
}

TEST(ValidateRenderRequestTest, InfAndOverlongDeadlinesRejected) {
  RenderRequest r;
  r.deadline_seconds = kInf;
  EXPECT_TRUE(ValidateRenderRequest(r).IsInvalidArgument());
  r.deadline_seconds = InputLimits::kMaxDeadlineSeconds * 2;
  EXPECT_TRUE(ValidateRenderRequest(r).IsInvalidArgument());
}

}  // namespace
}  // namespace slam
