#include "serve/resilient_render.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "util/exec_context.h"

namespace slam {
namespace {

PointDataset ServeData() {
  return *GenerateCityDataset(City::kSeattle, 0.003, 11);  // ~2.6k points
}

ResilientRenderParams SmallParams(const PointDataset& data) {
  ResilientRenderParams params;
  params.data = &data;
  params.region = data.Extent();
  params.width_px = 40;
  params.height_px = 30;
  params.bandwidth = *ScottBandwidth(data.coords());
  params.degrade_mode = DegradeMode::kSample;
  params.max_halvings = 1;
  params.retry.max_attempts = 2;
  params.retry.backoff.initial_seconds = 0.001;
  params.retry.backoff.max_seconds = 0.004;
  return params;
}

TEST(ResilientRenderTest, SucceedsAtFullResolutionWithoutFaults) {
  const PointDataset data = ServeData();
  const auto outcome = RenderResilient(SmallParams(data), nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->fidelity, Fidelity::kFull);
  EXPECT_EQ(outcome->degrade_level, 0);
  EXPECT_EQ(outcome->attempts, 1);
  EXPECT_EQ(outcome->retries, 0);
  EXPECT_EQ(outcome->map.width(), 40);
  EXPECT_EQ(outcome->map.height(), 30);
}

TEST(ResilientRenderTest, RejectsBadParams) {
  const PointDataset data = ServeData();
  ResilientRenderParams params = SmallParams(data);
  params.data = nullptr;
  EXPECT_TRUE(RenderResilient(params, nullptr).status().IsInvalidArgument());
  params = SmallParams(data);
  params.retry.max_attempts = 0;
  EXPECT_TRUE(RenderResilient(params, nullptr).status().IsInvalidArgument());
}

TEST(ResilientRenderTest, PermanentFaultExhaustsRetriesAndLadder) {
  const PointDataset data = ServeData();
  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmProbabilistic("engine/start", 1.0,
                                    Status::IoError("injected"))
                  .ok());
  ExecContext exec;
  exec.set_fault_injector(&injector);
  ResilientRenderParams params = SmallParams(data);
  params.engine.compute.exec = &exec;
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsIoError());
  // Ladder: full, one halving, sampled rung = 3 rungs; 2 attempts each.
  EXPECT_EQ(injector.InjectedCount(), 6);
}

TEST(ResilientRenderTest, TransientFaultIsRetriedToSuccess) {
  const PointDataset data = ServeData();
  FaultInjector injector(/*seed=*/123);
  ASSERT_TRUE(injector
                  .ArmProbabilistic("engine/start", 0.5,
                                    Status::IoError("flaky"))
                  .ok());
  ExecContext exec;
  exec.set_fault_injector(&injector);
  ResilientRenderParams params = SmallParams(data);
  params.engine.compute.exec = &exec;
  params.retry.max_attempts = 5;
  // P(every attempt on every rung faults) = 0.5^15 for the fixed seed
  // stream: this must come back OK, and any retries must be counted.
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Every attempt is either a rung's first try or a retry: rungs tried =
  // degrade_level + 1 (the loop never skips a rung when start_level is 0).
  EXPECT_EQ(outcome->attempts, outcome->retries + outcome->degrade_level + 1);
}

TEST(ResilientRenderTest, CancellationIsFinalNoRetryNoDegrade) {
  const PointDataset data = ServeData();
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  ResilientRenderParams params = SmallParams(data);
  params.engine.compute.exec = &exec;
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsCancelled());
}

TEST(ResilientRenderTest, ExpiredDeadlineFailsFastAsDeadlineExceeded) {
  const PointDataset data = ServeData();
  const Deadline expired(0.0);
  FaultInjector injector;  // pure hit counter
  ExecContext exec;
  exec.set_fault_injector(&injector);
  ResilientRenderParams params = SmallParams(data);
  params.engine.compute.exec = &exec;
  const auto outcome = RenderResilient(params, &expired);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded());
  // One entry checkpoint, no sweep work, no descent through the ladder.
  EXPECT_LE(injector.HitCount("*"), 1);
}

TEST(ResilientRenderTest, MemoryPressureDegradesToHalfResolution) {
  const PointDataset data = ServeData();
  ResilientRenderParams params = SmallParams(data);
  params.width_px = 400;
  params.height_px = 300;
  params.method = Method::kSlamBucket;
  params.degrade_mode = DegradeMode::kHalfRes;
  const size_t full = EstimateAuxiliarySpaceBytes(Method::kSlamBucket,
                                                  data.size(), 400, 300);
  const size_t half = EstimateAuxiliarySpaceBytes(Method::kSlamBucket,
                                                  data.size(), 200, 150);
  ASSERT_LT(half, full);
  MemoryBudget budget((half + full) / 2);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  params.engine.compute.exec = &exec;
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->fidelity, Fidelity::kHalfRes);
  EXPECT_EQ(outcome->degrade_level, 1);
  EXPECT_EQ(outcome->map.width(), 200);
  EXPECT_EQ(outcome->map.height(), 150);
}

TEST(ResilientRenderTest, StartLevelSkipsFullResolution) {
  const PointDataset data = ServeData();
  ResilientRenderParams params = SmallParams(data);
  params.degrade_mode = DegradeMode::kHalfRes;
  params.start_level = 1;
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->degrade_level, 1);
  EXPECT_EQ(outcome->fidelity, Fidelity::kHalfRes);
  EXPECT_EQ(outcome->map.width(), 20);
  EXPECT_EQ(outcome->map.height(), 15);
}

TEST(ResilientRenderTest, SampledRungUsesZorderAtCoarsestResolution) {
  const PointDataset data = ServeData();
  ResilientRenderParams params = SmallParams(data);
  params.start_level = 2;  // past the single halving: the sampled rung
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->fidelity, Fidelity::kSampled);
  EXPECT_EQ(outcome->map.width(), 20);
  EXPECT_EQ(outcome->map.height(), 15);
}

TEST(ResilientRenderTest, DegradeOffMeansSingleRung) {
  const PointDataset data = ServeData();
  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmProbabilistic("engine/start", 1.0,
                                    Status::IoError("injected"))
                  .ok());
  ExecContext exec;
  exec.set_fault_injector(&injector);
  ResilientRenderParams params = SmallParams(data);
  params.engine.compute.exec = &exec;
  params.degrade_mode = DegradeMode::kOff;
  params.retry.max_attempts = 1;
  const auto outcome = RenderResilient(params, nullptr);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(injector.InjectedCount(), 1);  // one rung, one attempt
}

}  // namespace
}  // namespace slam
