#include "util/backoff.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace slam {
namespace {

TEST(BackoffTest, DelaysStayWithinBoundsAndCap) {
  BackoffOptions options;
  options.initial_seconds = 0.01;
  options.max_seconds = 0.08;
  Backoff backoff(options, 42);
  double previous = options.initial_seconds;
  for (int i = 0; i < 200; ++i) {
    const double delay = backoff.NextDelaySeconds();
    EXPECT_GE(delay, options.initial_seconds);
    EXPECT_LE(delay, options.max_seconds);
    // Decorrelated jitter: bounded by 3x the previous delay (or the cap).
    EXPECT_LE(delay, std::min(previous * 3.0 + 1e-12, options.max_seconds));
    previous = delay;
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffOptions options;
  Backoff a(options, 7), b(options, 7), c(options, 8);
  std::vector<double> sa, sb, sc;
  for (int i = 0; i < 32; ++i) {
    sa.push_back(a.NextDelaySeconds());
    sb.push_back(b.NextDelaySeconds());
    sc.push_back(c.NextDelaySeconds());
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(BackoffTest, ResetRestartsTheSequenceEnvelope) {
  BackoffOptions options;
  options.initial_seconds = 0.01;
  options.max_seconds = 10.0;
  Backoff backoff(options, 3);
  for (int i = 0; i < 20; ++i) backoff.NextDelaySeconds();
  backoff.Reset();
  // First post-reset draw is again bounded by 3x the initial delay.
  EXPECT_LE(backoff.NextDelaySeconds(), options.initial_seconds * 3.0);
}

TEST(RetryPolicyTest, ClassifiesRetryableCodes) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::IoError("transient")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Internal("transient")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::InvalidArgument("caller")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Cancelled("user stop")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::ResourceExhausted("oom")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("caller")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::OK()));
}

TEST(RetryPolicyTest, RespectsAttemptBudget) {
  RetryOptions options;
  options.max_attempts = 3;
  options.backoff.initial_seconds = 0.001;
  options.backoff.max_seconds = 0.002;
  RetryPolicy policy(options, 1);
  const Status failure = Status::IoError("flaky");
  EXPECT_TRUE(policy.DelayBeforeRetry(failure, 0, nullptr).has_value());
  EXPECT_TRUE(policy.DelayBeforeRetry(failure, 1, nullptr).has_value());
  // Attempt 2 is the third and last allowed attempt: no further retry.
  EXPECT_FALSE(policy.DelayBeforeRetry(failure, 2, nullptr).has_value());
}

TEST(RetryPolicyTest, SingleAttemptMeansNoRetries) {
  RetryOptions options;
  options.max_attempts = 1;
  RetryPolicy policy(options, 1);
  EXPECT_FALSE(
      policy.DelayBeforeRetry(Status::IoError("x"), 0, nullptr).has_value());
}

TEST(RetryPolicyTest, NeverSchedulesPastTheDeadline) {
  RetryOptions options;
  options.max_attempts = 100;
  options.backoff.initial_seconds = 0.05;  // every delay is >= 50ms
  options.backoff.max_seconds = 0.5;
  RetryPolicy policy(options, 1);
  const Deadline tight(0.01);  // only 10ms remain: no 50ms sleep fits
  EXPECT_FALSE(
      policy.DelayBeforeRetry(Status::IoError("x"), 0, &tight).has_value());

  const Deadline roomy(60.0);
  const auto delay =
      policy.DelayBeforeRetry(Status::IoError("x"), 0, &roomy);
  ASSERT_TRUE(delay.has_value());
  EXPECT_LT(*delay, roomy.RemainingSeconds());
}

TEST(RetryPolicyTest, ExpiredDeadlineStopsRetriesImmediately) {
  RetryOptions options;
  options.max_attempts = 10;
  RetryPolicy policy(options, 1);
  const Deadline expired(0.0);
  EXPECT_FALSE(
      policy.DelayBeforeRetry(Status::IoError("x"), 0, &expired).has_value());
}

TEST(RetryPolicyTest, NonRetryableFailuresGetNoDelayRegardlessOfBudget) {
  RetryOptions options;
  options.max_attempts = 10;
  RetryPolicy policy(options, 1);
  EXPECT_FALSE(policy.DelayBeforeRetry(Status::Cancelled("stop"), 0, nullptr)
                   .has_value());
  EXPECT_FALSE(
      policy.DelayBeforeRetry(Status::DeadlineExceeded("late"), 0, nullptr)
          .has_value());
}

TEST(RetryOptionsTest, Validation) {
  RetryOptions ok;
  EXPECT_TRUE(ValidateRetryOptions(ok).ok());

  RetryOptions bad = ok;
  bad.max_attempts = 0;
  EXPECT_TRUE(ValidateRetryOptions(bad).IsInvalidArgument());

  bad = ok;
  bad.backoff.initial_seconds = 0.0;
  EXPECT_TRUE(ValidateRetryOptions(bad).IsInvalidArgument());

  bad = ok;
  bad.backoff.initial_seconds = -0.5;
  EXPECT_TRUE(ValidateRetryOptions(bad).IsInvalidArgument());

  bad = ok;
  bad.backoff.max_seconds = bad.backoff.initial_seconds / 2;
  EXPECT_TRUE(ValidateRetryOptions(bad).IsInvalidArgument());

  bad = ok;
  bad.backoff.max_seconds = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ValidateRetryOptions(bad).IsInvalidArgument());
}

}  // namespace
}  // namespace slam
